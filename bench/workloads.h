#ifndef STREAMREL_BENCH_WORKLOADS_H_
#define STREAMREL_BENCH_WORKLOADS_H_

// Synthetic workload generators for the benchmark suite. These stand in
// for the paper's production traces (Truviso's customer data is not
// available): click/URL streams with Zipf-like skew and network-security
// connection logs, at configurable rates and cardinalities. They exercise
// the same code paths: high-rate ordered append, known aggregate queries,
// periodic reporting.

#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"

namespace streamrel::bench {

inline constexpr int64_t kSec = kMicrosPerSecond;
inline constexpr int64_t kMin = kMicrosPerMinute;

/// Aborts the benchmark on error — benchmarks must not silently measure
/// failed operations.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "BENCH SETUP FAILED (%s): %s\n", what,
            status.ToString().c_str());
    abort();
  }
}

template <typename T>
T CheckResult(Result<T> result, const char* what) {
  Check(result.status(), what);
  return result.TakeValue();
}

/// Zipf(s≈1) sampler over [0, n) via the classic inverse-power method with
/// a precomputed CDF. Deterministic per seed.
class ZipfGenerator {
 public:
  ZipfGenerator(int n, double skew, uint32_t seed)
      : rng_(seed), dist_(0.0, 1.0) {
    cdf_.reserve(n);
    double total = 0;
    for (int i = 1; i <= n; ++i) total += 1.0 / std::pow(i, skew);
    double acc = 0;
    for (int i = 1; i <= n; ++i) {
      acc += 1.0 / std::pow(i, skew) / total;
      cdf_.push_back(acc);
    }
  }

  int Next() {
    double u = dist_(rng_);
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<int>(it - cdf_.begin());
  }

 private:
  std::mt19937 rng_;
  std::uniform_real_distribution<double> dist_;
  std::vector<double> cdf_;
};

/// A stream of URL clicks: (url, atime, client_ip), ordered on atime.
/// `rows_per_sec` controls timestamp spacing (logical time, not wall time).
class UrlClickWorkload {
 public:
  UrlClickWorkload(int url_cardinality, int rows_per_sec, uint32_t seed = 42)
      : zipf_(url_cardinality, 1.07, seed),
        rng_(seed * 31 + 7),
        step_micros_(kSec / rows_per_sec) {
    urls_.reserve(url_cardinality);
    for (int i = 0; i < url_cardinality; ++i) {
      urls_.push_back("/page/" + std::to_string(i));
    }
  }

  /// Next row; timestamps advance by 1/rows_per_sec each call.
  Row NextRow() {
    ts_ += step_micros_;
    return Row{Value::String(urls_[zipf_.Next()]), Value::Timestamp(ts_),
               Value::String("10.0." + std::to_string(rng_() % 256) + "." +
                             std::to_string(rng_() % 256))};
  }

  std::vector<Row> NextBatch(size_t n) {
    std::vector<Row> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(NextRow());
    return batch;
  }

  int64_t now() const { return ts_; }

  static const char* StreamDdl() {
    return "CREATE STREAM url_stream (url varchar(1024), "
           "atime timestamp CQTIME USER, client_ip varchar(50))";
  }
  static const char* TableDdl() {
    return "CREATE TABLE url_log (url varchar(1024), "
           "atime timestamp, client_ip varchar(50))";
  }

 private:
  std::vector<std::string> urls_;
  ZipfGenerator zipf_;
  std::mt19937 rng_;
  int64_t step_micros_;
  int64_t ts_ = 0;
};

/// Network-security connection log: (src_ip, dst_port, bytes, ts).
/// Mostly web traffic with a configurable scan component.
class SecurityLogWorkload {
 public:
  explicit SecurityLogWorkload(uint32_t seed = 7)
      : rng_(seed), port_zipf_(64, 1.2, seed + 1) {}

  Row NextRow() {
    ts_ += 1000 + static_cast<int64_t>(rng_() % 2000);  // ~0.5-1k rows/sec
    int64_t port = (rng_() % 100 < 5)
                       ? static_cast<int64_t>(rng_() % 65536)  // scan noise
                       : kCommonPorts[port_zipf_.Next() % 8];
    return Row{Value::String("192.168." + std::to_string(rng_() % 64) + "." +
                             std::to_string(rng_() % 256)),
               Value::Int64(port),
               Value::Int64(static_cast<int64_t>(64 + rng_() % 8192)),
               Value::Timestamp(ts_)};
  }

  std::vector<Row> NextBatch(size_t n) {
    std::vector<Row> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) batch.push_back(NextRow());
    return batch;
  }

  int64_t now() const { return ts_; }

  static const char* StreamDdl() {
    return "CREATE STREAM conns (src_ip varchar, dst_port bigint, "
           "bytes bigint, ts timestamp CQTIME USER)";
  }
  static const char* TableDdl() {
    return "CREATE TABLE conn_log (src_ip varchar, dst_port bigint, "
           "bytes bigint, ts timestamp)";
  }

 private:
  static constexpr int64_t kCommonPorts[8] = {80,  443, 22,  53,
                                              25,  110, 143, 8080};
  std::mt19937 rng_;
  ZipfGenerator port_zipf_;
  int64_t ts_ = 0;
};

/// Database tuned like the paper's store-first baseline: spinning-disk cost
/// model, small buffer pool relative to the data, durable WAL.
inline engine::DatabaseOptions StoreFirstOptions(size_t cache_pages = 256) {
  engine::DatabaseOptions options;
  options.disk_model.seek_micros = 4000;
  options.disk_model.read_mb_per_sec = 100;
  options.disk_model.write_mb_per_sec = 80;
  options.disk_model.cache_pages = cache_pages;
  return options;
}

/// Loads `rows` into `table` through plain SQL-path inserts (WAL + heap +
/// indexes), in groups to bound statement size.
inline void BulkLoad(engine::Database* db, const std::string& table,
                     const std::vector<Row>& rows) {
  auto* info = db->catalog()->GetTable(table);
  if (info == nullptr) {
    fprintf(stderr, "BulkLoad: no table %s\n", table.c_str());
    abort();
  }
  storage::TxnId txn = db->txns()->Begin();
  for (const Row& row : rows) {
    Check(stream::InsertIntoTable(info, row, txn, db->wal().get()),
          "bulk insert");
  }
  db->wal()->Sync();
  Check(db->txns()->Commit(txn, db->now_micros()).status(), "bulk commit");
}

}  // namespace streamrel::bench

#endif  // STREAMREL_BENCH_WORKLOADS_H_
