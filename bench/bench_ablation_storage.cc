// Storage-layer ablations backing the paper's cost arguments:
//  (a) WAL durability policy — group commit (sync per transaction) vs.
//      fsync-per-append, the overhead store-first ingest pays for
//      durability of every raw row vs. continuous analytics syncing once
//      per *window* of results;
//  (b) buffer-pool sensitivity — batch report latency vs. pool size,
//      showing the memory-hierarchy cost of re-reading stored data
//      (Section 2.2: "moving data repeatedly through the memory and cache
//      hierarchy");
//  (c) VACUUM — REPLACE-channel churn: report latency on an unvacuumed vs.
//      vacuumed active table.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

void BM_WalGroupCommit(benchmark::State& state) {
  const bool sync_every_append = state.range(0) != 0;
  engine::DatabaseOptions options;
  options.wal_sync_every_append = sync_every_append;
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db(options);
    Check(db.Execute("CREATE TABLE t (a bigint, b varchar)").status(),
          "ddl");
    state.ResumeTiming();
    for (int txn = 0; txn < 200; ++txn) {
      std::string insert = "INSERT INTO t VALUES ";
      for (int i = 0; i < 50; ++i) {
        if (i > 0) insert += ", ";
        insert += "(" + std::to_string(txn * 50 + i) + ", 'payload')";
      }
      Check(db.Execute(insert).status(), "insert");
    }
    state.counters["sim_io_ms"] =
        static_cast<double>(db.disk()->stats().simulated_io_micros) / 1000.0;
  }
  state.counters["rows"] = 10000;
}
BENCHMARK(BM_WalGroupCommit)
    ->Arg(0)  // group commit: one sync per transaction
    ->Arg(1)  // fsync every append
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_BufferPoolSweep(benchmark::State& state) {
  const size_t pool_pages = static_cast<size_t>(state.range(0));
  engine::Database db(StoreFirstOptions(pool_pages));
  Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "ddl");
  UrlClickWorkload workload(200, 1000);
  BulkLoad(&db, "url_log", workload.NextBatch(120000));  // ~8 MB

  db.disk()->ResetStats();
  for (auto _ : state) {
    auto report = CheckResult(
        db.Execute("SELECT url, count(*) FROM url_log GROUP BY url"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
  auto stats = db.disk()->stats();
  state.counters["sim_io_ms"] = benchmark::Counter(
      static_cast<double>(stats.simulated_io_micros) / 1000.0 /
      static_cast<double>(state.iterations()));
  state.counters["hit_rate_pct"] =
      100.0 * static_cast<double>(stats.cache_hits) /
      static_cast<double>(stats.cache_hits + stats.page_reads + 1);
  state.counters["pool_pages"] = static_cast<double>(pool_pages);
}
BENCHMARK(BM_BufferPoolSweep)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Arg(4096)  // everything resident
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

void BM_ReplaceChurnAndVacuum(benchmark::State& state) {
  const bool vacuum = state.range(0) != 0;
  engine::Database db;
  Check(db.Execute("CREATE STREAM s (k bigint, ts timestamp CQTIME USER);"
                   "CREATE STREAM agg AS SELECT k, count(*) AS c FROM s "
                   "<VISIBLE '1 minute'> GROUP BY k;"
                   "CREATE TABLE board (k bigint, c bigint);"
                   "CREATE CHANNEL ch FROM agg INTO board REPLACE")
            .status(),
        "ddl");
  // 120 windows of churn over 500 groups: 60k live+dead versions.
  std::mt19937 rng(3);
  for (int m = 0; m < 120; ++m) {
    std::vector<Row> batch;
    for (int i = 0; i < 500; ++i) {
      batch.push_back(Row{
          Value::Int64(static_cast<int64_t>(rng() % 500)),
          Value::Timestamp(m * kMin + (i + 1) * (kMin / 512))});
    }
    Check(db.Ingest("s", batch), "ingest");
    Check(db.AdvanceTime("s", (m + 1) * kMin), "hb");
  }
  if (vacuum) {
    Check(db.Execute("VACUUM board").status(), "vacuum");
  }
  for (auto _ : state) {
    auto report = CheckResult(
        db.Execute("SELECT k, c FROM board ORDER BY c DESC LIMIT 10"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.counters["row_versions"] = static_cast<double>(
      db.catalog()->GetTable("board")->heap->row_count());
}
BENCHMARK(BM_ReplaceChurnAndVacuum)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
