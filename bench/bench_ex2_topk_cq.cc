// Example 2 (the paper's first TruSQL query): the per-minute top-10 URLs
// over a 5-minute sliding window. Measures end-to-end ingest throughput
// with the CQ running, swept over URL cardinality, and the per-window
// evaluation latency of the top-k itself.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

const char* kTop10Sql =
    "SELECT url, count(*) url_count "
    "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
    "GROUP by url ORDER by url_count desc LIMIT 10";

void BM_Top10IngestThroughput(benchmark::State& state) {
  const int cardinality = static_cast<int>(state.range(0));
  const int64_t rows = 60000;
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    Check(db.CreateContinuousQuery("top10", kTop10Sql).status(), "cq");
    UrlClickWorkload workload(cardinality, 1000);
    state.ResumeTiming();

    int64_t remaining = rows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
    Check(db.AdvanceTime("url_stream", workload.now() + 5 * kMin), "hb");
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["urls"] = static_cast<double>(cardinality);
}
BENCHMARK(BM_Top10IngestThroughput)
    ->Arg(10)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Latency from window close to delivered top-10 (the freshness the
/// dashboard user sees), measured by evaluating closes directly.
void BM_Top10WindowEvaluation(benchmark::State& state) {
  const int cardinality = static_cast<int>(state.range(0));
  engine::Database db;
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  auto cq = CheckResult(db.CreateContinuousQuery("top10", kTop10Sql), "cq");
  int64_t delivered = 0;
  cq->AddCallback([&](int64_t, const std::vector<Row>& rows) {
    delivered += static_cast<int64_t>(rows.size());
    return Status::OK();
  });
  UrlClickWorkload workload(cardinality, 1000);
  // Fill 5 minutes of window state.
  Check(db.Ingest("url_stream", workload.NextBatch(300000)), "prefill");

  int64_t close = workload.now();
  for (auto _ : state) {
    close += kMin;
    Check(db.AdvanceTime("url_stream", close), "close");
  }
  state.counters["urls"] = static_cast<double>(cardinality);
  benchmark::DoNotOptimize(delivered);
}
BENCHMARK(BM_Top10WindowEvaluation)
    ->Arg(10)
    ->Arg(1000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
