// Experiment T10: multi-connection ingest scaling under the reader-writer
// lock hierarchy (DESIGN decision 11). The old engine serialized every
// statement behind one recursive mutex, so N clients on N disjoint streams
// ran at 1x. Now data-plane requests hold the engine lock shared and
// serialize only on their own stream's ingest lock, so disjoint streams
// should scale near-linearly until cores run out. Two measurements:
// (a) in-process — N threads call Database::Ingest on N disjoint streams,
// each feeding a windowed GROUP BY CQ (the pure engine-lock picture);
// (b) over loopback — N client connections push INGEST_BATCH frames
// through the server's request-dispatch worker pool, against the
// workers=0 baseline where every frame executes inline on the event-loop
// thread (the pre-pool behavior, which cannot scale no matter what the
// engine allows); (c) slow-sink isolation — every stream's CQ feeds a
// subscriber that stalls on each window close (a slow downstream, e.g. a
// back-pressured socket). Deliveries fire inside the ingest path, so
// under the old global mutex one stream's stall froze every other
// stream's ingest; under per-stream locks the stalls overlap, and
// aggregate QPS scales with connections even on a single core.

#include <benchmark/benchmark.h>

#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kRpcTimeout = 30'000'000;
constexpr int kBatchesPerConn = 8;    // per connection, per iteration
constexpr size_t kRowsPerBatch = 256;

std::string StreamName(int i) { return "clicks" + std::to_string(i); }

/// One disjoint pipeline per connection: a click stream plus a windowed
/// GROUP BY CQ, so every ingest does real shared-aggregation work.
void SetUpPipelines(engine::Database* db, int conns,
                    std::vector<UrlClickWorkload>* gens) {
  for (int i = 0; i < conns; ++i) {
    const std::string name = StreamName(i);
    Check(db->Execute("CREATE STREAM " + name +
                      " (url varchar(1024), atime timestamp CQTIME USER, "
                      "client_ip varchar(50))")
              .status(),
          "ddl");
    Check(db->CreateContinuousQuery(
                "counts" + std::to_string(i),
                "SELECT url, count(*) FROM " + name +
                    " <VISIBLE '1 minute'> GROUP BY url")
              .status(),
          "create cq");
    gens->emplace_back(/*url_cardinality=*/500, /*rows_per_sec=*/2000,
                       /*seed=*/static_cast<uint32_t>(17 * i + 3));
  }
}

/// (a) In-process: N threads, N disjoint streams, direct Database::Ingest.
/// items/sec should scale ~linearly with threads; with the old global
/// mutex it stayed flat.
void BM_T10EngineIngestScaling(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  engine::Database db;
  std::vector<UrlClickWorkload> gens;
  SetUpPipelines(&db, conns, &gens);

  int64_t rows_done = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&db, &gens, c]() {
        const std::string stream = StreamName(c);
        for (int b = 0; b < kBatchesPerConn; ++b) {
          Check(db.Ingest(stream, gens[c].NextBatch(kRowsPerBatch)),
                "ingest");
        }
      });
    }
    for (std::thread& t : threads) t.join();
    rows_done += static_cast<int64_t>(conns) * kBatchesPerConn *
                 static_cast<int64_t>(kRowsPerBatch);
  }
  state.SetItemsProcessed(rows_done);

  // Lock-level evidence that the threads really ran concurrently: shared
  // acquisitions count every data-plane entry; contended exclusive
  // acquisitions would mean DDL interfered (there is none in the loop).
  auto stats = db.StatsSnapshot();
  for (const auto& sample : stats.metrics) {
    if (sample.scope == "engine" && sample.name == "lock" &&
        sample.metric == "shared_acquisitions") {
      state.counters["shared_lock_acquisitions"] =
          static_cast<double>(sample.value);
    }
  }
}
BENCHMARK(BM_T10EngineIngestScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"conns"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// (b) Loopback: N client connections, N disjoint streams, INGEST_BATCH
/// frames. workers=4 dispatches frames on the pool (concurrent under the
/// shared engine lock); workers=0 executes every frame inline on the
/// event-loop thread — the pre-pool behavior, the flat baseline.
void BM_T10NetIngestScaling(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const int workers = static_cast<int>(state.range(1));

  engine::Database db;
  std::vector<UrlClickWorkload> gens;
  SetUpPipelines(&db, conns, &gens);

  net::ServerOptions options;
  options.worker_threads = workers;
  net::Server server(&db, options);
  Check(server.Start(), "server start");
  std::vector<net::Client> clients(conns);
  for (int c = 0; c < conns; ++c) {
    Check(clients[c].Connect("127.0.0.1", server.port(), kRpcTimeout),
          "connect");
  }

  int64_t rows_done = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&clients, &gens, c]() {
        const std::string stream = StreamName(c);
        for (int b = 0; b < kBatchesPerConn; ++b) {
          Check(clients[c].IngestBatch(stream,
                                       gens[c].NextBatch(kRowsPerBatch),
                                       INT64_MIN, kRpcTimeout),
                "net ingest");
        }
      });
    }
    for (std::thread& t : threads) t.join();
    rows_done += static_cast<int64_t>(conns) * kBatchesPerConn *
                 static_cast<int64_t>(kRowsPerBatch);
  }
  state.SetItemsProcessed(rows_done);

  for (net::Client& client : clients) client.Close();
  server.Drain();
}
BENCHMARK(BM_T10NetIngestScaling)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 4}})
    ->ArgNames({"conns", "workers"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// (c) Slow-sink isolation: every stream's CQ has a subscriber that
/// stalls kSinkStallMicros per delivered window close — deliveries fire
/// synchronously inside Ingest, holding the shared engine lock and the
/// stream's ingest lock. Short '1 second' windows at 250 logical rows/sec
/// close roughly once per 256-row batch, so the stall dominates the
/// iteration. Because only the stalling stream's ingest lock is held (not
/// a global mutex), N connections overlap their stalls and aggregate QPS
/// scales near-linearly — including on single-core hosts, where (a) and
/// (b) are CPU-bound and flat.
void BM_T10SlowSinkScaling(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  static constexpr int64_t kSinkStallMicros = 300;

  engine::Database db;
  std::vector<UrlClickWorkload> gens;
  std::vector<engine::Database::SubscriptionTicket> tickets;
  for (int i = 0; i < conns; ++i) {
    const std::string name = StreamName(i);
    Check(db.Execute("CREATE STREAM " + name +
                     " (url varchar(1024), atime timestamp CQTIME USER, "
                     "client_ip varchar(50))")
              .status(),
          "ddl");
    Check(db.CreateContinuousQuery(
                "counts" + std::to_string(i),
                "SELECT url, count(*) FROM " + name +
                    " <VISIBLE '1 second'> GROUP BY url")
              .status(),
          "create cq");
    gens.emplace_back(/*url_cardinality=*/500, /*rows_per_sec=*/250,
                      /*seed=*/static_cast<uint32_t>(17 * i + 3));
    tickets.push_back(CheckResult(
        db.Subscribe("counts" + std::to_string(i),
                     [](int64_t, const std::vector<Row>&) {
                       std::this_thread::sleep_for(
                           std::chrono::microseconds(kSinkStallMicros));
                       return Status::OK();
                     }),
        "subscribe"));
  }

  int64_t rows_done = 0;
  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(conns);
    for (int c = 0; c < conns; ++c) {
      threads.emplace_back([&db, &gens, c]() {
        const std::string stream = StreamName(c);
        for (int b = 0; b < kBatchesPerConn; ++b) {
          Check(db.Ingest(stream, gens[c].NextBatch(kRowsPerBatch)),
                "ingest");
        }
      });
    }
    for (std::thread& t : threads) t.join();
    rows_done += static_cast<int64_t>(conns) * kBatchesPerConn *
                 static_cast<int64_t>(kRowsPerBatch);
  }
  state.SetItemsProcessed(rows_done);

  for (const auto& ticket : tickets) {
    Check(db.Unsubscribe(ticket), "unsubscribe");
  }
}
BENCHMARK(BM_T10SlowSinkScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgNames({"conns"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
