// Experiment T9: what the network front-end costs over loopback, against
// the in-process baseline. Three measurements: (a) bulk ingest throughput
// through INGEST_BATCH frames vs. direct Database::Ingest, at several
// batch sizes — the framing/checksum/syscall tax amortizes with batch
// size; (b) control-plane round-trip latency (PING floor, then a QUERY
// carrying SHOW STATS both ways); (c) push latency for a live SUBSCRIBE:
// wall time from the window-closing ingest to the subscriber holding the
// results, in-process callback vs. a pushed STREAM_ROWS frame over TCP.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kRpcTimeout = 30'000'000;

enum Path { kInProcess = 0, kLoopback = 1 };

/// Bulk ingest: push `kTotalRows` of the click workload per iteration,
/// either straight into the engine or through the wire protocol.
void BM_T9IngestThroughput(benchmark::State& state) {
  const Path path = static_cast<Path>(state.range(0));
  const size_t batch_rows = static_cast<size_t>(state.range(1));
  constexpr int64_t kTotalRows = 16384;

  engine::Database db;
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  // A real consumer, so ingest does CQ work on both paths.
  Check(db.CreateContinuousQuery(
              "counts",
              "SELECT url, count(*) FROM url_stream "
              "<VISIBLE '1 minute'> GROUP BY url")
            .status(),
        "create cq");

  net::Server server(&db);
  net::Client client;
  if (path == kLoopback) {
    Check(server.Start(), "server start");
    Check(client.Connect("127.0.0.1", server.port(), kRpcTimeout),
          "connect");
  }

  UrlClickWorkload workload(/*url_cardinality=*/500, /*rows_per_sec=*/2000);
  int64_t rows_done = 0;
  for (auto _ : state) {
    int64_t remaining = kTotalRows;
    while (remaining > 0) {
      const size_t n = static_cast<size_t>(std::min<int64_t>(
          remaining, static_cast<int64_t>(batch_rows)));
      std::vector<Row> batch = workload.NextBatch(n);
      if (path == kLoopback) {
        Check(client.IngestBatch("url_stream", batch, INT64_MIN,
                                 kRpcTimeout),
              "net ingest");
      } else {
        Check(db.Ingest("url_stream", batch), "ingest");
      }
      remaining -= static_cast<int64_t>(n);
      rows_done += static_cast<int64_t>(n);
    }
  }
  state.SetItemsProcessed(rows_done);

  if (path == kLoopback) {
    const net::NetStats stats = server.stats();
    state.counters["wire_bytes_per_row"] =
        static_cast<double>(stats.bytes_in) /
        static_cast<double>(rows_done);
    client.Close();
    server.Drain();
  }
}
BENCHMARK(BM_T9IngestThroughput)
    ->ArgsProduct({{kInProcess, kLoopback}, {16, 256, 2048}})
    ->ArgNames({"net", "batch"})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Control-plane round trip: PING is the wire-protocol floor (frame
/// encode + two loopback hops + dispatch, no SQL); the QUERY variant
/// carries SHOW STATS through the parser and stats snapshot on both
/// paths, so the in-process/loopback gap is the protocol tax alone.
void BM_T9RequestLatency(benchmark::State& state) {
  const Path path = static_cast<Path>(state.range(0));
  const bool ping_only = state.range(1) != 0;

  engine::Database db;
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  net::Server server(&db);
  net::Client client;
  if (path == kLoopback) {
    Check(server.Start(), "server start");
    Check(client.Connect("127.0.0.1", server.port(), kRpcTimeout),
          "connect");
  }

  for (auto _ : state) {
    if (ping_only) {
      Check(client.Ping(kRpcTimeout), "ping");
    } else if (path == kLoopback) {
      Check(client.Query("SHOW STATS", kRpcTimeout).status(), "net query");
    } else {
      Check(db.Execute("SHOW STATS").status(), "query");
    }
  }

  if (path == kLoopback) {
    client.Close();
    server.Drain();
  }
}
BENCHMARK(BM_T9RequestLatency)
    ->Args({kInProcess, 0})
    ->Args({kLoopback, 0})
    ->Args({kLoopback, 1})  // PING has no in-process analogue
    ->ArgNames({"net", "ping"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

/// Push latency: each iteration ingests one batch whose system time
/// closes the previous one-second window, then waits until the
/// subscriber holds that window's results — a direct callback under the
/// engine mutex in-process, a STREAM_ROWS frame over loopback.
void BM_T9PushLatency(benchmark::State& state) {
  const Path path = static_cast<Path>(state.range(0));
  constexpr int kRowsPerWindow = 64;

  engine::Database db;
  Check(db.Execute("CREATE STREAM ticks (v bigint, ts timestamp "
                   "CQTIME SYSTEM)")
            .status(),
        "ddl");
  Check(db.Execute("CREATE STREAM tick_counts AS SELECT count(*) "
                   "FROM ticks <VISIBLE '1 second'>")
            .status(),
        "derived stream");

  net::Server server(&db);
  net::Client client;
  int64_t delivered_close = 0;
  engine::Database::SubscriptionTicket ticket;
  if (path == kLoopback) {
    Check(server.Start(), "server start");
    Check(client.Connect("127.0.0.1", server.port(), kRpcTimeout),
          "connect");
    Check(client.Subscribe("tick_counts", kRpcTimeout), "subscribe");
  } else {
    ticket = CheckResult(
        db.Subscribe("tick_counts",
                     [&delivered_close](int64_t close,
                                        const std::vector<Row>& rows) {
                       (void)rows;
                       delivered_close = close;
                       return Status::OK();
                     }),
        "subscribe");
  }

  std::vector<Row> batch;
  for (int i = 0; i < kRowsPerWindow; ++i) {
    batch.push_back({Value::Int64(i), Value::Null()});
  }
  int64_t window = 0;
  // Prime: the first batch opens a window but closes nothing.
  if (path == kLoopback) {
    Check(client.IngestBatch("ticks", batch, window * kSec, kRpcTimeout),
          "prime");
  } else {
    Check(db.Ingest("ticks", batch, window * kSec), "prime");
  }

  for (auto _ : state) {
    ++window;
    if (path == kLoopback) {
      Check(client.IngestBatch("ticks", batch, window * kSec, kRpcTimeout),
            "ingest");
      net::Push push =
          CheckResult(client.NextPush(kRpcTimeout), "next push");
      if (push.rows.size() != 1) abort();
    } else {
      delivered_close = 0;
      Check(db.Ingest("ticks", batch, window * kSec), "ingest");
      if (delivered_close == 0) abort();  // delivery is synchronous
    }
  }

  if (path == kLoopback) {
    Check(client.Unsubscribe("tick_counts", kRpcTimeout), "unsubscribe");
    client.Close();
    server.Drain();
  } else {
    Check(db.Unsubscribe(ticket), "unsubscribe");
  }
}
BENCHMARK(BM_T9PushLatency)
    ->Arg(kInProcess)
    ->Arg(kLoopback)
    ->ArgNames({"net"})
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
