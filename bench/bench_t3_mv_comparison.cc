// Experiment T3 (paper Section 5): Continuous Analytics as a
// "next-generation materialized view". A classical MV refreshes in batch
// on a timer: at each refresh it recomputes the aggregate over the base
// table (paying disk + recompute), and between refreshes its answers are
// stale by up to the refresh period. An active table absorbs each row
// incrementally and is fresh at every window boundary. Shapes to verify:
// (a) per-refresh MV cost grows with the accumulated base data while the
// active table's per-row cost is constant, and (b) the MV's staleness is
// the refresh period while the active table's is the window advance —
// with the MV's total work exploding if you shrink its period to match.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kMinutes = 30;
constexpr int64_t kRowsPerMinute = 2000;

/// Timer-refreshed MV: data lands in the base table; every
/// `refresh_minutes` the MV is recomputed from scratch (the common
/// pre-incremental-view-maintenance deployment the paper argues against).
void BM_TimerRefreshedMaterializedView(benchmark::State& state) {
  const int64_t refresh_minutes = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db(StoreFirstOptions(/*cache_pages=*/128));
    Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "ddl");
    UrlClickWorkload workload(200, kRowsPerMinute / 60);
    state.ResumeTiming();

    int64_t refreshes = 0;
    for (int64_t minute = 1; minute <= kMinutes; ++minute) {
      BulkLoad(&db, "url_log",
               workload.NextBatch(static_cast<size_t>(kRowsPerMinute)));
      if (minute % refresh_minutes == 0) {
        // Full recompute over everything accumulated so far.
        auto mv = CheckResult(
            db.Execute("SELECT url, count(*) AS hits FROM url_log "
                       "GROUP BY url"),
            "refresh");
        benchmark::DoNotOptimize(mv.rows.data());
        ++refreshes;
      }
    }
    state.counters["refreshes"] = static_cast<double>(refreshes);
  }
  state.counters["avg_staleness_sec"] =
      static_cast<double>(refresh_minutes) * 60.0 / 2.0;
  state.counters["rows_total"] =
      static_cast<double>(kMinutes * kRowsPerMinute);
}
BENCHMARK(BM_TimerRefreshedMaterializedView)
    ->Arg(10)  // refresh every 10 minutes: cheap but stale
    ->Arg(5)
    ->Arg(1)   // refresh every minute: fresh but ruinously expensive
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// The active-table equivalent: same data, same aggregate, maintained
/// continuously; fresh at every 1-minute boundary.
void BM_ActiveTableContinuousView(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db(StoreFirstOptions(/*cache_pages=*/128));
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    Check(db.Execute(
                "CREATE STREAM hits_agg AS SELECT url, count(*) AS hits "
                "FROM url_stream <VISIBLE '1 minute'> GROUP BY url")
              .status(),
          "derived");
    Check(db.Execute("CREATE TABLE hits_mv (url varchar, hits bigint);"
                     "CREATE CHANNEL ch FROM hits_agg INTO hits_mv REPLACE")
              .status(),
          "channel");
    UrlClickWorkload workload(200, kRowsPerMinute / 60);
    state.ResumeTiming();

    for (int64_t minute = 1; minute <= kMinutes; ++minute) {
      Check(db.Ingest("url_stream",
                      workload.NextBatch(static_cast<size_t>(
                          kRowsPerMinute))),
            "ingest");
      Check(db.AdvanceTime("url_stream",
                           std::max(minute * kMin, workload.now())),
            "heartbeat");
    }
  }
  state.counters["avg_staleness_sec"] = 30.0;  // 1-minute windows
  state.counters["rows_total"] =
      static_cast<double>(kMinutes * kRowsPerMinute);
}
BENCHMARK(BM_ActiveTableContinuousView)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
