// Experiment T1 (paper Section 4): the headline claim. A periodic
// network-security report computed store-first-query-later (load the raw
// log into a table, then scan + aggregate on demand) versus Continuous
// Analytics (a CQ aggregates the data as it arrives into an active table;
// the report is a point query). The paper reports 20+ minutes dropping to
// milliseconds — 5 orders of magnitude. Absolute numbers here depend on
// the simulated disk model; the shape to verify is the orders-of-magnitude
// gap in report latency, growing with data volume.
//
// Counters: sim_io_ms = simulated disk time for one report;
// report_rows = rows in the produced report.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

const char* kReportSql =
    "SELECT dst_port, count(*) AS conns, sum(bytes) AS total "
    "FROM conn_log GROUP BY dst_port ORDER BY conns DESC";

void BM_StoreFirstQueryLater(benchmark::State& state) {
  const int64_t rows = state.range(0);
  engine::Database db(StoreFirstOptions(/*cache_pages=*/64));
  Check(db.Execute(SecurityLogWorkload::TableDdl()).status(), "ddl");
  SecurityLogWorkload workload;
  BulkLoad(&db, "conn_log", workload.NextBatch(static_cast<size_t>(rows)));

  int64_t report_rows = 0;
  db.disk()->ResetStats();
  for (auto _ : state) {
    // The nightly batch report starts cold: the day's data was written out
    // and must be read back through the storage hierarchy.
    db.disk()->DropCache();
    auto report = CheckResult(db.Execute(kReportSql), "report");
    report_rows = static_cast<int64_t>(report.rows.size());
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.counters["sim_io_ms"] = benchmark::Counter(
      static_cast<double>(db.disk()->stats().simulated_io_micros) / 1000.0 /
      static_cast<double>(state.iterations()));
  state.counters["report_rows"] = static_cast<double>(report_rows);
  state.counters["stored_rows"] = static_cast<double>(rows);
}
BENCHMARK(BM_StoreFirstQueryLater)
    ->Arg(20000)
    ->Arg(80000)
    ->Arg(320000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_ContinuousAnalytics(benchmark::State& state) {
  const int64_t rows = state.range(0);
  engine::Database db(StoreFirstOptions(/*cache_pages=*/64));
  Check(db.Execute(SecurityLogWorkload::StreamDdl()).status(), "ddl");
  Check(db.Execute(
              "CREATE STREAM port_agg AS "
              "SELECT dst_port, count(*) AS conns, sum(bytes) AS total "
              "FROM conns <VISIBLE '1 minute'> GROUP BY dst_port")
            .status(),
        "derived");
  Check(db.Execute("CREATE TABLE port_report (dst_port bigint, conns "
                   "bigint, total bigint)")
            .status(),
        "table");
  // REPLACE: the active table always holds the latest window's rollup, so
  // the report is a scan of a few dozen rows no matter how much history
  // flowed through.
  Check(db.Execute(
              "CREATE CHANNEL report_ch FROM port_agg INTO port_report "
              "REPLACE")
            .status(),
        "channel");

  // The day's traffic flows through the continuous query (jellybean
  // processing). This cost is paid incrementally at arrival time, not at
  // report time; it is reported as ingest_us_per_row.
  SecurityLogWorkload workload;
  auto ingest_start = std::chrono::steady_clock::now();
  constexpr size_t kChunk = 4096;
  int64_t remaining = rows;
  while (remaining > 0) {
    size_t n = static_cast<size_t>(std::min<int64_t>(remaining, kChunk));
    Check(db.Ingest("conns", workload.NextBatch(n)), "ingest");
    remaining -= static_cast<int64_t>(n);
  }
  Check(db.AdvanceTime("conns", workload.now() + kMin), "heartbeat");
  double ingest_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - ingest_start)
          .count();

  int64_t report_rows = 0;
  db.disk()->ResetStats();
  for (auto _ : state) {
    db.disk()->DropCache();
    auto report = CheckResult(
        db.Execute("SELECT dst_port, conns, total FROM port_report "
                   "ORDER BY conns DESC"),
        "report");
    report_rows = static_cast<int64_t>(report.rows.size());
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.counters["sim_io_ms"] = benchmark::Counter(
      static_cast<double>(db.disk()->stats().simulated_io_micros) / 1000.0 /
      static_cast<double>(state.iterations()));
  state.counters["report_rows"] = static_cast<double>(report_rows);
  state.counters["stored_rows"] = static_cast<double>(rows);
  state.counters["ingest_us_per_row"] =
      ingest_us / static_cast<double>(rows);
}
BENCHMARK(BM_ContinuousAnalytics)
    ->Arg(20000)
    ->Arg(80000)
    ->Arg(320000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
