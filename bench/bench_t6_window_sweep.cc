// Experiment T6 (Section 3.1 + design decision 1): cost of the window
// machinery as the slide factor (VISIBLE/ADVANCE) grows. The sliced
// (paned) evaluation updates each slice once and merges V/A partials per
// close; the naive generic path re-buffers and re-aggregates the full
// window on every close, so its cost grows with the slide factor. Also
// sweeps row-count windows (always generic).

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kRows = 60000;

void RunTimeWindow(benchmark::State& state, bool allow_shared) {
  const int64_t slide_factor = state.range(0);  // VISIBLE = factor minutes
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    std::string sql = "SELECT url, count(*) FROM url_stream <VISIBLE '" +
                      std::to_string(slide_factor) +
                      " minutes' ADVANCE '1 minute'> GROUP BY url";
    Check(db.CreateContinuousQuery("w", sql, allow_shared).status(), "cq");
    UrlClickWorkload workload(100, 500);
    state.ResumeTiming();

    int64_t remaining = kRows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
    Check(db.AdvanceTime("url_stream",
                         workload.now() + slide_factor * kMin),
          "heartbeat");
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(kRows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["slide_factor"] = static_cast<double>(slide_factor);
}

void BM_SlicedWindows(benchmark::State& state) {
  RunTimeWindow(state, /*allow_shared=*/true);
}
BENCHMARK(BM_SlicedWindows)
    ->Arg(1)
    ->Arg(5)
    ->Arg(15)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_NaiveRescanWindows(benchmark::State& state) {
  RunTimeWindow(state, /*allow_shared=*/false);
}
BENCHMARK(BM_NaiveRescanWindows)
    ->Arg(1)
    ->Arg(5)
    ->Arg(15)
    ->Arg(60)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_RowCountWindows(benchmark::State& state) {
  const int64_t visible_rows = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    std::string sql = "SELECT count(*) FROM url_stream <VISIBLE " +
                      std::to_string(visible_rows) + " ROWS ADVANCE " +
                      std::to_string(visible_rows / 4) + " ROWS>";
    Check(db.CreateContinuousQuery("w", sql).status(), "cq");
    UrlClickWorkload workload(100, 500);
    state.ResumeTiming();

    int64_t remaining = kRows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(kRows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RowCountWindows)
    ->Arg(400)
    ->Arg(4000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
