// Experiment T2 (paper Section 2.2, "jellybean processing"): N concurrent
// aggregate continuous queries over one stream. With shared slice
// aggregation, the per-row work is one pipeline update regardless of N;
// with independent (generic) evaluation every CQ buffers and re-scans its
// own window. The shape to verify: shared ingest cost stays near-flat in
// N while independent cost grows linearly — and the gap widens with N.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

/// Registers `n` dashboard metrics over url_stream. All share the same
/// (stream, filter, group-by) signature so the shared path folds them into
/// one slice pipeline; aggregate sets differ per CQ.
void RegisterMetrics(engine::Database* db, int n, bool allow_shared) {
  static const char* kAggSets[] = {
      "count(*)",
      "count(*), count(distinct client_ip)",
      "count(*), min(atime)",
      "count(*), max(atime)",
  };
  for (int i = 0; i < n; ++i) {
    std::string sql = std::string("SELECT url, ") + kAggSets[i % 4] +
                      " FROM url_stream "
                      "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url";
    Check(db->CreateContinuousQuery("metric_" + std::to_string(i), sql,
                                    allow_shared)
              .status(),
          "create metric CQ");
  }
}

void RunIngest(benchmark::State& state, bool allow_shared) {
  const int num_cqs = static_cast<int>(state.range(0));
  const int64_t rows = 60000;
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    RegisterMetrics(&db, num_cqs, allow_shared);
    UrlClickWorkload workload(/*url_cardinality=*/200, /*rows_per_sec=*/500);
    state.ResumeTiming();

    int64_t remaining = rows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
    Check(db.AdvanceTime("url_stream", workload.now() + 5 * kMin),
          "heartbeat");
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["cqs"] = num_cqs;
}

void BM_SharedEvaluation(benchmark::State& state) {
  RunIngest(state, /*allow_shared=*/true);
}
BENCHMARK(BM_SharedEvaluation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_IndependentEvaluation(benchmark::State& state) {
  RunIngest(state, /*allow_shared=*/false);
}
BENCHMARK(BM_IndependentEvaluation)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
