// Example 5: the stream-table join comparing current metrics against the
// same metrics one period ago, read window-consistently from the active
// table. Measures the cost of each comparison evaluation as history
// accumulates (it should stay flat with an index, grow slowly without).

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

void BM_HistoricalComparison(benchmark::State& state) {
  const bool with_index = state.range(0) != 0;
  const int64_t history_minutes = state.range(1);

  engine::Database db;
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  Check(db.Execute("CREATE STREAM urls_now AS SELECT sum(1) AS scnt, "
                   "cq_close(*) AS stime FROM url_stream "
                   "<VISIBLE '1 minute'> ")
            .status(),
        "derived");
  Check(db.Execute("CREATE TABLE urls_archive (scnt bigint, stime "
                   "timestamp);"
                   "CREATE CHANNEL ch FROM urls_now INTO urls_archive")
            .status(),
        "channel");
  if (with_index) {
    Check(db.Execute("CREATE INDEX archive_stime ON urls_archive (stime)")
              .status(),
          "index");
  }
  // The paper's Example 5, with the window shifted one minute back.
  auto compare = CheckResult(
      db.CreateContinuousQuery(
          "compare",
          "select c.scnt, h.scnt, c.stime from "
          "(select sum(scnt) as scnt, cq_close(*) as stime "
          " from urls_now <slices 1 windows>) c, urls_archive h "
          "where c.stime - interval '1 minute' = h.stime"),
      "cq");
  int64_t comparisons = 0;
  compare->AddCallback([&](int64_t, const std::vector<Row>& rows) {
    comparisons += static_cast<int64_t>(rows.size());
    return Status::OK();
  });

  // Accumulate history.
  UrlClickWorkload workload(50, 200);
  for (int64_t m = 0; m < history_minutes; ++m) {
    Check(db.Ingest("url_stream", workload.NextBatch(200 * 60)), "ingest");
    Check(db.AdvanceTime("url_stream", (m + 1) * kMin), "hb");
  }

  // Timed region: one more window close per iteration; each evaluates the
  // Example 5 join against the ever-growing archive.
  int64_t close = history_minutes * kMin;
  for (auto _ : state) {
    close += kMin;
    Check(db.AdvanceTime("url_stream", close), "close");
  }
  state.counters["history_windows"] = static_cast<double>(history_minutes);
  state.counters["indexed"] = with_index ? 1 : 0;
  benchmark::DoNotOptimize(comparisons);
}
BENCHMARK(BM_HistoricalComparison)
    ->Args({0, 60})
    ->Args({0, 480})
    ->Args({1, 60})
    ->Args({1, 480})
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(20);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
