// Experiment T8: overload protection under sustained over-budget ingest.
// A raw-row CQ buffers every click for an hour, so the memory governor's
// window account grows with ingest volume; the budget is set so the offered
// load is 2x or 5x what fits. Each admission policy is then driven with the
// same batches and we record what the paper's network-effect framing cares
// about: how much load is shed (and that it is *counted*, not silent), how
// far peak memory overshoots the budget (bound: one batch), what the
// steady-state footprint is after windows close, and — for BLOCK — the p99
// ingest latency cost of waiting for headroom instead of dropping.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/memory_governor.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

const char* kPolicies[] = {"BLOCK", "SHED_NEWEST", "SHED_OLDEST"};

/// Bytes the window account will be charged for `rows` (row estimate plus
/// the per-element timestamp the window operator stores alongside).
int64_t WindowBytes(const std::vector<std::vector<Row>>& batches) {
  int64_t total = 0;
  for (const auto& batch : batches) {
    for (const Row& row : batch) {
      total += EstimateRowBytes(row) + static_cast<int64_t>(sizeof(int64_t));
    }
  }
  return total;
}

void BM_OverloadPolicy(benchmark::State& state) {
  const char* policy = kPolicies[state.range(0)];
  const int64_t over_factor = state.range(1);  // offered load = factor x budget
  const int64_t rows = 24000;
  const size_t batch_rows = 512;

  int64_t pushed = 0, admitted = 0, shed = 0;
  int64_t budget = 0, peak = 0, steady = 0;
  std::vector<int64_t> latencies_us;

  for (auto _ : state) {
    state.PauseTiming();
    UrlClickWorkload workload(/*url_cardinality=*/200, /*rows_per_sec=*/40);
    std::vector<std::vector<Row>> batches;
    int64_t remaining = rows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(
          std::min<int64_t>(remaining, static_cast<int64_t>(batch_rows)));
      batches.push_back(workload.NextBatch(n));
      remaining -= static_cast<int64_t>(n);
    }
    budget = WindowBytes(batches) / over_factor;

    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    Check(db.CreateContinuousQuery(
                "hold",
                "SELECT url, atime, client_ip FROM url_stream "
                "<VISIBLE '1 hour'>")
              .status(),
          "create buffer CQ");
    Check(db.Execute("SET MEMORY LIMIT " + std::to_string(budget)).status(),
          "set budget");
    Check(db.Execute(std::string("SET OVERLOAD POLICY url_stream ") + policy)
              .status(),
          "set policy");
    // BLOCK has no downstream consumer freeing memory here, so waits always
    // hit the bounded-timeout admit; keep the bound short so the benchmark
    // measures the latency floor, not an arbitrary sleep.
    db.runtime()->SetBlockTimeoutMicros(2000);
    latencies_us.clear();
    latencies_us.reserve(batches.size());
    state.ResumeTiming();

    for (const auto& batch : batches) {
      auto start = std::chrono::steady_clock::now();
      Check(db.Ingest("url_stream", batch), "ingest");
      auto end = std::chrono::steady_clock::now();
      latencies_us.push_back(
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count());
    }

    state.PauseTiming();
    auto counters = db.runtime()->overload_counters("url_stream");
    pushed = rows;
    admitted = counters.rows_admitted;
    shed = counters.rows_shed;
    peak = db.runtime()->governor()->peak_held();
    // Close every window: steady state is what remains charged after the
    // buffered hour expires and results flush to subscribers.
    Check(db.AdvanceTime("url_stream", workload.now() + 2 * 60 * kMin),
          "close windows");
    steady = db.runtime()->governor()->held();
    state.ResumeTiming();
  }

  std::sort(latencies_us.begin(), latencies_us.end());
  double p99 = latencies_us.empty()
                   ? 0.0
                   : static_cast<double>(
                         latencies_us[latencies_us.size() * 99 / 100]);

  state.counters["rows_pushed"] = static_cast<double>(pushed);
  state.counters["rows_admitted"] = static_cast<double>(admitted);
  state.counters["shed_pct"] =
      100.0 * static_cast<double>(shed) / static_cast<double>(pushed);
  state.counters["peak_x_budget"] =
      static_cast<double>(peak) / static_cast<double>(budget);
  state.counters["steady_kb"] = static_cast<double>(steady) / 1024.0;
  state.counters["p99_ingest_us"] = p99;
}
BENCHMARK(BM_OverloadPolicy)
    ->ArgsProduct({{0, 1, 2}, {2, 5}})
    ->ArgNames({"policy", "over"})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
