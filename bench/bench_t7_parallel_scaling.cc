// Experiment T7: partition-parallel ingest scaling. One grouped shared-CQ
// workload (several dashboard CQs folded into a single slice pipeline) is
// driven at SET PARALLELISM 1/2/4/8; the per-row pipeline work is
// hash-partitioned across that many worker shards while the ingest thread
// coordinates and merges partials at window closes. The shape to verify on
// a multi-core host: rows_per_sec grows with the worker count until cores
// run out (the acceptance target is >=2.5x at parallelism 4). On a
// single-core host the sweep still runs — it then measures the coordination
// overhead floor, not the scaling headroom.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

/// Several CQs sharing one (stream, window, group-by) signature, so ingest
/// cost is dominated by the one shared pipeline the shards split.
void RegisterDashboard(engine::Database* db, int n) {
  static const char* kAggSets[] = {
      "count(*)",
      "count(*), count(distinct client_ip)",
      "count(*), min(atime)",
      "count(*), max(atime)",
  };
  for (int i = 0; i < n; ++i) {
    std::string sql = std::string("SELECT url, ") + kAggSets[i % 4] +
                      " FROM url_stream "
                      "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url";
    Check(db->CreateContinuousQuery("metric_" + std::to_string(i), sql)
              .status(),
          "create metric CQ");
  }
}

void BM_ParallelIngest(benchmark::State& state) {
  const int parallelism = static_cast<int>(state.range(0));
  const int64_t rows = 60000;
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    RegisterDashboard(&db, 8);
    Check(db.Execute("SET PARALLELISM " + std::to_string(parallelism))
              .status(),
          "set parallelism");
    UrlClickWorkload workload(/*url_cardinality=*/200, /*rows_per_sec=*/500);
    state.ResumeTiming();

    int64_t remaining = rows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
    Check(db.AdvanceTime("url_stream", workload.now() + 5 * kMin),
          "heartbeat");
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["parallelism"] = parallelism;
}
BENCHMARK(BM_ParallelIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
