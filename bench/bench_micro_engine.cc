// Microbenchmarks for the engine's building blocks: SQL parsing,
// expression evaluation, aggregation states, B+Tree operations, heap scan,
// and WAL append. These bound what the macro experiments can achieve and
// catch regressions in the hot paths.

#include <benchmark/benchmark.h>

#include "exec/binder.h"
#include "sql/parser.h"
#include "storage/btree_index.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

void BM_ParseSelect(benchmark::State& state) {
  const std::string sql =
      "SELECT url, count(*) url_count "
      "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
      "WHERE client_ip LIKE '10.%' GROUP by url "
      "ORDER by url_count desc LIMIT 10";
  for (auto _ : state) {
    auto stmt = sql::ParseSingleStatement(sql);
    benchmark::DoNotOptimize(stmt.ok());
  }
}
BENCHMARK(BM_ParseSelect);

void BM_ExprEval(benchmark::State& state) {
  Schema schema({Column("a", DataType::kInt64),
                 Column("b", DataType::kInt64),
                 Column("s", DataType::kString)});
  auto ast = sql::ParseExpression("a * 2 + b % 7 > 10 AND s LIKE 'k%'");
  exec::ExprBinder binder(schema);
  auto bound = binder.BindScalar(**ast);
  Row row{Value::Int64(42), Value::Int64(13), Value::String("k9")};
  exec::EvalContext ctx;
  for (auto _ : state) {
    auto v = (*bound)->Eval(row, ctx);
    benchmark::DoNotOptimize(v.ok());
  }
}
BENCHMARK(BM_ExprEval);

void BM_AggregateUpdate(benchmark::State& state) {
  auto sum = exec::MakeAggState("sum", false, false).TakeValue();
  Value v = Value::Int64(17);
  for (auto _ : state) {
    sum->Update(v);
  }
  benchmark::DoNotOptimize(sum->Final());
}
BENCHMARK(BM_AggregateUpdate);

void BM_BTreeInsert(benchmark::State& state) {
  storage::BTreeIndex index("k");
  uint64_t i = 0;
  for (auto _ : state) {
    index.Insert(Value::Int64(static_cast<int64_t>((i * 2654435761u) %
                                                   1000000)),
                 i);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BTreeIndex index("k");
  for (int64_t i = 0; i < 100000; ++i) {
    index.Insert(Value::Int64(i), static_cast<storage::RowId>(i));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    probe = (probe + 37) % 100000;
    int64_t hits = 0;
    index.ScanEqual(Value::Int64(probe), [&](storage::RowId) {
      ++hits;
      return true;
    });
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_HeapScan(benchmark::State& state) {
  const int64_t rows = state.range(0);
  engine::Database db;
  Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "ddl");
  UrlClickWorkload workload(100, 1000);
  BulkLoad(&db, "url_log", workload.NextBatch(static_cast<size_t>(rows)));
  auto* table = db.catalog()->GetTable("url_log");
  for (auto _ : state) {
    int64_t n = 0;
    Check(table->heap->Scan(*db.txns(), db.txns()->CurrentSnapshot(),
                            storage::kInvalidTxn,
                            [&](storage::RowId, const Row&) {
                              ++n;
                              return true;
                            }),
          "scan");
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(rows * state.iterations());
}
BENCHMARK(BM_HeapScan)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_WalAppend(benchmark::State& state) {
  auto disk = std::make_shared<storage::SimulatedDisk>();
  storage::WriteAheadLog wal(disk);
  storage::WalRecord record;
  record.type = storage::WalRecordType::kInsert;
  record.txn_id = 1;
  record.object_name = "t";
  record.row = {Value::Int64(42), Value::String("payload-payload"),
                Value::Timestamp(123456789)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(wal.Append(record).ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppend);

// The ingest hot path with the observability layer off (Arg 0) vs on
// (Arg 1): one shared-aggregate CQ over a raw stream, batches of 1k rows.
// The per-row cost must be indistinguishable — metrics are pushed as
// batch-level counter adds, never per-row work.
void BM_IngestHotPath(benchmark::State& state) {
  const bool metrics_on = state.range(0) != 0;
  engine::Database db;
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  auto cq = db.CreateContinuousQuery(
      "top_urls",
      "SELECT url, count(*) FROM url_stream <VISIBLE '1 minute'> "
      "GROUP BY url");
  Check(cq.status(), "cq");
  db.runtime()->metrics()->set_enabled(metrics_on);
  UrlClickWorkload workload(100, 1000);
  int64_t rows = 0;
  for (auto _ : state) {
    Check(db.Ingest("url_stream", workload.NextBatch(1000)), "ingest");
    rows += 1000;
  }
  state.SetItemsProcessed(rows);
}
BENCHMARK(BM_IngestHotPath)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_SnapshotAggregateQuery(benchmark::State& state) {
  engine::Database db;
  Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "ddl");
  UrlClickWorkload workload(100, 1000);
  BulkLoad(&db, "url_log", workload.NextBatch(50000));
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT url, count(*) FROM url_log GROUP BY url ORDER BY url");
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(50000 * state.iterations());
}
BENCHMARK(BM_SnapshotAggregateQuery)->Unit(benchmark::kMillisecond);

void BM_HashJoinQuery(benchmark::State& state) {
  engine::Database db;
  Check(db.Execute("CREATE TABLE a (k bigint, va bigint);"
                   "CREATE TABLE b (k bigint, vb bigint)")
            .status(),
        "ddl");
  std::mt19937 rng(1);
  std::vector<Row> ra, rb;
  for (int i = 0; i < 20000; ++i) {
    ra.push_back({Value::Int64(rng() % 5000), Value::Int64(i)});
  }
  for (int i = 0; i < 5000; ++i) {
    rb.push_back({Value::Int64(i), Value::Int64(i * 2)});
  }
  BulkLoad(&db, "a", ra);
  BulkLoad(&db, "b", rb);
  for (auto _ : state) {
    auto r = db.Execute(
        "SELECT count(*) FROM a, b WHERE a.k = b.k AND vb % 2 = 0");
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_HashJoinQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
