// Experiment T4 (paper Section 1.1, Network Effect #1): data volumes grow
// ~173%-10x per year while hardware improves slower; under
// store-first-query-later, analytics latency therefore grows with the
// stored volume. The shape to verify: batch report time grows linearly
// (super-linearly once the working set exceeds the buffer pool) in the
// growth factor, while the continuous answer latency is flat because the
// work was already done at arrival time.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kBaseRows = 10000;

void BM_BatchReportVsGrowth(benchmark::State& state) {
  const int64_t growth = state.range(0);  // 1x .. 32x
  const int64_t rows = kBaseRows * growth;
  // Fixed buffer pool: growth makes the data increasingly exceed memory.
  engine::Database db(StoreFirstOptions(/*cache_pages=*/32));
  Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "ddl");
  UrlClickWorkload workload(500, 1000);
  BulkLoad(&db, "url_log", workload.NextBatch(static_cast<size_t>(rows)));

  db.disk()->ResetStats();
  for (auto _ : state) {
    db.disk()->DropCache();
    auto report = CheckResult(
        db.Execute("SELECT url, count(*) AS hits FROM url_log "
                   "GROUP BY url ORDER BY hits DESC LIMIT 10"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.counters["sim_io_ms"] = benchmark::Counter(
      static_cast<double>(db.disk()->stats().simulated_io_micros) / 1000.0 /
      static_cast<double>(state.iterations()));
  state.counters["growth_x"] = static_cast<double>(growth);
}
BENCHMARK(BM_BatchReportVsGrowth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_ContinuousReportVsGrowth(benchmark::State& state) {
  const int64_t growth = state.range(0);
  const int64_t rows = kBaseRows * growth;
  engine::Database db(StoreFirstOptions(/*cache_pages=*/32));
  Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
  Check(db.Execute("CREATE STREAM top_urls AS SELECT url, count(*) AS hits "
                   "FROM url_stream <VISIBLE '5 minutes' ADVANCE "
                   "'1 minute'> GROUP BY url")
            .status(),
        "derived");
  Check(db.Execute("CREATE TABLE top_now (url varchar, hits bigint);"
                   "CREATE CHANNEL ch FROM top_urls INTO top_now REPLACE")
            .status(),
        "channel");
  UrlClickWorkload workload(500, 1000);
  int64_t remaining = rows;
  while (remaining > 0) {
    size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
    Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
    remaining -= static_cast<int64_t>(n);
  }
  Check(db.AdvanceTime("url_stream", workload.now() + kMin), "heartbeat");

  db.disk()->ResetStats();
  for (auto _ : state) {
    db.disk()->DropCache();
    auto report = CheckResult(
        db.Execute("SELECT url, hits FROM top_now ORDER BY hits DESC "
                   "LIMIT 10"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
  state.counters["sim_io_ms"] = benchmark::Counter(
      static_cast<double>(db.disk()->stats().simulated_io_micros) / 1000.0 /
      static_cast<double>(state.iterations()));
  state.counters["growth_x"] = static_cast<double>(growth);
}
BENCHMARK(BM_ContinuousReportVsGrowth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
