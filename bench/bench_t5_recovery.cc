// Experiment T5 (paper Section 4, recovery): the paper argues that
// rebuilding runtime state from active tables beats per-operator
// checkpointing — checkpointing pays a steady-state I/O tax proportional
// to buffered window state, is "hard to implement correctly", and the
// active tables are already durable for free. Shapes to verify:
// (a) steady-state overhead: checkpointing writes far more WAL bytes than
// the active-table strategy (which writes none beyond the channel's own
// appends); (b) restart cost: WAL replay + watermark resume vs replay +
// checkpoint restore are both fast, with checkpoint restore paying to
// deserialize buffered rows.

#include <benchmark/benchmark.h>

#include "stream/recovery.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

// ~2ms of stream time per row -> ~4 minutes of stream time: several window
// closes, so channels persist real history and restart has work to do.
constexpr int64_t kRows = 120000;

const char* kDdl =
    "CREATE STREAM conns (src_ip varchar, dst_port bigint, bytes bigint, "
    "ts timestamp CQTIME USER);"
    "CREATE STREAM port_agg AS SELECT dst_port, count(*) AS conns, "
    "cq_close(*) AS w FROM conns <VISIBLE '5 minutes' ADVANCE '1 minute'> "
    "GROUP BY dst_port;"
    "CREATE TABLE port_hist (dst_port bigint, conns bigint, w timestamp);"
    "CREATE CHANNEL hist_ch FROM port_agg INTO port_hist";

void IngestAll(engine::Database* db, SecurityLogWorkload* workload,
               stream::CheckpointManager* ckpt, int64_t ckpt_every_rows) {
  int64_t remaining = kRows;
  int64_t since_ckpt = 0;
  while (remaining > 0) {
    size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 1024));
    Check(db->Ingest("conns", workload->NextBatch(n)), "ingest");
    remaining -= static_cast<int64_t>(n);
    since_ckpt += static_cast<int64_t>(n);
    if (ckpt != nullptr && since_ckpt >= ckpt_every_rows) {
      Check(ckpt->WriteCheckpoint(), "checkpoint");
      since_ckpt = 0;
    }
  }
}

/// Steady-state: WAL bytes written per 1k rows, without checkpointing
/// (active-table strategy: operator state is simply not persisted).
void BM_SteadyState_ActiveTableStrategy(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(kDdl).status(), "ddl");
    SecurityLogWorkload workload;
    state.ResumeTiming();
    IngestAll(&db, &workload, nullptr, 0);
    state.counters["wal_kb"] =
        static_cast<double>(db.wal()->byte_size()) / 1024.0;
  }
  state.counters["rows"] = static_cast<double>(kRows);
}
BENCHMARK(BM_SteadyState_ActiveTableStrategy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Steady-state with periodic operator checkpoints (generic CQ included so
/// there is real window-buffer state to persist).
void BM_SteadyState_CheckpointStrategy(benchmark::State& state) {
  const int64_t every = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    engine::Database db;
    Check(db.Execute(kDdl).status(), "ddl");
    // A generic (non-shared) CQ carries buffered rows worth checkpointing.
    Check(db.CreateContinuousQuery(
                "raw_window",
                "SELECT src_ip, dst_port FROM conns "
                "<VISIBLE '5 minutes' ADVANCE '1 minute'> "
                "WHERE bytes > 100000",
                /*allow_shared=*/false)
              .status(),
          "generic cq");
    SecurityLogWorkload workload;
    stream::CheckpointManager ckpt(db.runtime(), db.wal().get());
    state.ResumeTiming();
    IngestAll(&db, &workload, &ckpt, every);
    state.counters["wal_kb"] =
        static_cast<double>(db.wal()->byte_size()) / 1024.0;
    state.counters["ckpt_kb"] =
        static_cast<double>(ckpt.bytes_written()) / 1024.0;
  }
  state.counters["rows"] = static_cast<double>(kRows);
}
BENCHMARK(BM_SteadyState_CheckpointStrategy)
    ->Arg(10000)  // checkpoint every 10k rows
    ->Arg(2000)   // every 2k rows (tighter recovery point, higher tax)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Restart cost, active-table strategy: WAL replay rebuilds the tables,
/// channels resume from their persisted watermarks.
void BM_Restart_ActiveTableStrategy(benchmark::State& state) {
  engine::Database db;
  Check(db.Execute(kDdl).status(), "ddl");
  SecurityLogWorkload workload;
  IngestAll(&db, &workload, nullptr, 0);

  for (auto _ : state) {
    engine::Database fresh(db.disk(), db.wal());
    Check(fresh.Execute(kDdl).status(), "re-ddl");
    auto replay = CheckResult(fresh.RecoverFromWal(), "replay");
    Check(stream::ResumeFromActiveTables(fresh.runtime(), replay),
          "resume");
    benchmark::DoNotOptimize(replay.rows_inserted);
    state.counters["rows_replayed"] =
        static_cast<double>(replay.rows_inserted);
  }
}
BENCHMARK(BM_Restart_ActiveTableStrategy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Restart cost, checkpoint strategy: replay plus operator-state restore.
void BM_Restart_CheckpointStrategy(benchmark::State& state) {
  engine::Database db;
  Check(db.Execute(kDdl).status(), "ddl");
  Check(db.CreateContinuousQuery("raw_window",
                                 "SELECT src_ip, dst_port FROM conns "
                                 "<VISIBLE '5 minutes' ADVANCE '1 minute'> "
                                 "WHERE bytes > 100000",
                                 false)
            .status(),
        "generic cq");
  SecurityLogWorkload workload;
  stream::CheckpointManager ckpt(db.runtime(), db.wal().get());
  IngestAll(&db, &workload, &ckpt, 2000);

  for (auto _ : state) {
    engine::Database fresh(db.disk(), db.wal());
    Check(fresh.Execute(kDdl).status(), "re-ddl");
    Check(fresh.CreateContinuousQuery(
                   "raw_window",
                   "SELECT src_ip, dst_port FROM conns "
                   "<VISIBLE '5 minutes' ADVANCE '1 minute'> "
                   "WHERE bytes > 100000",
                   false)
              .status(),
          "re-cq");
    auto replay = CheckResult(fresh.RecoverFromWal(), "replay");
    stream::CheckpointManager restore(fresh.runtime(), fresh.wal().get());
    // A complete strategy on its own: restores operator blobs AND resumes
    // channels (hybrid fallback for shared CQs included).
    Check(restore.RestoreFromCheckpoints(replay), "restore");
    benchmark::DoNotOptimize(replay.rows_inserted);
  }
}
BENCHMARK(BM_Restart_CheckpointStrategy)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

/// Restart cost after an unclean shutdown: the unsynced WAL tail is lost
/// (and, depending on the mode, torn or corrupted mid-frame), so replay
/// must detect the damage and stop cleanly at the last intact record.
/// Arg: CrashMode (0 = clean truncation, 1 = torn tail, 2 = corrupt tail).
void BM_Restart_AfterCrash(benchmark::State& state) {
  const auto mode = static_cast<storage::CrashMode>(state.range(0));
  engine::Database db;
  Check(db.Execute(kDdl).status(), "ddl");
  SecurityLogWorkload workload;
  IngestAll(&db, &workload, nullptr, 0);
  // Leave an unsynced tail for the crash to destroy: commits sync the WAL,
  // so append records for an in-flight transaction directly.
  storage::WalRecord tail;
  tail.type = storage::WalRecordType::kBegin;
  tail.txn_id = 999999;
  Check(db.wal()->Append(tail), "tail begin");
  tail.type = storage::WalRecordType::kInsert;
  tail.object_name = "port_hist";
  tail.row = {Value::Int64(80), Value::Int64(1), Value::Timestamp(0)};
  Check(db.wal()->Append(tail), "tail insert");
  db.wal()->SimulateCrash(mode);

  for (auto _ : state) {
    engine::Database fresh(db.disk(), db.wal());
    Check(fresh.Execute(kDdl).status(), "re-ddl");
    auto replay = CheckResult(fresh.RecoverFromWal(), "replay");
    Check(stream::ResumeFromActiveTables(fresh.runtime(), replay),
          "resume");
    benchmark::DoNotOptimize(replay.rows_inserted);
    state.counters["rows_replayed"] =
        static_cast<double>(replay.rows_inserted);
  }
  state.counters["torn_tails"] =
      static_cast<double>(db.wal()->torn_tails_seen());
  state.counters["corrupt_tails"] =
      static_cast<double>(db.wal()->corrupt_tails_seen());
}
BENCHMARK(BM_Restart_AfterCrash)
    ->Arg(0)  // clean: unsynced tail simply gone
    ->Arg(1)  // torn: final frame cut mid-payload
    ->Arg(2)  // corrupt: final frame fails its checksum
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
