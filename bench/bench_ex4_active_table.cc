// Examples 3+4: the derived stream -> channel -> active table pipeline.
// "The reporting query will run extremely fast, as the computation has
// already been done" — verified by comparing a report served from the
// active table against recomputing the same answer from an archived raw
// log, and by showing the further gain from an index on the active table.

#include <benchmark/benchmark.h>

#include "workloads.h"

namespace streamrel::bench {
namespace {

constexpr int64_t kRows = 120000;

/// One fixture both benchmarks share: raw log archived AND aggregated
/// per-minute into an active table.
struct Fixture {
  engine::Database db;
  Fixture() : db(StoreFirstOptions(/*cache_pages=*/64)) {
    Check(db.Execute(UrlClickWorkload::StreamDdl()).status(), "ddl");
    Check(db.Execute(UrlClickWorkload::TableDdl()).status(), "raw table");
    Check(db.Execute("CREATE CHANNEL raw_ch FROM url_stream INTO url_log")
              .status(),
          "raw channel");
    Check(db.Execute(
                "CREATE STREAM urls_now AS SELECT url, count(*) AS scnt, "
                "cq_close(*) AS stime FROM url_stream "
                "<VISIBLE '5 minutes' ADVANCE '1 minute'> GROUP BY url")
              .status(),
          "derived");
    Check(db.Execute("CREATE TABLE urls_archive (url varchar, scnt bigint, "
                     "stime timestamp);"
                     "CREATE CHANNEL urls_channel FROM urls_now INTO "
                     "urls_archive APPEND")
              .status(),
          "channel");
    UrlClickWorkload workload(300, 1000);
    int64_t remaining = kRows;
    while (remaining > 0) {
      size_t n = static_cast<size_t>(std::min<int64_t>(remaining, 4096));
      Check(db.Ingest("url_stream", workload.NextBatch(n)), "ingest");
      remaining -= static_cast<int64_t>(n);
    }
    Check(db.AdvanceTime("url_stream", workload.now() + 5 * kMin), "hb");
  }
};

Fixture* SharedFixture() {
  static Fixture* fixture = new Fixture();
  return fixture;
}

/// Report: 5-minute counts for one URL over time, from the active table.
void BM_ReportFromActiveTable(benchmark::State& state) {
  auto* f = SharedFixture();
  for (auto _ : state) {
    f->db.disk()->DropCache();
    auto report = CheckResult(
        f->db.Execute("SELECT stime, scnt FROM urls_archive "
                      "WHERE url = '/page/0' ORDER BY stime"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
}
BENCHMARK(BM_ReportFromActiveTable)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(10);

/// The same numbers recomputed from the raw archived log (what a user
/// without Continuous Analytics would run).
void BM_ReportRecomputedFromRawLog(benchmark::State& state) {
  auto* f = SharedFixture();
  for (auto _ : state) {
    f->db.disk()->DropCache();
    auto report = CheckResult(
        f->db.Execute(
            "SELECT date_trunc('minute', atime) AS m, count(*) "
            "FROM url_log WHERE url = '/page/0' GROUP BY "
            "date_trunc('minute', atime) ORDER BY m"),
        "recompute");
    benchmark::DoNotOptimize(report.rows.data());
  }
}
BENCHMARK(BM_ReportRecomputedFromRawLog)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(10);

/// Active tables are plain SQL tables: an index sharpens the report
/// further (Section 3.3).
void BM_ReportFromIndexedActiveTable(benchmark::State& state) {
  auto* f = SharedFixture();
  static bool indexed = false;
  if (!indexed) {
    Check(f->db.Execute("CREATE INDEX archive_url ON urls_archive (url)")
              .status(),
          "index");
    indexed = true;
  }
  for (auto _ : state) {
    f->db.disk()->DropCache();
    auto report = CheckResult(
        f->db.Execute("SELECT stime, scnt FROM urls_archive "
                      "WHERE url = '/page/0' ORDER BY stime"),
        "report");
    benchmark::DoNotOptimize(report.rows.data());
  }
}
BENCHMARK(BM_ReportFromIndexedActiveTable)
    ->Unit(benchmark::kMicrosecond)
    ->Iterations(10);

}  // namespace
}  // namespace streamrel::bench

BENCHMARK_MAIN();
