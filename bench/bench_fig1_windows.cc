// Figure 1: "Windows Produce a Sequence of Tables". This harness first
// prints the actual relation sequence a window clause produces from a
// sample stream (the figure, regenerated as text), then benchmarks the
// window machinery that implements it.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "stream/window_operator.h"
#include "workloads.h"

namespace streamrel::bench {
namespace {

void PrintFigure1() {
  printf("=== Figure 1: a window clause turns a STREAM into a sequence of "
         "TABLES ===\n");
  printf("stream rows (url, atime), window <VISIBLE '2 minutes' ADVANCE "
         "'1 minute'>:\n\n");
  stream::WindowSpec spec;
  spec.kind = stream::WindowSpec::Kind::kTime;
  spec.visible = 2 * kMin;
  spec.advance = kMin;
  stream::WindowOperator op(spec);

  struct Sample {
    const char* url;
    int64_t sec;
  };
  Sample samples[] = {{"/home", 15},  {"/cart", 40},  {"/home", 75},
                      {"/search", 110}, {"/home", 130}, {"/cart", 170}};
  std::vector<stream::WindowBatch> closed;
  for (const Sample& s : samples) {
    printf("  arrive  %-10s @ %3llds\n", s.url,
           static_cast<long long>(s.sec));
    Check(op.AddRow(s.sec * kSec,
                    Row{Value::String(s.url),
                        Value::Timestamp(s.sec * kSec)},
                    &closed),
          "add");
    for (const auto& batch : closed) {
      printf("  ---- TABLE for window closing @ %llds "
             "(covers [%lld s, %lld s)) ----\n",
             static_cast<long long>(batch.close_micros / kSec),
             static_cast<long long>((batch.close_micros - spec.visible) /
                                    kSec),
             static_cast<long long>(batch.close_micros / kSec));
      for (const Row& row : batch.rows) {
        printf("       %s\n", RowToString(row).c_str());
      }
      if (batch.rows.empty()) printf("       (empty relation)\n");
    }
    closed.clear();
  }
  printf("\n");
}

void BM_WindowOperatorIngest(benchmark::State& state) {
  const int64_t slide_factor = state.range(0);
  stream::WindowSpec spec;
  spec.kind = stream::WindowSpec::Kind::kTime;
  spec.visible = slide_factor * kMin;
  spec.advance = kMin;

  UrlClickWorkload workload(100, 1000);
  std::vector<Row> rows = workload.NextBatch(100000);

  for (auto _ : state) {
    stream::WindowOperator op(spec);
    std::vector<stream::WindowBatch> closed;
    int64_t ts = 0;
    for (const Row& row : rows) {
      ts = row[1].AsTimestampMicros();
      benchmark::DoNotOptimize(op.AddRow(ts, row, &closed));
      closed.clear();
    }
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WindowOperatorIngest)
    ->Arg(1)
    ->Arg(5)
    ->Arg(30)
    ->Unit(benchmark::kMillisecond);

void BM_RowWindowIngest(benchmark::State& state) {
  stream::WindowSpec spec;
  spec.kind = stream::WindowSpec::Kind::kRows;
  spec.visible = state.range(0);
  spec.advance = state.range(0) / 4;

  UrlClickWorkload workload(100, 1000);
  std::vector<Row> rows = workload.NextBatch(100000);
  for (auto _ : state) {
    stream::WindowOperator op(spec);
    std::vector<stream::WindowBatch> closed;
    for (const Row& row : rows) {
      benchmark::DoNotOptimize(
          op.AddRow(row[1].AsTimestampMicros(), row, &closed));
      closed.clear();
    }
  }
  state.counters["rows_per_sec"] = benchmark::Counter(
      static_cast<double>(rows.size()) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_RowWindowIngest)->Arg(1000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace streamrel::bench

int main(int argc, char** argv) {
  streamrel::bench::PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
