file(REMOVE_RECURSE
  "CMakeFiles/shared_aggregation_test.dir/shared_aggregation_test.cc.o"
  "CMakeFiles/shared_aggregation_test.dir/shared_aggregation_test.cc.o.d"
  "shared_aggregation_test"
  "shared_aggregation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_aggregation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
