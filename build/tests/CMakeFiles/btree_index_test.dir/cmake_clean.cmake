file(REMOVE_RECURSE
  "CMakeFiles/btree_index_test.dir/btree_index_test.cc.o"
  "CMakeFiles/btree_index_test.dir/btree_index_test.cc.o.d"
  "btree_index_test"
  "btree_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btree_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
