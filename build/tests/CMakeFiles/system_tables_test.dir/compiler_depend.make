# Empty compiler generated dependencies file for system_tables_test.
# This may be replaced when dependencies are built.
