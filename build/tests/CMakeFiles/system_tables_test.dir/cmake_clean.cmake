file(REMOVE_RECURSE
  "CMakeFiles/system_tables_test.dir/system_tables_test.cc.o"
  "CMakeFiles/system_tables_test.dir/system_tables_test.cc.o.d"
  "system_tables_test"
  "system_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/system_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
