# Empty compiler generated dependencies file for continuous_query_test.
# This may be replaced when dependencies are built.
