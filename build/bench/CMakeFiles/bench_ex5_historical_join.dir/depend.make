# Empty dependencies file for bench_ex5_historical_join.
# This may be replaced when dependencies are built.
