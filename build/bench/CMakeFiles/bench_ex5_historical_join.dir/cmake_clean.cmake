file(REMOVE_RECURSE
  "CMakeFiles/bench_ex5_historical_join.dir/bench_ex5_historical_join.cc.o"
  "CMakeFiles/bench_ex5_historical_join.dir/bench_ex5_historical_join.cc.o.d"
  "bench_ex5_historical_join"
  "bench_ex5_historical_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex5_historical_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
