file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_shared_cqs.dir/bench_t2_shared_cqs.cc.o"
  "CMakeFiles/bench_t2_shared_cqs.dir/bench_t2_shared_cqs.cc.o.d"
  "bench_t2_shared_cqs"
  "bench_t2_shared_cqs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_shared_cqs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
