# Empty dependencies file for bench_t2_shared_cqs.
# This may be replaced when dependencies are built.
