file(REMOVE_RECURSE
  "CMakeFiles/bench_t6_window_sweep.dir/bench_t6_window_sweep.cc.o"
  "CMakeFiles/bench_t6_window_sweep.dir/bench_t6_window_sweep.cc.o.d"
  "bench_t6_window_sweep"
  "bench_t6_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t6_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
