# Empty dependencies file for bench_t6_window_sweep.
# This may be replaced when dependencies are built.
