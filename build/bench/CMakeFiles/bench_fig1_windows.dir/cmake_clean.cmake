file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_windows.dir/bench_fig1_windows.cc.o"
  "CMakeFiles/bench_fig1_windows.dir/bench_fig1_windows.cc.o.d"
  "bench_fig1_windows"
  "bench_fig1_windows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_windows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
