file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_mv_comparison.dir/bench_t3_mv_comparison.cc.o"
  "CMakeFiles/bench_t3_mv_comparison.dir/bench_t3_mv_comparison.cc.o.d"
  "bench_t3_mv_comparison"
  "bench_t3_mv_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_mv_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
