# Empty compiler generated dependencies file for bench_t3_mv_comparison.
# This may be replaced when dependencies are built.
