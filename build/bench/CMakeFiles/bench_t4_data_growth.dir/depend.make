# Empty dependencies file for bench_t4_data_growth.
# This may be replaced when dependencies are built.
