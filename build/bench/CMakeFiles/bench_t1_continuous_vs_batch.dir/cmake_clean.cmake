file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_continuous_vs_batch.dir/bench_t1_continuous_vs_batch.cc.o"
  "CMakeFiles/bench_t1_continuous_vs_batch.dir/bench_t1_continuous_vs_batch.cc.o.d"
  "bench_t1_continuous_vs_batch"
  "bench_t1_continuous_vs_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_continuous_vs_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
