# Empty dependencies file for bench_t1_continuous_vs_batch.
# This may be replaced when dependencies are built.
