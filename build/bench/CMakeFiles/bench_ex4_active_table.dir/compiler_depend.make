# Empty compiler generated dependencies file for bench_ex4_active_table.
# This may be replaced when dependencies are built.
