file(REMOVE_RECURSE
  "CMakeFiles/bench_ex4_active_table.dir/bench_ex4_active_table.cc.o"
  "CMakeFiles/bench_ex4_active_table.dir/bench_ex4_active_table.cc.o.d"
  "bench_ex4_active_table"
  "bench_ex4_active_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex4_active_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
