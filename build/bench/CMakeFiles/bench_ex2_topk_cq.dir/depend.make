# Empty dependencies file for bench_ex2_topk_cq.
# This may be replaced when dependencies are built.
