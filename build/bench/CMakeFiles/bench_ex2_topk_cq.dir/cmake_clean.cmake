file(REMOVE_RECURSE
  "CMakeFiles/bench_ex2_topk_cq.dir/bench_ex2_topk_cq.cc.o"
  "CMakeFiles/bench_ex2_topk_cq.dir/bench_ex2_topk_cq.cc.o.d"
  "bench_ex2_topk_cq"
  "bench_ex2_topk_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ex2_topk_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
