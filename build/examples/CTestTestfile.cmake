# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(shell_smoke "bash" "/root/repo/tests/shell_smoke.sh" "/root/repo/build/examples/example_sql_shell")
set_tests_properties(shell_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
