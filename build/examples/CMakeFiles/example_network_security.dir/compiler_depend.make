# Empty compiler generated dependencies file for example_network_security.
# This may be replaced when dependencies are built.
