file(REMOVE_RECURSE
  "CMakeFiles/example_network_security.dir/network_security.cpp.o"
  "CMakeFiles/example_network_security.dir/network_security.cpp.o.d"
  "example_network_security"
  "example_network_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_network_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
