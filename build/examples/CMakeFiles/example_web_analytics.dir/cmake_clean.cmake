file(REMOVE_RECURSE
  "CMakeFiles/example_web_analytics.dir/web_analytics.cpp.o"
  "CMakeFiles/example_web_analytics.dir/web_analytics.cpp.o.d"
  "example_web_analytics"
  "example_web_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_web_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
