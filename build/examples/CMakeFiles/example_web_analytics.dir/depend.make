# Empty dependencies file for example_web_analytics.
# This may be replaced when dependencies are built.
