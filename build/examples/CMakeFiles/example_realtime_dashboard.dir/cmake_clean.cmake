file(REMOVE_RECURSE
  "CMakeFiles/example_realtime_dashboard.dir/realtime_dashboard.cpp.o"
  "CMakeFiles/example_realtime_dashboard.dir/realtime_dashboard.cpp.o.d"
  "example_realtime_dashboard"
  "example_realtime_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_realtime_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
