# Empty dependencies file for streamrel.
# This may be replaced when dependencies are built.
