file(REMOVE_RECURSE
  "libstreamrel.a"
)
