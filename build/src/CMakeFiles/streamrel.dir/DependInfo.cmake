
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/streamrel.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/CMakeFiles/streamrel.dir/common/csv.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/csv.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/streamrel.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/streamrel.dir/common/status.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/streamrel.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/time.cc" "src/CMakeFiles/streamrel.dir/common/time.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/time.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/streamrel.dir/common/value.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/common/value.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/streamrel.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/engine/database.cc.o.d"
  "/root/repo/src/exec/aggregates.cc" "src/CMakeFiles/streamrel.dir/exec/aggregates.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/exec/aggregates.cc.o.d"
  "/root/repo/src/exec/binder.cc" "src/CMakeFiles/streamrel.dir/exec/binder.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/exec/binder.cc.o.d"
  "/root/repo/src/exec/expr.cc" "src/CMakeFiles/streamrel.dir/exec/expr.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/exec/expr.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/streamrel.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/planner.cc" "src/CMakeFiles/streamrel.dir/exec/planner.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/exec/planner.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/streamrel.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/streamrel.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/streamrel.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/sql/parser.cc.o.d"
  "/root/repo/src/storage/btree_index.cc" "src/CMakeFiles/streamrel.dir/storage/btree_index.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/storage/btree_index.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/streamrel.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/CMakeFiles/streamrel.dir/storage/heap_table.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/storage/transaction.cc" "src/CMakeFiles/streamrel.dir/storage/transaction.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/storage/transaction.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/streamrel.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/storage/wal.cc.o.d"
  "/root/repo/src/stream/channel.cc" "src/CMakeFiles/streamrel.dir/stream/channel.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/channel.cc.o.d"
  "/root/repo/src/stream/continuous_query.cc" "src/CMakeFiles/streamrel.dir/stream/continuous_query.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/continuous_query.cc.o.d"
  "/root/repo/src/stream/recovery.cc" "src/CMakeFiles/streamrel.dir/stream/recovery.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/recovery.cc.o.d"
  "/root/repo/src/stream/reorder_buffer.cc" "src/CMakeFiles/streamrel.dir/stream/reorder_buffer.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/reorder_buffer.cc.o.d"
  "/root/repo/src/stream/runtime.cc" "src/CMakeFiles/streamrel.dir/stream/runtime.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/runtime.cc.o.d"
  "/root/repo/src/stream/shared_aggregation.cc" "src/CMakeFiles/streamrel.dir/stream/shared_aggregation.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/shared_aggregation.cc.o.d"
  "/root/repo/src/stream/window.cc" "src/CMakeFiles/streamrel.dir/stream/window.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/window.cc.o.d"
  "/root/repo/src/stream/window_operator.cc" "src/CMakeFiles/streamrel.dir/stream/window_operator.cc.o" "gcc" "src/CMakeFiles/streamrel.dir/stream/window_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
