#!/usr/bin/env bash
# Runs the torture suites (ctest labels `torture` and `overload`) under
# ASan+UBSan.
#
#   scripts/torture.sh [ctest-args...]
#
# The crash-recovery suite (`torture`) replays 100 randomized workloads,
# crashing each one at sampled k-th fault-point hits (with clean/torn/
# corrupt WAL tails) and recovering via both strategies; recovered tables
# must match a no-crash oracle byte for byte. A failure prints the (seed,
# strategy, k, mode) tuple to re-run with --gtest_filter. The overload
# suite (`overload`) drives every admission policy at parallelism 1/2/4
# over a forced memory budget plus the sink-retry and quarantine fault
# drills; exact accounting and oracle equivalence are asserted while
# ASan+UBSan watch the shed/requeue paths. The network suite (`net`)
# exercises the TCP front-end — corrupt frames, slow-consumer policies,
# net.* fault drills — with the sanitizers watching the event loop and
# per-connection send queues. After the ASan+UBSan pass, the concurrency
# suite (label `concurrency`: parallel ingest on disjoint streams vs. the
# control plane, the concurrent-vs-serial-oracle differential, network
# client fan-in) runs again under TSAN — lock-hierarchy violations
# (DESIGN decision 11) and loop-/worker-/delivery-thread races surface
# there, not under ASan. Extra arguments are forwarded to ctest, e.g.
#   scripts/torture.sh --verbose
#
# Reuses sanitize.sh's build-asan/ and build-tsan/ trees, so a prior
# sanitize run makes this incremental (and vice versa).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

BUILD_DIR="build-asan"
cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMREL_SANITIZE=address
cmake --build "$BUILD_DIR" -j "$(nproc)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

(cd "$BUILD_DIR" && ctest --output-on-failure -L "torture|overload|net" "$@")

# TSAN leg: the concurrency label only (the full-suite TSAN run is
# scripts/sanitize.sh thread). Races between the ingest threads, the
# server's event loop + request workers, and delivery callbacks are
# precisely what these tests provoke.
TSAN_BUILD_DIR="build-tsan"
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMREL_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j "$(nproc)"

export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1}"

(cd "$TSAN_BUILD_DIR" && ctest --output-on-failure -L concurrency "$@")
