#!/usr/bin/env bash
# Runs the tier-1 test suite under a sanitizer build.
#
#   scripts/sanitize.sh [thread|address] [ctest-args...]
#
# Builds into build-tsan/ or build-asan/ (separate from the normal build/)
# so sanitized and plain object files never mix, then runs ctest. Any extra
# arguments are forwarded to ctest (e.g. -R parallel_runtime_test). The
# full suite includes the crash-recovery and overload torture tests;
# scripts/torture.sh runs just those (labels `torture` + `overload`)
# under ASan+UBSan. `thread` mode additionally covers the concurrency
# suite (label `concurrency`: parallel ingest vs. control plane, overload
# budget/policy flips mid-ingest, the concurrent-vs-serial-oracle
# differential, network client fan-in) under TSAN — the lock-hierarchy
# proof runs, per DESIGN decision 11.
set -euo pipefail

MODE="${1:-thread}"
shift || true
case "$MODE" in
  thread)  BUILD_DIR="build-tsan" ;;
  address) BUILD_DIR="build-asan" ;;
  *)
    echo "usage: $0 [thread|address] [ctest-args...]" >&2
    exit 2
    ;;
esac

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSTREAMREL_SANITIZE="$MODE"
cmake --build "$BUILD_DIR" -j "$(nproc)"

# second_deadlock_stack: report both lock orders in a TSAN deadlock;
# halt_on_error off so one report does not mask later ones in a run.
export TSAN_OPTIONS="${TSAN_OPTIONS:-second_deadlock_stack=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_stack_use_after_return=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cd "$BUILD_DIR"
ctest --output-on-failure "$@"
