// Remote client: the network front-end end to end.
//
// By default this example is fully self-contained: it boots an in-process
// Database, wraps it in the TCP server on an ephemeral port, and then
// talks to it ONLY through the wire protocol — DDL over QUERY frames, a
// derived stream, a live SUBSCRIBE whose window-close results are pushed
// back over the socket, binary INGEST_BATCH traffic, and finally
// SHOW STATS FOR NET to see what the server counted.
//
// With `--connect HOST PORT` it skips the embedded server and drives an
// external streamrel-server instead (tests/server_smoke.sh uses this).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"
#include "net/client.h"
#include "net/server.h"

using streamrel::Row;
using streamrel::Value;
using streamrel::kMicrosPerSecond;

namespace {

void Check(const streamrel::Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T CheckResult(streamrel::Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what,
            result.status().ToString().c_str());
    exit(1);
  }
  return result.TakeValue();
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  bool external = false;
  if (argc == 4 && std::string(argv[1]) == "--connect") {
    external = true;
    host = argv[2];
    port = static_cast<uint16_t>(std::atoi(argv[3]));
  } else if (argc != 1) {
    fprintf(stderr, "usage: %s [--connect HOST PORT]\n", argv[0]);
    return 2;
  }

  // Embedded server (default mode): --port 0 picks an ephemeral port.
  streamrel::engine::Database db;
  streamrel::net::Server server(&db);
  if (!external) {
    Check(server.Start(), "server start");
    port = server.port();
    printf("embedded server on %s:%u\n", host.c_str(), port);
  }

  streamrel::net::Client client;
  Check(client.Connect(host, port), "connect");
  Check(client.Ping(), "ping");

  // Everything below goes over the wire: a clicks stream, a per-minute
  // per-URL count as a derived stream, and a live subscription to it.
  CheckResult(client.Query("CREATE STREAM clicks (url varchar, "
                           "ts timestamp CQTIME SYSTEM)"),
              "create stream");
  CheckResult(client.Query("CREATE STREAM url_counts AS "
                           "SELECT url, count(*) FROM clicks "
                           "<VISIBLE '1 minute'> GROUP BY url"),
              "create derived stream");
  Check(client.Subscribe("url_counts"), "subscribe");
  printf("subscribed to url_counts\n");

  // Three minutes of synthetic traffic through the binary ingest path.
  const char* urls[] = {"/home", "/cart", "/checkout"};
  for (int minute = 0; minute < 3; ++minute) {
    std::vector<Row> rows;
    for (int i = 0; i < 12; ++i) {
      rows.push_back(
          {Value::String(urls[i % 3]), Value::Null()});
    }
    const int64_t t = (minute * 60 + 10) * kMicrosPerSecond;
    Check(client.IngestBatch("clicks", rows, t), "ingest");
  }
  // Push the watermark past the last minute so its window closes too.
  Check(client.IngestBatch("clicks", {{Value::String("/home"), Value::Null()}},
                           200 * kMicrosPerSecond),
        "ingest (watermark)");

  // The three closed windows arrive as pushed STREAM_ROWS frames.
  for (int window = 0; window < 3; ++window) {
    streamrel::net::Push push =
        CheckResult(client.NextPush(), "next push");
    printf("window close @%lds from '%s':\n",
           static_cast<long>(push.close / kMicrosPerSecond),
           push.source.c_str());
    for (const Row& row : push.rows) {
      printf("  %s\n", streamrel::RowToString(row).c_str());
    }
  }

  // What the server saw, via the NET stats scope.
  streamrel::net::RowSet stats =
      CheckResult(client.Query("SHOW STATS FOR NET"), "show stats");
  printf("SHOW STATS FOR NET (%zu rows), highlights:\n", stats.rows.size());
  for (const Row& row : stats.rows) {
    const std::string& metric = row[2].AsString();
    if (metric == "ingest_batch" || metric == "pushes_admitted" ||
        metric == "connections_accepted") {
      printf("  %s.%s = %ld\n", row[1].AsString().c_str(), metric.c_str(),
             static_cast<long>(row[3].AsInt64()));
    }
  }

  Check(client.Unsubscribe("url_counts"), "unsubscribe");
  client.Close();
  if (!external) server.Drain();
  printf("remote client done\n");
  return 0;
}
