// Quickstart: the paper's Examples 1-4 end to end.
//
// Creates the url_stream from Example 1, runs the Example 2 top-10
// continuous query, derives the urls_now stream (Example 3), archives it
// into an active table through a channel (Example 4), pushes a few minutes
// of synthetic traffic, and finally reports from the active table with a
// plain SQL query — the report is ready the moment it is asked for.

#include <cstdio>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"

using streamrel::Row;
using streamrel::Value;
using streamrel::kMicrosPerMinute;
using streamrel::kMicrosPerSecond;

namespace {

void Check(const streamrel::Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T CheckResult(streamrel::Result<T> result, const char* what) {
  if (!result.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, result.status().ToString().c_str());
    exit(1);
  }
  return result.TakeValue();
}

void PrintResult(const streamrel::engine::QueryResult& result) {
  printf("  %s\n", result.schema.ToString().c_str());
  for (const Row& row : result.rows) {
    printf("  %s\n", streamrel::RowToString(row).c_str());
  }
}

}  // namespace

int main() {
  streamrel::engine::Database db;

  // --- Example 1: a raw stream ordered on atime. ---------------------------
  Check(db.Execute("CREATE STREAM url_stream ("
                   "  url varchar(1024),"
                   "  atime timestamp CQTIME USER,"
                   "  client_ip varchar(50))")
            .status(),
        "create stream");

  // --- Example 2: a continuous top-10 query; print each window. ------------
  auto* top10 = CheckResult(
      db.CreateContinuousQuery(
          "top_urls",
          "SELECT url, count(*) url_count "
          "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
          "GROUP BY url ORDER BY url_count DESC LIMIT 10"),
      "create top-10 CQ");
  top10->AddCallback([](int64_t close, const std::vector<Row>& rows) {
    printf("top urls @ %s:\n", streamrel::FormatTimestampMicros(close).c_str());
    for (const Row& row : rows) {
      printf("  %-28s %s\n", row[0].ToString().c_str(),
             row[1].ToString().c_str());
    }
    return streamrel::Status::OK();
  });

  // --- Examples 3 + 4: derived stream -> channel -> active table. ----------
  Check(db.Execute("CREATE STREAM urls_now AS "
                   "SELECT url, count(*) as scnt, cq_close(*) "
                   "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
                   "GROUP BY url")
            .status(),
        "create derived stream");
  Check(db.Execute("CREATE TABLE urls_archive ("
                   "  url varchar(1024), scnt integer, stime timestamp)")
            .status(),
        "create archive table");
  Check(db.Execute("CREATE CHANNEL urls_channel "
                   "FROM urls_now INTO urls_archive APPEND")
            .status(),
        "create channel");

  // --- Push six minutes of synthetic traffic. -------------------------------
  const char* kUrls[] = {"/home", "/checkout", "/search", "/product/42",
                         "/cart"};
  int64_t t0 = CheckResult(
      streamrel::ParseTimestampMicros("2009-01-05 09:00:00"), "parse t0");
  std::vector<Row> batch;
  for (int minute = 0; minute < 6; ++minute) {
    batch.clear();
    for (int i = 0; i < 60; ++i) {
      int64_t ts = t0 + minute * kMicrosPerMinute + i * kMicrosPerSecond;
      // A simple skew: /home dominates, the rest trail off.
      const char* url = kUrls[(i * i + minute) % 7 % 5];
      batch.push_back(Row{Value::String(url), Value::Timestamp(ts),
                          Value::String("10.0.0." + std::to_string(i % 32))});
    }
    Check(db.Ingest("url_stream", batch), "ingest");
  }
  // A heartbeat closes the final minute's window.
  Check(db.AdvanceTime("url_stream", t0 + 6 * kMicrosPerMinute), "heartbeat");

  // --- The payoff: report straight from the active table. -------------------
  printf("\narchived per-minute counts for /home (plain SQL, instant):\n");
  auto report = CheckResult(
      db.Execute("SELECT stime, scnt FROM urls_archive "
                 "WHERE url = '/home' ORDER BY stime"),
      "report");
  PrintResult(report);

  printf("\nrows ingested: %lld, archive rows: %lld\n",
         static_cast<long long>(db.runtime()->rows_ingested()),
         static_cast<long long>(
             db.runtime()->GetChannel("urls_channel")->rows_persisted()));
  return 0;
}
