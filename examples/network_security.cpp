// Network security reporting — the paper's Section 4 scenario. "A
// batch-oriented query taking over 20 minutes ... was produced in
// milliseconds by simply running the query continuously and incrementally
// as the data arrived, and storing the results in an Active Table for
// later retrieval."
//
// This example runs that conversion live: the same per-port traffic report
// is produced (a) store-first-query-later — load the connection log into a
// table, then scan and aggregate when the report is requested — and
// (b) continuously — a CQ folds each connection into per-slice partial
// aggregates on arrival and a channel persists each window into an active
// table, so the "report query" is a trivial lookup. It prints both
// latencies and the simulated disk time each approach consumed.

#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"
#include "stream/channel.h"

using streamrel::Row;
using streamrel::Status;
using streamrel::Value;
using streamrel::kMicrosPerMinute;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

std::vector<Row> MakeConnectionLog(int rows) {
  std::mt19937 rng(2009);
  std::vector<Row> log;
  log.reserve(rows);
  int64_t ts = 0;
  const int64_t common_ports[] = {80, 443, 22, 53, 25};
  for (int i = 0; i < rows; ++i) {
    ts += 1500 + static_cast<int64_t>(rng() % 1000);
    int64_t port = (rng() % 100 < 4)
                       ? static_cast<int64_t>(rng() % 65536)
                       : common_ports[rng() % 5];
    log.push_back(Row{
        Value::String("192.168." + std::to_string(rng() % 32) + "." +
                      std::to_string(rng() % 256)),
        Value::Int64(port), Value::Int64(static_cast<int64_t>(rng() % 9000)),
        Value::Timestamp(ts)});
  }
  return log;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
             .count() /
         1000.0;
}

}  // namespace

int main() {
  constexpr int kRows = 150000;
  const std::vector<Row> log = MakeConnectionLog(kRows);
  printf("connection log: %d events (~%lld minutes of traffic)\n\n", kRows,
         static_cast<long long>(log.back()[3].AsTimestampMicros() /
                                kMicrosPerMinute));

  const char* kReport =
      "SELECT dst_port, count(*) AS conns, sum(bytes) AS total "
      "FROM conn_log GROUP BY dst_port ORDER BY conns DESC LIMIT 5";

  // --- (a) store-first-query-later -----------------------------------------
  streamrel::engine::Database batch_db;
  Check(batch_db
            .Execute("CREATE TABLE conn_log (src_ip varchar, dst_port "
                     "bigint, bytes bigint, ts timestamp)")
            .status(),
        "batch ddl");
  {
    auto* table = batch_db.catalog()->GetTable("conn_log");
    auto txn = batch_db.txns()->Begin();
    for (const Row& row : log) {
      Check(streamrel::stream::InsertIntoTable(table, row, txn,
                                               batch_db.wal().get()),
            "load");
    }
    Check(batch_db.txns()->Commit(txn, 0).status(), "load commit");
  }
  batch_db.disk()->DropCache();  // the nightly report starts cold
  batch_db.disk()->ResetStats();
  auto t_batch = std::chrono::steady_clock::now();
  auto batch_report = batch_db.Execute(kReport);
  Check(batch_report.status(), "batch report");
  double batch_ms = MillisSince(t_batch);
  double batch_io_ms =
      batch_db.disk()->stats().simulated_io_micros / 1000.0;

  // --- (b) continuous analytics --------------------------------------------
  streamrel::engine::Database cq_db;
  Check(cq_db
            .Execute("CREATE STREAM conns (src_ip varchar, dst_port bigint, "
                     "bytes bigint, ts timestamp CQTIME USER);"
                     "CREATE STREAM port_agg AS SELECT dst_port, count(*) "
                     "AS conns, sum(bytes) AS total FROM conns "
                     "<VISIBLE '10 minutes' ADVANCE '1 minute'> "
                     "GROUP BY dst_port;"
                     "CREATE TABLE port_report (dst_port bigint, conns "
                     "bigint, total bigint);"
                     "CREATE CHANNEL rep FROM port_agg INTO port_report "
                     "REPLACE")
            .status(),
        "cq ddl");
  // Data arrives; the metrics are computed as the beans go into the jar.
  auto t_ingest = std::chrono::steady_clock::now();
  for (size_t i = 0; i < log.size(); i += 8192) {
    size_t end = std::min(log.size(), i + 8192);
    Check(cq_db.Ingest("conns",
                       std::vector<Row>(log.begin() + i, log.begin() + end)),
          "ingest");
  }
  Check(cq_db.AdvanceTime("conns",
                          log.back()[3].AsTimestampMicros() +
                              kMicrosPerMinute),
        "heartbeat");
  double ingest_ms = MillisSince(t_ingest);

  cq_db.disk()->DropCache();
  cq_db.disk()->ResetStats();
  auto t_cq = std::chrono::steady_clock::now();
  auto cq_report = cq_db.Execute(
      "SELECT dst_port, conns, total FROM port_report "
      "ORDER BY conns DESC LIMIT 5");
  Check(cq_report.status(), "cq report");
  double cq_ms = MillisSince(t_cq);
  double cq_io_ms = cq_db.disk()->stats().simulated_io_micros / 1000.0;

  // --- results ---------------------------------------------------------------
  printf("%-34s %12s %16s\n", "", "report time", "simulated disk");
  printf("%-34s %9.2f ms %13.2f ms\n",
         "store-first-query-later (batch)", batch_ms, batch_io_ms);
  printf("%-34s %9.2f ms %13.2f ms\n", "continuous analytics (active "
                                       "table)",
         cq_ms, cq_io_ms);
  printf("\nspeedup at report time: %.0fx real, %.0fx including simulated "
         "I/O\n",
         batch_ms / (cq_ms > 0.001 ? cq_ms : 0.001),
         (batch_ms + batch_io_ms) / ((cq_ms + cq_io_ms) > 0.001
                                         ? (cq_ms + cq_io_ms)
                                         : 0.001));
  printf("(continuous paid %.2f ms spread across ingest — %.2f us/row)\n\n",
         ingest_ms, ingest_ms * 1000.0 / kRows);

  printf("top ports (both approaches agree):\n");
  for (size_t i = 0; i < batch_report->rows.size(); ++i) {
    printf("  batch: %-24s continuous: %s\n",
           RowToString(batch_report->rows[i]).c_str(),
           RowToString(cq_report->rows[i]).c_str());
  }
  return 0;
}
