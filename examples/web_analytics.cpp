// Web analytics: the paper's motivating network-effect scenario. A site
// monitors usage, referral behaviour, and content interaction while users
// are on the site (Section 1.2), with many dashboard metrics computed
// simultaneously on one pass over the click stream (Section 2.2) and
// current-versus-last-week style comparisons against active tables
// (Example 5).
//
// This example builds a small analytics stack:
//   clicks ──┬── top pages (5-min sliding, per-minute refresh)
//            ├── per-referrer session counts
//            ├── error-rate monitor with HAVING alert threshold
//            └── per-minute rollup -> active table -> minute-over-minute
//                trend query

#include <cstdio>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"

using streamrel::Row;
using streamrel::Status;
using streamrel::Value;
using streamrel::kMicrosPerMinute;
using streamrel::kMicrosPerSecond;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

template <typename T>
T CheckResult(streamrel::Result<T> r, const char* what) {
  if (!r.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, r.status().ToString().c_str());
    exit(1);
  }
  return r.TakeValue();
}

}  // namespace

int main() {
  streamrel::engine::Database db;

  Check(db.Execute("CREATE STREAM clicks ("
                   "  page varchar(512),"
                   "  referrer varchar(128),"
                   "  status bigint,"
                   "  atime timestamp CQTIME USER)")
            .status(),
        "stream ddl");

  // Metric 1: top pages, refreshed each minute over the last 5 minutes.
  auto* top_pages = CheckResult(
      db.CreateContinuousQuery(
          "top_pages",
          "SELECT page, count(*) AS views FROM clicks "
          "<VISIBLE '5 minutes' ADVANCE '1 minute'> "
          "GROUP BY page ORDER BY views DESC LIMIT 3"),
      "top pages cq");

  // Metric 2: where is traffic coming from right now?
  auto* referrers = CheckResult(
      db.CreateContinuousQuery(
          "referrers",
          "SELECT referrer, count(*) AS hits FROM clicks "
          "<VISIBLE '5 minutes' ADVANCE '1 minute'> "
          "GROUP BY referrer ORDER BY hits DESC"),
      "referrers cq");

  // Metric 3: alert when any page serves too many errors in a minute.
  auto* error_alert = CheckResult(
      db.CreateContinuousQuery(
          "error_alert",
          "SELECT page, count(*) AS errors FROM clicks "
          "<VISIBLE '1 minute'> WHERE status >= 500 "
          "GROUP BY page HAVING count(*) >= 5"),
      "error alert cq");
  error_alert->AddCallback([](int64_t close, const std::vector<Row>& rows) {
    for (const Row& row : rows) {
      printf("  !! ALERT @ %s: %s served %s errors in the last minute\n",
             streamrel::FormatTimestampMicros(close).c_str(),
             row[0].ToString().c_str(), row[1].ToString().c_str());
    }
    return Status::OK();
  });

  // Metric 4: per-minute rollup persisted into an active table, plus a
  // continuous minute-over-minute trend computed against that history.
  Check(db.Execute("CREATE STREAM traffic_per_min AS "
                   "SELECT count(*) AS views, cq_close(*) AS m "
                   "FROM clicks <VISIBLE '1 minute'>;"
                   "CREATE TABLE traffic_history (views bigint, m "
                   "timestamp);"
                   "CREATE CHANNEL history_ch FROM traffic_per_min INTO "
                   "traffic_history APPEND")
            .status(),
        "rollup pipeline");
  auto* trend = CheckResult(
      db.CreateContinuousQuery(
          "trend",
          "SELECT now.views, prev.views, now.m FROM "
          "(SELECT views, m FROM traffic_per_min <SLICES 1 WINDOWS>) now, "
          "traffic_history prev "
          "WHERE now.m - interval '1 minute' = prev.m"),
      "trend cq");
  trend->AddCallback([](int64_t, const std::vector<Row>& rows) {
    for (const Row& row : rows) {
      long long current = row[0].AsInt64(), previous = row[1].AsInt64();
      printf("  trend @ %s: %lld views (%+lld vs previous minute)\n",
             row[2].ToString().c_str(), current, current - previous);
    }
    return Status::OK();
  });

  // ---- Simulate 8 minutes of traffic with a burst and an incident. -------
  const char* pages[] = {"/", "/pricing", "/blog/launch", "/docs",
                         "/signup"};
  const char* refs[] = {"news.ycombinator.com", "google.com", "direct",
                        "twitter.com"};
  int64_t t0 = CheckResult(
      streamrel::ParseTimestampMicros("2009-01-05 12:00:00"), "t0");

  printf("replaying 8 minutes of site traffic...\n");
  for (int minute = 0; minute < 8; ++minute) {
    // The launch blog post goes viral in minutes 3-5.
    int rate = (minute >= 3 && minute <= 5) ? 300 : 60;
    std::vector<Row> batch;
    for (int i = 0; i < rate; ++i) {
      int64_t ts =
          t0 + minute * kMicrosPerMinute + (i * kMicrosPerMinute) / rate;
      const char* page = (minute >= 3 && i % 2 == 0) ? "/blog/launch"
                                                     : pages[i % 5];
      // Minute 6: the signup service melts down.
      int64_t status =
          (minute == 6 && i % 4 == 0 && std::string(page) == "/signup")
              ? 503
              : 200;
      batch.push_back(Row{Value::String(page),
                          Value::String(refs[(i + minute) % 4]),
                          Value::Int64(status), Value::Timestamp(ts)});
    }
    // Hmm: make sure enough /signup errors occur in minute 6.
    if (minute == 6) {
      for (int i = 0; i < 8; ++i) {
        batch.push_back(Row{Value::String("/signup"),
                            Value::String("direct"), Value::Int64(503),
                            Value::Timestamp(t0 + minute * kMicrosPerMinute +
                                             59 * kMicrosPerSecond)});
      }
    }
    Check(db.Ingest("clicks", batch), "ingest");
  }
  Check(db.AdvanceTime("clicks", t0 + 8 * kMicrosPerMinute), "heartbeat");

  // ---- Final dashboard state, served from the active table. ---------------
  printf("\n");
  auto top = CheckResult(
      db.Execute("SELECT m, views FROM traffic_history ORDER BY m"),
      "history query");
  printf("per-minute site traffic (from the active table):\n");
  for (const Row& row : top.rows) {
    long long views = row[1].AsInt64();
    int bars = static_cast<int>(views / 20);
    printf("  %s %5lld %.*s\n", row[0].ToString().c_str(), views, bars,
           "########################################");
  }

  printf("\nCQs evaluated %lld + %lld + %lld + %lld windows in total\n",
         static_cast<long long>(top_pages->windows_evaluated()),
         static_cast<long long>(referrers->windows_evaluated()),
         static_cast<long long>(error_alert->windows_evaluated()),
         static_cast<long long>(trend->windows_evaluated()));
  return 0;
}
