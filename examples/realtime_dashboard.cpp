// Real-time dashboard with disconnected clients (paper Section 3.2):
// "A derived stream is particularly useful for clients that operate in a
// disconnected fashion since the results of a CQ are available upon the
// first window close after a client re-connects."
//
// This example runs an always-on derived stream + REPLACE active table as
// the dashboard's backing store, simulates a client that connects,
// disconnects, and reconnects, and shows that (a) while connected it
// receives pushed window results, and (b) after reconnecting it reads the
// current state instantly from the active table — no replay, no recompute.

#include <cstdio>
#include <string>
#include <vector>

#include "common/time.h"
#include "engine/database.h"

using streamrel::Row;
using streamrel::Status;
using streamrel::Value;
using streamrel::kMicrosPerMinute;
using streamrel::kMicrosPerSecond;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
    exit(1);
  }
}

/// A dashboard client: when connected it renders pushed updates.
class DashboardClient {
 public:
  void Connect() { connected_ = true; }
  void Disconnect() { connected_ = false; }
  bool connected() const { return connected_; }

  Status OnPush(int64_t close, const std::vector<Row>& rows) {
    if (!connected_) {
      ++missed_;
      return Status::OK();
    }
    printf("  [push @ %s] ", streamrel::FormatTimestampMicros(close).c_str());
    Render(rows);
    return Status::OK();
  }

  void Render(const std::vector<Row>& rows) const {
    if (rows.empty()) {
      printf("(no traffic)\n");
      return;
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      printf("%s%s=%s", i ? ", " : "", rows[i][0].ToString().c_str(),
             rows[i][1].ToString().c_str());
    }
    printf("\n");
  }

  int missed() const { return missed_; }

 private:
  bool connected_ = false;
  int missed_ = 0;
};

}  // namespace

int main() {
  streamrel::engine::Database db;
  Check(db.Execute("CREATE STREAM orders (region varchar, amount bigint, "
                   "ts timestamp CQTIME USER);"
                   // Always-on derived stream: runs whether or not anyone
                   // is watching.
                   "CREATE STREAM sales_now AS SELECT region, sum(amount) "
                   "AS revenue FROM orders <VISIBLE '1 minute'> GROUP BY "
                   "region;"
                   // The dashboard's state lives in a REPLACE active table.
                   "CREATE TABLE sales_board (region varchar, revenue "
                   "bigint);"
                   "CREATE CHANNEL board_ch FROM sales_now INTO sales_board "
                   "REPLACE")
            .status(),
        "ddl");

  DashboardClient client;
  Check(db.runtime()->SubscribeStream(
            "sales_now",
            [&client](int64_t close, const std::vector<Row>& rows) {
              return client.OnPush(close, rows);
            })
            .status(),
        "subscribe");

  auto minute_of_orders = [&](int minute, int per_region) {
    std::vector<Row> batch;
    const char* regions[] = {"emea", "amer", "apac"};
    for (int i = 0; i < per_region * 3; ++i) {
      batch.push_back(
          Row{Value::String(regions[i % 3]),
              Value::Int64(100 + (i * 17 + minute * 7) % 400),
              Value::Timestamp(minute * kMicrosPerMinute +
                               (i + 1) * kMicrosPerSecond)});
    }
    Check(db.Ingest("orders", batch), "ingest");
    Check(db.AdvanceTime("orders", (minute + 1) * kMicrosPerMinute), "hb");
  };

  printf("client connects; live updates stream in:\n");
  client.Connect();
  minute_of_orders(0, 5);
  minute_of_orders(1, 8);

  printf("\nclient disconnects (laptop closed); the CQ keeps running:\n");
  client.Disconnect();
  minute_of_orders(2, 12);
  minute_of_orders(3, 20);
  printf("  (%d window updates went unrendered — and did not need "
         "buffering)\n",
         client.missed());

  printf("\nclient reconnects and reads current state straight from the "
         "active table:\n  ");
  client.Connect();
  auto board = db.Execute(
      "SELECT region, revenue FROM sales_board ORDER BY revenue DESC");
  Check(board.status(), "board query");
  client.Render(board->rows);

  printf("\n...and the next window close resumes pushes:\n");
  minute_of_orders(4, 6);
  return 0;
}
