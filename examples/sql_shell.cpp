// An interactive TruSQL shell over the StreamRel engine.
//
//   $ ./example_sql_shell
//   streamrel> CREATE STREAM s (v bigint, ts timestamp CQTIME USER);
//   streamrel> SELECT sum(v) FROM s <VISIBLE '1 minute'>;
//   started continuous query cq_1 (results print at each window close)
//   streamrel> INSERT INTO s VALUES (5, timestamp '2009-01-05 09:00:10');
//   streamrel> \advance s 2009-01-05 09:01:00
//   cq_1 @ 2009-01-05 09:01:00: (5)
//
// Meta commands: \advance <stream> <timestamp>, \cqs, \stats, \drop <cq>,
// \q.
// Statements end with ';' and may span lines. Snapshot SELECTs print a
// result table; SELECTs over windowed streams register continuous
// queries whose results print as windows close — the stream-relational
// duality, live at a prompt.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/string_util.h"
#include "common/time.h"
#include "engine/database.h"

namespace {

using streamrel::Row;
using streamrel::Status;
using streamrel::Value;

void PrintTable(const streamrel::Schema& schema,
                const std::vector<Row>& rows) {
  // Column widths from headers and values.
  std::vector<size_t> widths;
  std::vector<std::string> headers;
  for (const auto& col : schema.columns()) {
    headers.push_back(col.name);
    widths.push_back(col.name.size());
  }
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t i = 0; i < row.size(); ++i) {
      line.push_back(row[i].ToString());
      if (i < widths.size() && line.back().size() > widths[i]) {
        widths[i] = line.back().size();
      }
    }
    cells.push_back(std::move(line));
  }
  auto rule = [&]() {
    for (size_t w : widths) printf("+%s", std::string(w + 2, '-').c_str());
    printf("+\n");
  };
  rule();
  for (size_t i = 0; i < headers.size(); ++i) {
    printf("| %-*s ", static_cast<int>(widths[i]), headers[i].c_str());
  }
  printf("|\n");
  rule();
  for (const auto& line : cells) {
    for (size_t i = 0; i < line.size(); ++i) {
      printf("| %-*s ", static_cast<int>(widths[i]), line[i].c_str());
    }
    printf("|\n");
  }
  rule();
  printf("(%zu rows)\n", rows.size());
}

class Shell {
 public:
  int Run() {
    printf("StreamRel — stream-relational continuous analytics.\n");
    printf("Statements end with ';'.  \\h for help, \\q to quit.\n");
    std::string buffer;
    std::string line;
    for (;;) {
      printf(buffer.empty() ? "streamrel> " : "      ...> ");
      fflush(stdout);
      if (!std::getline(std::cin, line)) break;
      std::string trimmed = Trim(line);
      if (buffer.empty() && !trimmed.empty() && trimmed[0] == '\\') {
        if (!MetaCommand(trimmed)) break;
        continue;
      }
      buffer += line;
      buffer += "\n";
      if (trimmed.size() >= 1 && trimmed.back() == ';') {
        Execute(buffer);
        buffer.clear();
      }
    }
    return 0;
  }

 private:
  static std::string Trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  void Execute(const std::string& sql) {
    // A continuous SELECT cannot run through Execute(); register it.
    auto result = db_.Execute(sql);
    if (result.ok()) {
      if (!result->schema.columns().empty() || !result->rows.empty()) {
        PrintTable(result->schema, result->rows);
      } else {
        printf("%s\n", result->message.c_str());
      }
      return;
    }
    if (result.status().message().find("CreateContinuousQuery") !=
        std::string::npos) {
      std::string name = "cq_" + std::to_string(++cq_counter_);
      auto cq = db_.CreateContinuousQuery(name, sql);
      if (!cq.ok()) {
        printf("ERROR: %s\n", cq.status().ToString().c_str());
        return;
      }
      (*cq)->AddCallback([name](int64_t close, const std::vector<Row>& rows) {
        printf("%s @ %s:", name.c_str(),
               streamrel::FormatTimestampMicros(close).c_str());
        if (rows.empty()) {
          printf(" (empty)\n");
        } else {
          printf("\n");
          for (const Row& row : rows) {
            printf("  %s\n", streamrel::RowToString(row).c_str());
          }
        }
        return Status::OK();
      });
      printf("started continuous query %s (results print at each window "
             "close; \\drop %s to stop)\n",
             name.c_str(), name.c_str());
      return;
    }
    printf("ERROR: %s\n", result.status().ToString().c_str());
  }

  /// Returns false to exit the shell.
  bool MetaCommand(const std::string& command) {
    std::istringstream in(command);
    std::string op;
    in >> op;
    if (op == "\\q" || op == "\\quit") return false;
    if (op == "\\h" || op == "\\help") {
      printf("  <sql statement>;            run SQL (TruSQL windows "
             "supported)\n");
      printf("  \\advance <stream> <ts>      heartbeat: close windows up "
             "to <ts>\n");
      printf("  \\cqs                        list continuous queries\n");
      printf("  \\drop <cq-name>             stop a continuous query\n");
      printf("  \\copy <table|stream> <file> load a CSV (first line = "
             "header)\n");
      printf("  \\stats [cq|stream|channel <name>]  engine metrics "
             "(same as SHOW STATS)\n");
      printf("  \\export <file> <query>;     write a snapshot query's "
             "result as CSV\n");
      printf("  \\q                          quit\n");
      return true;
    }
    if (op == "\\export") {
      std::string path, query;
      in >> path;
      std::getline(in, query);
      query = Trim(query);
      if (!query.empty() && query.back() == ';') query.pop_back();
      auto result = db_.Execute(query);
      if (!result.ok()) {
        printf("ERROR: %s\n", result.status().ToString().c_str());
        return true;
      }
      std::string text =
          streamrel::csv::WriteText(result->schema, result->rows);
      FILE* file = fopen(path.c_str(), "wb");
      if (file == nullptr) {
        printf("ERROR: cannot open %s\n", path.c_str());
        return true;
      }
      fwrite(text.data(), 1, text.size(), file);
      fclose(file);
      printf("wrote %zu rows to %s\n", result->rows.size(), path.c_str());
      return true;
    }
    if (op == "\\copy") {
      std::string target, path;
      in >> target >> path;
      streamrel::Schema schema;
      bool is_stream = false;
      if (const auto* stream = db_.catalog()->GetStream(target)) {
        schema = stream->schema;
        is_stream = true;
      } else if (const auto* table = db_.catalog()->GetTable(target)) {
        schema = table->schema;
      } else {
        printf("ERROR: no table or stream named '%s'\n", target.c_str());
        return true;
      }
      streamrel::csv::Options options;
      options.has_header = true;
      auto rows = streamrel::csv::ReadFile(path, schema, options);
      if (!rows.ok()) {
        printf("ERROR: %s\n", rows.status().ToString().c_str());
        return true;
      }
      Status status;
      if (is_stream) {
        status = db_.Ingest(target, *rows);
      } else {
        // Synthesize chunked INSERT statements (goes through the normal
        // WAL-logged write path).
        std::string insert;
        size_t in_chunk = 0;
        for (size_t i = 0; i < rows->size() && status.ok(); ++i) {
          if (insert.empty()) insert = "INSERT INTO " + target + " VALUES ";
          if (in_chunk > 0) insert += ", ";
          insert += "(";
          for (size_t c = 0; c < (*rows)[i].size(); ++c) {
            if (c > 0) insert += ", ";
            const Value& v = (*rows)[i][c];
            if (v.is_null()) {
              insert += "NULL";
            } else if (v.type() == streamrel::DataType::kString) {
              std::string escaped;
              for (char ch : v.AsString()) {
                escaped += ch;
                if (ch == '\'') escaped += '\'';
              }
              insert += "'" + escaped + "'";
            } else if (v.type() == streamrel::DataType::kTimestamp) {
              insert += "timestamp '" + v.ToString() + "'";
            } else {
              insert += v.ToString();
            }
          }
          insert += ")";
          if (++in_chunk == 256 || i + 1 == rows->size()) {
            status = db_.Execute(insert).status();
            insert.clear();
            in_chunk = 0;
          }
        }
      }
      if (!status.ok()) {
        printf("ERROR: %s\n", status.ToString().c_str());
      } else {
        printf("loaded %zu rows into %s\n", rows->size(), target.c_str());
      }
      return true;
    }
    if (op == "\\advance") {
      std::string stream, rest;
      in >> stream;
      std::getline(in, rest);
      auto ts = streamrel::ParseTimestampMicros(Trim(rest));
      if (!ts.ok()) {
        printf("ERROR: %s\n", ts.status().ToString().c_str());
        return true;
      }
      Status status = db_.AdvanceTime(stream, *ts);
      if (!status.ok()) {
        printf("ERROR: %s\n", status.ToString().c_str());
      }
      return true;
    }
    if (op == "\\cqs") {
      for (const std::string& name : db_.runtime()->CqNames()) {
        auto* cq = db_.runtime()->GetCq(name);
        printf("  %-16s over %-16s %s  (%lld windows, %s)\n", name.c_str(),
               cq->stream_name().c_str(), cq->window().ToString().c_str(),
               static_cast<long long>(cq->windows_evaluated()),
               cq->is_shared() ? "shared" : "generic");
      }
      return true;
    }
    if (op == "\\stats") {
      std::string kind, name;
      in >> kind >> name;
      std::string sql = "SHOW STATS";
      if (!kind.empty()) sql += " FOR " + kind + " " + name;
      auto result = db_.Execute(sql);
      if (!result.ok()) {
        printf("ERROR: %s\n", result.status().ToString().c_str());
      } else {
        PrintTable(result->schema, result->rows);
      }
      return true;
    }
    if (op == "\\drop") {
      std::string name;
      in >> name;
      Status status = db_.DropContinuousQuery(name);
      if (!status.ok()) printf("ERROR: %s\n", status.ToString().c_str());
      return true;
    }
    printf("unknown command %s (\\h for help)\n", op.c_str());
    return true;
  }

  streamrel::engine::Database db_;
  int cq_counter_ = 0;
};

}  // namespace

int main() { return Shell().Run(); }
