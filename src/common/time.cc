#include "common/time.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "common/string_util.h"

namespace streamrel {

namespace {

// Days from the civil epoch algorithm (Howard Hinnant's date algorithms),
// avoiding timegm portability issues.
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int64_t>(era) * 146097 +
         static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

struct UnitName {
  const char* name;
  int64_t micros;
};

constexpr UnitName kUnits[] = {
    {"microsecond", 1},
    {"microseconds", 1},
    {"us", 1},
    {"millisecond", kMicrosPerMilli},
    {"milliseconds", kMicrosPerMilli},
    {"ms", kMicrosPerMilli},
    {"second", kMicrosPerSecond},
    {"seconds", kMicrosPerSecond},
    {"sec", kMicrosPerSecond},
    {"secs", kMicrosPerSecond},
    {"s", kMicrosPerSecond},
    {"minute", kMicrosPerMinute},
    {"minutes", kMicrosPerMinute},
    {"min", kMicrosPerMinute},
    {"mins", kMicrosPerMinute},
    {"hour", kMicrosPerHour},
    {"hours", kMicrosPerHour},
    {"h", kMicrosPerHour},
    {"day", kMicrosPerDay},
    {"days", kMicrosPerDay},
    {"d", kMicrosPerDay},
    {"week", kMicrosPerWeek},
    {"weeks", kMicrosPerWeek},
    {"w", kMicrosPerWeek},
};

}  // namespace

Result<int64_t> ParseTimestampMicros(const std::string& text) {
  int y = 0;
  unsigned mo = 0, d = 0, h = 0, mi = 0, se = 0;
  long frac = 0;
  int frac_digits = 0;

  const char* p = text.c_str();
  int consumed = 0;
  if (sscanf(p, "%d-%u-%u%n", &y, &mo, &d, &consumed) != 3) {
    return Status::InvalidArgument("bad timestamp literal: '" + text + "'");
  }
  p += consumed;
  if (*p == ' ' || *p == 'T') {
    ++p;
    if (sscanf(p, "%u:%u:%u%n", &h, &mi, &se, &consumed) != 3) {
      return Status::InvalidArgument("bad timestamp time part: '" + text +
                                     "'");
    }
    p += consumed;
    if (*p == '.') {
      ++p;
      while (*p >= '0' && *p <= '9' && frac_digits < 6) {
        frac = frac * 10 + (*p - '0');
        ++frac_digits;
        ++p;
      }
      while (*p >= '0' && *p <= '9') ++p;  // ignore beyond micros
    }
  }
  while (*p == ' ') ++p;
  if (*p != '\0') {
    return Status::InvalidArgument("trailing characters in timestamp: '" +
                                   text + "'");
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h > 23 || mi > 59 || se > 60) {
    return Status::InvalidArgument("timestamp field out of range: '" + text +
                                   "'");
  }
  for (int i = frac_digits; i < 6; ++i) frac *= 10;
  int64_t days = DaysFromCivil(y, mo, d);
  int64_t micros = days * kMicrosPerDay + h * kMicrosPerHour +
                   mi * kMicrosPerMinute + se * kMicrosPerSecond + frac;
  return micros;
}

std::string FormatTimestampMicros(int64_t micros) {
  int64_t days = micros / kMicrosPerDay;
  int64_t rem = micros % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    --days;
  }
  int y;
  unsigned mo, d;
  CivilFromDays(days, &y, &mo, &d);
  int h = static_cast<int>(rem / kMicrosPerHour);
  rem %= kMicrosPerHour;
  int mi = static_cast<int>(rem / kMicrosPerMinute);
  rem %= kMicrosPerMinute;
  int se = static_cast<int>(rem / kMicrosPerSecond);
  int64_t frac = rem % kMicrosPerSecond;
  char buf[48];
  if (frac == 0) {
    snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02d:%02d:%02d", y, mo, d, h,
             mi, se);
  } else {
    snprintf(buf, sizeof(buf), "%04d-%02u-%02u %02d:%02d:%02d.%06" PRId64, y,
             mo, d, h, mi, se, frac);
  }
  return buf;
}

Result<int64_t> ParseIntervalMicros(const std::string& text) {
  std::vector<std::string> parts = SplitWhitespace(text);
  if (parts.empty() || parts.size() % 2 != 0) {
    return Status::InvalidArgument("bad interval literal: '" + text + "'");
  }
  int64_t total = 0;
  for (size_t i = 0; i < parts.size(); i += 2) {
    errno = 0;
    char* end = nullptr;
    double qty = strtod(parts[i].c_str(), &end);
    if (errno != 0 || end == parts[i].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad interval quantity: '" + parts[i] +
                                     "'");
    }
    std::string unit = ToLower(parts[i + 1]);
    bool found = false;
    for (const auto& u : kUnits) {
      if (unit == u.name) {
        total += static_cast<int64_t>(qty * static_cast<double>(u.micros));
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown interval unit: '" +
                                     parts[i + 1] + "'");
    }
  }
  return total;
}

std::string FormatIntervalMicros(int64_t micros) {
  struct {
    int64_t micros;
    const char* singular;
    const char* plural;
  } units[] = {
      {kMicrosPerWeek, "week", "weeks"},
      {kMicrosPerDay, "day", "days"},
      {kMicrosPerHour, "hour", "hours"},
      {kMicrosPerMinute, "minute", "minutes"},
      {kMicrosPerSecond, "second", "seconds"},
      {kMicrosPerMilli, "millisecond", "milliseconds"},
      {1, "microsecond", "microseconds"},
  };
  if (micros == 0) return "0 seconds";
  for (const auto& u : units) {
    if (micros % u.micros == 0) {
      int64_t qty = micros / u.micros;
      return std::to_string(qty) + " " +
             (qty == 1 || qty == -1 ? u.singular : u.plural);
    }
  }
  return std::to_string(micros) + " microseconds";
}

}  // namespace streamrel
