#include "common/rwlock.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

namespace streamrel {

namespace lockrank {
#ifndef NDEBUG
namespace {
thread_local int g_held[kNumLockRanks] = {0};
}  // namespace

void OnAcquire(LockRank rank, bool allow_same_rank, const char* what) {
  const int r = static_cast<int>(rank);
  for (int higher = r + (allow_same_rank ? 1 : 0); higher < kNumLockRanks;
       ++higher) {
    if (g_held[higher] > 0) {
      std::fprintf(stderr,
                   "lock-order violation: acquiring %s (rank %d) while "
                   "holding a lock of rank %d\n",
                   what, r, higher);
      std::abort();
    }
  }
  if (!allow_same_rank && g_held[r] > 0) {
    std::fprintf(stderr,
                 "lock-order violation: recursive same-rank acquisition of "
                 "%s (rank %d)\n",
                 what, r);
    std::abort();
  }
  ++g_held[r];
}

void OnRelease(LockRank rank) { --g_held[static_cast<int>(rank)]; }
#endif  // !NDEBUG
}  // namespace lockrank

namespace {
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread re-entrancy depths, keyed by lock instance. unordered_map keeps
// node-stable pointers, so Tls() can hand out a TlsDepth* that survives
// other locks' inserts.
thread_local std::unordered_map<const void*, void*> g_tls_depths;

// OrderedMutex hold depths for this thread. Entries exist only while the
// mutex is held (erased when the outermost unlock runs), so a destroyed
// mutex can never leave a stale entry behind to alias a new instance.
thread_local std::unordered_map<const void*, int> g_ordered_depths;
}  // namespace

EngineRwLock::TlsDepth* EngineRwLock::Tls() const {
  void*& slot = g_tls_depths[this];
  if (slot == nullptr) slot = new TlsDepth();
  return static_cast<TlsDepth*>(slot);
}

void EngineRwLock::DropTls() const {
  auto it = g_tls_depths.find(this);
  if (it != g_tls_depths.end()) {
    delete static_cast<TlsDepth*>(it->second);
    g_tls_depths.erase(it);
  }
}

EngineRwLock::~EngineRwLock() {
  // Only this thread's slot can be reclaimed here; other threads' slots for
  // a destroyed lock are tiny and vanish with the thread. A Database
  // outlives its worker threads in every supported embedding, so in
  // practice nothing accumulates.
  DropTls();
}

void EngineRwLock::LockShared() {
  TlsDepth* tls = Tls();
  if (tls->shared > 0 || tls->exclusive > 0) {
    // Re-entry: data-plane calls nested under a shared or exclusive hold
    // (delivery callbacks, CTAS running its SELECT) piggyback on the
    // outer hold.
    ++tls->shared;
    return;
  }
  shared_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!mu_.try_lock_shared()) {
    shared_contended_.fetch_add(1, std::memory_order_relaxed);
    const int64_t t0 = NowMicros();
    mu_.lock_shared();
    shared_wait_micros_.fetch_add(NowMicros() - t0,
                                  std::memory_order_relaxed);
  }
  lockrank::OnAcquire(LockRank::kEngine, /*allow_same_rank=*/false,
                      "engine shared");
  ++tls->shared;
}

void EngineRwLock::UnlockShared() {
  TlsDepth* tls = Tls();
  --tls->shared;
  if (tls->shared == 0 && tls->exclusive == 0) {
    lockrank::OnRelease(LockRank::kEngine);
    mu_.unlock_shared();
    DropTls();
  }
}

void EngineRwLock::LockExclusive() {
  TlsDepth* tls = Tls();
  if (tls->exclusive > 0) {
    ++tls->exclusive;
    return;
  }
  if (tls->shared > 0) {
    std::fprintf(stderr,
                 "EngineRwLock: exclusive acquisition while holding shared "
                 "(lock upgrade). A delivery callback or nested statement "
                 "attempted a control-plane operation (CREATE/DROP/SET/"
                 "subscribe) from inside a data-plane hold; this deadlocks "
                 "under concurrency and is forbidden (DESIGN decision 11).\n");
    std::abort();
  }
  exclusive_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!mu_.try_lock()) {
    exclusive_contended_.fetch_add(1, std::memory_order_relaxed);
    const int64_t t0 = NowMicros();
    mu_.lock();
    exclusive_wait_micros_.fetch_add(NowMicros() - t0,
                                     std::memory_order_relaxed);
  }
  lockrank::OnAcquire(LockRank::kEngine, /*allow_same_rank=*/false,
                      "engine exclusive");
  ++tls->exclusive;
}

void EngineRwLock::UnlockExclusive() {
  TlsDepth* tls = Tls();
  --tls->exclusive;
  if (tls->exclusive == 0) {
    lockrank::OnRelease(LockRank::kEngine);
    mu_.unlock();
    if (tls->shared == 0) DropTls();
  }
}

void OrderedMutex::lock() {
  int& depth = g_ordered_depths[this];
  if (depth > 0) {
    // Genuine same-mutex recursion: the rank was validated on the
    // outermost acquisition and nothing new can deadlock, so the order
    // check (and contention accounting) is skipped.
    mu_.lock();
    ++depth;
    return;
  }
  acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (!mu_.try_lock()) {
    contended_.fetch_add(1, std::memory_order_relaxed);
    mu_.lock();
  }
  lockrank::OnAcquire(rank_, allow_same_rank_, name_);
  ++depth;
}

void OrderedMutex::unlock() {
  auto it = g_ordered_depths.find(this);
  if (--it->second == 0) {
    lockrank::OnRelease(rank_);
    g_ordered_depths.erase(it);
  }
  mu_.unlock();
}

bool OrderedMutex::held_by_me() const {
  auto it = g_ordered_depths.find(this);
  return it != g_ordered_depths.end() && it->second > 0;
}

}  // namespace streamrel
