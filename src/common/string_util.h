#ifndef STREAMREL_COMMON_STRING_UTIL_H_
#define STREAMREL_COMMON_STRING_UTIL_H_

#include <string>
#include <vector>

namespace streamrel {

/// ASCII lowercase copy.
std::string ToLower(const std::string& s);

/// ASCII uppercase copy.
std::string ToUpper(const std::string& s);

/// Splits on runs of whitespace; no empty tokens.
std::vector<std::string> SplitWhitespace(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

}  // namespace streamrel

#endif  // STREAMREL_COMMON_STRING_UTIL_H_
