#ifndef STREAMREL_COMMON_RWLOCK_H_
#define STREAMREL_COMMON_RWLOCK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

namespace streamrel {

/// The engine lock hierarchy (DESIGN decision 11). Ranked locks must be
/// acquired in increasing rank order within a thread; debug builds abort on
/// a violation (see lockrank::OnAcquire). Same-rank nesting is legal only
/// where the wrapper opts in (stream locks nest along derived-stream
/// cascades, which form a forest, so cross-chain deadlock is impossible).
///
/// Fine-grained structure guards (runtime stream-map, catalog maps, metrics
/// registry, histogram cells) are deliberately NOT ranked: they are leaf
/// mutexes held for a few map operations with the invariant that no other
/// lock is ever acquired while one is held, so they can be taken from any
/// point in the hierarchy.
enum class LockRank : int {
  kEngine = 0,   // catalog/DDL reader-writer lock (Database)
  kSys = 1,      // sys_* introspection-table refresh
  kShard = 2,    // shared worker fleet (partition-parallel ingest)
  kStream = 3,   // per-stream ingest locks
  kDml = 4,      // table-write serialization (DML + channel sinks)
};
inline constexpr int kNumLockRanks = 5;

/// Debug-build lock-order assertions. Thread-local hold counts per rank;
/// acquiring a lock whose rank is lower than one already held aborts with
/// a diagnostic. Compiled to no-ops in NDEBUG builds.
namespace lockrank {
#ifndef NDEBUG
void OnAcquire(LockRank rank, bool allow_same_rank, const char* what);
void OnRelease(LockRank rank);
#else
inline void OnAcquire(LockRank, bool, const char*) {}
inline void OnRelease(LockRank) {}
#endif
}  // namespace lockrank

/// The catalog/DDL reader-writer lock: DDL-class statements take it
/// exclusive; every other entry point takes it shared. Re-entrant in both
/// directions that are safe:
///   - shared under shared or exclusive is a no-op (CTAS runs ExecuteSelect
///     under the exclusive DDL hold; delivery callbacks re-enter data-plane
///     entry points while their ingest holds shared);
///   - exclusive under exclusive recurses.
/// Exclusive under shared is an upgrade — inherently deadlock-prone — and
/// aborts with a diagnostic (delivery callbacks must not run control-plane
/// statements; see DESIGN decision 11).
///
/// Tracks contention: acquisition counts plus how often (and for how long)
/// an acquisition had to block, surfaced under `engine/lock` in SHOW STATS.
class EngineRwLock {
 public:
  EngineRwLock() = default;
  EngineRwLock(const EngineRwLock&) = delete;
  EngineRwLock& operator=(const EngineRwLock&) = delete;
  ~EngineRwLock();

  void LockShared();
  void UnlockShared();
  void LockExclusive();
  void UnlockExclusive();

  int64_t shared_acquisitions() const {
    return shared_acquisitions_.load(std::memory_order_relaxed);
  }
  int64_t exclusive_acquisitions() const {
    return exclusive_acquisitions_.load(std::memory_order_relaxed);
  }
  int64_t shared_contended() const {
    return shared_contended_.load(std::memory_order_relaxed);
  }
  int64_t exclusive_contended() const {
    return exclusive_contended_.load(std::memory_order_relaxed);
  }
  int64_t shared_wait_micros() const {
    return shared_wait_micros_.load(std::memory_order_relaxed);
  }
  int64_t exclusive_wait_micros() const {
    return exclusive_wait_micros_.load(std::memory_order_relaxed);
  }

 private:
  struct TlsDepth {
    int shared = 0;
    int exclusive = 0;
  };
  /// This thread's re-entrancy depths for this lock instance.
  TlsDepth* Tls() const;
  void DropTls() const;

  std::shared_mutex mu_;
  std::atomic<int64_t> shared_acquisitions_{0};
  std::atomic<int64_t> exclusive_acquisitions_{0};
  std::atomic<int64_t> shared_contended_{0};
  std::atomic<int64_t> exclusive_contended_{0};
  std::atomic<int64_t> shared_wait_micros_{0};
  std::atomic<int64_t> exclusive_wait_micros_{0};
};

class SharedLockGuard {
 public:
  explicit SharedLockGuard(EngineRwLock* lock) : lock_(lock) {
    lock_->LockShared();
  }
  ~SharedLockGuard() { lock_->UnlockShared(); }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  EngineRwLock* lock_;
};

class ExclusiveLockGuard {
 public:
  explicit ExclusiveLockGuard(EngineRwLock* lock) : lock_(lock) {
    lock_->LockExclusive();
  }
  ~ExclusiveLockGuard() { lock_->UnlockExclusive(); }
  ExclusiveLockGuard(const ExclusiveLockGuard&) = delete;
  ExclusiveLockGuard& operator=(const ExclusiveLockGuard&) = delete;

 private:
  EngineRwLock* lock_;
};

/// A ranked recursive mutex with contention counters: the per-stream
/// ingest locks (rank kStream, same-rank nesting allowed for cascades)
/// and the shard-fleet / DML locks. Recursive because delivery callbacks
/// may legitimately re-enter the runtime on the thread that drives ingest.
class OrderedMutex {
 public:
  OrderedMutex(LockRank rank, bool allow_same_rank, const char* name)
      : rank_(rank), allow_same_rank_(allow_same_rank), name_(name) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock();
  void unlock();
  /// True iff the calling thread currently holds this mutex. Entry points
  /// use this to skip re-acquisition on nested re-entry (a delivery
  /// callback re-entering Ingest already holds the shard lock, and taking
  /// it again "fresh" would violate the rank order against the stream
  /// lock the thread also holds).
  bool held_by_me() const;

  int64_t acquisitions() const {
    return acquisitions_.load(std::memory_order_relaxed);
  }
  int64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }

 private:
  std::recursive_mutex mu_;
  const LockRank rank_;
  const bool allow_same_rank_;
  const char* name_;
  std::atomic<int64_t> acquisitions_{0};
  std::atomic<int64_t> contended_{0};
};

}  // namespace streamrel

#endif  // STREAMREL_COMMON_RWLOCK_H_
