#include "common/csv.h"

#include <cstdio>

namespace streamrel::csv {

Result<std::vector<std::vector<std::string>>> SplitRecords(
    const std::string& text, char delimiter) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&]() {
    fields.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&]() {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {  // escaped quote
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"' && !field_started) {
      in_quotes = true;
      field_started = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r' && i + 1 < n && text[i + 1] == '\n') {
      end_record();
      i += 2;
      continue;
    }
    if (c == '\n') {
      end_record();
      ++i;
      continue;
    }
    field.push_back(c);
    field_started = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  // Final record without a trailing newline.
  if (!field.empty() || !fields.empty() || field_started) {
    end_record();
  }
  return records;
}

namespace {

Result<Value> ParseField(const std::string& field, DataType type,
                         const Options& options, size_t record,
                         size_t column) {
  if (field == options.null_token) return Value::Null();
  auto parsed = Value::String(field).CastTo(type);
  if (!parsed.ok()) {
    return Status::InvalidArgument(
        "CSV record " + std::to_string(record + 1) + ", column " +
        std::to_string(column + 1) + ": " + parsed.status().message());
  }
  return *parsed;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

void AppendField(const std::string& s, char delimiter, std::string* out) {
  if (!NeedsQuoting(s, delimiter)) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Result<std::vector<Row>> ParseText(const std::string& text,
                                   const Schema& schema,
                                   const Options& options) {
  ASSIGN_OR_RETURN(auto records, SplitRecords(text, options.delimiter));
  std::vector<Row> rows;
  size_t start = options.has_header && !records.empty() ? 1 : 0;
  rows.reserve(records.size() - start);
  for (size_t r = start; r < records.size(); ++r) {
    const auto& fields = records[r];
    // Tolerate a trailing fully-empty record (trailing newline artifacts).
    if (fields.size() == 1 && fields[0].empty() && r + 1 == records.size()) {
      break;
    }
    if (fields.size() != schema.num_columns()) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r + 1) + " has " +
          std::to_string(fields.size()) + " fields; expected " +
          std::to_string(schema.num_columns()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t c = 0; c < fields.size(); ++c) {
      ASSIGN_OR_RETURN(Value v, ParseField(fields[c],
                                           schema.column(c).type, options,
                                           r, c));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<Row>> ReadFile(const std::string& path,
                                  const Schema& schema,
                                  const Options& options) {
  FILE* file = fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string text;
  char buffer[64 * 1024];
  size_t got;
  while ((got = fread(buffer, 1, sizeof(buffer), file)) > 0) {
    text.append(buffer, got);
  }
  bool failed = ferror(file) != 0;
  fclose(file);
  if (failed) return Status::IoError("error reading '" + path + "'");
  return ParseText(text, schema, options);
}

std::string WriteText(const Schema& schema, const std::vector<Row>& rows,
                      const Options& options) {
  std::string out;
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    if (i > 0) out.push_back(options.delimiter);
    AppendField(schema.column(i).name, options.delimiter, &out);
  }
  out.push_back('\n');
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(options.delimiter);
      AppendField(row[i].is_null() ? options.null_token : row[i].ToString(),
                  options.delimiter, &out);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace streamrel::csv
