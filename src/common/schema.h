#ifndef STREAMREL_COMMON_SCHEMA_H_
#define STREAMREL_COMMON_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace streamrel {

/// One column of a table, stream, or intermediate result.
struct Column {
  std::string name;
  DataType type = DataType::kNull;
  /// Qualifier (table/stream alias) for disambiguation during binding;
  /// empty for computed columns.
  std::string qualifier;

  Column() = default;
  Column(std::string n, DataType t, std::string q = "")
      : name(std::move(n)), type(t), qualifier(std::move(q)) {}
};

/// An ordered list of columns. Immutable once built; cheap to copy.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column matching `name` (and `qualifier`, if non-empty).
  /// Returns nullopt if absent; an error via FindColumn on ambiguity.
  std::optional<size_t> IndexOf(const std::string& name,
                                const std::string& qualifier = "") const;

  /// Like IndexOf but errors on ambiguity or absence (used by the binder).
  Result<size_t> FindColumn(const std::string& name,
                            const std::string& qualifier = "") const;

  /// Concatenation used by joins. Column qualifiers are preserved.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Returns a copy with every column's qualifier replaced by `qualifier`
  /// (applying a table alias).
  Schema WithQualifier(const std::string& qualifier) const;

  /// "name type, name type, ..." — for error messages and tests.
  std::string ToString() const;

  bool Equals(const Schema& other) const;

 private:
  std::vector<Column> columns_;
};

/// A row is a flat vector of values, positionally aligned with a Schema.
using Row = std::vector<Value>;

/// Serializes `row` with Value::Serialize (length-prefixed).
void SerializeRow(const Row& row, std::string* out);

/// Inverse of SerializeRow starting at data[*offset].
Result<Row> DeserializeRow(const std::string& data, size_t* offset);

/// Debug rendering: "(v1, v2, ...)".
std::string RowToString(const Row& row);

}  // namespace streamrel

#endif  // STREAMREL_COMMON_SCHEMA_H_
