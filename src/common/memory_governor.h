#ifndef STREAMREL_COMMON_MEMORY_GOVERNOR_H_
#define STREAMREL_COMMON_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/value.h"

namespace streamrel {

using Row = std::vector<Value>;

/// Deterministic size model for admission accounting. Not the allocator's
/// truth — a stable estimate (struct size + string payload) so the same
/// workload charges the same bytes on every platform and every run.
int64_t EstimateValueBytes(const Value& v);
int64_t EstimateRowBytes(const Row& row);

/// Central byte-accounting ledger for everything the streaming runtime
/// buffers: window operator rows, shared-slice aggregator groups, shard
/// SPSC queue chunks, and reorder-buffer rows. Components charge on
/// retain and release on evict/drop; the admission controller in
/// StreamRuntime::Ingest consults held() vs. the budget to decide whether
/// a batch (or part of one) gets in.
///
/// Thread-safe: shard workers charge/release concurrently with the
/// coordinator, so all tallies are atomics. A budget of 0 means
/// unlimited (the default — existing tests and workloads see no change).
///
/// The governor never blocks or fails a charge: enforcement happens only
/// at admission time, at batch granularity. That keeps every interior
/// code path (window close, fold, restore) infallible and means held()
/// can transiently exceed the budget by at most one batch's footprint —
/// the documented 1.2x-budget peak bound.
class MemoryGovernor {
 public:
  enum class Account {
    kWindow = 0,     // WindowOperator buffered rows
    kAggregator,     // SliceAggregator group keys + states
    kShardQueue,     // in-flight ShardChunk rows
    kReorder,        // ReorderBuffer pending rows
    kNetSendQueue,   // frames queued for network subscribers
  };
  static constexpr int kNumAccounts = 5;

  /// 0 = unlimited.
  void SetBudget(int64_t bytes) {
    budget_.store(bytes < 0 ? 0 : bytes, std::memory_order_relaxed);
  }
  int64_t budget() const { return budget_.load(std::memory_order_relaxed); }

  void Add(Account account, int64_t bytes) {
    if (bytes == 0) return;
    accounts_[Index(account)].fetch_add(bytes, std::memory_order_relaxed);
    int64_t now =
        held_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // CAS high-water mark; contention is rare (only on new peaks).
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
  }
  void Release(Account account, int64_t bytes) {
    if (bytes == 0) return;
    accounts_[Index(account)].fetch_sub(bytes, std::memory_order_relaxed);
    held_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t held() const { return held_.load(std::memory_order_relaxed); }
  int64_t held(Account account) const {
    return accounts_[Index(account)].load(std::memory_order_relaxed);
  }
  int64_t peak_held() const {
    return peak_.load(std::memory_order_relaxed);
  }

  bool over_budget() const {
    int64_t b = budget();
    return b > 0 && held() >= b;
  }
  /// Bytes admittable before the budget is hit; INT64_MAX when unlimited.
  int64_t headroom() const {
    int64_t b = budget();
    if (b == 0) return INT64_MAX;
    int64_t h = held();
    return h >= b ? 0 : b - h;
  }

  /// Test hook: forgets the peak (budget and held are untouched).
  void ResetPeak() { peak_.store(held(), std::memory_order_relaxed); }

 private:
  static int Index(Account a) { return static_cast<int>(a); }

  std::atomic<int64_t> budget_{0};
  std::atomic<int64_t> held_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> accounts_[kNumAccounts] = {};
};

}  // namespace streamrel

#endif  // STREAMREL_COMMON_MEMORY_GOVERNOR_H_
