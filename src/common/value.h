#ifndef STREAMREL_COMMON_VALUE_H_
#define STREAMREL_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamrel {

/// Scalar SQL types supported by the engine.
///
/// kTimestamp and kInterval are stored as int64 microseconds (since the Unix
/// epoch, and as a duration, respectively) — the granularity TruSQL windows
/// operate at.
enum class DataType {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
  kInterval,
};

/// Returns the SQL-ish name of `type` ("bigint", "timestamp", ...).
const char* DataTypeToString(DataType type);

/// True for kInt64 and kDouble.
bool IsNumericType(DataType type);

/// A runtime scalar value: a DataType tag plus the payload. SQL NULL is a
/// Value whose type is kNull (NULLs are untyped at runtime, as in most
/// engines' executors).
class Value {
 public:
  /// Constructs SQL NULL.
  Value() : type_(DataType::kNull), i_(0), d_(0) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) {
    Value x;
    x.type_ = DataType::kBool;
    x.i_ = v ? 1 : 0;
    return x;
  }
  static Value Int64(int64_t v) {
    Value x;
    x.type_ = DataType::kInt64;
    x.i_ = v;
    return x;
  }
  static Value Double(double v) {
    Value x;
    x.type_ = DataType::kDouble;
    x.d_ = v;
    return x;
  }
  static Value String(std::string v) {
    Value x;
    x.type_ = DataType::kString;
    x.s_ = std::move(v);
    return x;
  }
  /// `micros` is microseconds since the Unix epoch.
  static Value Timestamp(int64_t micros) {
    Value x;
    x.type_ = DataType::kTimestamp;
    x.i_ = micros;
    return x;
  }
  /// `micros` is a signed duration in microseconds.
  static Value Interval(int64_t micros) {
    Value x;
    x.type_ = DataType::kInterval;
    x.i_ = micros;
    return x;
  }

  DataType type() const { return type_; }
  bool is_null() const { return type_ == DataType::kNull; }

  bool AsBool() const { return i_ != 0; }
  int64_t AsInt64() const { return i_; }
  double AsDouble() const {
    return type_ == DataType::kDouble ? d_ : static_cast<double>(i_);
  }
  const std::string& AsString() const { return s_; }
  int64_t AsTimestampMicros() const { return i_; }
  int64_t AsIntervalMicros() const { return i_; }

  /// Three-way comparison. NULL compares less than everything (used only for
  /// sorting; SQL comparison semantics with NULL are handled by the
  /// expression evaluator). Numeric types compare cross-type
  /// (1 == 1.0). Comparing incomparable types orders by type tag.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with Compare()==0 for same-type values and for
  /// int/double values that are exactly equal integers.
  size_t Hash() const;

  /// SQL-style rendering ("NULL", "42", "'abc'"-less plain text,
  /// ISO timestamps).
  std::string ToString() const;

  /// Converts this value to `target`. Numeric <-> numeric, string <-> most
  /// types (parse/print), timestamp <-> int64 (micros). NULL casts to NULL.
  Result<Value> CastTo(DataType target) const;

  /// Binary serialization used by the WAL and heap storage.
  void Serialize(std::string* out) const;
  /// Deserializes a value written by Serialize from data[*offset...];
  /// advances *offset. Returns an error on truncated input.
  static Result<Value> Deserialize(const std::string& data, size_t* offset);

 private:
  DataType type_;
  int64_t i_;     // bool / int64 / timestamp / interval payload
  double d_;      // double payload
  std::string s_; // string payload
};

/// Arithmetic with SQL type rules:
///   int op int -> int (div by zero -> error), any double -> double,
///   timestamp + interval -> timestamp, timestamp - timestamp -> interval,
///   interval +- interval -> interval, interval * num -> interval.
/// NULL in -> NULL out.
Result<Value> ValueAdd(const Value& a, const Value& b);
Result<Value> ValueSub(const Value& a, const Value& b);
Result<Value> ValueMul(const Value& a, const Value& b);
Result<Value> ValueDiv(const Value& a, const Value& b);
Result<Value> ValueMod(const Value& a, const Value& b);

}  // namespace streamrel

#endif  // STREAMREL_COMMON_VALUE_H_
