#ifndef STREAMREL_COMMON_FAULT_INJECTOR_H_
#define STREAMREL_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamrel {

/// What an armed fault point does when hit.
struct FaultPolicy {
  enum class Kind {
    kOff,          // pass through
    kFailOnce,     // fail the next hit, then disarm
    kFailNth,      // fail the nth hit after arming, then disarm
    kProbability,  // fail each hit with probability p (seeded, deterministic)
    kCrashAtHit,   // "crash the process" at the nth hit after arming: this
                   // and every later hit at ANY point fails until Reset
  };
  Kind kind = Kind::kOff;
  int64_t nth = 1;          // kFailNth / kCrashAtHit: 1-based, from arming
  double probability = 0.0;  // kProbability
  uint64_t seed = 0;         // kProbability: per-point RNG seed

  static FaultPolicy Off() { return {}; }
  static FaultPolicy FailOnce() {
    FaultPolicy p;
    p.kind = Kind::kFailOnce;
    return p;
  }
  static FaultPolicy FailNth(int64_t n) {
    FaultPolicy p;
    p.kind = Kind::kFailNth;
    p.nth = n;
    return p;
  }
  static FaultPolicy Probability(double prob, uint64_t seed) {
    FaultPolicy p;
    p.kind = Kind::kProbability;
    p.probability = prob;
    p.seed = seed;
    return p;
  }
  static FaultPolicy CrashAtHit(int64_t n) {
    FaultPolicy p;
    p.kind = Kind::kCrashAtHit;
    p.nth = n;
    return p;
  }

  std::string ToString() const;
};

/// Process-wide registry of named fault points. Instrumented code calls
/// Hit("wal.append") etc. at each would-be failure site; tests (or the
/// SET FAULT statement) arm deterministic policies per point. When nothing
/// is armed the hot path is a single relaxed atomic load.
///
/// Crash semantics: once a crash policy fires, the injector latches into a
/// "process is dead" state — EVERY subsequent hit at every point returns
/// the crash status until Reset(). Combined with
/// WriteAheadLog::SimulateCrash this models a real kill: no code path can
/// sneak another durable write in after the crash instant.
///
/// Known points: wal.append, wal.sync, disk.write, channel.sink,
/// checkpoint.write, shard.enqueue, net.accept, net.read, net.write. The
/// registry is open — arming an unknown name is allowed (it just never
/// fires).
///
/// Thread-safe; fully deterministic for a given seed and hit sequence.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// The hot path. Returns non-OK when the point's policy (or the global
  /// crash counter) fires.
  Status Hit(const char* point);

  void Arm(const std::string& point, FaultPolicy policy);
  void Disarm(const std::string& point);

  /// Crash at the k-th hit counted across ALL points (1-based, counted
  /// from this call). The torture harness sweeps k to crash the engine at
  /// every reachable fault site in turn.
  void ArmCrashAtGlobalHit(int64_t k);

  /// Count hits (for a later Snapshot) even with no policy armed. The
  /// torture harness runs a workload once in counting mode to learn how
  /// many hits it produces.
  void EnableCounting(bool on);

  /// Clears all policies, counters, and the crash latch.
  void Reset();

  bool crashed() const;

  /// True for the status Hit() returns once a crash policy fired.
  static bool IsInjectedCrash(const Status& status);

  struct PointInfo {
    std::string point;
    std::string policy;
    int64_t hits = 0;
    int64_t fires = 0;
  };
  /// Every point that has been armed or hit, by name.
  std::vector<PointInfo> Snapshot() const;

  struct Totals {
    int64_t hits = 0;
    int64_t fires = 0;
    int64_t crashes = 0;
  };
  Totals totals() const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector() = default;

  struct PointState {
    FaultPolicy policy;
    int64_t hits = 0;            // lifetime hits (until Reset)
    int64_t fires = 0;           // lifetime fires
    int64_t hits_since_arm = 0;  // kFailNth / kCrashAtHit progress
    uint64_t rng_state = 0;      // kProbability stream
  };

  void RecomputeActiveLocked();

  /// True when any policy is armed, counting is on, or a global crash
  /// counter / crash latch is set; gates the hot path.
  std::atomic<bool> active_{false};
  mutable std::mutex mu_;
  std::map<std::string, PointState> points_;
  bool counting_ = false;
  bool crashed_ = false;
  int64_t global_hits_ = 0;
  int64_t global_crash_at_ = 0;  // 0 = off
  int64_t total_fires_ = 0;
  int64_t crashes_fired_ = 0;
};

}  // namespace streamrel

#endif  // STREAMREL_COMMON_FAULT_INJECTOR_H_
