#include "common/status.h"

namespace streamrel {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kIoError:
      return "I/O error";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kExecutionError:
      return "Execution error";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace streamrel
