#ifndef STREAMREL_COMMON_CSV_H_
#define STREAMREL_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace streamrel::csv {

struct Options {
  char delimiter = ',';
  /// Skip the first record (column names).
  bool has_header = false;
  /// An unquoted field equal to this parses as SQL NULL.
  std::string null_token;
};

/// Parses CSV `text` into rows conforming to `schema`: each field is
/// parsed as the column's type (timestamps as "YYYY-MM-DD HH:MM:SS",
/// intervals as "5 minutes", ...). Supports RFC-4180 quoting
/// ("a ""quoted"" field", embedded delimiters and newlines). Rows must
/// match the schema's arity.
Result<std::vector<Row>> ParseText(const std::string& text,
                                   const Schema& schema,
                                   const Options& options = Options());

/// ParseText over a file's contents.
Result<std::vector<Row>> ReadFile(const std::string& path,
                                  const Schema& schema,
                                  const Options& options = Options());

/// Renders rows as CSV (header from schema column names, values quoted
/// when they contain the delimiter, quotes, or newlines; NULL as the
/// null_token).
std::string WriteText(const Schema& schema, const std::vector<Row>& rows,
                      const Options& options = Options());

/// Splits one CSV record's raw fields (exposed for tests).
Result<std::vector<std::vector<std::string>>> SplitRecords(
    const std::string& text, char delimiter);

}  // namespace streamrel::csv

#endif  // STREAMREL_COMMON_CSV_H_
