#include "common/fault_injector.h"

namespace streamrel {

namespace {

constexpr const char* kCrashPrefix = "injected crash at fault point '";

/// splitmix64: tiny, high-quality, and identical everywhere — the
/// probabilistic policy must reproduce the same fire pattern for a given
/// seed on every platform.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Status CrashStatus(const std::string& point) {
  return Status::IoError(kCrashPrefix + point + "'");
}

Status FaultStatus(const std::string& point) {
  return Status::IoError("injected fault at fault point '" + point + "'");
}

}  // namespace

std::string FaultPolicy::ToString() const {
  switch (kind) {
    case Kind::kOff:
      return "off";
    case Kind::kFailOnce:
      return "fail-once";
    case Kind::kFailNth:
      return "fail-nth(" + std::to_string(nth) + ")";
    case Kind::kProbability:
      return "probability(" + std::to_string(probability) + ", seed " +
             std::to_string(seed) + ")";
    case Kind::kCrashAtHit:
      return "crash-at-hit(" + std::to_string(nth) + ")";
  }
  return "off";
}

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::Hit(const char* point) {
  if (!active_.load(std::memory_order_relaxed)) return Status::OK();
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashStatus(point);
  ++global_hits_;
  PointState& state = points_[point];  // lazily registers the point
  ++state.hits;
  if (global_crash_at_ > 0 && global_hits_ >= global_crash_at_) {
    crashed_ = true;
    ++crashes_fired_;
    ++total_fires_;
    ++state.fires;
    return CrashStatus(point);
  }
  switch (state.policy.kind) {
    case FaultPolicy::Kind::kOff:
      return Status::OK();
    case FaultPolicy::Kind::kFailOnce: {
      state.policy = FaultPolicy::Off();
      ++state.fires;
      ++total_fires_;
      RecomputeActiveLocked();
      return FaultStatus(point);
    }
    case FaultPolicy::Kind::kFailNth: {
      if (++state.hits_since_arm < state.policy.nth) return Status::OK();
      state.policy = FaultPolicy::Off();
      ++state.fires;
      ++total_fires_;
      RecomputeActiveLocked();
      return FaultStatus(point);
    }
    case FaultPolicy::Kind::kProbability: {
      // 53-bit uniform in [0, 1): bit-identical across platforms.
      double u = static_cast<double>(NextRandom(&state.rng_state) >> 11) *
                 (1.0 / 9007199254740992.0);
      if (u >= state.policy.probability) return Status::OK();
      ++state.fires;
      ++total_fires_;
      return FaultStatus(point);
    }
    case FaultPolicy::Kind::kCrashAtHit: {
      if (++state.hits_since_arm < state.policy.nth) return Status::OK();
      crashed_ = true;
      ++crashes_fired_;
      ++state.fires;
      ++total_fires_;
      return CrashStatus(point);
    }
  }
  return Status::OK();
}

void FaultInjector::Arm(const std::string& point, FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[point];
  state.policy = policy;
  state.hits_since_arm = 0;
  state.rng_state = policy.seed;
  RecomputeActiveLocked();
}

void FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it != points_.end()) it->second.policy = FaultPolicy::Off();
  RecomputeActiveLocked();
}

void FaultInjector::ArmCrashAtGlobalHit(int64_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  global_hits_ = 0;
  global_crash_at_ = k;
  RecomputeActiveLocked();
}

void FaultInjector::EnableCounting(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  counting_ = on;
  RecomputeActiveLocked();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  counting_ = false;
  crashed_ = false;
  global_hits_ = 0;
  global_crash_at_ = 0;
  total_fires_ = 0;
  crashes_fired_ = 0;
  active_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

bool FaultInjector::IsInjectedCrash(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

std::vector<FaultInjector::PointInfo> FaultInjector::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PointInfo> out;
  out.reserve(points_.size());
  for (const auto& [name, state] : points_) {
    out.push_back(
        PointInfo{name, state.policy.ToString(), state.hits, state.fires});
  }
  return out;
}

FaultInjector::Totals FaultInjector::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Totals{global_hits_, total_fires_, crashes_fired_};
}

void FaultInjector::RecomputeActiveLocked() {
  bool armed = counting_ || crashed_ || global_crash_at_ > 0;
  if (!armed) {
    for (const auto& [name, state] : points_) {
      if (state.policy.kind != FaultPolicy::Kind::kOff) {
        armed = true;
        break;
      }
    }
  }
  active_.store(armed, std::memory_order_relaxed);
}

}  // namespace streamrel
