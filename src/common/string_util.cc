#include "common/string_util.h"

#include <cctype>

namespace streamrel {

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> SplitWhitespace(const std::string& s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (tolower(static_cast<unsigned char>(a[i])) !=
        tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace streamrel
