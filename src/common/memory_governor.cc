#include "common/memory_governor.h"

namespace streamrel {

int64_t EstimateValueBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.type() == DataType::kString) {
    bytes += static_cast<int64_t>(v.AsString().size());
  }
  return bytes;
}

int64_t EstimateRowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row) bytes += EstimateValueBytes(v);
  return bytes;
}

}  // namespace streamrel
