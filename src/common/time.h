#ifndef STREAMREL_COMMON_TIME_H_
#define STREAMREL_COMMON_TIME_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace streamrel {

// All engine time is int64 microseconds. Timestamps are micros since the
// Unix epoch (UTC); intervals are signed durations in micros.

inline constexpr int64_t kMicrosPerMilli = 1000;
inline constexpr int64_t kMicrosPerSecond = 1000 * kMicrosPerMilli;
inline constexpr int64_t kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr int64_t kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr int64_t kMicrosPerDay = 24 * kMicrosPerHour;
inline constexpr int64_t kMicrosPerWeek = 7 * kMicrosPerDay;

/// Parses "YYYY-MM-DD[ HH:MM:SS[.ffffff]]" (UTC) into epoch micros.
Result<int64_t> ParseTimestampMicros(const std::string& text);

/// Formats epoch micros as "YYYY-MM-DD HH:MM:SS[.ffffff]" (UTC).
std::string FormatTimestampMicros(int64_t micros);

/// Parses TruSQL interval text: "<number> <unit>" pairs where unit is one of
/// microsecond(s)/millisecond(s)/second(s)/minute(s)/hour(s)/day(s)/week(s),
/// e.g. "5 minutes", "1 hour 30 minutes", "250 milliseconds".
Result<int64_t> ParseIntervalMicros(const std::string& text);

/// Formats an interval in the largest exact unit, e.g. "5 minutes",
/// "90 seconds", "1500000 microseconds".
std::string FormatIntervalMicros(int64_t micros);

}  // namespace streamrel

#endif  // STREAMREL_COMMON_TIME_H_
