#ifndef STREAMREL_COMMON_STATUS_H_
#define STREAMREL_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace streamrel {

/// Error categories used across the engine. Modeled after the Status idiom
/// used by Arrow/RocksDB: fallible APIs return Status or Result<T>; the
/// engine does not throw exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // SQL text did not parse
  kBindError,         // name/type resolution failed
  kNotFound,          // catalog object missing
  kAlreadyExists,     // catalog object duplicated
  kNotImplemented,    // unsupported (yet) feature reached
  kInternal,          // invariant violation inside the engine
  kIoError,           // simulated-disk / WAL failure
  kAborted,           // transaction aborted
  kExecutionError,    // runtime evaluation error (e.g. division by zero)
  kUnavailable,       // network peer unreachable / deadline expired
};

/// Returns a short human-readable name for `code` (e.g. "Invalid argument").
const char* StatusCodeToString(StatusCode code);

/// A cheap value type carrying success or an (code, message) error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a T or an error Status. `ValueOrDie()`/`*` assert success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& ValueOrDie() {
    assert(ok());
    return *value_;
  }
  const T& ValueOrDie() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out; only valid when ok().
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller, Arrow-style.
#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::streamrel::Status _st = (expr);        \
    if (!_st.ok()) return _st;               \
  } while (0)

#define SR_CONCAT_IMPL(a, b) a##b
#define SR_CONCAT(a, b) SR_CONCAT_IMPL(a, b)

// ASSIGN_OR_RETURN(lhs, rexpr): evaluates rexpr (a Result<T>), returns its
// status on error, otherwise move-assigns the value into `lhs`.
#define ASSIGN_OR_RETURN(lhs, rexpr)                        \
  auto SR_CONCAT(_res_, __LINE__) = (rexpr);                \
  if (!SR_CONCAT(_res_, __LINE__).ok())                     \
    return SR_CONCAT(_res_, __LINE__).status();             \
  lhs = SR_CONCAT(_res_, __LINE__).TakeValue()

}  // namespace streamrel

#endif  // STREAMREL_COMMON_STATUS_H_
