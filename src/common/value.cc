#include "common/value.h"

#include <cmath>
#include <cstring>
#include <functional>

#include "common/time.h"

namespace streamrel {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "null";
    case DataType::kBool:
      return "boolean";
    case DataType::kInt64:
      return "bigint";
    case DataType::kDouble:
      return "double";
    case DataType::kString:
      return "varchar";
    case DataType::kTimestamp:
      return "timestamp";
    case DataType::kInterval:
      return "interval";
  }
  return "unknown";
}

bool IsNumericType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kDouble;
}

int Value::Compare(const Value& other) const {
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  // Cross-type numeric comparison.
  if (IsNumericType(type_) && IsNumericType(other.type_)) {
    if (type_ == DataType::kInt64 && other.type_ == DataType::kInt64) {
      return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval:
      return i_ < other.i_ ? -1 : (i_ > other.i_ ? 1 : 0);
    case DataType::kDouble: {
      return d_ < other.d_ ? -1 : (d_ > other.d_ ? 1 : 0);
    }
    case DataType::kString: {
      int c = s_.compare(other.s_);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;
  }
}

size_t Value::Hash() const {
  switch (type_) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval:
      return std::hash<int64_t>()(i_);
    case DataType::kDouble: {
      // Hash exact-integer doubles like the equal int64 so cross-type
      // equality implies equal hashes.
      double r = std::round(d_);
      if (r == d_ && std::abs(d_) < 9.2e18) {
        return std::hash<int64_t>()(static_cast<int64_t>(d_));
      }
      return std::hash<double>()(d_);
    }
    case DataType::kString:
      return std::hash<std::string>()(s_);
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return i_ ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(i_);
    case DataType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%g", d_);
      return buf;
    }
    case DataType::kString:
      return s_;
    case DataType::kTimestamp:
      return FormatTimestampMicros(i_);
    case DataType::kInterval:
      return FormatIntervalMicros(i_);
  }
  return "?";
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null() || type_ == target) return *this;
  switch (target) {
    case DataType::kBool:
      if (type_ == DataType::kInt64) return Value::Bool(i_ != 0);
      if (type_ == DataType::kString) {
        if (s_ == "true" || s_ == "t" || s_ == "1") return Value::Bool(true);
        if (s_ == "false" || s_ == "f" || s_ == "0") return Value::Bool(false);
        return Status::InvalidArgument("cannot cast '" + s_ + "' to boolean");
      }
      break;
    case DataType::kInt64:
      if (type_ == DataType::kDouble) {
        return Value::Int64(static_cast<int64_t>(d_));
      }
      if (type_ == DataType::kBool) return Value::Int64(i_);
      if (type_ == DataType::kTimestamp || type_ == DataType::kInterval) {
        return Value::Int64(i_);
      }
      if (type_ == DataType::kString) {
        errno = 0;
        char* end = nullptr;
        long long v = strtoll(s_.c_str(), &end, 10);
        if (errno != 0 || end == s_.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + s_ +
                                         "' to bigint");
        }
        return Value::Int64(v);
      }
      break;
    case DataType::kDouble:
      if (type_ == DataType::kInt64 || type_ == DataType::kBool) {
        return Value::Double(static_cast<double>(i_));
      }
      if (type_ == DataType::kString) {
        errno = 0;
        char* end = nullptr;
        double v = strtod(s_.c_str(), &end);
        if (errno != 0 || end == s_.c_str() || *end != '\0') {
          return Status::InvalidArgument("cannot cast '" + s_ +
                                         "' to double");
        }
        return Value::Double(v);
      }
      break;
    case DataType::kString:
      return Value::String(ToString());
    case DataType::kTimestamp:
      if (type_ == DataType::kInt64) return Value::Timestamp(i_);
      if (type_ == DataType::kString) {
        auto r = ParseTimestampMicros(s_);
        if (!r.ok()) return r.status();
        return Value::Timestamp(*r);
      }
      break;
    case DataType::kInterval:
      if (type_ == DataType::kInt64) return Value::Interval(i_);
      if (type_ == DataType::kString) {
        auto r = ParseIntervalMicros(s_);
        if (!r.ok()) return r.status();
        return Value::Interval(*r);
      }
      break;
    case DataType::kNull:
      break;
  }
  return Status::InvalidArgument(std::string("cannot cast ") +
                                 DataTypeToString(type_) + " to " +
                                 DataTypeToString(target));
}

void Value::Serialize(std::string* out) const {
  out->push_back(static_cast<char>(type_));
  switch (type_) {
    case DataType::kNull:
      break;
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval: {
      out->append(reinterpret_cast<const char*>(&i_), sizeof(i_));
      break;
    }
    case DataType::kDouble: {
      out->append(reinterpret_cast<const char*>(&d_), sizeof(d_));
      break;
    }
    case DataType::kString: {
      uint32_t len = static_cast<uint32_t>(s_.size());
      out->append(reinterpret_cast<const char*>(&len), sizeof(len));
      out->append(s_);
      break;
    }
  }
}

Result<Value> Value::Deserialize(const std::string& data, size_t* offset) {
  if (*offset >= data.size()) {
    return Status::IoError("truncated value: missing type tag");
  }
  DataType type = static_cast<DataType>(data[*offset]);
  ++*offset;
  auto need = [&](size_t n) -> Status {
    if (*offset + n > data.size()) {
      return Status::IoError("truncated value payload");
    }
    return Status::OK();
  };
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kBool:
    case DataType::kInt64:
    case DataType::kTimestamp:
    case DataType::kInterval: {
      RETURN_IF_ERROR(need(sizeof(int64_t)));
      int64_t v;
      memcpy(&v, data.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      if (type == DataType::kBool) return Value::Bool(v != 0);
      if (type == DataType::kTimestamp) return Value::Timestamp(v);
      if (type == DataType::kInterval) return Value::Interval(v);
      return Value::Int64(v);
    }
    case DataType::kDouble: {
      RETURN_IF_ERROR(need(sizeof(double)));
      double v;
      memcpy(&v, data.data() + *offset, sizeof(v));
      *offset += sizeof(v);
      return Value::Double(v);
    }
    case DataType::kString: {
      RETURN_IF_ERROR(need(sizeof(uint32_t)));
      uint32_t len;
      memcpy(&len, data.data() + *offset, sizeof(len));
      *offset += sizeof(len);
      RETURN_IF_ERROR(need(len));
      Value v = Value::String(data.substr(*offset, len));
      *offset += len;
      return v;
    }
  }
  return Status::IoError("unknown value type tag");
}

namespace {

// Shared helper for the numeric arithmetic cases. `iop` may fail (division
// by zero); `dop` is infallible.
template <typename IntOp, typename DoubleOp>
Result<Value> NumericBinary(const Value& a, const Value& b, IntOp iop,
                            DoubleOp dop, const char* opname) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kInt64 && b.type() == DataType::kInt64) {
    return iop(a.AsInt64(), b.AsInt64());
  }
  if (IsNumericType(a.type()) && IsNumericType(b.type())) {
    return dop(a.AsDouble(), b.AsDouble());
  }
  return Status::ExecutionError(std::string("cannot apply ") + opname +
                                " to " + DataTypeToString(a.type()) + " and " +
                                DataTypeToString(b.type()));
}

}  // namespace

Result<Value> ValueAdd(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kTimestamp && b.type() == DataType::kInterval) {
    return Value::Timestamp(a.AsTimestampMicros() + b.AsIntervalMicros());
  }
  if (a.type() == DataType::kInterval && b.type() == DataType::kTimestamp) {
    return Value::Timestamp(b.AsTimestampMicros() + a.AsIntervalMicros());
  }
  if (a.type() == DataType::kInterval && b.type() == DataType::kInterval) {
    return Value::Interval(a.AsIntervalMicros() + b.AsIntervalMicros());
  }
  if (a.type() == DataType::kString && b.type() == DataType::kString) {
    return Value::String(a.AsString() + b.AsString());
  }
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) -> Result<Value> { return Value::Int64(x + y); },
      [](double x, double y) -> Result<Value> { return Value::Double(x + y); },
      "+");
}

Result<Value> ValueSub(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kTimestamp && b.type() == DataType::kInterval) {
    return Value::Timestamp(a.AsTimestampMicros() - b.AsIntervalMicros());
  }
  if (a.type() == DataType::kTimestamp && b.type() == DataType::kTimestamp) {
    return Value::Interval(a.AsTimestampMicros() - b.AsTimestampMicros());
  }
  if (a.type() == DataType::kInterval && b.type() == DataType::kInterval) {
    return Value::Interval(a.AsIntervalMicros() - b.AsIntervalMicros());
  }
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) -> Result<Value> { return Value::Int64(x - y); },
      [](double x, double y) -> Result<Value> { return Value::Double(x - y); },
      "-");
}

Result<Value> ValueMul(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kInterval && IsNumericType(b.type())) {
    return Value::Interval(
        static_cast<int64_t>(a.AsIntervalMicros() * b.AsDouble()));
  }
  if (IsNumericType(a.type()) && b.type() == DataType::kInterval) {
    return Value::Interval(
        static_cast<int64_t>(b.AsIntervalMicros() * a.AsDouble()));
  }
  return NumericBinary(
      a, b, [](int64_t x, int64_t y) -> Result<Value> { return Value::Int64(x * y); },
      [](double x, double y) -> Result<Value> { return Value::Double(x * y); },
      "*");
}

Result<Value> ValueDiv(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (a.type() == DataType::kInterval && IsNumericType(b.type())) {
    double d = b.AsDouble();
    if (d == 0) return Status::ExecutionError("interval division by zero");
    return Value::Interval(static_cast<int64_t>(a.AsIntervalMicros() / d));
  }
  return NumericBinary(
      a, b,
      [](int64_t x, int64_t y) -> Result<Value> {
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Int64(x / y);
      },
      [](double x, double y) -> Result<Value> {
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Double(x / y);
      },
      "/");
}

Result<Value> ValueMod(const Value& a, const Value& b) {
  return NumericBinary(
      a, b,
      [](int64_t x, int64_t y) -> Result<Value> {
        if (y == 0) return Status::ExecutionError("modulo by zero");
        return Value::Int64(x % y);
      },
      [](double x, double y) -> Result<Value> {
        if (y == 0) return Status::ExecutionError("modulo by zero");
        return Value::Double(std::fmod(x, y));
      },
      "%");
}

}  // namespace streamrel
