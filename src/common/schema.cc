#include "common/schema.h"

#include <cstring>

#include "common/string_util.h"

namespace streamrel {

std::optional<size_t> Schema::IndexOf(const std::string& name,
                                      const std::string& qualifier) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name) &&
        (qualifier.empty() ||
         EqualsIgnoreCase(columns_[i].qualifier, qualifier))) {
      return i;
    }
  }
  return std::nullopt;
}

Result<size_t> Schema::FindColumn(const std::string& name,
                                  const std::string& qualifier) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name) &&
        (qualifier.empty() ||
         EqualsIgnoreCase(columns_[i].qualifier, qualifier))) {
      if (found.has_value()) {
        return Status::BindError("ambiguous column reference: " +
                                 (qualifier.empty() ? name
                                                    : qualifier + "." + name));
      }
      found = i;
    }
  }
  if (!found.has_value()) {
    return Status::BindError("column not found: " +
                             (qualifier.empty() ? name
                                                : qualifier + "." + name));
  }
  return *found;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.qualifier = qualifier;
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!columns_[i].qualifier.empty()) {
      out += columns_[i].qualifier + ".";
    }
    out += columns_[i].name;
    out += " ";
    out += DataTypeToString(columns_[i].type);
  }
  return out;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (!EqualsIgnoreCase(columns_[i].name, other.columns_[i].name) ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

void SerializeRow(const Row& row, std::string* out) {
  uint32_t n = static_cast<uint32_t>(row.size());
  out->append(reinterpret_cast<const char*>(&n), sizeof(n));
  for (const Value& v : row) v.Serialize(out);
}

Result<Row> DeserializeRow(const std::string& data, size_t* offset) {
  if (*offset + sizeof(uint32_t) > data.size()) {
    return Status::IoError("truncated row header");
  }
  uint32_t n;
  memcpy(&n, data.data() + *offset, sizeof(n));
  *offset += sizeof(n);
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Value v, Value::Deserialize(data, offset));
    row.push_back(std::move(v));
  }
  return row;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace streamrel
