#ifndef STREAMREL_ENGINE_DATABASE_H_
#define STREAMREL_ENGINE_DATABASE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "storage/disk.h"
#include "storage/transaction.h"
#include "storage/wal.h"
#include "stream/recovery.h"
#include "stream/runtime.h"

namespace streamrel::engine {

/// Engine configuration.
struct DatabaseOptions {
  storage::DiskModel disk_model;
  /// fsync the WAL after every append (the expensive, fully-durable
  /// store-first configuration); otherwise syncs happen at commit
  /// boundaries.
  bool wal_sync_every_append = false;
  size_t heap_page_size = 64 * 1024;
};

/// Result of one statement: rows for SELECT, a tag for DDL/DML.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  std::string message;  // e.g. "CREATE TABLE", "INSERT 3"
};

/// Point-in-time engine statistics: the full metrics-registry snapshot
/// (every per-stream/CQ/channel/aggregator counter and gauge the runtime
/// tracks) plus storage-layer totals. `SHOW STATS` returns the same data
/// as rows.
struct EngineStats {
  std::vector<stream::MetricSample> metrics;
  storage::DiskStats disk;
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
};

/// The stream-relational database: a full SQL engine (tables, indexes,
/// MVCC transactions, WAL) with TruSQL stream extensions (streams, windows,
/// continuous queries, derived streams, channels, active tables) —
/// the paper's Continuous Analytics system.
///
/// Usage: Execute() runs DDL, INSERT, and snapshot SELECTs.
/// CreateContinuousQuery() starts a CQ from a stream-referencing SELECT and
/// returns a handle for subscribing to its per-window results. Ingest()
/// pushes ordered rows into a raw stream, driving the whole dataflow.
///
/// Thread safety: the public entry points (Execute, Ingest, AdvanceTime,
/// CreateContinuousQuery, DropContinuousQuery, StatsSnapshot, ...) serialize
/// on one engine mutex, so concurrent callers are safe — statements execute
/// one at a time. The mutex is recursive because CQ delivery callbacks fire
/// inside Ingest and may legitimately call back into the database.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  /// Re-opens a database over existing storage (restart simulation): the
  /// catalog starts empty — re-run the DDL, then call RecoverFromWal().
  Database(std::shared_ptr<storage::SimulatedDisk> disk,
           std::shared_ptr<storage::WriteAheadLog> wal,
           DatabaseOptions options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one or more ';'-separated statements; returns the last
  /// statement's result. Continuous SELECTs are rejected here — use
  /// CreateContinuousQuery.
  Result<QueryResult> Execute(const std::string& sql);

  /// Starts a named continuous query from a SELECT over a windowed stream.
  Result<stream::ContinuousQuery*> CreateContinuousQuery(
      const std::string& name, const std::string& select_sql,
      bool allow_shared = true);

  Status DropContinuousQuery(const std::string& name);

  /// Pushes ordered rows into a raw stream. For CQTIME SYSTEM streams pass
  /// `system_time`; CQTIME USER streams read their timestamp column.
  Status Ingest(const std::string& stream, const std::vector<Row>& rows,
                int64_t system_time = INT64_MIN);

  /// Heartbeat: closes windows up to `watermark` without new data.
  Status AdvanceTime(const std::string& stream, int64_t watermark);

  /// WAL replay into the (re-created) tables; returns channel watermarks
  /// and checkpoint blobs for the recovery strategies in stream/recovery.h.
  Result<stream::WalReplayResult> RecoverFromWal();

  // Component access (benchmarks, tests, recovery drivers).
  catalog::Catalog* catalog() { return &catalog_; }
  storage::TransactionManager* txns() { return &txns_; }
  stream::StreamRuntime* runtime() { return &runtime_; }
  const std::shared_ptr<storage::SimulatedDisk>& disk() const {
    return disk_;
  }
  const std::shared_ptr<storage::WriteAheadLog>& wal() const { return wal_; }

  /// Logical clock: the max watermark observed across streams; INSERT
  /// transactions commit at this time (so CQ window-consistent snapshots
  /// order them against window closes).
  int64_t now_micros() const { return now_micros_; }
  void SetClock(int64_t now) { now_micros_ = now; }

  /// True while an explicit BEGIN ... COMMIT/ROLLBACK block is open.
  bool in_transaction() const { return active_txn_.has_value(); }

  /// Rebuilds the sys_* introspection tables (sys_tables, sys_streams,
  /// sys_cqs, sys_channels) from current catalog/runtime state. Runs
  /// automatically before every snapshot SELECT; exposed for tools.
  Status RefreshSystemTables();

  /// Refreshes pull-style gauges (and WAL/disk totals) and returns the
  /// complete metrics snapshot. The struct-API twin of `SHOW STATS`.
  EngineStats StatsSnapshot();

  // --- live subscriptions (the engine side of SUBSCRIBE TO) -----------------

  /// Handle for a live subscription created by Subscribe(); pass it back
  /// to Unsubscribe() to detach.
  struct SubscriptionTicket {
    bool is_cq = false;
    std::string object;  // lowercased CQ or stream name
    int64_t id = 0;      // runtime callback id
    Schema schema;       // delivered row schema (CQ output / stream schema)
    /// Lowercased source stream (the object itself, or the CQ's input);
    /// its overload policy governs slow network consumers.
    std::string source_stream;
  };

  /// Attaches `callback` to a CQ's window-close results or a stream's
  /// published batches (CQ names win when both exist). The callback fires
  /// under the engine mutex on whatever thread drives ingest; it must not
  /// block indefinitely and must not fail the engine (return OK).
  Result<SubscriptionTicket> Subscribe(const std::string& name,
                                       stream::CqCallback callback);

  /// Detaches a subscription; a ticket whose object has since been
  /// dropped is a no-op.
  Status Unsubscribe(const SubscriptionTicket& ticket);

  /// Extra metric sources folded into StatsSnapshot() (the network server
  /// publishes its `net` scope this way). Providers run under the engine
  /// mutex; re-registering a key replaces the provider.
  using StatsProvider =
      std::function<void(std::vector<stream::MetricSample>*)>;
  void RegisterStatsProvider(const std::string& key, StatsProvider provider);
  void UnregisterStatsProvider(const std::string& key);

 private:
  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt);
  Result<QueryResult> ExecuteSelect(const sql::SelectStmt& stmt);
  Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt);
  Result<QueryResult> ExecuteVacuum(const sql::VacuumStmt& stmt);
  Result<QueryResult> ExecuteExplain(const sql::ExplainStmt& stmt);
  Result<QueryResult> ExecuteTransaction(const sql::TransactionStmt& stmt);
  Result<QueryResult> ExecuteShowStats(const sql::ShowStatsStmt& stmt);
  Result<QueryResult> ExecuteSet(const sql::SetStmt& stmt);
  Result<QueryResult> ExecuteSetFault(const sql::SetFaultStmt& stmt);
  Result<QueryResult> ExecuteShowFaults(const sql::ShowFaultsStmt& stmt);

  /// The write transaction for a DML statement: the open explicit
  /// transaction if any (already WAL-logged), else a fresh autocommit one
  /// (logs kBegin). `*autocommit` tells the caller whether to commit it.
  Result<storage::TxnId> BeginWrite(bool* autocommit);
  /// Commits an autocommit write (WAL kCommit + sync); no-op inside an
  /// explicit transaction.
  Status EndWrite(storage::TxnId txn, bool autocommit);
  /// Scans `table`'s rows visible now that satisfy `where` (nullable AST).
  Result<std::vector<std::pair<storage::RowId, Row>>> CollectMatches(
      catalog::TableInfo* table, const sql::Expr* where);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateStream(const sql::CreateStreamStmt& stmt);
  Result<QueryResult> ExecuteCreateDerivedStream(
      const sql::CreateDerivedStreamStmt& stmt);
  Result<QueryResult> ExecuteCreateView(const sql::CreateViewStmt& stmt);
  Result<QueryResult> ExecuteCreateChannel(const sql::CreateChannelStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteDrop(const sql::DropStmt& stmt);

  Result<Schema> SchemaFromColumnDefs(
      const std::vector<sql::ColumnDef>& defs) const;

  /// Serializes all public entry points (recursive: delivery callbacks
  /// re-enter the engine from inside Ingest on the same thread).
  mutable std::recursive_mutex engine_mu_;
  DatabaseOptions options_;
  std::shared_ptr<storage::SimulatedDisk> disk_;
  std::shared_ptr<storage::WriteAheadLog> wal_;
  storage::TransactionManager txns_;
  catalog::Catalog catalog_;
  stream::StreamRuntime runtime_;
  int64_t now_micros_ = 0;
  std::optional<storage::TxnId> active_txn_;
  std::map<std::string, StatsProvider> stats_providers_;
  // Recovery counters surfaced under the `recovery` scope in SHOW STATS.
  int64_t recoveries_ = 0;
  int64_t last_replay_rows_ = 0;
  int64_t last_replay_txns_ = 0;
};

}  // namespace streamrel::engine

#endif  // STREAMREL_ENGINE_DATABASE_H_
