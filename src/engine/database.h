#ifndef STREAMREL_ENGINE_DATABASE_H_
#define STREAMREL_ENGINE_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/rwlock.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/planner.h"
#include "sql/parser.h"
#include "storage/disk.h"
#include "storage/transaction.h"
#include "storage/wal.h"
#include "stream/recovery.h"
#include "stream/runtime.h"

namespace streamrel::engine {

/// Engine configuration.
struct DatabaseOptions {
  storage::DiskModel disk_model;
  /// fsync the WAL after every append (the expensive, fully-durable
  /// store-first configuration); otherwise syncs happen at commit
  /// boundaries.
  bool wal_sync_every_append = false;
  size_t heap_page_size = 64 * 1024;
};

/// Result of one statement: rows for SELECT, a tag for DDL/DML.
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  std::string message;  // e.g. "CREATE TABLE", "INSERT 3"
};

/// Point-in-time engine statistics: the full metrics-registry snapshot
/// (every per-stream/CQ/channel/aggregator counter and gauge the runtime
/// tracks) plus storage-layer totals. `SHOW STATS` returns the same data
/// as rows.
struct EngineStats {
  std::vector<stream::MetricSample> metrics;
  storage::DiskStats disk;
  int64_t wal_records = 0;
  int64_t wal_bytes = 0;
};

/// The stream-relational database: a full SQL engine (tables, indexes,
/// MVCC transactions, WAL) with TruSQL stream extensions (streams, windows,
/// continuous queries, derived streams, channels, active tables) —
/// the paper's Continuous Analytics system.
///
/// Usage: Execute() runs DDL, INSERT, and snapshot SELECTs.
/// CreateContinuousQuery() starts a CQ from a stream-referencing SELECT and
/// returns a handle for subscribing to its per-window results. Ingest()
/// pushes ordered rows into a raw stream, driving the whole dataflow.
///
/// Thread safety: public entry points follow the lock hierarchy of DESIGN
/// decision 11. Control-plane statements (CREATE/DROP/SET, plus the
/// control-plane APIs CreateContinuousQuery, DropContinuousQuery,
/// Subscribe/Unsubscribe, Register/UnregisterStatsProvider, RecoverFromWal)
/// take the engine rwlock exclusive and therefore still run one at a time.
/// Everything else — Ingest, AdvanceTime, snapshot SELECTs, DML,
/// StatsSnapshot, SHOW STATS — takes it shared, so data-plane work on
/// disjoint streams runs concurrently: each ingest serializes only on its
/// stream's own ingest lock, table DML serializes on the runtime's DML
/// lock, and sys_* refreshes serialize on a dedicated sys-table lock. The
/// rwlock is re-entrant (shared-under-anything is a no-op; exclusive
/// recurses) because CQ delivery callbacks fire inside Ingest and may
/// legitimately call back into data-plane entry points. Callbacks must NOT
/// run control-plane statements: that would be a shared→exclusive upgrade,
/// which debug builds abort on.
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  /// Re-opens a database over existing storage (restart simulation): the
  /// catalog starts empty — re-run the DDL, then call RecoverFromWal().
  Database(std::shared_ptr<storage::SimulatedDisk> disk,
           std::shared_ptr<storage::WriteAheadLog> wal,
           DatabaseOptions options = DatabaseOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Executes one or more ';'-separated statements; returns the last
  /// statement's result. Continuous SELECTs are rejected here — use
  /// CreateContinuousQuery.
  Result<QueryResult> Execute(const std::string& sql);

  /// Starts a named continuous query from a SELECT over a windowed stream.
  Result<stream::ContinuousQuery*> CreateContinuousQuery(
      const std::string& name, const std::string& select_sql,
      bool allow_shared = true);

  Status DropContinuousQuery(const std::string& name);

  /// Pushes ordered rows into a raw stream. For CQTIME SYSTEM streams pass
  /// `system_time`; CQTIME USER streams read their timestamp column.
  Status Ingest(const std::string& stream, const std::vector<Row>& rows,
                int64_t system_time = INT64_MIN);

  /// Heartbeat: closes windows up to `watermark` without new data.
  Status AdvanceTime(const std::string& stream, int64_t watermark);

  /// WAL replay into the (re-created) tables; returns channel watermarks
  /// and checkpoint blobs for the recovery strategies in stream/recovery.h.
  Result<stream::WalReplayResult> RecoverFromWal();

  // Component access (benchmarks, tests, recovery drivers).
  catalog::Catalog* catalog() { return &catalog_; }
  storage::TransactionManager* txns() { return &txns_; }
  stream::StreamRuntime* runtime() { return &runtime_; }
  const std::shared_ptr<storage::SimulatedDisk>& disk() const {
    return disk_;
  }
  const std::shared_ptr<storage::WriteAheadLog>& wal() const { return wal_; }

  /// Logical clock: the max watermark observed across streams; INSERT
  /// transactions commit at this time (so CQ window-consistent snapshots
  /// order them against window closes). Atomic: concurrent ingests on
  /// disjoint streams race to CAS-max it.
  int64_t now_micros() const {
    return now_micros_.load(std::memory_order_relaxed);
  }
  void SetClock(int64_t now) {
    now_micros_.store(now, std::memory_order_relaxed);
  }

  /// True while an explicit BEGIN ... COMMIT/ROLLBACK block is open.
  bool in_transaction() const {
    return active_txn_.load(std::memory_order_relaxed) !=
           storage::kInvalidTxn;
  }

  /// Rebuilds the sys_* introspection tables (sys_tables, sys_streams,
  /// sys_cqs, sys_channels) from current catalog/runtime state. Runs
  /// automatically before snapshot SELECTs that reference a sys_* table
  /// (directly or through a view); exposed for tools. Serializes on the
  /// sys-table lock so two refreshes (or a refresh and a sys scan) never
  /// interleave.
  Status RefreshSystemTables();

  /// Refreshes pull-style gauges (and WAL/disk totals) and returns the
  /// complete metrics snapshot. The struct-API twin of `SHOW STATS`.
  EngineStats StatsSnapshot();

  // --- live subscriptions (the engine side of SUBSCRIBE TO) -----------------

  /// Handle for a live subscription created by Subscribe(); pass it back
  /// to Unsubscribe() to detach.
  struct SubscriptionTicket {
    bool is_cq = false;
    std::string object;  // lowercased CQ or stream name
    int64_t id = 0;      // runtime callback id
    Schema schema;       // delivered row schema (CQ output / stream schema)
    /// Lowercased source stream (the object itself, or the CQ's input);
    /// its overload policy governs slow network consumers.
    std::string source_stream;
  };

  /// Attaches `callback` to a CQ's window-close results or a stream's
  /// published batches (CQ names win when both exist). The callback fires
  /// holding the shared engine lock and the source stream's ingest lock,
  /// on whatever thread drives ingest; it must not block indefinitely,
  /// must not run control-plane statements (CREATE/DROP/SET — that is a
  /// lock upgrade, aborted in debug builds), and must not fail the engine
  /// (return OK).
  Result<SubscriptionTicket> Subscribe(const std::string& name,
                                       stream::CqCallback callback);

  /// Detaches a subscription; a ticket whose object has since been
  /// dropped is a no-op.
  Status Unsubscribe(const SubscriptionTicket& ticket);

  /// Extra metric sources folded into StatsSnapshot() (the network server
  /// publishes its `net` scope this way). Providers run holding the shared
  /// engine lock and must be thread-safe against themselves (concurrent
  /// StatsSnapshot calls overlap); re-registering a key replaces the
  /// provider.
  using StatsProvider =
      std::function<void(std::vector<stream::MetricSample>*)>;
  void RegisterStatsProvider(const std::string& key, StatsProvider provider);
  void UnregisterStatsProvider(const std::string& key);

 private:
  /// True for statements that mutate engine structure (CREATE/DROP/SET)
  /// and therefore take the engine rwlock exclusive; everything else runs
  /// shared.
  static bool IsExclusiveStatement(const sql::Statement& stmt);
  /// True when the SELECT reads a sys_* table, directly or transitively
  /// through views — those queries refresh and scan under the sys lock.
  bool SelectReferencesSysTables(const sql::SelectStmt& stmt) const;

  Result<QueryResult> ExecuteStatement(const sql::Statement& stmt);
  Result<QueryResult> ExecuteSelect(const sql::SelectStmt& stmt);
  Result<QueryResult> ExecuteInsert(const sql::InsertStmt& stmt);
  Result<QueryResult> ExecuteUpdate(const sql::UpdateStmt& stmt);
  Result<QueryResult> ExecuteDelete(const sql::DeleteStmt& stmt);
  Result<QueryResult> ExecuteVacuum(const sql::VacuumStmt& stmt);
  Result<QueryResult> ExecuteExplain(const sql::ExplainStmt& stmt);
  Result<QueryResult> ExecuteTransaction(const sql::TransactionStmt& stmt);
  Result<QueryResult> ExecuteShowStats(const sql::ShowStatsStmt& stmt);
  Result<QueryResult> ExecuteSet(const sql::SetStmt& stmt);
  Result<QueryResult> ExecuteSetFault(const sql::SetFaultStmt& stmt);
  Result<QueryResult> ExecuteShowFaults(const sql::ShowFaultsStmt& stmt);

  /// The write transaction for a DML statement: the open explicit
  /// transaction if any (already WAL-logged), else a fresh autocommit one
  /// (logs kBegin). `*autocommit` tells the caller whether to commit it.
  Result<storage::TxnId> BeginWrite(bool* autocommit);
  /// Commits an autocommit write (WAL kCommit + sync); no-op inside an
  /// explicit transaction.
  Status EndWrite(storage::TxnId txn, bool autocommit);
  /// Scans `table`'s rows visible now that satisfy `where` (nullable AST).
  Result<std::vector<std::pair<storage::RowId, Row>>> CollectMatches(
      catalog::TableInfo* table, const sql::Expr* where);
  Result<QueryResult> ExecuteCreateTable(const sql::CreateTableStmt& stmt);
  Result<QueryResult> ExecuteCreateStream(const sql::CreateStreamStmt& stmt);
  Result<QueryResult> ExecuteCreateDerivedStream(
      const sql::CreateDerivedStreamStmt& stmt);
  Result<QueryResult> ExecuteCreateView(const sql::CreateViewStmt& stmt);
  Result<QueryResult> ExecuteCreateChannel(const sql::CreateChannelStmt& stmt);
  Result<QueryResult> ExecuteCreateIndex(const sql::CreateIndexStmt& stmt);
  Result<QueryResult> ExecuteDrop(const sql::DropStmt& stmt);

  Result<Schema> SchemaFromColumnDefs(
      const std::vector<sql::ColumnDef>& defs) const;

  /// Rank kEngine (the root of the lock hierarchy, DESIGN decision 11):
  /// exclusive for control-plane statements, shared for everything else.
  mutable EngineRwLock engine_lock_;
  /// Rank kSys: serializes sys_* table refreshes against each other and
  /// against the SELECTs that scan them (both run under shared engine).
  mutable OrderedMutex sys_mu_{LockRank::kSys, /*allow_same_rank=*/false,
                               "sys tables"};
  DatabaseOptions options_;
  std::shared_ptr<storage::SimulatedDisk> disk_;
  std::shared_ptr<storage::WriteAheadLog> wal_;
  storage::TransactionManager txns_;
  catalog::Catalog catalog_;
  stream::StreamRuntime runtime_;
  /// CAS-maxed by concurrent ingests; read lock-free everywhere.
  std::atomic<int64_t> now_micros_{0};
  /// The open explicit transaction (kInvalidTxn when none). Mutated only
  /// under the runtime's DML lock, read lock-free by snapshot SELECTs.
  std::atomic<storage::TxnId> active_txn_{storage::kInvalidTxn};
  /// Mutated under exclusive engine only; iterated under shared.
  std::map<std::string, StatsProvider> stats_providers_;
  // Recovery counters surfaced under the `recovery` scope in SHOW STATS.
  // Written under exclusive engine (RecoverFromWal), read under shared.
  int64_t recoveries_ = 0;
  int64_t last_replay_rows_ = 0;
  int64_t last_replay_txns_ = 0;
};

}  // namespace streamrel::engine

#endif  // STREAMREL_ENGINE_DATABASE_H_
