#include "engine/database.h"

#include <mutex>
#include <unordered_set>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "exec/binder.h"
#include "exec/operators.h"
#include "stream/channel.h"

namespace streamrel::engine {

Database::Database(DatabaseOptions options)
    : Database(std::make_shared<storage::SimulatedDisk>(options.disk_model),
               nullptr, options) {}

Database::Database(std::shared_ptr<storage::SimulatedDisk> disk,
                   std::shared_ptr<storage::WriteAheadLog> wal,
                   DatabaseOptions options)
    : options_(options),
      disk_(std::move(disk)),
      wal_(wal != nullptr
               ? std::move(wal)
               : std::make_shared<storage::WriteAheadLog>(
                     disk_, options.wal_sync_every_append)),
      runtime_(&catalog_, &txns_, wal_.get()) {}

bool Database::IsExclusiveStatement(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kCreateTable:
    case sql::StatementKind::kCreateStream:
    case sql::StatementKind::kCreateDerivedStream:
    case sql::StatementKind::kCreateView:
    case sql::StatementKind::kCreateChannel:
    case sql::StatementKind::kCreateIndex:
    case sql::StatementKind::kDrop:
    case sql::StatementKind::kSet:
      return true;
    default:
      return false;
  }
}

Result<QueryResult> Database::Execute(const std::string& sql) {
  // Parsing needs no lock. Each statement then takes the engine rwlock in
  // the mode its class requires: CREATE/DROP/SET reshape engine structure
  // (catalog entries, CQ sets, worker fleets) and run exclusive — one at a
  // time, with no data-plane work in flight. Everything else (SELECT, DML,
  // SHOW STATS, faults, transactions) runs shared and concurrently;
  // finer-grained locks (sys, stream, DML) serialize what actually
  // conflicts.
  ASSIGN_OR_RETURN(std::vector<sql::StatementPtr> stmts, sql::ParseSql(sql));
  if (stmts.empty()) {
    return Status::InvalidArgument("no statement to execute");
  }
  QueryResult result;
  for (const auto& stmt : stmts) {
    if (IsExclusiveStatement(*stmt)) {
      ExclusiveLockGuard lock(&engine_lock_);
      ASSIGN_OR_RETURN(result, ExecuteStatement(*stmt));
    } else {
      SharedLockGuard lock(&engine_lock_);
      ASSIGN_OR_RETURN(result, ExecuteStatement(*stmt));
    }
  }
  return result;
}

Result<QueryResult> Database::ExecuteStatement(const sql::Statement& stmt) {
  switch (stmt.kind()) {
    case sql::StatementKind::kSelect:
      return ExecuteSelect(static_cast<const sql::SelectStmt&>(stmt));
    case sql::StatementKind::kInsert:
      return ExecuteInsert(static_cast<const sql::InsertStmt&>(stmt));
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(static_cast<const sql::UpdateStmt&>(stmt));
    case sql::StatementKind::kDelete:
      return ExecuteDelete(static_cast<const sql::DeleteStmt&>(stmt));
    case sql::StatementKind::kVacuum:
      return ExecuteVacuum(static_cast<const sql::VacuumStmt&>(stmt));
    case sql::StatementKind::kExplain:
      return ExecuteExplain(static_cast<const sql::ExplainStmt&>(stmt));
    case sql::StatementKind::kTransaction:
      return ExecuteTransaction(
          static_cast<const sql::TransactionStmt&>(stmt));
    case sql::StatementKind::kShowStats:
      return ExecuteShowStats(static_cast<const sql::ShowStatsStmt&>(stmt));
    case sql::StatementKind::kSet:
      return ExecuteSet(static_cast<const sql::SetStmt&>(stmt));
    case sql::StatementKind::kSetFault:
      return ExecuteSetFault(static_cast<const sql::SetFaultStmt&>(stmt));
    case sql::StatementKind::kShowFaults:
      return ExecuteShowFaults(static_cast<const sql::ShowFaultsStmt&>(stmt));
    case sql::StatementKind::kSubscribe:
    case sql::StatementKind::kUnsubscribe:
      // Push delivery needs a connection to push to; the in-process API
      // is Database::Subscribe. Network sessions intercept these before
      // Execute.
      return Status::InvalidArgument(
          "SUBSCRIBE/UNSUBSCRIBE is only available on a network session "
          "(connect through streamrel-server)");
    case sql::StatementKind::kCreateTable:
      return ExecuteCreateTable(
          static_cast<const sql::CreateTableStmt&>(stmt));
    case sql::StatementKind::kCreateStream:
      return ExecuteCreateStream(
          static_cast<const sql::CreateStreamStmt&>(stmt));
    case sql::StatementKind::kCreateDerivedStream:
      return ExecuteCreateDerivedStream(
          static_cast<const sql::CreateDerivedStreamStmt&>(stmt));
    case sql::StatementKind::kCreateView:
      return ExecuteCreateView(static_cast<const sql::CreateViewStmt&>(stmt));
    case sql::StatementKind::kCreateChannel:
      return ExecuteCreateChannel(
          static_cast<const sql::CreateChannelStmt&>(stmt));
    case sql::StatementKind::kCreateIndex:
      return ExecuteCreateIndex(
          static_cast<const sql::CreateIndexStmt&>(stmt));
    case sql::StatementKind::kDrop:
      return ExecuteDrop(static_cast<const sql::DropStmt&>(stmt));
  }
  return Status::Internal("unreachable statement kind");
}

namespace {

/// True for reserved introspection-table names.
bool IsSystemName(const std::string& name) {
  return ToLower(name).rfind("sys_", 0) == 0;
}

}  // namespace

Status Database::RefreshSystemTables() {
  // Shared engine keeps DDL out (a no-op when the caller already holds the
  // lock); the sys lock serializes rebuilds against each other and against
  // the SELECTs that scan sys tables while holding it.
  SharedLockGuard engine(&engine_lock_);
  std::lock_guard<OrderedMutex> sys_lock(sys_mu_);
  // (Re)create each sys table and fill it from live state. The writes
  // bypass the WAL: system tables are derived data, rebuilt on demand.
  auto ensure = [&](const std::string& name,
                    Schema schema) -> Result<catalog::TableInfo*> {
    catalog::TableInfo* existing = catalog_.GetTable(name);
    if (existing != nullptr) {
      RETURN_IF_ERROR(existing->heap->Truncate());
      return existing;
    }
    catalog::TableInfo info;
    info.name = name;
    info.schema = schema;
    info.heap = std::make_shared<storage::HeapTable>(schema, disk_,
                                                     options_.heap_page_size);
    RETURN_IF_ERROR(catalog_.CreateTable(std::move(info)));
    return catalog_.GetTable(name);
  };

  storage::TxnId txn = txns_.Begin();

  ASSIGN_OR_RETURN(
      catalog::TableInfo * tables,
      ensure("sys_tables", Schema({Column("name", DataType::kString),
                                   Column("columns", DataType::kInt64),
                                   Column("row_versions", DataType::kInt64),
                                   Column("bytes", DataType::kInt64),
                                   Column("indexes", DataType::kInt64)})));
  for (const std::string& name : catalog_.TableNames()) {
    const catalog::TableInfo* info = catalog_.GetTable(name);
    RETURN_IF_ERROR(stream::InsertIntoTable(
        tables,
        {Value::String(info->name),
         Value::Int64(static_cast<int64_t>(info->schema.num_columns())),
         Value::Int64(static_cast<int64_t>(info->heap->row_count())),
         Value::Int64(info->heap->byte_size()),
         Value::Int64(static_cast<int64_t>(info->indexes.size()))},
        txn, /*wal=*/nullptr));
  }

  ASSIGN_OR_RETURN(
      catalog::TableInfo * streams,
      ensure("sys_streams",
             Schema({Column("name", DataType::kString),
                     Column("kind", DataType::kString),
                     Column("columns", DataType::kInt64),
                     Column("watermark", DataType::kTimestamp)})));
  for (const std::string& name : catalog_.StreamNames()) {
    const catalog::StreamInfo* info = catalog_.GetStream(name);
    int64_t wm = runtime_.watermark(name);
    RETURN_IF_ERROR(stream::InsertIntoTable(
        streams,
        {Value::String(info->name),
         Value::String(info->is_derived ? "derived" : "raw"),
         Value::Int64(static_cast<int64_t>(info->schema.num_columns())),
         wm == INT64_MIN ? Value::Null() : Value::Timestamp(wm)},
        txn, /*wal=*/nullptr));
  }

  ASSIGN_OR_RETURN(
      catalog::TableInfo * cqs,
      ensure("sys_cqs", Schema({Column("name", DataType::kString),
                                Column("stream", DataType::kString),
                                Column("window", DataType::kString),
                                Column("strategy", DataType::kString),
                                Column("windows_evaluated",
                                       DataType::kInt64),
                                Column("rows_emitted", DataType::kInt64),
                                Column("eval_micros", DataType::kInt64)})));
  for (const std::string& name : runtime_.CqNames()) {
    stream::ContinuousQuery* cq = runtime_.GetCq(name);
    RETURN_IF_ERROR(stream::InsertIntoTable(
        cqs,
        {Value::String(cq->name()), Value::String(cq->stream_name()),
         Value::String(cq->window().ToString()),
         Value::String(cq->is_shared() ? "shared" : "generic"),
         Value::Int64(cq->windows_evaluated()),
         Value::Int64(cq->rows_emitted()),
         Value::Int64(cq->eval_micros_total())},
        txn, /*wal=*/nullptr));
  }

  ASSIGN_OR_RETURN(
      catalog::TableInfo * channels,
      ensure("sys_channels",
             Schema({Column("name", DataType::kString),
                     Column("source", DataType::kString),
                     Column("target", DataType::kString),
                     Column("mode", DataType::kString),
                     Column("watermark", DataType::kTimestamp),
                     Column("rows_persisted", DataType::kInt64)})));
  for (const catalog::ChannelInfo* info : catalog_.Channels()) {
    stream::Channel* channel = runtime_.GetChannel(info->name);
    int64_t wm = channel != nullptr ? channel->watermark() : INT64_MIN;
    RETURN_IF_ERROR(stream::InsertIntoTable(
        channels,
        {Value::String(info->name), Value::String(info->from_stream),
         Value::String(info->into_table),
         Value::String(info->mode == sql::ChannelMode::kReplace ? "replace"
                                                                : "append"),
         wm == INT64_MIN ? Value::Null() : Value::Timestamp(wm),
         Value::Int64(channel != nullptr ? channel->rows_persisted() : 0)},
        txn, /*wal=*/nullptr));
  }

  return txns_.Commit(txn, now_micros()).status();
}

Result<QueryResult> Database::ExecuteSelect(const sql::SelectStmt& stmt) {
  // Queries over sys_* tables (directly or through views) rebuild them
  // first and keep the sys lock across the scan, so a concurrent refresh
  // can never truncate a sys table mid-read. Other SELECTs skip the
  // refresh: they read user tables, which are MVCC-safe against
  // concurrent DML.
  std::unique_lock<OrderedMutex> sys_lock(sys_mu_, std::defer_lock);
  if (SelectReferencesSysTables(stmt)) {
    sys_lock.lock();
    RETURN_IF_ERROR(RefreshSystemTables());
  }
  exec::Planner planner(&catalog_);
  ASSIGN_OR_RETURN(exec::PlannedQuery plan, planner.PlanSelect(stmt));
  if (plan.is_continuous()) {
    return Status::InvalidArgument(
        "this SELECT references a stream and therefore never terminates; "
        "register it with CreateContinuousQuery() instead");
  }
  exec::ExecContext ctx;
  ctx.txns = &txns_;
  ctx.snapshot = txns_.CurrentSnapshot();
  ctx.eval.now_micros = now_micros();
  // Inside an explicit transaction, reads see the transaction's own
  // uncommitted writes.
  ctx.reader = active_txn_.load(std::memory_order_relaxed);
  QueryResult result;
  result.schema = plan.output_schema;
  ASSIGN_OR_RETURN(result.rows, exec::CollectRows(plan.root.get(), &ctx));
  result.message = "SELECT " + std::to_string(result.rows.size());
  return result;
}

Result<QueryResult> Database::ExecuteInsert(const sql::InsertStmt& stmt) {
  // Evaluate the literal rows.
  Schema empty;
  exec::ExprBinder binder(empty);
  exec::EvalContext eval_ctx;
  eval_ctx.now_micros = now_micros();
  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const auto& exprs : stmt.rows) {
    Row row;
    row.reserve(exprs.size());
    for (const auto& e : exprs) {
      ASSIGN_OR_RETURN(exec::BoundExprPtr bound, binder.BindScalar(*e));
      Row no_input;
      ASSIGN_OR_RETURN(Value v, bound->Eval(no_input, eval_ctx));
      row.push_back(std::move(v));
    }
    rows.push_back(std::move(row));
  }

  // INSERT into a stream ingests (data "arrives").
  if (catalog_.GetStream(stmt.table) != nullptr) {
    if (!stmt.columns.empty()) {
      return Status::NotImplemented(
          "column lists on stream INSERT are not supported");
    }
    RETURN_IF_ERROR(Ingest(stmt.table, rows));
    QueryResult result;
    result.message = "INSERT " + std::to_string(rows.size());
    return result;
  }

  catalog::TableInfo* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' does not exist");
  }

  // Map a column list onto the schema (missing columns become NULL).
  std::vector<Row> full_rows;
  if (stmt.columns.empty()) {
    full_rows = std::move(rows);
  } else {
    std::vector<size_t> positions;
    positions.reserve(stmt.columns.size());
    for (const std::string& col : stmt.columns) {
      ASSIGN_OR_RETURN(size_t idx, table->schema.FindColumn(col));
      positions.push_back(idx);
    }
    for (const Row& row : rows) {
      if (row.size() != positions.size()) {
        return Status::InvalidArgument(
            "INSERT row arity does not match column list");
      }
      Row full(table->schema.num_columns(), Value::Null());
      for (size_t i = 0; i < positions.size(); ++i) {
        full[positions[i]] = row[i];
      }
      full_rows.push_back(std::move(full));
    }
  }

  // Table writes serialize on the runtime's DML lock: shared engine mode
  // admits concurrent DML statements, and channel sink writes take the
  // same lock. (The stream branch above must NOT hold it — ingest takes
  // stream locks, which rank below DML.)
  std::lock_guard<OrderedMutex> dml_lock(*runtime_.dml_mutex());
  bool autocommit = false;
  ASSIGN_OR_RETURN(storage::TxnId txn, BeginWrite(&autocommit));
  for (const Row& row : full_rows) {
    RETURN_IF_ERROR(stream::InsertIntoTable(table, row, txn, wal_.get()));
  }
  RETURN_IF_ERROR(EndWrite(txn, autocommit));

  QueryResult result;
  result.message = "INSERT " + std::to_string(full_rows.size());
  return result;
}

Result<storage::TxnId> Database::BeginWrite(bool* autocommit) {
  // Callers hold the DML lock, so the check-then-act on active_txn_ is
  // race-free against BEGIN/COMMIT.
  const storage::TxnId open = active_txn_.load(std::memory_order_relaxed);
  if (open != storage::kInvalidTxn) {
    *autocommit = false;
    return open;
  }
  *autocommit = true;
  storage::TxnId txn = txns_.Begin();
  storage::WalRecord begin;
  begin.type = storage::WalRecordType::kBegin;
  begin.txn_id = txn;
  RETURN_IF_ERROR(wal_->Append(begin));
  return txn;
}

Status Database::EndWrite(storage::TxnId txn, bool autocommit) {
  if (!autocommit) return Status::OK();
  storage::WalRecord commit;
  commit.type = storage::WalRecordType::kCommit;
  commit.txn_id = txn;
  commit.int_payload = now_micros();
  RETURN_IF_ERROR(wal_->Append(commit));
  RETURN_IF_ERROR(wal_->Sync());
  return txns_.Commit(txn, now_micros()).status();
}

Result<QueryResult> Database::ExecuteTransaction(
    const sql::TransactionStmt& stmt) {
  // BEGIN/COMMIT/ROLLBACK take the DML lock: the check-then-act on the
  // open transaction must not interleave with a concurrent write picking
  // its transaction (or with another BEGIN).
  std::lock_guard<OrderedMutex> dml_lock(*runtime_.dml_mutex());
  QueryResult result;
  const storage::TxnId open = active_txn_.load(std::memory_order_relaxed);
  switch (stmt.op) {
    case sql::TransactionOp::kBegin: {
      if (open != storage::kInvalidTxn) {
        return Status::InvalidArgument("a transaction is already open");
      }
      storage::TxnId txn = txns_.Begin();
      storage::WalRecord begin;
      begin.type = storage::WalRecordType::kBegin;
      begin.txn_id = txn;
      RETURN_IF_ERROR(wal_->Append(begin));
      active_txn_.store(txn, std::memory_order_relaxed);
      result.message = "BEGIN";
      return result;
    }
    case sql::TransactionOp::kCommit: {
      if (open == storage::kInvalidTxn) {
        return Status::InvalidArgument("no transaction is open");
      }
      storage::WalRecord commit;
      commit.type = storage::WalRecordType::kCommit;
      commit.txn_id = open;
      commit.int_payload = now_micros();
      RETURN_IF_ERROR(wal_->Append(commit));
      RETURN_IF_ERROR(wal_->Sync());
      RETURN_IF_ERROR(txns_.Commit(open, now_micros()).status());
      active_txn_.store(storage::kInvalidTxn, std::memory_order_relaxed);
      result.message = "COMMIT";
      return result;
    }
    case sql::TransactionOp::kRollback: {
      if (open == storage::kInvalidTxn) {
        return Status::InvalidArgument("no transaction is open");
      }
      storage::WalRecord abort;
      abort.type = storage::WalRecordType::kAbort;
      abort.txn_id = open;
      RETURN_IF_ERROR(wal_->Append(abort));
      RETURN_IF_ERROR(txns_.Abort(open));
      active_txn_.store(storage::kInvalidTxn, std::memory_order_relaxed);
      result.message = "ROLLBACK";
      return result;
    }
  }
  return Status::Internal("unreachable transaction op");
}

Result<std::vector<std::pair<storage::RowId, Row>>> Database::CollectMatches(
    catalog::TableInfo* table, const sql::Expr* where) {
  exec::BoundExprPtr predicate;
  if (where != nullptr) {
    exec::ExprBinder binder(table->schema);
    ASSIGN_OR_RETURN(predicate, binder.BindScalar(*where));
  }
  std::vector<std::pair<storage::RowId, Row>> matches;
  exec::EvalContext eval;
  eval.now_micros = now_micros();
  Status inner = Status::OK();
  Status scan = table->heap->Scan(
      txns_, txns_.CurrentSnapshot(),
      active_txn_.load(std::memory_order_relaxed),
      [&](storage::RowId id, const Row& row) {
        if (predicate != nullptr) {
          auto keep = exec::EvalPredicate(*predicate, row, eval);
          if (!keep.ok()) {
            inner = keep.status();
            return false;
          }
          if (!*keep) return true;
        }
        matches.emplace_back(id, row);
        return true;
      });
  RETURN_IF_ERROR(inner);
  RETURN_IF_ERROR(scan);
  return matches;
}

Result<QueryResult> Database::ExecuteUpdate(const sql::UpdateStmt& stmt) {
  catalog::TableInfo* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' does not exist");
  }
  // DML lock across collect + rewrite: the rows we matched must still be
  // the live versions when we delete/re-insert them.
  std::lock_guard<OrderedMutex> dml_lock(*runtime_.dml_mutex());
  // Bind assignment targets and value expressions (values may reference
  // the old row, e.g. SET hits = hits + 1).
  exec::ExprBinder binder(table->schema);
  std::vector<std::pair<size_t, exec::BoundExprPtr>> assignments;
  for (const auto& [column, value] : stmt.assignments) {
    ASSIGN_OR_RETURN(size_t index, table->schema.FindColumn(column));
    ASSIGN_OR_RETURN(exec::BoundExprPtr bound, binder.BindScalar(*value));
    assignments.emplace_back(index, std::move(bound));
  }
  ASSIGN_OR_RETURN(auto matches, CollectMatches(table, stmt.where.get()));

  bool autocommit = false;
  ASSIGN_OR_RETURN(storage::TxnId txn, BeginWrite(&autocommit));
  exec::EvalContext eval;
  for (const auto& [row_id, old_row] : matches) {
    Row new_row = old_row;
    for (const auto& [index, expr] : assignments) {
      ASSIGN_OR_RETURN(Value v, expr->Eval(old_row, eval));
      new_row[index] = std::move(v);
    }
    RETURN_IF_ERROR(
        stream::DeleteFromTable(table, row_id, old_row, txn, wal_.get()));
    RETURN_IF_ERROR(stream::InsertIntoTable(table, new_row, txn, wal_.get()));
  }
  RETURN_IF_ERROR(EndWrite(txn, autocommit));

  QueryResult result;
  result.message = "UPDATE " + std::to_string(matches.size());
  return result;
}

Result<QueryResult> Database::ExecuteDelete(const sql::DeleteStmt& stmt) {
  catalog::TableInfo* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' does not exist");
  }
  // DML lock across collect + delete (see ExecuteUpdate).
  std::lock_guard<OrderedMutex> dml_lock(*runtime_.dml_mutex());
  ASSIGN_OR_RETURN(auto matches, CollectMatches(table, stmt.where.get()));

  bool autocommit = false;
  ASSIGN_OR_RETURN(storage::TxnId txn, BeginWrite(&autocommit));
  for (const auto& [row_id, row] : matches) {
    RETURN_IF_ERROR(
        stream::DeleteFromTable(table, row_id, row, txn, wal_.get()));
  }
  RETURN_IF_ERROR(EndWrite(txn, autocommit));

  QueryResult result;
  result.message = "DELETE " + std::to_string(matches.size());
  return result;
}

Result<QueryResult> Database::ExecuteVacuum(const sql::VacuumStmt& stmt) {
  // VACUUM compacts row versions in place; it must not interleave with
  // writes, so it holds the DML lock like any other table mutation.
  std::lock_guard<OrderedMutex> dml_lock(*runtime_.dml_mutex());
  if (in_transaction()) {
    return Status::InvalidArgument(
        "VACUUM cannot run inside a transaction");
  }
  catalog::TableInfo* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' does not exist");
  }
  ASSIGN_OR_RETURN(int64_t reclaimed,
                   stream::VacuumTable(table, &txns_, wal_.get(),
                                       now_micros()));
  QueryResult result;
  result.message = "VACUUM " + std::to_string(reclaimed);
  return result;
}

Result<QueryResult> Database::ExecuteExplain(const sql::ExplainStmt& stmt) {
  exec::Planner planner(&catalog_);
  ASSIGN_OR_RETURN(exec::PlannedQuery plan, planner.PlanSelect(*stmt.select));
  std::string text = exec::ExplainPlan(*plan.root);
  QueryResult result;
  result.schema = Schema({Column("plan", DataType::kString)});
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    result.rows.push_back(Row{Value::String(text.substr(start, end - start))});
    start = end + 1;
  }
  if (plan.is_continuous()) {
    result.rows.push_back(Row{Value::String(
        "(continuous query over stream '" +
        plan.stream_leaves[0].stream_name + "' " +
        plan.stream_leaves[0].window.ToString() + ")")});
  }
  result.message = "EXPLAIN";
  return result;
}

EngineStats Database::StatsSnapshot() {
  // Shared: stats run concurrently with ingest and with each other. Every
  // source read below is either atomic, internally locked, or mutated only
  // under the exclusive engine lock.
  SharedLockGuard lock(&engine_lock_);
  stream::MetricsRegistry* metrics = runtime_.metrics();
  runtime_.RefreshMetricsGauges();
  EngineStats stats;
  stats.wal_records = wal_->record_count();
  stats.wal_bytes = wal_->byte_size();
  stats.disk = disk_->stats();
  metrics->GetGauge("engine", "wal", "records")->Set(stats.wal_records);
  metrics->GetGauge("engine", "wal", "bytes")->Set(stats.wal_bytes);
  metrics->GetGauge("engine", "disk", "page_reads")
      ->Set(stats.disk.page_reads);
  metrics->GetGauge("engine", "disk", "page_writes")
      ->Set(stats.disk.page_writes);
  metrics->GetGauge("engine", "disk", "cache_hits")
      ->Set(stats.disk.cache_hits);
  metrics->GetGauge("engine", "disk", "bytes_read")
      ->Set(stats.disk.bytes_read);
  metrics->GetGauge("engine", "disk", "bytes_written")
      ->Set(stats.disk.bytes_written);
  metrics->GetGauge("engine", "disk", "simulated_io_micros")
      ->Set(stats.disk.simulated_io_micros);
  metrics->GetGauge("recovery", "wal", "replays")->Set(recoveries_);
  metrics->GetGauge("recovery", "wal", "rows_replayed")
      ->Set(last_replay_rows_);
  metrics->GetGauge("recovery", "wal", "txns_replayed")
      ->Set(last_replay_txns_);
  metrics->GetGauge("recovery", "wal", "torn_tails")
      ->Set(wal_->torn_tails_seen());
  metrics->GetGauge("recovery", "wal", "corrupt_tails")
      ->Set(wal_->corrupt_tails_seen());
  const FaultInjector::Totals faults = FaultInjector::Instance().totals();
  metrics->GetGauge("recovery", "faults", "hits")->Set(faults.hits);
  metrics->GetGauge("recovery", "faults", "fires")->Set(faults.fires);
  metrics->GetGauge("recovery", "faults", "crashes")->Set(faults.crashes);
  // Lock-contention counters (DESIGN decision 11 / OBSERVABILITY): how
  // often each tier of the hierarchy was taken and how often (and, for the
  // engine rwlock, how long) an acquisition had to block.
  metrics->GetGauge("engine", "lock", "shared_acquisitions")
      ->Set(engine_lock_.shared_acquisitions());
  metrics->GetGauge("engine", "lock", "shared_contended")
      ->Set(engine_lock_.shared_contended());
  metrics->GetGauge("engine", "lock", "shared_wait_micros")
      ->Set(engine_lock_.shared_wait_micros());
  metrics->GetGauge("engine", "lock", "exclusive_acquisitions")
      ->Set(engine_lock_.exclusive_acquisitions());
  metrics->GetGauge("engine", "lock", "exclusive_contended")
      ->Set(engine_lock_.exclusive_contended());
  metrics->GetGauge("engine", "lock", "exclusive_wait_micros")
      ->Set(engine_lock_.exclusive_wait_micros());
  metrics->GetGauge("engine", "lock", "sys_acquisitions")
      ->Set(sys_mu_.acquisitions());
  metrics->GetGauge("engine", "lock", "sys_contended")
      ->Set(sys_mu_.contended());
  metrics->GetGauge("engine", "lock", "shard_acquisitions")
      ->Set(runtime_.shard_lock()->acquisitions());
  metrics->GetGauge("engine", "lock", "shard_contended")
      ->Set(runtime_.shard_lock()->contended());
  metrics->GetGauge("engine", "lock", "dml_acquisitions")
      ->Set(runtime_.dml_lock()->acquisitions());
  metrics->GetGauge("engine", "lock", "dml_contended")
      ->Set(runtime_.dml_lock()->contended());
  int64_t stream_acquisitions = 0;
  int64_t stream_contended = 0;
  runtime_.StreamLockStats(&stream_acquisitions, &stream_contended);
  metrics->GetGauge("engine", "lock", "stream_acquisitions")
      ->Set(stream_acquisitions);
  metrics->GetGauge("engine", "lock", "stream_contended")
      ->Set(stream_contended);
  stats.metrics = metrics->Snapshot();
  for (const auto& [key, provider] : stats_providers_) {
    provider(&stats.metrics);
  }
  return stats;
}

Result<Database::SubscriptionTicket> Database::Subscribe(
    const std::string& name, stream::CqCallback callback) {
  // Exclusive: attaching a callback mutates vectors that delivery reads
  // lock-free under shared holds.
  ExclusiveLockGuard lock(&engine_lock_);
  SubscriptionTicket ticket;
  ticket.object = ToLower(name);
  if (stream::ContinuousQuery* cq = runtime_.GetCq(name)) {
    ticket.is_cq = true;
    ticket.id = cq->AddCallback(std::move(callback));
    ticket.schema = cq->output_schema();
    ticket.source_stream = ToLower(cq->stream_name());
    return ticket;
  }
  const catalog::StreamInfo* info = catalog_.GetStream(name);
  if (info == nullptr) {
    return Status::NotFound("no continuous query or stream named '" + name +
                            "'");
  }
  ticket.is_cq = false;
  ASSIGN_OR_RETURN(ticket.id,
                   runtime_.SubscribeStream(name, std::move(callback)));
  ticket.schema = info->schema;
  ticket.source_stream = ticket.object;
  return ticket;
}

Status Database::Unsubscribe(const SubscriptionTicket& ticket) {
  ExclusiveLockGuard lock(&engine_lock_);
  if (ticket.is_cq) {
    // The CQ may have been dropped (its callbacks died with it).
    if (stream::ContinuousQuery* cq = runtime_.GetCq(ticket.object)) {
      cq->RemoveCallback(ticket.id);
    }
    return Status::OK();
  }
  return runtime_.UnsubscribeStream(ticket.object, ticket.id);
}

void Database::RegisterStatsProvider(const std::string& key,
                                     StatsProvider provider) {
  ExclusiveLockGuard lock(&engine_lock_);
  stats_providers_[key] = std::move(provider);
}

void Database::UnregisterStatsProvider(const std::string& key) {
  ExclusiveLockGuard lock(&engine_lock_);
  stats_providers_.erase(key);
}

Result<QueryResult> Database::ExecuteShowStats(
    const sql::ShowStatsStmt& stmt) {
  using Target = sql::ShowStatsStmt::Target;
  std::string filter_scope;
  const std::string filter_name = ToLower(stmt.name);
  switch (stmt.target) {
    case Target::kAll:
      break;
    case Target::kCq:
      if (runtime_.GetCq(stmt.name) == nullptr) {
        return Status::NotFound("continuous query '" + stmt.name +
                                "' not found");
      }
      filter_scope = "cq";
      break;
    case Target::kStream:
      if (catalog_.GetStream(stmt.name) == nullptr) {
        return Status::NotFound("stream '" + stmt.name + "' not found");
      }
      // A catalogued stream may not have seen runtime traffic yet; register
      // it so its metric cells exist and the filter returns rows.
      RETURN_IF_ERROR(runtime_.RegisterStream(stmt.name));
      filter_scope = "stream";
      break;
    case Target::kChannel:
      if (runtime_.GetChannel(stmt.name) == nullptr) {
        return Status::NotFound("channel '" + stmt.name +
                                "' is not running");
      }
      filter_scope = "channel";
      break;
    case Target::kOverload:
      // Whole scope: governor accounts, retry counters, and per-stream
      // admission counters. No object-name filter.
      filter_scope = "overload";
      break;
    case Target::kNet:
      // Whole network-front-end scope (filled by the server's stats
      // provider; empty when no server is attached). No object-name
      // filter.
      filter_scope = "net";
      break;
  }
  EngineStats stats = StatsSnapshot();
  QueryResult result;
  result.schema = Schema({Column("scope", DataType::kString),
                          Column("name", DataType::kString),
                          Column("metric", DataType::kString),
                          Column("value", DataType::kInt64)});
  for (const stream::MetricSample& sample : stats.metrics) {
    const bool whole_scope = stmt.target == Target::kOverload ||
                             stmt.target == Target::kNet;
    if (!filter_scope.empty() &&
        (sample.scope != filter_scope ||
         (!whole_scope && sample.name != filter_name))) {
      continue;
    }
    // Timestamp gauges report micros; INT64_MIN means "never set" and
    // surfaces as NULL rather than a nonsense number.
    Value value = sample.is_timestamp && sample.value == INT64_MIN
                      ? Value::Null()
                      : Value::Int64(sample.value);
    result.rows.push_back(Row{Value::String(sample.scope),
                              Value::String(sample.name),
                              Value::String(sample.metric),
                              std::move(value)});
  }
  result.message = "SHOW STATS " + std::to_string(result.rows.size());
  return result;
}

Result<QueryResult> Database::ExecuteSet(const sql::SetStmt& stmt) {
  QueryResult result;
  if (stmt.option == "memory_limit") {
    if (stmt.value < 0) {
      return Status::InvalidArgument("MEMORY LIMIT must be >= 0");
    }
    runtime_.SetMemoryBudget(stmt.value);
    result.message = "SET MEMORY LIMIT " + std::to_string(stmt.value);
    return result;
  }
  if (stmt.option == "overload_policy") {
    stream::OverloadPolicy policy;
    if (stmt.text_value == "BLOCK") {
      policy = stream::OverloadPolicy::kBlock;
    } else if (stmt.text_value == "SHED_NEWEST") {
      policy = stream::OverloadPolicy::kShedNewest;
    } else if (stmt.text_value == "SHED_OLDEST") {
      policy = stream::OverloadPolicy::kShedOldest;
    } else {
      return Status::InvalidArgument("unknown overload policy '" +
                                     stmt.text_value + "'");
    }
    if (catalog_.GetStream(stmt.target) == nullptr) {
      return Status::NotFound("stream '" + stmt.target + "' not found");
    }
    RETURN_IF_ERROR(runtime_.RegisterStream(stmt.target));
    RETURN_IF_ERROR(runtime_.SetOverloadPolicy(stmt.target, policy));
    result.message = "SET OVERLOAD POLICY " + ToLower(stmt.target) + " " +
                     stmt.text_value;
    return result;
  }
  if (stmt.option == "retry_limit") {
    RETURN_IF_ERROR(runtime_.SetRetryLimit(stmt.value));
    result.message = "SET RETRY LIMIT " + std::to_string(stmt.value);
    return result;
  }
  if (stmt.option == "retry_backoff") {
    RETURN_IF_ERROR(runtime_.SetRetryBackoff(stmt.value));
    result.message = "SET RETRY BACKOFF " + std::to_string(stmt.value);
    return result;
  }
  if (stmt.option != "parallelism") {
    return Status::InvalidArgument("unknown SET option '" + stmt.option +
                                   "'");
  }
  if (stmt.value < 1 ||
      stmt.value > stream::StreamRuntime::kMaxParallelism) {
    return Status::InvalidArgument(
        "PARALLELISM must be between 1 and " +
        std::to_string(stream::StreamRuntime::kMaxParallelism));
  }
  RETURN_IF_ERROR(runtime_.SetParallelism(static_cast<int>(stmt.value)));
  result.message = "SET PARALLELISM " + std::to_string(stmt.value);
  return result;
}

Result<QueryResult> Database::ExecuteSetFault(const sql::SetFaultStmt& stmt) {
  FaultInjector& injector = FaultInjector::Instance();
  QueryResult result;
  if (stmt.reset_all) {
    injector.Reset();
    result.message = "SET FAULT RESET";
    return result;
  }
  FaultPolicy policy;
  switch (stmt.policy) {
    case sql::SetFaultStmt::Policy::kOff:
      policy = FaultPolicy::Off();
      break;
    case sql::SetFaultStmt::Policy::kFailOnce:
      policy = FaultPolicy::FailOnce();
      break;
    case sql::SetFaultStmt::Policy::kFailNth:
      if (stmt.nth < 1) {
        return Status::InvalidArgument("FAIL NTH count must be >= 1");
      }
      policy = FaultPolicy::FailNth(stmt.nth);
      break;
    case sql::SetFaultStmt::Policy::kProbability:
      if (stmt.probability < 0.0 || stmt.probability > 1.0) {
        return Status::InvalidArgument("PROBABILITY must be in [0, 1]");
      }
      policy = FaultPolicy::Probability(stmt.probability,
                                        static_cast<uint64_t>(stmt.seed));
      break;
    case sql::SetFaultStmt::Policy::kCrash:
      if (stmt.nth < 1) {
        return Status::InvalidArgument("CRASH NTH count must be >= 1");
      }
      policy = FaultPolicy::CrashAtHit(stmt.nth);
      break;
  }
  if (policy.kind == FaultPolicy::Kind::kOff) {
    injector.Disarm(stmt.point);
  } else {
    injector.Arm(stmt.point, policy);
  }
  result.message = "SET FAULT '" + stmt.point + "' " + policy.ToString();
  return result;
}

Result<QueryResult> Database::ExecuteShowFaults(const sql::ShowFaultsStmt&) {
  QueryResult result;
  result.schema = Schema({Column("point", DataType::kString),
                          Column("policy", DataType::kString),
                          Column("hits", DataType::kInt64),
                          Column("fires", DataType::kInt64)});
  for (const FaultInjector::PointInfo& info :
       FaultInjector::Instance().Snapshot()) {
    result.rows.push_back(
        Row{Value::String(info.point), Value::String(info.policy),
            Value::Int64(info.hits), Value::Int64(info.fires)});
  }
  result.message = "SHOW FAULTS " + std::to_string(result.rows.size());
  return result;
}

Result<Schema> Database::SchemaFromColumnDefs(
    const std::vector<sql::ColumnDef>& defs) const {
  std::vector<Column> columns;
  columns.reserve(defs.size());
  for (const auto& def : defs) {
    for (const Column& existing : columns) {
      if (EqualsIgnoreCase(existing.name, def.name)) {
        return Status::InvalidArgument("duplicate column name '" + def.name +
                                       "'");
      }
    }
    columns.emplace_back(def.name, def.type);
  }
  return Schema(std::move(columns));
}

Result<QueryResult> Database::ExecuteCreateTable(
    const sql::CreateTableStmt& stmt) {
  if (IsSystemName(stmt.name)) {
    return Status::InvalidArgument(
        "names starting with 'sys_' are reserved for system tables");
  }
  if (stmt.if_not_exists && catalog_.GetTable(stmt.name) != nullptr) {
    QueryResult result;
    result.message = "CREATE TABLE (exists)";
    return result;
  }

  // CREATE TABLE AS SELECT: take the schema and rows from the query
  // (ad-hoc analysis results over computed metrics, paper §1.4). The rows
  // are a derived materialization and are deliberately NOT WAL-logged:
  // after a restart, re-run the CTAS (after RecoverFromWal) to re-derive
  // them — logging them would duplicate rows under the re-run-DDL +
  // replay recovery flow.
  if (stmt.as_select != nullptr) {
    if (in_transaction()) {
      return Status::InvalidArgument(
          "CREATE TABLE AS cannot run inside a transaction");
    }
    ASSIGN_OR_RETURN(QueryResult select, ExecuteSelect(*stmt.as_select));
    for (const Column& col : select.schema.columns()) {
      if (col.type == DataType::kNull) {
        return Status::BindError(
            "CREATE TABLE AS: column '" + col.name +
            "' has no deducible type; CAST it in the select list");
      }
    }
    catalog::TableInfo info;
    info.name = stmt.name;
    info.schema = Schema(select.schema.columns());
    info.heap = std::make_shared<storage::HeapTable>(
        info.schema, disk_, options_.heap_page_size);
    RETURN_IF_ERROR(catalog_.CreateTable(std::move(info)));
    catalog::TableInfo* table = catalog_.GetTable(stmt.name);
    storage::TxnId txn = txns_.Begin();
    for (const Row& row : select.rows) {
      RETURN_IF_ERROR(stream::InsertIntoTable(table, row, txn,
                                              /*wal=*/nullptr));
    }
    RETURN_IF_ERROR(txns_.Commit(txn, now_micros()).status());
    QueryResult result;
    result.message =
        "CREATE TABLE AS (" + std::to_string(select.rows.size()) + " rows)";
    return result;
  }

  ASSIGN_OR_RETURN(Schema schema, SchemaFromColumnDefs(stmt.columns));
  catalog::TableInfo info;
  info.name = stmt.name;
  info.schema = schema;
  info.heap = std::make_shared<storage::HeapTable>(schema, disk_,
                                                   options_.heap_page_size);
  RETURN_IF_ERROR(catalog_.CreateTable(std::move(info)));
  QueryResult result;
  result.message = "CREATE TABLE";
  return result;
}

Result<QueryResult> Database::ExecuteCreateStream(
    const sql::CreateStreamStmt& stmt) {
  if (IsSystemName(stmt.name)) {
    return Status::InvalidArgument(
        "names starting with 'sys_' are reserved for system tables");
  }
  if (stmt.if_not_exists && catalog_.GetStream(stmt.name) != nullptr) {
    QueryResult result;
    result.message = "CREATE STREAM (exists)";
    return result;
  }
  ASSIGN_OR_RETURN(Schema schema, SchemaFromColumnDefs(stmt.columns));
  // Locate the CQTIME ordering column: the one marked, or (for
  // convenience) the single timestamp column.
  std::optional<size_t> cqtime;
  bool cqtime_system = false;
  for (size_t i = 0; i < stmt.columns.size(); ++i) {
    if (stmt.columns[i].is_cqtime) {
      if (cqtime.has_value()) {
        return Status::InvalidArgument(
            "a stream may have only one CQTIME column");
      }
      if (stmt.columns[i].type != DataType::kTimestamp) {
        return Status::InvalidArgument("CQTIME column must be a timestamp");
      }
      cqtime = i;
      cqtime_system = stmt.columns[i].cqtime_system;
    }
  }
  if (!cqtime.has_value()) {
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      if (stmt.columns[i].type == DataType::kTimestamp) {
        if (cqtime.has_value()) {
          return Status::InvalidArgument(
              "stream '" + stmt.name +
              "' has several timestamp columns; mark one with CQTIME "
              "USER|SYSTEM");
        }
        cqtime = i;
      }
    }
  }
  if (!cqtime.has_value()) {
    return Status::InvalidArgument(
        "stream '" + stmt.name +
        "' needs a timestamp CQTIME column (streams are ordered)");
  }
  catalog::StreamInfo info;
  info.name = stmt.name;
  info.schema = std::move(schema);
  info.cqtime_column = *cqtime;
  info.cqtime_system = cqtime_system;
  RETURN_IF_ERROR(catalog_.CreateStream(std::move(info)));
  RETURN_IF_ERROR(runtime_.RegisterStream(stmt.name));
  QueryResult result;
  result.message = "CREATE STREAM";
  return result;
}

Result<QueryResult> Database::ExecuteCreateDerivedStream(
    const sql::CreateDerivedStreamStmt& stmt) {
  if (IsSystemName(stmt.name)) {
    return Status::InvalidArgument(
        "names starting with 'sys_' are reserved for system tables");
  }
  exec::Planner planner(&catalog_);
  ASSIGN_OR_RETURN(exec::PlannedQuery plan, planner.PlanSelect(*stmt.select));
  if (!plan.is_continuous()) {
    return Status::InvalidArgument(
        "CREATE STREAM ... AS requires a continuous defining query (the "
        "SELECT must read a windowed stream)");
  }
  catalog::StreamInfo info;
  info.name = stmt.name;
  info.schema = plan.output_schema;
  info.is_derived = true;
  info.defining_query = stmt.select->CloneSelect();
  RETURN_IF_ERROR(catalog_.CreateStream(std::move(info)));
  RETURN_IF_ERROR(runtime_.StartDerivedStream(stmt.name));
  QueryResult result;
  result.message = "CREATE STREAM";
  return result;
}

Result<QueryResult> Database::ExecuteCreateView(
    const sql::CreateViewStmt& stmt) {
  if (IsSystemName(stmt.name)) {
    return Status::InvalidArgument(
        "names starting with 'sys_' are reserved for system tables");
  }
  // Validate by planning once (streaming views plan to continuous queries;
  // both kinds are legal).
  exec::Planner planner(&catalog_);
  RETURN_IF_ERROR(planner.PlanSelect(*stmt.select).status());
  catalog::ViewInfo info;
  info.name = stmt.name;
  info.select = stmt.select->CloneSelect();
  RETURN_IF_ERROR(catalog_.CreateView(std::move(info)));
  QueryResult result;
  result.message = "CREATE VIEW";
  return result;
}

Result<QueryResult> Database::ExecuteCreateChannel(
    const sql::CreateChannelStmt& stmt) {
  const catalog::StreamInfo* stream = catalog_.GetStream(stmt.from_stream);
  if (stream == nullptr &&
      stream::StreamRuntime::IsQuarantineName(stmt.from_stream)) {
    // Subscribing to a dead-letter stream that has not captured anything
    // yet: materialise it on demand so the channel can start before the
    // first bad row arrives.
    std::string base = ToLower(stmt.from_stream);
    base.resize(base.size() - (sizeof(".__quarantine") - 1));
    if (catalog_.GetStream(base) != nullptr) {
      RETURN_IF_ERROR(runtime_.EnsureQuarantineStream(base));
      stream = catalog_.GetStream(stmt.from_stream);
    }
  }
  if (stream == nullptr) {
    return Status::NotFound("stream '" + stmt.from_stream +
                            "' does not exist");
  }
  const catalog::TableInfo* table = catalog_.GetTable(stmt.into_table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.into_table + "' does not exist");
  }
  if (table->schema.num_columns() != stream->schema.num_columns()) {
    return Status::InvalidArgument(
        "channel source stream and target table have different arities (" +
        std::to_string(stream->schema.num_columns()) + " vs " +
        std::to_string(table->schema.num_columns()) + ")");
  }
  catalog::ChannelInfo info;
  info.name = stmt.name;
  info.from_stream = stream->name;
  info.into_table = table->name;
  info.mode = stmt.mode;
  RETURN_IF_ERROR(catalog_.CreateChannel(std::move(info)));
  RETURN_IF_ERROR(runtime_.StartChannel(stmt.name));
  QueryResult result;
  result.message = "CREATE CHANNEL";
  return result;
}

Result<QueryResult> Database::ExecuteCreateIndex(
    const sql::CreateIndexStmt& stmt) {
  catalog::TableInfo* table = catalog_.GetTable(stmt.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + stmt.table + "' does not exist");
  }
  ASSIGN_OR_RETURN(size_t col, table->schema.FindColumn(stmt.column));
  auto index = std::make_shared<storage::BTreeIndex>(
      table->schema.column(col).name);
  // Backfill from the currently committed table contents.
  storage::Snapshot snap = txns_.CurrentSnapshot();
  RETURN_IF_ERROR(table->heap->Scan(
      txns_, snap, storage::kInvalidTxn,
      [&](storage::RowId id, const Row& row) {
        index->Insert(row[col], id);
        return true;
      }));
  RETURN_IF_ERROR(catalog_.CreateIndex(stmt.name, stmt.table, index));
  QueryResult result;
  result.message = "CREATE INDEX";
  return result;
}

Result<QueryResult> Database::ExecuteDrop(const sql::DropStmt& stmt) {
  QueryResult result;
  Status status;
  switch (stmt.object_kind) {
    case sql::ObjectKind::kTable: {
      // Running CQs hold plan pointers into the catalog and channels write
      // into their target tables; dropping out from under them would
      // dangle.
      std::string user = runtime_.TableInUseBy(stmt.name);
      if (!user.empty() && catalog_.GetTable(stmt.name) != nullptr) {
        return Status::InvalidArgument("cannot drop table '" + stmt.name +
                                       "': it is in use by " + user);
      }
      status = catalog_.DropTable(stmt.name);
      result.message = "DROP TABLE";
      break;
    }
    case sql::ObjectKind::kStream: {
      const catalog::StreamInfo* info = catalog_.GetStream(stmt.name);
      if (info != nullptr) {
        std::string user = runtime_.StreamInUseBy(stmt.name);
        if (!user.empty()) {
          return Status::InvalidArgument("cannot drop stream '" + stmt.name +
                                         "': it is in use by " + user);
        }
        if (info->is_derived) {
          // Stop the always-on defining CQ.
          Status stop =
              runtime_.DropCq("$derived$" + ToLower(info->name));
          if (!stop.ok() && stop.code() != StatusCode::kNotFound) {
            return stop;
          }
        }
        RETURN_IF_ERROR(runtime_.UnregisterStream(stmt.name));
      }
      status = catalog_.DropStream(stmt.name);
      result.message = "DROP STREAM";
      break;
    }
    case sql::ObjectKind::kView:
      status = catalog_.DropView(stmt.name);
      result.message = "DROP VIEW";
      break;
    case sql::ObjectKind::kChannel:
      if (catalog_.GetChannel(stmt.name) != nullptr) {
        RETURN_IF_ERROR(runtime_.StopChannel(stmt.name));
      }
      status = catalog_.DropChannel(stmt.name);
      result.message = "DROP CHANNEL";
      break;
    case sql::ObjectKind::kIndex:
      status = catalog_.DropIndex(stmt.name);
      result.message = "DROP INDEX";
      break;
  }
  if (!status.ok() && stmt.if_exists &&
      status.code() == StatusCode::kNotFound) {
    result.message += " (absent)";
    return result;
  }
  RETURN_IF_ERROR(status);
  return result;
}

namespace {
void CollectBaseRefs(const sql::TableRef& ref, std::vector<std::string>* out);

void CollectBaseRefs(const sql::SelectStmt& sel,
                     std::vector<std::string>* out) {
  for (const auto& ref : sel.from) CollectBaseRefs(*ref, out);
  for (const auto& branch : sel.union_all) CollectBaseRefs(*branch, out);
}

void CollectBaseRefs(const sql::TableRef& ref, std::vector<std::string>* out) {
  switch (ref.kind) {
    case sql::TableRefKind::kBase:
      out->push_back(ref.name);
      break;
    case sql::TableRefKind::kSubquery:
      CollectBaseRefs(*ref.subquery, out);
      break;
    case sql::TableRefKind::kJoin:
      CollectBaseRefs(*ref.left, out);
      CollectBaseRefs(*ref.right, out);
      break;
  }
}
}  // namespace

bool Database::SelectReferencesSysTables(const sql::SelectStmt& stmt) const {
  // Walk base refs, expanding views transitively (a view over sys_cqs must
  // trigger the refresh just like a direct scan). The visited set guards
  // against view cycles.
  std::vector<std::string> pending;
  CollectBaseRefs(stmt, &pending);
  std::unordered_set<std::string> visited;
  while (!pending.empty()) {
    std::string name = ToLower(pending.back());
    pending.pop_back();
    if (!visited.insert(name).second) continue;
    if (IsSystemName(name)) return true;
    if (const catalog::ViewInfo* view = catalog_.GetView(name)) {
      CollectBaseRefs(*view->select, &pending);
    }
  }
  return false;
}

Result<stream::ContinuousQuery*> Database::CreateContinuousQuery(
    const std::string& name, const std::string& select_sql,
    bool allow_shared) {
  // Exclusive: creating a CQ splices into shared pipelines and callback
  // vectors that ingest reads lock-free.
  ExclusiveLockGuard lock(&engine_lock_);
  ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                   sql::ParseSingleStatement(select_sql));
  if (stmt->kind() != sql::StatementKind::kSelect) {
    return Status::InvalidArgument(
        "CreateContinuousQuery expects a SELECT statement");
  }
  const auto& select = static_cast<const sql::SelectStmt&>(*stmt);
  // A CQ may subscribe to a quarantine stream before any row has been
  // quarantined; create the dead-letter stream lazily so the plan binds.
  std::vector<std::string> refs;
  CollectBaseRefs(select, &refs);
  for (const std::string& ref : refs) {
    if (stream::StreamRuntime::IsQuarantineName(ref) &&
        catalog_.GetStream(ref) == nullptr) {
      std::string base = ToLower(ref);
      base.resize(base.size() - (sizeof(".__quarantine") - 1));
      if (catalog_.GetStream(base) != nullptr) {
        RETURN_IF_ERROR(runtime_.EnsureQuarantineStream(base));
      }
    }
  }
  return runtime_.CreateCq(name, select, allow_shared);
}

Status Database::DropContinuousQuery(const std::string& name) {
  ExclusiveLockGuard lock(&engine_lock_);
  return runtime_.DropCq(name);
}

Status Database::Ingest(const std::string& stream,
                        const std::vector<Row>& rows, int64_t system_time) {
  // Shared: disjoint streams ingest concurrently; the runtime's per-stream
  // lock serializes same-stream batches. The logical clock is a CAS-max so
  // racing ingests both land their watermarks.
  SharedLockGuard lock(&engine_lock_);
  RETURN_IF_ERROR(runtime_.Ingest(stream, rows, system_time));
  const int64_t wm = runtime_.watermark(stream);
  int64_t cur = now_micros_.load(std::memory_order_relaxed);
  while (wm > cur && !now_micros_.compare_exchange_weak(
                         cur, wm, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Status Database::AdvanceTime(const std::string& stream, int64_t watermark) {
  SharedLockGuard lock(&engine_lock_);
  RETURN_IF_ERROR(runtime_.AdvanceTime(stream, watermark));
  int64_t cur = now_micros_.load(std::memory_order_relaxed);
  while (watermark > cur && !now_micros_.compare_exchange_weak(
                                cur, watermark, std::memory_order_relaxed)) {
  }
  return Status::OK();
}

Result<stream::WalReplayResult> Database::RecoverFromWal() {
  // Exclusive: replay rebuilds table contents and the runtime's recovery
  // walkers iterate stream state with no finer-grained locking.
  ExclusiveLockGuard lock(&engine_lock_);
  ASSIGN_OR_RETURN(stream::WalReplayResult replay,
                   stream::ReplayWal(&catalog_, &txns_, *wal_));
  ++recoveries_;
  last_replay_rows_ = replay.rows_inserted + replay.rows_deleted;
  last_replay_txns_ = replay.transactions_committed;
  return replay;
}

}  // namespace streamrel::engine
