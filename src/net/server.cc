#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "sql/parser.h"

namespace streamrel::net {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMicros(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}

/// Upper bound on one condvar wait while a BLOCK-policy push waits for
/// room: deliveries are woken promptly when TryFlush retires bytes, and
/// this bound guarantees the waiter re-runs its own TryFlush even if no
/// signal arrives (the loop thread may be blocked on the engine lock).
constexpr int64_t kBlockPollMicros = 200;

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Server::Server(engine::Database* db, ServerOptions options)
    : db_(db),
      options_(std::move(options)),
      request_micros_(stream::Histogram::LatencyMicrosBounds()) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (loop_thread_.joinable()) {
    return Status::InvalidArgument("server already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen host '" + options_.host + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st = Errno("bind");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  // --port 0 binds an ephemeral port; read back which one we got so
  // parallel test runs never collide.
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    Status st = Errno("getsockname");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 64) < 0) {
    Status st = Errno("listen");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  RETURN_IF_ERROR(SetNonBlocking(listen_fd_));
  if (pipe(wake_fds_) < 0) {
    Status st = Errno("pipe");
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  RETURN_IF_ERROR(SetNonBlocking(wake_fds_[0]));
  RETURN_IF_ERROR(SetNonBlocking(wake_fds_[1]));
  stop_requested_.store(false);
  drain_requested_.store(false);
  workers_stop_.store(false);
  running_.store(true, std::memory_order_release);
  db_->RegisterStatsProvider(
      "net", [this](std::vector<stream::MetricSample>* samples) {
        AppendNetStats(samples);
      });
  for (int i = 0; i < options_.worker_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->thread = std::thread(&Server::WorkerLoop, this, worker.get());
    workers_.push_back(std::move(worker));
  }
  loop_thread_ = std::thread(&Server::Loop, this);
  return Status::OK();
}

void Server::Stop() { ShutdownInternal(/*graceful=*/false); }

void Server::Drain() { ShutdownInternal(/*graceful=*/true); }

void Server::ShutdownInternal(bool graceful) {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (!loop_thread_.joinable()) return;
  if (graceful) {
    drain_requested_.store(true);
  } else {
    stop_requested_.store(true);
  }
  Wake();
  loop_thread_.join();
  // Workers drain their remaining queues and exit; responses for already
  // reaped connections are dropped by the dead/closed checks.
  workers_stop_.store(true);
  for (auto& worker : workers_) {
    worker->cv.notify_all();
    worker->thread.join();
  }
  workers_.clear();
  db_->UnregisterStatsProvider("net");
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      close(fd);
      fd = -1;
    }
  }
  running_.store(false, std::memory_order_release);
}

void Server::Wake() {
  if (wake_fds_[1] >= 0) {
    char byte = 'w';
    [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
  }
}

void Server::Loop() {
  bool draining = false;
  Clock::time_point drain_deadline{};
  std::vector<pollfd> pfds;
  std::vector<ConnPtr> polled;
  while (!stop_requested_.load()) {
    if (drain_requested_.load() && !draining) {
      draining = true;
      drain_deadline = Clock::now() + std::chrono::microseconds(
                                          options_.drain_timeout_micros);
      // Stop accepting and stop producing: new connections are refused
      // and every subscription detaches, so queues only drain from here.
      if (listen_fd_ >= 0) {
        close(listen_fd_);
        listen_fd_ = -1;
      }
      for (auto& [fd, conn] : conns_) {
        // Detach under the connection lock (a worker may be mid-SUBSCRIBE),
        // but call the engine without it: Unsubscribe takes the exclusive
        // engine lock, and delivery callbacks holding it shared also take
        // conn->mu.
        std::vector<Subscription> subs;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          subs = std::move(conn->subs);
          conn->subs.clear();
        }
        for (Subscription& sub : subs) {
          db_->Unsubscribe(sub.ticket);
          counters_.subscriptions_active.fetch_sub(1);
        }
      }
    }
    if (draining) {
      // Requests still in worker queues may yet enqueue responses; wait
      // for them before judging the send queues final.
      bool pending = tasks_inflight_.load() > 0;
      for (auto& [fd, conn] : conns_) {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->dead && !conn->out.empty()) pending = true;
      }
      if (!pending || Clock::now() >= drain_deadline) break;
    }

    pfds.clear();
    polled.clear();
    if (listen_fd_ >= 0 && !draining) {
      pfds.push_back({listen_fd_, POLLIN, 0});
    }
    pfds.push_back({wake_fds_[0], POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = draining ? 0 : POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->out.empty()) events |= POLLOUT;
      }
      pfds.push_back({fd, events, 0});
      polled.push_back(conn);
    }
    poll(pfds.data(), pfds.size(), draining ? 5 : 50);

    size_t idx = 0;
    if (listen_fd_ >= 0 && !draining) {
      if (pfds[idx].revents & POLLIN) AcceptNew();
      ++idx;
    }
    if (pfds[idx].revents & POLLIN) {
      char sink[256];
      while (read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
    }
    ++idx;
    for (size_t c = 0; c < polled.size(); ++c, ++idx) {
      const ConnPtr& conn = polled[c];
      const short re = pfds[idx].revents;
      if (re & POLLOUT) TryFlush(conn);
      if (re & (POLLERR | POLLHUP | POLLNVAL)) {
        KillConnection(conn);
        continue;
      }
      if (!draining && (re & POLLIN)) HandleReadable(conn);
    }

    for (auto it = conns_.begin(); it != conns_.end();) {
      bool dead;
      {
        std::lock_guard<std::mutex> lock(it->second->mu);
        dead = it->second->dead;
      }
      if (dead) {
        Reap(it->second);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Shutdown: close everything that is left.
  for (auto& [fd, conn] : conns_) Reap(conn);
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptNew() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error; poll again
    }
    counters_.connections_accepted.fetch_add(1);
    if (!FaultInjector::Instance().Hit("net.accept").ok()) {
      close(fd);
      counters_.connections_closed.fetch_add(1);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      counters_.connections_closed.fetch_add(1);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                 sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
  }
}

void Server::HandleReadable(const ConnPtr& conn) {
  if (!FaultInjector::Instance().Hit("net.read").ok()) {
    KillConnection(conn);
    return;
  }
  char tmp[64 * 1024];
  for (;;) {
    ssize_t n = recv(conn->fd, tmp, sizeof(tmp), 0);
    if (n > 0) {
      conn->read_buf.append(tmp, static_cast<size_t>(n));
      counters_.bytes_in.fetch_add(n);
      if (static_cast<size_t>(n) < sizeof(tmp)) break;
      continue;
    }
    if (n == 0) {  // peer closed
      KillConnection(conn);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    KillConnection(conn);
    return;
  }
  for (;;) {
    Frame frame;
    std::string error;
    DecodeStatus ds =
        TryDecodeFrame(conn->read_buf, &conn->read_off, &frame, &error);
    if (ds == DecodeStatus::kNeedMore) break;
    if (ds == DecodeStatus::kCorrupt) {
      // Length-prefixed framing cannot resync after a bad header: tell
      // the client why (best effort) and drop the connection. The engine
      // is untouched.
      counters_.frames_bad.fetch_add(1);
      Frame err{FrameType::kError, 0,
                EncodeErrorBody(Status::IoError("corrupt frame: " + error))};
      EnqueueResponse(conn, err);
      KillConnection(conn);
      return;
    }
    SubmitFrame(conn, std::move(frame));
    bool dead;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      dead = conn->dead;
    }
    if (dead) return;
  }
  if (conn->read_off > 0) {
    conn->read_buf.erase(0, conn->read_off);
    conn->read_off = 0;
  }
}

void Server::SubmitFrame(const ConnPtr& conn, Frame frame) {
  if (workers_.empty()) {
    DispatchFrame(conn, std::move(frame));
    return;
  }
  Worker* worker = workers_[conn->id % workers_.size()].get();
  tasks_inflight_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    worker->queue.push_back(Task{conn, std::move(frame)});
  }
  worker->cv.notify_one();
}

void Server::WorkerLoop(Worker* worker) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [&] {
        return workers_stop_.load() || !worker->queue.empty();
      });
      // On shutdown the queue is drained before exiting, so a request
      // accepted before Stop()/Drain() still executes (its response is
      // simply dropped if the connection is already gone).
      if (worker->queue.empty()) return;
      task = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    DispatchFrame(task.conn, std::move(task.frame));
    tasks_inflight_.fetch_sub(1);
  }
}

void Server::DispatchFrame(const ConnPtr& conn, Frame frame) {
  const Clock::time_point start = Clock::now();
  switch (frame.type) {
    case FrameType::kQuery: {
      counters_.frames_query.fetch_add(1);
      auto sql = DecodeQueryBody(frame.body);
      if (!sql.ok()) {
        EnqueueResponse(conn, Frame{FrameType::kError, frame.request_id,
                                    EncodeErrorBody(sql.status())});
        break;
      }
      DoQuery(conn, frame.request_id, *sql);
      break;
    }
    case FrameType::kIngestBatch:
      counters_.frames_ingest_batch.fetch_add(1);
      DoIngest(conn, frame.request_id, frame.body);
      break;
    case FrameType::kSubscribe: {
      counters_.frames_subscribe.fetch_add(1);
      auto name = DecodeNameBody(frame.body);
      if (!name.ok()) {
        EnqueueResponse(conn, Frame{FrameType::kError, frame.request_id,
                                    EncodeErrorBody(name.status())});
        break;
      }
      DoSubscribe(conn, frame.request_id, *name);
      break;
    }
    case FrameType::kUnsubscribe: {
      counters_.frames_unsubscribe.fetch_add(1);
      auto name = DecodeNameBody(frame.body);
      if (!name.ok()) {
        EnqueueResponse(conn, Frame{FrameType::kError, frame.request_id,
                                    EncodeErrorBody(name.status())});
        break;
      }
      DoUnsubscribe(conn, frame.request_id, *name);
      break;
    }
    case FrameType::kPing:
      counters_.frames_ping.fetch_add(1);
      EnqueueResponse(conn, Frame{FrameType::kAck, frame.request_id,
                                  EncodeAckBody("PONG")});
      break;
    default:
      counters_.frames_bad.fetch_add(1);
      EnqueueResponse(
          conn,
          Frame{FrameType::kError, frame.request_id,
                EncodeErrorBody(Status::InvalidArgument(
                    std::string("unexpected frame type ") +
                    FrameTypeName(frame.type) + " from client"))});
      break;
  }
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    request_micros_.Record(ElapsedMicros(start));
  }
}

void Server::DoQuery(const ConnPtr& conn, uint64_t request_id,
                     const std::string& sql) {
  // Intercept SUBSCRIBE / UNSUBSCRIBE: they bind to this connection and
  // never reach Database::Execute.
  auto parsed = sql::ParseSql(sql);
  if (!parsed.ok()) {
    EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                                EncodeErrorBody(parsed.status())});
    return;
  }
  bool has_sub = false;
  for (const auto& stmt : *parsed) {
    if (stmt->kind() == sql::StatementKind::kSubscribe ||
        stmt->kind() == sql::StatementKind::kUnsubscribe) {
      has_sub = true;
    }
  }
  if (has_sub) {
    if (parsed->size() != 1) {
      EnqueueResponse(
          conn, Frame{FrameType::kError, request_id,
                      EncodeErrorBody(Status::InvalidArgument(
                          "SUBSCRIBE/UNSUBSCRIBE must be the only statement "
                          "in its request"))});
      return;
    }
    const sql::Statement& stmt = *(*parsed)[0];
    if (stmt.kind() == sql::StatementKind::kSubscribe) {
      DoSubscribe(conn, request_id,
                  static_cast<const sql::SubscribeStmt&>(stmt).name);
    } else {
      DoUnsubscribe(conn, request_id,
                    static_cast<const sql::UnsubscribeStmt&>(stmt).name);
    }
    return;
  }
  auto result = db_->Execute(sql);
  if (!result.ok()) {
    EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                                EncodeErrorBody(result.status())});
    return;
  }
  RowSet rowset;
  rowset.message = result->message;
  rowset.schema = result->schema;
  rowset.rows = std::move(result->rows);
  EnqueueResponse(conn, Frame{FrameType::kRowSet, request_id,
                              EncodeRowSetBody(rowset)});
}

void Server::DoIngest(const ConnPtr& conn, uint64_t request_id,
                      const std::string& body) {
  auto req = DecodeIngestBody(body);
  if (!req.ok()) {
    EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                                EncodeErrorBody(req.status())});
    return;
  }
  Status st = db_->Ingest(req->stream, req->rows, req->system_time);
  if (!st.ok()) {
    EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                                EncodeErrorBody(st)});
    return;
  }
  EnqueueResponse(
      conn, Frame{FrameType::kAck, request_id,
                  EncodeAckBody("INGEST " + std::to_string(req->rows.size()))});
}

void Server::DoSubscribe(const ConnPtr& conn, uint64_t request_id,
                         const std::string& name) {
  const std::string key = ToLower(name);
  bool duplicate = false;
  {
    // Same-connection requests are serialized on one worker, so the
    // dup-check/insert pair below cannot race itself; the lock protects
    // against the loop thread detaching subs concurrently (drain, reap).
    // EnqueueResponse takes conn->mu itself, so respond after unlocking.
    std::lock_guard<std::mutex> lock(conn->mu);
    for (const Subscription& sub : conn->subs) {
      if (ToLower(sub.name) == key) duplicate = true;
    }
  }
  if (duplicate) {
    EnqueueResponse(conn,
                    Frame{FrameType::kError, request_id,
                          EncodeErrorBody(Status::AlreadyExists(
                              "already subscribed to '" + name + "'"))});
    return;
  }
  // The callback needs the source stream (for the overload policy), which
  // the ticket reports only after Subscribe returns; it is shared state
  // filled right below. An unset value means BLOCK — the engine default.
  auto policy_stream = std::make_shared<std::string>();
  ConnPtr c = conn;
  auto ticket = db_->Subscribe(
      name, [this, c, request_id, name, policy_stream](
                int64_t close, const std::vector<Row>& rows) {
        if (c->closed.load(std::memory_order_acquire)) return Status::OK();
        StreamRowsBody batch;
        batch.source = name;
        batch.close = close;
        batch.rows = rows;
        Frame frame{FrameType::kStreamRows, request_id,
                    EncodeStreamRowsBody(batch)};
        std::string bytes;
        EncodeFrame(frame, &bytes);
        EnqueuePush(c, *policy_stream, std::move(bytes));
        return Status::OK();
      });
  if (!ticket.ok()) {
    EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                                EncodeErrorBody(ticket.status())});
    return;
  }
  *policy_stream = ticket->source_stream;
  Subscription sub;
  sub.ticket = ticket.TakeValue();
  sub.name = name;
  sub.policy_stream = *policy_stream;
  sub.request_id = request_id;
  bool reaped = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    reaped = conn->closed.load(std::memory_order_acquire);
    if (!reaped) conn->subs.push_back(std::move(sub));
  }
  if (reaped) {
    // The loop thread reaped the connection between Subscribe and the
    // insert; it already detached everything it saw, so detach this
    // ticket ourselves instead of leaking the callback.
    db_->Unsubscribe(sub.ticket);
    return;
  }
  counters_.subscriptions_active.fetch_add(1);
  EnqueueResponse(conn, Frame{FrameType::kAck, request_id,
                              EncodeAckBody("SUBSCRIBED " + name)});
}

void Server::DoUnsubscribe(const ConnPtr& conn, uint64_t request_id,
                           const std::string& name) {
  const std::string key = ToLower(name);
  bool found = false;
  engine::Database::SubscriptionTicket ticket;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    for (auto it = conn->subs.begin(); it != conn->subs.end(); ++it) {
      if (ToLower(it->name) == key) {
        ticket = std::move(it->ticket);
        conn->subs.erase(it);
        found = true;
        break;
      }
    }
  }
  if (found) {
    // Engine call outside conn->mu (Unsubscribe takes the exclusive
    // engine lock; delivery callbacks holding it shared take conn->mu).
    db_->Unsubscribe(ticket);
    counters_.subscriptions_active.fetch_sub(1);
    EnqueueResponse(conn, Frame{FrameType::kAck, request_id,
                                EncodeAckBody("UNSUBSCRIBED " + name)});
    return;
  }
  EnqueueResponse(conn, Frame{FrameType::kError, request_id,
                              EncodeErrorBody(Status::NotFound(
                                  "not subscribed to '" + name + "'"))});
}

void Server::EnqueueResponse(const ConnPtr& conn, const Frame& frame) {
  std::string bytes;
  EncodeFrame(frame, &bytes);
  const size_t sz = bytes.size();
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->dead || conn->closed.load()) return;
    OutFrame out;
    out.bytes = std::move(bytes);
    conn->out.push_back(std::move(out));
    conn->out_bytes += sz;
  }
  db_->runtime()->governor()->Add(MemoryGovernor::Account::kNetSendQueue,
                                  static_cast<int64_t>(sz));
  TryFlush(conn);
}

void Server::EnqueuePush(const ConnPtr& conn,
                         const std::string& policy_stream,
                         std::string bytes) {
  counters_.pushes_total.fetch_add(1);
  MemoryGovernor* governor = db_->runtime()->governor();
  const size_t sz = bytes.size();
  const size_t limit = options_.max_send_queue_bytes;
  // Called holding the shared engine lock and the source stream's ingest
  // lock: the policy read is consistent with the delivery that produced
  // this batch.
  const stream::OverloadPolicy policy =
      db_->runtime()->overload_policy(policy_stream);

  auto admit_locked = [&](std::string frame_bytes) {
    OutFrame out;
    out.bytes = std::move(frame_bytes);
    out.is_push = true;
    conn->out_bytes += sz;
    conn->out_push_bytes += sz;
    conn->out.push_back(std::move(out));
    governor->Add(MemoryGovernor::Account::kNetSendQueue,
                  static_cast<int64_t>(sz));
    counters_.pushes_admitted.fetch_add(1);
  };

  {
    std::unique_lock<std::mutex> lock(conn->mu);
    if (conn->dead || conn->closed.load()) {
      counters_.pushes_disconnected.fetch_add(1);
      return;
    }
    if (conn->out_push_bytes + sz <= limit) {
      admit_locked(std::move(bytes));
      lock.unlock();
      Wake();
      return;
    }
    switch (policy) {
      case stream::OverloadPolicy::kShedNewest:
        counters_.pushes_shed.fetch_add(1);
        return;
      case stream::OverloadPolicy::kShedOldest: {
        // Evict queued push frames (oldest first) to make room. A frame
        // already partially on the wire cannot be evicted — pulling it
        // would desync the framing.
        for (auto it = conn->out.begin();
             it != conn->out.end() && conn->out_push_bytes + sz > limit;) {
          if (it->is_push && it->offset == 0) {
            const size_t evicted = it->bytes.size();
            governor->Release(MemoryGovernor::Account::kNetSendQueue,
                              static_cast<int64_t>(evicted));
            conn->out_bytes -= evicted;
            conn->out_push_bytes -= evicted;
            // Reclassify: this delivery was admitted, now it is shed.
            counters_.pushes_admitted.fetch_sub(1);
            counters_.pushes_shed.fetch_add(1);
            it = conn->out.erase(it);
          } else {
            ++it;
          }
        }
        if (conn->out_push_bytes + sz <= limit) {
          admit_locked(std::move(bytes));
          conn->drain_cv.notify_all();  // evictions freed push bytes
          lock.unlock();
          Wake();
        } else {
          // One frame larger than the whole bound: shed it. The evictions
          // above may still have freed queue space, so wake the loop (to
          // reconsider POLLOUT) and any BLOCK-policy delivery waiting on
          // this connection for another stream.
          counters_.pushes_shed.fetch_add(1);
          conn->drain_cv.notify_all();
          lock.unlock();
          Wake();
        }
        return;
      }
      case stream::OverloadPolicy::kBlock:
        break;  // wait loop below
    }
  }
  // BLOCK: bounded wait for the consumer to drain. We flush the socket
  // ourselves — the loop thread may itself be blocked on the engine lock
  // (an exclusive DDL acquisition queued behind the shared hold this
  // delivery rides on), so waiting on it could deadlock. The drain
  // condvar wakes us the moment TryFlush retires bytes (or the connection
  // dies); the bounded wait keeps the self-flush fallback alive even if
  // every signal is missed.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::microseconds(options_.block_timeout_micros);
  for (;;) {
    TryFlush(conn);
    {
      std::unique_lock<std::mutex> lock(conn->mu);
      if (conn->dead || conn->closed.load()) {
        counters_.pushes_disconnected.fetch_add(1);
        return;
      }
      if (conn->out_push_bytes + sz <= limit) {
        admit_locked(std::move(bytes));
        lock.unlock();
        Wake();
        return;
      }
      if (Clock::now() >= deadline) {
        // Slow consumer under a lossless policy: disconnecting it is the
        // only way to keep the engine moving.
        conn->dead = true;
        counters_.pushes_disconnected.fetch_add(1);
        counters_.slow_disconnects.fetch_add(1);
      } else {
        conn->drain_cv.wait_for(
            lock, std::chrono::microseconds(kBlockPollMicros), [&] {
              return conn->dead || conn->closed.load() ||
                     conn->out_push_bytes + sz <= limit;
            });
        continue;
      }
    }
    Wake();
    return;
  }
}

void Server::TryFlush(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->fd < 0 || conn->dead) return;
  if (conn->out.empty()) return;
  if (!FaultInjector::Instance().Hit("net.write").ok()) {
    conn->dead = true;
    conn->broken = true;
    conn->drain_cv.notify_all();
    return;
  }
  MemoryGovernor* governor = db_->runtime()->governor();
  bool progressed = false;
  while (!conn->out.empty()) {
    OutFrame& front = conn->out.front();
    ssize_t n = send(conn->fd, front.bytes.data() + front.offset,
                     front.bytes.size() - front.offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn->dead = true;
      conn->broken = true;
      conn->drain_cv.notify_all();
      return;
    }
    counters_.bytes_out.fetch_add(n);
    front.offset += static_cast<size_t>(n);
    if (front.offset < front.bytes.size()) break;  // socket full mid-frame
    const size_t sz = front.bytes.size();
    governor->Release(MemoryGovernor::Account::kNetSendQueue,
                      static_cast<int64_t>(sz));
    conn->out_bytes -= sz;
    if (front.is_push) conn->out_push_bytes -= sz;
    conn->out.pop_front();
    progressed = true;
  }
  // Wake BLOCK-policy deliveries the moment queue bytes retire.
  if (progressed) conn->drain_cv.notify_all();
}

void Server::KillConnection(const ConnPtr& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->dead = true;
    conn->drain_cv.notify_all();
  }
  Wake();
}

void Server::Reap(const ConnPtr& conn) {
  // Mark the connection reaped and detach its subscriptions under the
  // lock (a worker may be mid-SUBSCRIBE; `closed` tells it to detach its
  // own late ticket), but call the engine without it: Unsubscribe takes
  // the exclusive engine lock, and delivery callbacks holding it shared
  // take conn->mu.
  std::vector<Subscription> subs;
  bool broken;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    conn->closed.store(true, std::memory_order_release);
    subs = std::move(conn->subs);
    conn->subs.clear();
    broken = conn->broken;
    if (!broken) conn->dead = false;  // let the final flush run
  }
  for (Subscription& sub : subs) {
    db_->Unsubscribe(sub.ticket);
    counters_.subscriptions_active.fetch_sub(1);
  }
  // Try to get any queued error/ack out before the socket goes away.
  if (!broken) TryFlush(conn);
  std::lock_guard<std::mutex> lock(conn->mu);
  conn->dead = true;
  MemoryGovernor* governor = db_->runtime()->governor();
  for (const OutFrame& frame : conn->out) {
    governor->Release(MemoryGovernor::Account::kNetSendQueue,
                      static_cast<int64_t>(frame.bytes.size()));
  }
  conn->out.clear();
  conn->out_bytes = 0;
  conn->out_push_bytes = 0;
  if (conn->fd >= 0) {
    close(conn->fd);
    conn->fd = -1;
  }
  conn->drain_cv.notify_all();
  counters_.connections_closed.fetch_add(1);
}

NetStats Server::stats() const {
  NetStats s;
  s.connections_accepted = counters_.connections_accepted.load();
  s.connections_closed = counters_.connections_closed.load();
  s.connections_active = s.connections_accepted - s.connections_closed;
  s.bytes_in = counters_.bytes_in.load();
  s.bytes_out = counters_.bytes_out.load();
  s.frames_query = counters_.frames_query.load();
  s.frames_ingest_batch = counters_.frames_ingest_batch.load();
  s.frames_subscribe = counters_.frames_subscribe.load();
  s.frames_unsubscribe = counters_.frames_unsubscribe.load();
  s.frames_ping = counters_.frames_ping.load();
  s.frames_bad = counters_.frames_bad.load();
  s.pushes_total = counters_.pushes_total.load();
  s.pushes_admitted = counters_.pushes_admitted.load();
  s.pushes_shed = counters_.pushes_shed.load();
  s.pushes_disconnected = counters_.pushes_disconnected.load();
  s.slow_disconnects = counters_.slow_disconnects.load();
  s.subscriptions_active = counters_.subscriptions_active.load();
  s.send_queue_bytes = db_->runtime()->governor()->held(
      MemoryGovernor::Account::kNetSendQueue);
  return s;
}

void Server::AppendNetStats(
    std::vector<stream::MetricSample>* samples) const {
  const NetStats s = stats();
  auto add = [samples](const std::string& name, const std::string& metric,
                       int64_t value) {
    stream::MetricSample sample;
    sample.scope = "net";
    sample.name = name;
    sample.metric = metric;
    sample.value = value;
    samples->push_back(std::move(sample));
  };
  add("server", "connections_accepted", s.connections_accepted);
  add("server", "connections_active", s.connections_active);
  add("server", "connections_closed", s.connections_closed);
  add("server", "bytes_in", s.bytes_in);
  add("server", "bytes_out", s.bytes_out);
  add("frames", "query", s.frames_query);
  add("frames", "ingest_batch", s.frames_ingest_batch);
  add("frames", "subscribe", s.frames_subscribe);
  add("frames", "unsubscribe", s.frames_unsubscribe);
  add("frames", "ping", s.frames_ping);
  add("frames", "bad", s.frames_bad);
  add("subscriptions", "active", s.subscriptions_active);
  add("subscriptions", "pushes_total", s.pushes_total);
  add("subscriptions", "pushes_admitted", s.pushes_admitted);
  add("subscriptions", "pushes_shed", s.pushes_shed);
  add("subscriptions", "pushes_disconnected", s.pushes_disconnected);
  add("subscriptions", "slow_disconnects", s.slow_disconnects);
  add("subscriptions", "send_queue_bytes", s.send_queue_bytes);
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    add("requests", "request_micros_count", request_micros_.count());
    add("requests", "request_micros_total", request_micros_.sum());
    add("requests", "request_micros_min", request_micros_.min());
    add("requests", "request_micros_max", request_micros_.max());
    add("requests", "request_micros_p50", request_micros_.Percentile(0.50));
    add("requests", "request_micros_p95", request_micros_.Percentile(0.95));
    add("requests", "request_micros_p99", request_micros_.Percentile(0.99));
  }
}

}  // namespace streamrel::net
