#ifndef STREAMREL_NET_SERVER_H_
#define STREAMREL_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "engine/database.h"
#include "net/protocol.h"
#include "stream/metrics.h"

namespace streamrel::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; the bound port is reported by port() (and
  /// printed by streamrel-server), so parallel test runs never collide.
  uint16_t port = 0;
  /// Per-connection bound on queued *push* frames (SUBSCRIBE deliveries).
  /// Responses are exempt (the client is waiting for them) but still
  /// charged to the governor's kNetSendQueue account.
  size_t max_send_queue_bytes = 1u << 20;
  /// BLOCK slow-consumer policy: how long a delivery waits for the queue
  /// to drain before the consumer is declared dead and disconnected.
  int64_t block_timeout_micros = 50'000;
  /// Graceful drain: how long Drain() keeps flushing send queues before
  /// closing connections anyway.
  int64_t drain_timeout_micros = 2'000'000;
  /// If > 0, SO_SNDBUF for accepted sockets. Tests set this to the kernel
  /// minimum so a non-reading subscriber back-pressures after a few KB
  /// instead of after megabytes of kernel buffering.
  int so_sndbuf = 0;
  /// Request-dispatch workers: decoded frames (QUERY, INGEST_BATCH,
  /// SUBSCRIBE, ...) execute on this many threads, so requests from
  /// different connections — in particular INGEST_BATCH on disjoint
  /// streams — run concurrently under the engine's shared lock. A
  /// connection's frames always route to the same worker, preserving
  /// per-connection FIFO order. 0 executes frames inline on the event-loop
  /// thread (the pre-pool behavior).
  int worker_threads = 4;
};

/// Point-in-time network-front-end counters (the struct twin of
/// `SHOW STATS FOR NET`).
///
/// Slow-consumer accounting invariant, asserted by network_test:
///   pushes_total == pushes_admitted + pushes_shed + pushes_disconnected
/// where `admitted` counts deliveries currently accepted into a send
/// queue — a SHED_OLDEST eviction reclassifies an already-queued delivery
/// from admitted to shed, keeping the balance exact.
struct NetStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t connections_active = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t frames_query = 0;
  int64_t frames_ingest_batch = 0;
  int64_t frames_subscribe = 0;
  int64_t frames_unsubscribe = 0;
  int64_t frames_ping = 0;
  int64_t frames_bad = 0;
  int64_t pushes_total = 0;
  int64_t pushes_admitted = 0;
  int64_t pushes_shed = 0;
  int64_t pushes_disconnected = 0;
  int64_t slow_disconnects = 0;
  int64_t subscriptions_active = 0;
  int64_t send_queue_bytes = 0;
};

/// The TCP front-end: a poll() event loop on one thread for socket I/O,
/// plus a small worker pool that executes decoded request frames through
/// Database. The engine's reader-writer lock hierarchy admits the workers
/// concurrently for data-plane requests (ingest on disjoint streams
/// parallelizes; DDL still serializes exclusively), and each connection's
/// frames run on one fixed worker, so a network session sees exactly the
/// in-process semantics. SUBSCRIBE attaches a Database::Subscribe callback
/// that fans window-close batches out to the connection's bounded send
/// queue; the source stream's overload policy decides whether a slow
/// consumer blocks the delivery, sheds batches, or is disconnected.
///
/// Fault points (FaultInjector): `net.accept`, `net.read`, `net.write` —
/// a fired fault kills the connection, never the engine.
class Server {
 public:
  explicit Server(engine::Database* db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event-loop thread. port() is valid
  /// (and the socket accepting) once this returns OK.
  Status Start();

  /// Immediate shutdown: close every connection, join the loop thread.
  void Stop();

  /// Graceful drain (SIGTERM path): stop accepting, flush send queues
  /// (bounded by drain_timeout_micros), close, join.
  void Drain();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  NetStats stats() const;

 private:
  struct OutFrame {
    std::string bytes;
    size_t offset = 0;    // bytes already written to the socket
    bool is_push = false;  // governed by the slow-consumer policy
  };

  struct Subscription {
    engine::Database::SubscriptionTicket ticket;
    std::string name;          // as subscribed (original casing)
    std::string policy_stream;  // source stream whose overload policy rules
    uint64_t request_id = 0;    // echoed on pushed frames
  };

  struct Connection {
    uint64_t id = 0;
    /// Guards fd (for writes/close), the send queue, `dead`, and `subs`.
    std::mutex mu;
    int fd = -1;
    bool dead = false;    // marked for reaping by the loop thread
    bool broken = false;  // write path failed: skip the final flush
    std::deque<OutFrame> out;
    size_t out_bytes = 0;       // total queued bytes (governor-charged)
    size_t out_push_bytes = 0;  // queued push bytes (policy bound)
    /// Signaled whenever queued bytes are released (or the connection
    /// dies), so BLOCK-policy deliveries wake as soon as there is room
    /// instead of busy-polling.
    std::condition_variable drain_cv;
    /// Set once the loop thread has reaped the connection; delivery
    /// callbacks that still hold the shared_ptr become no-ops.
    std::atomic<bool> closed{false};
    // Loop-thread-only state (no lock needed).
    std::string read_buf;
    size_t read_off = 0;
    /// Guarded by mu: mutated by the owning worker (SUBSCRIBE /
    /// UNSUBSCRIBE frames) and detached by the loop thread (drain, reap).
    std::vector<Subscription> subs;
  };
  using ConnPtr = std::shared_ptr<Connection>;

  /// One request-dispatch worker: a thread draining a FIFO of decoded
  /// frames. conn->id % workers_.size() picks the queue, so one
  /// connection's requests never reorder or run concurrently.
  struct Task {
    ConnPtr conn;
    Frame frame;
  };
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;  // guarded by mu
    std::thread thread;
  };

  void Loop();
  void WorkerLoop(Worker* worker);
  /// Routes a decoded frame to its connection's worker (or runs it inline
  /// when the pool is disabled).
  void SubmitFrame(const ConnPtr& conn, Frame frame);
  void AcceptNew();
  void HandleReadable(const ConnPtr& conn);
  void DispatchFrame(const ConnPtr& conn, Frame frame);
  void DoQuery(const ConnPtr& conn, uint64_t request_id,
               const std::string& sql);
  void DoIngest(const ConnPtr& conn, uint64_t request_id,
                const std::string& body);
  void DoSubscribe(const ConnPtr& conn, uint64_t request_id,
                   const std::string& name);
  void DoUnsubscribe(const ConnPtr& conn, uint64_t request_id,
                     const std::string& name);

  /// Enqueues a response frame (never shed; the client awaits it).
  void EnqueueResponse(const ConnPtr& conn, const Frame& frame);
  /// Enqueues a pushed subscription frame under `policy_stream`'s overload
  /// policy; called from delivery callbacks holding the shared engine lock
  /// and the source stream's ingest lock (on whatever thread drives
  /// ingest). Must never call back into db_.
  void EnqueuePush(const ConnPtr& conn, const std::string& policy_stream,
                   std::string bytes);

  /// Writes as much queued output as the socket accepts right now.
  /// Callable from any thread (BLOCK-policy deliverers drain the socket
  /// themselves so a busy loop thread cannot deadlock them).
  void TryFlush(const ConnPtr& conn);

  /// Marks a connection dead and wakes the loop to reap it.
  void KillConnection(const ConnPtr& conn);
  /// Loop thread: detaches subscriptions, releases queued-byte charges,
  /// closes the socket, drops the connection.
  void Reap(const ConnPtr& conn);

  void ShutdownInternal(bool graceful);
  void Wake();
  void AppendNetStats(std::vector<stream::MetricSample>* samples) const;

  engine::Database* db_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  std::thread loop_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> drain_requested_{false};
  std::mutex lifecycle_mu_;  // serializes Start/Stop/Drain

  std::map<int, ConnPtr> conns_;  // loop-thread-only, keyed by fd
  uint64_t next_conn_id_ = 1;

  // Request-dispatch pool (empty when worker_threads == 0). Workers are
  // started by Start() and joined by ShutdownInternal() after the loop
  // thread exits (they drain their queues first, so a request received
  // before shutdown still executes).
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> workers_stop_{false};
  /// Frames submitted but not yet fully processed; Drain() waits for this
  /// to reach zero before declaring send queues final.
  std::atomic<int64_t> tasks_inflight_{0};

  // Counters shared between the loop thread and delivery threads.
  struct {
    std::atomic<int64_t> connections_accepted{0};
    std::atomic<int64_t> connections_closed{0};
    std::atomic<int64_t> bytes_in{0};
    std::atomic<int64_t> bytes_out{0};
    std::atomic<int64_t> frames_query{0};
    std::atomic<int64_t> frames_ingest_batch{0};
    std::atomic<int64_t> frames_subscribe{0};
    std::atomic<int64_t> frames_unsubscribe{0};
    std::atomic<int64_t> frames_ping{0};
    std::atomic<int64_t> frames_bad{0};
    std::atomic<int64_t> pushes_total{0};
    std::atomic<int64_t> pushes_admitted{0};
    std::atomic<int64_t> pushes_shed{0};
    std::atomic<int64_t> pushes_disconnected{0};
    std::atomic<int64_t> slow_disconnects{0};
    std::atomic<int64_t> subscriptions_active{0};
  } counters_;

  /// Per-request wall-time histogram (decode to response-enqueue).
  mutable std::mutex hist_mu_;
  stream::Histogram request_micros_;
};

}  // namespace streamrel::net

#endif  // STREAMREL_NET_SERVER_H_
