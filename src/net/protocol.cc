#include "net/protocol.h"

#include <cstring>

namespace streamrel::net {

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kQuery:
      return "QUERY";
    case FrameType::kIngestBatch:
      return "INGEST_BATCH";
    case FrameType::kSubscribe:
      return "SUBSCRIBE";
    case FrameType::kUnsubscribe:
      return "UNSUBSCRIBE";
    case FrameType::kPing:
      return "PING";
    case FrameType::kRowSet:
      return "ROWSET";
    case FrameType::kStreamRows:
      return "STREAM_ROWS";
    case FrameType::kError:
      return "ERROR";
    case FrameType::kAck:
      return "ACK";
  }
  return "?";
}

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kQuery) &&
         type <= static_cast<uint8_t>(FrameType::kPing);
}

bool IsResponseType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kRowSet) &&
         type <= static_cast<uint8_t>(FrameType::kAck);
}

uint32_t Fnv1a(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

namespace {

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(int64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(const std::string& s, std::string* out) {
  PutU32(static_cast<uint32_t>(s.size()), out);
  out->append(s);
}

Status GetU32(const std::string& data, size_t* offset, uint32_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated frame u32");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetI64(const std::string& data, size_t* offset, int64_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated frame i64");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetString(const std::string& data, size_t* offset, std::string* s) {
  uint32_t len;
  RETURN_IF_ERROR(GetU32(data, offset, &len));
  if (*offset + len > data.size()) {
    return Status::IoError("truncated frame string payload");
  }
  *s = data.substr(*offset, len);
  *offset += len;
  return Status::OK();
}

void PutRows(const std::vector<Row>& rows, std::string* out) {
  PutU32(static_cast<uint32_t>(rows.size()), out);
  for (const Row& row : rows) SerializeRow(row, out);
}

Status GetRows(const std::string& data, size_t* offset,
               std::vector<Row>* rows) {
  uint32_t n;
  RETURN_IF_ERROR(GetU32(data, offset, &n));
  rows->clear();
  rows->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ASSIGN_OR_RETURN(Row row, DeserializeRow(data, offset));
    rows->push_back(std::move(row));
  }
  return Status::OK();
}

bool IsKnownType(uint8_t type) {
  return IsRequestType(type) || IsResponseType(type);
}

}  // namespace

void EncodeFrame(const Frame& frame, std::string* out) {
  std::string payload;
  payload.reserve(kFramePrefixBytes + frame.body.size());
  payload.push_back(static_cast<char>(frame.type));
  PutU64(frame.request_id, &payload);
  payload.append(frame.body);
  PutU32(static_cast<uint32_t>(payload.size()), out);
  PutU32(Fnv1a(payload.data(), payload.size()), out);
  out->append(payload);
}

DecodeStatus TryDecodeFrame(const std::string& buf, size_t* offset,
                            Frame* frame, std::string* error) {
  const size_t avail = buf.size() - *offset;
  if (avail < kFrameHeaderBytes) return DecodeStatus::kNeedMore;
  uint32_t len, checksum;
  size_t pos = *offset;
  memcpy(&len, buf.data() + pos, sizeof(len));
  memcpy(&checksum, buf.data() + pos + sizeof(len), sizeof(checksum));
  if (len < kFramePrefixBytes || len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame payload length " + std::to_string(len) +
               " out of range";
    }
    return DecodeStatus::kCorrupt;
  }
  if (avail < kFrameHeaderBytes + len) return DecodeStatus::kNeedMore;
  const char* payload = buf.data() + pos + kFrameHeaderBytes;
  if (Fnv1a(payload, len) != checksum) {
    if (error != nullptr) *error = "frame checksum mismatch";
    return DecodeStatus::kCorrupt;
  }
  const uint8_t type = static_cast<uint8_t>(payload[0]);
  if (!IsKnownType(type)) {
    if (error != nullptr) {
      *error = "unknown frame type " + std::to_string(type);
    }
    return DecodeStatus::kCorrupt;
  }
  frame->type = static_cast<FrameType>(type);
  memcpy(&frame->request_id, payload + 1, sizeof(frame->request_id));
  frame->body.assign(payload + kFramePrefixBytes, len - kFramePrefixBytes);
  *offset += kFrameHeaderBytes + len;
  return DecodeStatus::kFrame;
}

// --- request bodies --------------------------------------------------------

std::string EncodeQueryBody(const std::string& sql) {
  std::string out;
  PutString(sql, &out);
  return out;
}

Result<std::string> DecodeQueryBody(const std::string& body) {
  size_t offset = 0;
  std::string sql;
  RETURN_IF_ERROR(GetString(body, &offset, &sql));
  return sql;
}

std::string EncodeIngestBody(const IngestBatchRequest& req) {
  std::string out;
  PutString(req.stream, &out);
  PutI64(req.system_time, &out);
  PutRows(req.rows, &out);
  return out;
}

Result<IngestBatchRequest> DecodeIngestBody(const std::string& body) {
  size_t offset = 0;
  IngestBatchRequest req;
  RETURN_IF_ERROR(GetString(body, &offset, &req.stream));
  RETURN_IF_ERROR(GetI64(body, &offset, &req.system_time));
  RETURN_IF_ERROR(GetRows(body, &offset, &req.rows));
  return req;
}

std::string EncodeNameBody(const std::string& name) {
  std::string out;
  PutString(name, &out);
  return out;
}

Result<std::string> DecodeNameBody(const std::string& body) {
  size_t offset = 0;
  std::string name;
  RETURN_IF_ERROR(GetString(body, &offset, &name));
  return name;
}

// --- response bodies -------------------------------------------------------

std::string EncodeRowSetBody(const RowSet& rowset) {
  std::string out;
  PutString(rowset.message, &out);
  PutU32(static_cast<uint32_t>(rowset.schema.num_columns()), &out);
  for (const Column& col : rowset.schema.columns()) {
    PutString(col.name, &out);
    out.push_back(static_cast<char>(col.type));
  }
  PutRows(rowset.rows, &out);
  return out;
}

Result<RowSet> DecodeRowSetBody(const std::string& body) {
  size_t offset = 0;
  RowSet rowset;
  RETURN_IF_ERROR(GetString(body, &offset, &rowset.message));
  uint32_t ncols;
  RETURN_IF_ERROR(GetU32(body, &offset, &ncols));
  std::vector<Column> columns;
  columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    Column col;
    RETURN_IF_ERROR(GetString(body, &offset, &col.name));
    if (offset >= body.size()) {
      return Status::IoError("truncated rowset column type");
    }
    col.type = static_cast<DataType>(body[offset]);
    ++offset;
    columns.push_back(std::move(col));
  }
  rowset.schema = Schema(std::move(columns));
  RETURN_IF_ERROR(GetRows(body, &offset, &rowset.rows));
  return rowset;
}

std::string EncodeStreamRowsBody(const StreamRowsBody& batch) {
  std::string out;
  PutString(batch.source, &out);
  PutI64(batch.close, &out);
  PutRows(batch.rows, &out);
  return out;
}

Result<StreamRowsBody> DecodeStreamRowsBody(const std::string& body) {
  size_t offset = 0;
  StreamRowsBody batch;
  RETURN_IF_ERROR(GetString(body, &offset, &batch.source));
  RETURN_IF_ERROR(GetI64(body, &offset, &batch.close));
  RETURN_IF_ERROR(GetRows(body, &offset, &batch.rows));
  return batch;
}

std::string EncodeErrorBody(const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  PutString(status.message(), &out);
  return out;
}

Status DecodeErrorBody(const std::string& body) {
  if (body.empty()) return Status::IoError("truncated error body");
  StatusCode code = static_cast<StatusCode>(body[0]);
  size_t offset = 1;
  std::string message;
  RETURN_IF_ERROR(GetString(body, &offset, &message));
  if (code == StatusCode::kOk) {
    // An ERROR frame must carry an error; a bogus code still surfaces as
    // one rather than silently becoming success.
    return Status(StatusCode::kInternal, "malformed error frame: " + message);
  }
  return Status(code, std::move(message));
}

std::string EncodeAckBody(const std::string& message) {
  std::string out;
  PutString(message, &out);
  return out;
}

Result<std::string> DecodeAckBody(const std::string& body) {
  size_t offset = 0;
  std::string message;
  RETURN_IF_ERROR(GetString(body, &offset, &message));
  return message;
}

}  // namespace streamrel::net
