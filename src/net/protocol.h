#ifndef STREAMREL_NET_PROTOCOL_H_
#define STREAMREL_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"

namespace streamrel::net {

/// Wire frame types. Requests flow client -> server, responses server ->
/// client; kStreamRows is the push side of SUBSCRIBE and may arrive at any
/// time, interleaved with responses.
enum class FrameType : uint8_t {
  // Requests.
  kQuery = 1,        // body: string sql
  kIngestBatch = 2,  // body: string stream, i64 system_time, rows
  kSubscribe = 3,    // body: string stream-or-cq name
  kUnsubscribe = 4,  // body: string stream-or-cq name
  kPing = 5,         // body: empty
  // Responses.
  kRowSet = 16,      // body: string message, schema, rows
  kStreamRows = 17,  // body: string source, i64 close, rows (pushed)
  kError = 18,       // body: u8 status code, string message
  kAck = 19,         // body: string message
};

const char* FrameTypeName(FrameType type);
bool IsRequestType(uint8_t type);
bool IsResponseType(uint8_t type);

/// One decoded frame: the payload past the fixed (type, request_id) prefix.
/// Responses echo the request's id; pushed kStreamRows frames carry the id
/// of the SUBSCRIBE that created the subscription.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string body;
};

/// Frame layout on the wire (mirrors the WAL's framing convention):
///   u32 payload length | u32 FNV-1a checksum of payload | payload
/// where payload = u8 frame type | u64 request id | body.
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);
constexpr size_t kFramePrefixBytes = 1 + sizeof(uint64_t);
/// Upper bound on one frame's payload; a length beyond this is treated as
/// a corrupt (or hostile) stream, not an allocation request.
constexpr size_t kMaxFramePayload = 64u << 20;

/// Same function and constants as the WAL's per-record checksum.
uint32_t Fnv1a(const char* data, size_t n);

void EncodeFrame(const Frame& frame, std::string* out);

enum class DecodeStatus {
  kFrame,     // one frame decoded; *offset advanced past it
  kNeedMore,  // buffer holds a valid prefix of a frame; read more bytes
  kCorrupt,   // checksum mismatch / oversized length / unknown type
};

/// Tries to decode one frame starting at buf[*offset]. kCorrupt means the
/// byte stream is unrecoverable (framing is length-prefixed, so a bad
/// length or checksum desyncs everything after it); `error` says why.
DecodeStatus TryDecodeFrame(const std::string& buf, size_t* offset,
                            Frame* frame, std::string* error);

// --- request bodies --------------------------------------------------------

std::string EncodeQueryBody(const std::string& sql);
Result<std::string> DecodeQueryBody(const std::string& body);

struct IngestBatchRequest {
  std::string stream;
  int64_t system_time = INT64_MIN;
  std::vector<Row> rows;
};
std::string EncodeIngestBody(const IngestBatchRequest& req);
Result<IngestBatchRequest> DecodeIngestBody(const std::string& body);

/// SUBSCRIBE / UNSUBSCRIBE carry just the object name.
std::string EncodeNameBody(const std::string& name);
Result<std::string> DecodeNameBody(const std::string& body);

// --- response bodies -------------------------------------------------------

/// A complete query result (the wire twin of engine::QueryResult).
struct RowSet {
  std::string message;
  Schema schema;
  std::vector<Row> rows;
};
std::string EncodeRowSetBody(const RowSet& rowset);
Result<RowSet> DecodeRowSetBody(const std::string& body);

/// One pushed window-close (or raw-stream) batch.
struct StreamRowsBody {
  std::string source;  // subscription name as ACKed
  int64_t close = 0;
  std::vector<Row> rows;
};
std::string EncodeStreamRowsBody(const StreamRowsBody& batch);
Result<StreamRowsBody> DecodeStreamRowsBody(const std::string& body);

/// Errors round-trip the engine Status (code + message).
std::string EncodeErrorBody(const Status& status);
/// Returns the decoded (non-OK) status carried by an ERROR frame; a
/// malformed body decodes to an Internal error (still non-OK).
Status DecodeErrorBody(const std::string& body);

std::string EncodeAckBody(const std::string& message);
Result<std::string> DecodeAckBody(const std::string& body);

}  // namespace streamrel::net

#endif  // STREAMREL_NET_PROTOCOL_H_
