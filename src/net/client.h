#ifndef STREAMREL_NET_CLIENT_H_
#define STREAMREL_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "net/protocol.h"

namespace streamrel::net {

/// A window-close batch pushed by the server for an active subscription.
struct Push {
  std::string source;  // subscribed CQ or stream name
  int64_t close = 0;   // window-close watermark (micros)
  std::vector<Row> rows;
};

/// Synchronous streamrel wire-protocol client. One socket, one outstanding
/// request at a time; pushed STREAM_ROWS frames that arrive while waiting
/// for a response are buffered and handed out by NextPush().
///
/// Every blocking call takes a deadline-based timeout in microseconds;
/// a timeout returns Status::Unavailable and leaves the connection usable
/// unless the failure was a socket error (then the client is closed).
///
/// Not thread-safe: use one Client per thread.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept { *this = std::move(other); }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      next_request_id_ = other.next_request_id_;
      read_buf_ = std::move(other.read_buf_);
      read_off_ = other.read_off_;
      pending_pushes_ = std::move(other.pending_pushes_);
    }
    return *this;
  }

  /// Connects to host:port; fails with Unavailable after `timeout_micros`.
  Status Connect(const std::string& host, uint16_t port,
                 int64_t timeout_micros = 5'000'000);

  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Executes one or more ';'-separated SQL statements server-side and
  /// returns the last statement's result.
  Result<RowSet> Query(const std::string& sql,
                       int64_t timeout_micros = 5'000'000);

  /// Pushes ordered rows into a raw stream (binary path — no SQL parse).
  /// Pass `system_time` for CQTIME SYSTEM streams.
  Status IngestBatch(const std::string& stream, const std::vector<Row>& rows,
                     int64_t system_time = INT64_MIN,
                     int64_t timeout_micros = 5'000'000);

  /// Subscribes to a CQ's window-close results or a stream's published
  /// batches; results arrive via NextPush().
  Status Subscribe(const std::string& name,
                   int64_t timeout_micros = 5'000'000);
  Status Unsubscribe(const std::string& name,
                     int64_t timeout_micros = 5'000'000);

  /// Liveness round-trip.
  Status Ping(int64_t timeout_micros = 5'000'000);

  /// Returns the next pushed subscription batch, waiting up to the
  /// timeout; Unavailable if none arrives in time.
  Result<Push> NextPush(int64_t timeout_micros = 5'000'000);

 private:
  /// Sends `request` and waits for the response frame with the same
  /// request id, buffering any pushes that arrive in between.
  Result<Frame> Roundtrip(const Frame& request, int64_t timeout_micros);
  Status SendFrame(const Frame& frame, int64_t deadline_micros);
  /// Reads until one complete frame is decoded or the deadline passes.
  Result<Frame> ReadFrame(int64_t deadline_micros);
  Status FillReadBuffer(int64_t deadline_micros);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  std::string read_buf_;
  size_t read_off_ = 0;
  std::deque<Push> pending_pushes_;
};

}  // namespace streamrel::net

#endif  // STREAMREL_NET_CLIENT_H_
