// streamrel-server: the TCP front-end around an in-process Database.
//
//   streamrel-server [--host H] [--port P] [--init FILE.sql]
//
// --port 0 (the default) binds an ephemeral port; the bound port is
// printed on stdout as "streamrel-server listening on H:P" so scripts can
// scrape it. SIGTERM/SIGINT trigger a graceful drain: stop accepting,
// flush subscriber queues, then exit 0.

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/database.h"
#include "net/server.h"

namespace {

// Signal handlers may only write to a pipe; the main thread polls it.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  char byte = 's';
  [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host H] [--port P] [--init FILE.sql]\n"
               "  --host H       listen address (default 127.0.0.1)\n"
               "  --port P       listen port; 0 = ephemeral (default 0)\n"
               "  --init FILE    run FILE's SQL statements before serving\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  streamrel::net::ServerOptions options;
  std::string init_file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host" && i + 1 < argc) {
      options.host = argv[++i];
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::atoi(argv[++i]));
    } else if (arg == "--init" && i + 1 < argc) {
      init_file = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }

  streamrel::engine::Database db;
  if (!init_file.empty()) {
    std::ifstream in(init_file);
    if (!in) {
      std::fprintf(stderr, "cannot open init file '%s'\n",
                   init_file.c_str());
      return 1;
    }
    std::ostringstream sql;
    sql << in.rdbuf();
    auto result = db.Execute(sql.str());
    if (!result.ok()) {
      std::fprintf(stderr, "init failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
  }

  streamrel::net::Server server(&db, options);
  streamrel::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("streamrel-server listening on %s:%u\n", options.host.c_str(),
              server.port());
  std::fflush(stdout);

  if (pipe(g_signal_pipe) < 0) {
    std::perror("pipe");
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  pollfd pfd{g_signal_pipe[0], POLLIN, 0};
  for (;;) {
    int rc = poll(&pfd, 1, -1);
    if (rc > 0) break;
    if (rc < 0 && errno != EINTR) break;
  }
  std::printf("streamrel-server draining\n");
  std::fflush(stdout);
  server.Drain();
  return 0;
}
