#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace streamrel::net {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status Errno(const char* what) {
  return Status::IoError(std::string(what) + ": " + std::strerror(errno));
}

int PollTimeoutMillis(int64_t deadline_micros) {
  int64_t left = deadline_micros - NowMicros();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

}  // namespace

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  read_buf_.clear();
  read_off_ = 0;
  pending_pushes_.clear();
}

Status Client::Connect(const std::string& host, uint16_t port,
                       int64_t timeout_micros) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  const int64_t deadline = NowMicros() + timeout_micros;
  int rc = connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    Status st = Errno("connect");
    Close();
    return st;
  }
  if (rc < 0) {
    // Non-blocking connect: wait for writability, then read SO_ERROR.
    pollfd pfd{fd_, POLLOUT, 0};
    for (;;) {
      int n = poll(&pfd, 1, PollTimeoutMillis(deadline));
      if (n > 0) break;
      if (n < 0 && errno == EINTR) continue;
      Close();
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      Close();
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(err != 0 ? err : errno));
    }
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status Client::SendFrame(const Frame& frame, int64_t deadline_micros) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  std::string bytes;
  EncodeFrame(frame, &bytes);
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd_, POLLOUT, 0};
      int rc = poll(&pfd, 1, PollTimeoutMillis(deadline_micros));
      if (rc == 0) return Status::Unavailable("send timed out");
      if (rc < 0 && errno != EINTR) {
        Status st = Errno("poll");
        Close();
        return st;
      }
      continue;
    }
    Status st = Errno("send");
    Close();
    return st;
  }
  return Status::OK();
}

Status Client::FillReadBuffer(int64_t deadline_micros) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    int rc = poll(&pfd, 1, PollTimeoutMillis(deadline_micros));
    if (rc == 0) return Status::Unavailable("read timed out");
    if (rc < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("poll");
      Close();
      return st;
    }
    break;
  }
  char tmp[64 * 1024];
  ssize_t n = recv(fd_, tmp, sizeof(tmp), 0);
  if (n > 0) {
    read_buf_.append(tmp, static_cast<size_t>(n));
    return Status::OK();
  }
  if (n == 0) {
    Close();
    return Status::IoError("server closed the connection");
  }
  if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
    return Status::OK();  // spurious wakeup; caller loops on the deadline
  }
  Status st = Errno("recv");
  Close();
  return st;
}

Result<Frame> Client::ReadFrame(int64_t deadline_micros) {
  if (fd_ < 0) return Status::InvalidArgument("client not connected");
  for (;;) {
    Frame frame;
    std::string error;
    DecodeStatus ds = TryDecodeFrame(read_buf_, &read_off_, &frame, &error);
    if (ds == DecodeStatus::kFrame) {
      if (read_off_ > 0) {
        read_buf_.erase(0, read_off_);
        read_off_ = 0;
      }
      return frame;
    }
    if (ds == DecodeStatus::kCorrupt) {
      Close();
      return Status::IoError("corrupt frame from server: " + error);
    }
    if (NowMicros() >= deadline_micros) {
      return Status::Unavailable("timed out waiting for server frame");
    }
    RETURN_IF_ERROR(FillReadBuffer(deadline_micros));
  }
}

Result<Frame> Client::Roundtrip(const Frame& request,
                                int64_t timeout_micros) {
  const int64_t deadline = NowMicros() + timeout_micros;
  RETURN_IF_ERROR(SendFrame(request, deadline));
  for (;;) {
    ASSIGN_OR_RETURN(Frame frame, ReadFrame(deadline));
    if (frame.type == FrameType::kStreamRows) {
      // A push raced the response; stash it for NextPush().
      auto batch = DecodeStreamRowsBody(frame.body);
      if (!batch.ok()) {
        Close();
        return batch.status();
      }
      Push push;
      push.source = std::move(batch->source);
      push.close = batch->close;
      push.rows = std::move(batch->rows);
      pending_pushes_.push_back(std::move(push));
      continue;
    }
    if (frame.request_id != request.request_id) {
      Close();
      return Status::IoError(
          "response request id mismatch (protocol desync)");
    }
    if (frame.type == FrameType::kError) {
      return DecodeErrorBody(frame.body);
    }
    return frame;
  }
}

Result<RowSet> Client::Query(const std::string& sql,
                             int64_t timeout_micros) {
  Frame request{FrameType::kQuery, next_request_id_++,
                EncodeQueryBody(sql)};
  ASSIGN_OR_RETURN(Frame response, Roundtrip(request, timeout_micros));
  if (response.type == FrameType::kAck) {
    // SUBSCRIBE/UNSUBSCRIBE issued through Query(): surface the ack text.
    ASSIGN_OR_RETURN(std::string message, DecodeAckBody(response.body));
    RowSet rowset;
    rowset.message = std::move(message);
    return rowset;
  }
  if (response.type != FrameType::kRowSet) {
    return Status::IoError(std::string("unexpected response frame ") +
                           FrameTypeName(response.type));
  }
  return DecodeRowSetBody(response.body);
}

Status Client::IngestBatch(const std::string& stream,
                           const std::vector<Row>& rows, int64_t system_time,
                           int64_t timeout_micros) {
  IngestBatchRequest req;
  req.stream = stream;
  req.system_time = system_time;
  req.rows = rows;
  Frame request{FrameType::kIngestBatch, next_request_id_++,
                EncodeIngestBody(req)};
  ASSIGN_OR_RETURN(Frame response, Roundtrip(request, timeout_micros));
  if (response.type != FrameType::kAck) {
    return Status::IoError(std::string("unexpected response frame ") +
                           FrameTypeName(response.type));
  }
  return Status::OK();
}

Status Client::Subscribe(const std::string& name, int64_t timeout_micros) {
  Frame request{FrameType::kSubscribe, next_request_id_++,
                EncodeNameBody(name)};
  ASSIGN_OR_RETURN(Frame response, Roundtrip(request, timeout_micros));
  if (response.type != FrameType::kAck) {
    return Status::IoError(std::string("unexpected response frame ") +
                           FrameTypeName(response.type));
  }
  return Status::OK();
}

Status Client::Unsubscribe(const std::string& name,
                           int64_t timeout_micros) {
  Frame request{FrameType::kUnsubscribe, next_request_id_++,
                EncodeNameBody(name)};
  ASSIGN_OR_RETURN(Frame response, Roundtrip(request, timeout_micros));
  if (response.type != FrameType::kAck) {
    return Status::IoError(std::string("unexpected response frame ") +
                           FrameTypeName(response.type));
  }
  return Status::OK();
}

Status Client::Ping(int64_t timeout_micros) {
  Frame request{FrameType::kPing, next_request_id_++, EncodeAckBody("")};
  ASSIGN_OR_RETURN(Frame response, Roundtrip(request, timeout_micros));
  if (response.type != FrameType::kAck) {
    return Status::IoError(std::string("unexpected response frame ") +
                           FrameTypeName(response.type));
  }
  return Status::OK();
}

Result<Push> Client::NextPush(int64_t timeout_micros) {
  const int64_t deadline = NowMicros() + timeout_micros;
  for (;;) {
    if (!pending_pushes_.empty()) {
      Push push = std::move(pending_pushes_.front());
      pending_pushes_.pop_front();
      return push;
    }
    ASSIGN_OR_RETURN(Frame frame, ReadFrame(deadline));
    if (frame.type != FrameType::kStreamRows) {
      Close();
      return Status::IoError(
          std::string("unexpected frame while waiting for pushes: ") +
          FrameTypeName(frame.type));
    }
    ASSIGN_OR_RETURN(StreamRowsBody batch, DecodeStreamRowsBody(frame.body));
    Push push;
    push.source = std::move(batch.source);
    push.close = batch.close;
    push.rows = std::move(batch.rows);
    pending_pushes_.push_back(std::move(push));
  }
}

}  // namespace streamrel::net
