#ifndef STREAMREL_STORAGE_DISK_H_
#define STREAMREL_STORAGE_DISK_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace streamrel::storage {

using PageId = uint64_t;

/// Cost model for the simulated disk. Defaults approximate a 2009-era
/// enterprise disk array (the paper's store-first-query-later baseline runs
/// against spinning disks): ~4 ms average positioning, ~100 MB/s streaming.
struct DiskModel {
  int64_t seek_micros = 4000;        // per I/O positioning cost
  int64_t read_mb_per_sec = 100;     // sequential read bandwidth
  int64_t write_mb_per_sec = 80;     // sequential write bandwidth
  size_t cache_pages = 1024;         // buffer-pool capacity (LRU)

  static DiskModel Fast() {  // SSD-ish, for tests that ignore I/O cost
    return DiskModel{100, 2000, 1500, 1 << 20};
  }
};

/// Aggregate I/O accounting. `simulated_io_micros` is the disk-model time
/// the performed I/O *would have taken*; the engine does not sleep for it.
/// Benchmarks report both real CPU time and this simulated I/O time.
struct DiskStats {
  int64_t page_reads = 0;        // physical reads (cache misses)
  int64_t page_writes = 0;
  int64_t cache_hits = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t simulated_io_micros = 0;
};

/// An in-memory page store that charges a configurable latency/bandwidth
/// cost for every physical page access and provides an LRU buffer pool.
/// This stands in for the paper's real storage hierarchy: it makes
/// store-first-query-later pay for writing data out and reading it back,
/// which is exactly the work Continuous Analytics avoids.
///
/// Thread-safe.
class SimulatedDisk {
 public:
  explicit SimulatedDisk(DiskModel model = DiskModel());

  SimulatedDisk(const SimulatedDisk&) = delete;
  SimulatedDisk& operator=(const SimulatedDisk&) = delete;

  /// Allocates an empty page and returns its id.
  PageId AllocatePage();

  /// Writes `data` as the page contents (charged as a physical write;
  /// the page is installed in the buffer pool).
  Status WritePage(PageId page, std::string data);

  /// Reads page contents. A buffer-pool hit is free; a miss is charged.
  Result<std::string> ReadPage(PageId page);

  /// Drops the page (no I/O charge).
  Status FreePage(PageId page);

  /// Evicts everything from the buffer pool (simulates a cold cache /
  /// restart) without touching stored data.
  void DropCache();

  /// Charges the model's cost for a raw append of `bytes` without page
  /// bookkeeping (used by the WAL, which is a separate sequential device).
  void ChargeSequentialWrite(int64_t bytes);
  void ChargeSequentialRead(int64_t bytes);

  /// Charges a durable flush: one positioning cost plus bandwidth for the
  /// pending bytes. This is what an fsync costs, and why group commit
  /// (fewer, larger flushes) beats syncing every append.
  void ChargeFlush(int64_t bytes);

  DiskStats stats() const;
  void ResetStats();
  const DiskModel& model() const { return model_; }

 private:
  // Caller holds mu_.
  void TouchLru(PageId page);
  void InstallInCache(PageId page);
  int64_t ReadCost(int64_t bytes) const;
  int64_t WriteCost(int64_t bytes) const;

  const DiskModel model_;
  mutable std::mutex mu_;
  PageId next_page_ = 1;
  std::unordered_map<PageId, std::string> pages_;
  // LRU: front = most recent. cache_pos_ maps page -> list iterator.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> cache_pos_;
  DiskStats stats_;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_DISK_H_
