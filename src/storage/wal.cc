#include "storage/wal.h"

#include <algorithm>
#include <cstring>

#include "common/fault_injector.h"

namespace streamrel::storage {

WriteAheadLog::WriteAheadLog(std::shared_ptr<SimulatedDisk> disk,
                             bool sync_every_append)
    : disk_(std::move(disk)), sync_every_append_(sync_every_append) {}

namespace {

// Frame layout: u32 payload length, u32 FNV-1a checksum of the payload,
// then the payload (one encoded record).
constexpr size_t kFrameHeaderBytes = 2 * sizeof(uint32_t);

uint32_t Fnv1a(const char* data, size_t n) {
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 16777619u;
  }
  return h;
}

void PutU32(uint32_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(int64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(const std::string& s, std::string* out) {
  uint32_t len = static_cast<uint32_t>(s.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(s);
}

Status GetU64(const std::string& data, size_t* offset, uint64_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated WAL u64");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetI64(const std::string& data, size_t* offset, int64_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated WAL i64");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetString(const std::string& data, size_t* offset, std::string* s) {
  uint32_t len;
  if (*offset + sizeof(len) > data.size()) {
    return Status::IoError("truncated WAL string header");
  }
  memcpy(&len, data.data() + *offset, sizeof(len));
  *offset += sizeof(len);
  if (*offset + len > data.size()) {
    return Status::IoError("truncated WAL string payload");
  }
  *s = data.substr(*offset, len);
  *offset += len;
  return Status::OK();
}

}  // namespace

void WriteAheadLog::Encode(const WalRecord& record, std::string* out) {
  out->push_back(static_cast<char>(record.type));
  PutU64(record.txn_id, out);
  PutString(record.object_name, out);
  PutI64(record.int_payload, out);
  PutString(record.blob, out);
  SerializeRow(record.row, out);
}

Result<WalRecord> WriteAheadLog::Decode(const std::string& data,
                                        size_t* offset) {
  if (*offset >= data.size()) return Status::IoError("truncated WAL record");
  WalRecord record;
  record.type = static_cast<WalRecordType>(data[*offset]);
  ++*offset;
  RETURN_IF_ERROR(GetU64(data, offset, &record.txn_id));
  RETURN_IF_ERROR(GetString(data, offset, &record.object_name));
  RETURN_IF_ERROR(GetI64(data, offset, &record.int_payload));
  RETURN_IF_ERROR(GetString(data, offset, &record.blob));
  ASSIGN_OR_RETURN(record.row, DeserializeRow(data, offset));
  return record;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  RETURN_IF_ERROR(FaultInjector::Instance().Hit("wal.append"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A recovering system truncates any damaged tail before it writes.
    tail_damage_.clear();
    std::string payload;
    Encode(record, &payload);
    PutU32(static_cast<uint32_t>(payload.size()), &log_);
    PutU32(Fnv1a(payload.data(), payload.size()), &log_);
    log_.append(payload);
    ++record_count_;
  }
  if (sync_every_append_) return Sync();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  RETURN_IF_ERROR(FaultInjector::Instance().Hit("wal.sync"));
  std::lock_guard<std::mutex> lock(mu_);
  int64_t pending = static_cast<int64_t>(log_.size()) - synced_bytes_;
  if (pending <= 0) return Status::OK();
  // An fsync is a device round trip: positioning plus the pending bytes.
  // Group commit amortizes the positioning cost across a whole
  // transaction (or window) of appends.
  disk_->ChargeFlush(pending);
  synced_bytes_ = static_cast<int64_t>(log_.size());
  synced_records_ = record_count_;
  return Status::OK();
}

void WriteAheadLog::SimulateCrash(CrashMode mode) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string unsynced = log_.substr(static_cast<size_t>(synced_bytes_));
  log_.resize(static_cast<size_t>(synced_bytes_));
  record_count_ = synced_records_;
  tail_damage_.clear();
  if (mode == CrashMode::kClean || unsynced.empty()) return;

  // The device got a prefix of the first unsynced frame onto the platter
  // before power cut out.
  size_t frame_total = unsynced.size();
  if (unsynced.size() >= sizeof(uint32_t)) {
    uint32_t len;
    memcpy(&len, unsynced.data(), sizeof(len));
    const size_t whole = kFrameHeaderBytes + len;
    if (mode == CrashMode::kCorruptTail && len > 0 &&
        unsynced.size() >= whole) {
      // Whole frame made it, but a payload byte was scrambled in flight.
      tail_damage_ = unsynced.substr(0, whole);
      tail_damage_[kFrameHeaderBytes] =
          static_cast<char>(tail_damage_[kFrameHeaderBytes] ^ 0x5a);
      return;
    }
    frame_total = std::min(unsynced.size(), whole);
  }
  // Torn write (or a corrupt-tail request when not even one whole frame
  // survived): keep all but the last byte of what the device received.
  tail_damage_ = unsynced.substr(0, frame_total - 1);
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& callback,
    WalReplayStats* stats) const {
  std::string snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = log_ + tail_damage_;
  }
  disk_->ChargeSequentialRead(static_cast<int64_t>(snapshot.size()));
  WalReplayStats local;
  size_t offset = 0;
  while (offset < snapshot.size()) {
    if (offset + kFrameHeaderBytes > snapshot.size()) {
      local.stopped_at_torn_tail = true;  // header itself is torn
      break;
    }
    uint32_t len, checksum;
    memcpy(&len, snapshot.data() + offset, sizeof(len));
    memcpy(&checksum, snapshot.data() + offset + sizeof(len),
           sizeof(checksum));
    const size_t payload_at = offset + kFrameHeaderBytes;
    if (payload_at + len > snapshot.size()) {
      local.stopped_at_torn_tail = true;  // frame extends past end-of-log
      break;
    }
    if (Fnv1a(snapshot.data() + payload_at, len) != checksum) {
      if (payload_at + len == snapshot.size()) {
        local.stopped_at_corrupt_tail = true;  // last frame, bad bytes
        break;
      }
      // A bad checksum with intact frames after it is not a crash
      // artifact — the log is genuinely damaged mid-stream.
      return Status::IoError("WAL checksum mismatch at offset " +
                             std::to_string(offset) +
                             " (not at tail); log is corrupt");
    }
    const std::string payload = snapshot.substr(payload_at, len);
    size_t consumed = 0;
    ASSIGN_OR_RETURN(WalRecord record, Decode(payload, &consumed));
    if (consumed != payload.size()) {
      return Status::IoError("WAL record at offset " +
                             std::to_string(offset) +
                             " has trailing garbage inside its frame");
    }
    offset = payload_at + len;
    ++local.records;
    RETURN_IF_ERROR(callback(record));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (local.stopped_at_torn_tail) ++torn_tails_seen_;
    if (local.stopped_at_corrupt_tail) ++corrupt_tails_seen_;
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

void WriteAheadLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.clear();
  tail_damage_.clear();
  synced_bytes_ = 0;
  synced_records_ = 0;
  record_count_ = 0;
}

int64_t WriteAheadLog::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_count_;
}

int64_t WriteAheadLog::byte_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(log_.size() + tail_damage_.size());
}

int64_t WriteAheadLog::torn_tails_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return torn_tails_seen_;
}

int64_t WriteAheadLog::corrupt_tails_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_tails_seen_;
}

}  // namespace streamrel::storage
