#include "storage/wal.h"

#include <cstring>

namespace streamrel::storage {

WriteAheadLog::WriteAheadLog(std::shared_ptr<SimulatedDisk> disk,
                             bool sync_every_append)
    : disk_(std::move(disk)), sync_every_append_(sync_every_append) {}

namespace {

void PutU64(uint64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutI64(int64_t v, std::string* out) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutString(const std::string& s, std::string* out) {
  uint32_t len = static_cast<uint32_t>(s.size());
  out->append(reinterpret_cast<const char*>(&len), sizeof(len));
  out->append(s);
}

Status GetU64(const std::string& data, size_t* offset, uint64_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated WAL u64");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetI64(const std::string& data, size_t* offset, int64_t* v) {
  if (*offset + sizeof(*v) > data.size()) {
    return Status::IoError("truncated WAL i64");
  }
  memcpy(v, data.data() + *offset, sizeof(*v));
  *offset += sizeof(*v);
  return Status::OK();
}
Status GetString(const std::string& data, size_t* offset, std::string* s) {
  uint32_t len;
  if (*offset + sizeof(len) > data.size()) {
    return Status::IoError("truncated WAL string header");
  }
  memcpy(&len, data.data() + *offset, sizeof(len));
  *offset += sizeof(len);
  if (*offset + len > data.size()) {
    return Status::IoError("truncated WAL string payload");
  }
  *s = data.substr(*offset, len);
  *offset += len;
  return Status::OK();
}

}  // namespace

void WriteAheadLog::Encode(const WalRecord& record, std::string* out) {
  out->push_back(static_cast<char>(record.type));
  PutU64(record.txn_id, out);
  PutString(record.object_name, out);
  PutI64(record.int_payload, out);
  PutString(record.blob, out);
  SerializeRow(record.row, out);
}

Result<WalRecord> WriteAheadLog::Decode(const std::string& data,
                                        size_t* offset) {
  if (*offset >= data.size()) return Status::IoError("truncated WAL record");
  WalRecord record;
  record.type = static_cast<WalRecordType>(data[*offset]);
  ++*offset;
  RETURN_IF_ERROR(GetU64(data, offset, &record.txn_id));
  RETURN_IF_ERROR(GetString(data, offset, &record.object_name));
  RETURN_IF_ERROR(GetI64(data, offset, &record.int_payload));
  RETURN_IF_ERROR(GetString(data, offset, &record.blob));
  ASSIGN_OR_RETURN(record.row, DeserializeRow(data, offset));
  return record;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (inject_append_failures_ > 0) {
      --inject_append_failures_;
      return Status::IoError("injected WAL append failure");
    }
    Encode(record, &log_);
    ++record_count_;
  }
  if (sync_every_append_) Sync();
  return Status::OK();
}

void WriteAheadLog::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t pending = static_cast<int64_t>(log_.size()) - synced_bytes_;
  if (pending <= 0) return;
  // An fsync is a device round trip: positioning plus the pending bytes.
  // Group commit amortizes the positioning cost across a whole
  // transaction (or window) of appends.
  disk_->ChargeFlush(pending);
  synced_bytes_ = static_cast<int64_t>(log_.size());
}

Status WriteAheadLog::Replay(
    const std::function<Status(const WalRecord&)>& callback) const {
  std::string snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = log_;
  }
  disk_->ChargeSequentialRead(static_cast<int64_t>(snapshot.size()));
  size_t offset = 0;
  while (offset < snapshot.size()) {
    ASSIGN_OR_RETURN(WalRecord record, Decode(snapshot, &offset));
    RETURN_IF_ERROR(callback(record));
  }
  return Status::OK();
}

void WriteAheadLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  log_.clear();
  synced_bytes_ = 0;
  record_count_ = 0;
}

int64_t WriteAheadLog::record_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return record_count_;
}

void WriteAheadLog::InjectAppendFailures(int64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  inject_append_failures_ = count;
}

int64_t WriteAheadLog::byte_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(log_.size());
}

}  // namespace streamrel::storage
