#include "storage/transaction.h"

namespace streamrel::storage {

TxnId TransactionManager::Begin() {
  std::lock_guard<std::mutex> lock(mu_);
  TxnId id = next_txn_++;
  txns_[id] = TxnRecord{};
  return id;
}

Result<uint64_t> TransactionManager::Commit(TxnId txn,
                                            int64_t commit_time_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::InvalidArgument("commit of unknown transaction");
  }
  if (it->second.state != TxnState::kActive) {
    return Status::Aborted("transaction is not active");
  }
  it->second.state = TxnState::kCommitted;
  it->second.commit_seq = next_commit_seq_++;
  it->second.commit_time = commit_time_micros;
  auto& slot = commit_time_index_[commit_time_micros];
  if (it->second.commit_seq > slot) slot = it->second.commit_seq;
  return it->second.commit_seq;
}

Status TransactionManager::Abort(TxnId txn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status::InvalidArgument("abort of unknown transaction");
  }
  if (it->second.state != TxnState::kActive) {
    return Status::Aborted("transaction is not active");
  }
  it->second.state = TxnState::kAborted;
  return Status::OK();
}

bool TransactionManager::IsCommitted(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.state == TxnState::kCommitted;
}

bool TransactionManager::IsAborted(TxnId txn) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.state == TxnState::kAborted;
}

Snapshot TransactionManager::CurrentSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Snapshot{next_commit_seq_ - 1};
}

Snapshot TransactionManager::SnapshotAsOf(int64_t time_micros) const {
  std::lock_guard<std::mutex> lock(mu_);
  // The commit-time index is monotone in commit_seq for our writers
  // (channel appends carry non-decreasing window-close times), so the
  // largest entry with time <= time_micros bounds the visible set.
  auto it = commit_time_index_.upper_bound(time_micros);
  if (it == commit_time_index_.begin()) return Snapshot{0};
  --it;
  return Snapshot{it->second};
}

bool TransactionManager::IsVisible(TxnId xmin, TxnId xmax,
                                   const Snapshot& snap, TxnId reader) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto committed_in_snap = [&](TxnId t) {
    if (t == reader && t != kInvalidTxn) return true;  // own writes
    auto it = txns_.find(t);
    return it != txns_.end() && it->second.state == TxnState::kCommitted &&
           it->second.commit_seq <= snap.commit_seq_high_water;
  };
  if (!committed_in_snap(xmin)) return false;
  if (xmax != kInvalidTxn && committed_in_snap(xmax)) return false;
  return true;
}

uint64_t TransactionManager::last_commit_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_commit_seq_ - 1;
}

}  // namespace streamrel::storage
