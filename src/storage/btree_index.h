#ifndef STREAMREL_STORAGE_BTREE_INDEX_H_
#define STREAMREL_STORAGE_BTREE_INDEX_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "storage/heap_table.h"

namespace streamrel::storage {

/// An in-memory B+Tree secondary index mapping column values to RowIds.
/// Duplicate keys are supported (entries are ordered by the composite
/// (key, row_id)). Deletion removes entries in place without rebalancing —
/// nodes may become sparse but never invalid; fine for the paper's
/// append-mostly workloads.
///
/// The paper's Active Tables are "simply SQL tables [over which] indexes can
/// be defined to further improve query performance" (Section 3.3) — this is
/// that index.
///
/// Thread-safe via a single mutex.
class BTreeIndex {
 public:
  /// `fanout` is the maximum number of entries/keys per node.
  explicit BTreeIndex(std::string column_name, size_t fanout = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  const std::string& column_name() const { return column_name_; }

  void Insert(const Value& key, RowId row_id);

  /// Removes one (key, row_id) entry; returns NotFound if absent.
  Status Remove(const Value& key, RowId row_id);

  /// Invokes `callback(row_id)` for every entry with this exact key;
  /// a false return stops early.
  void ScanEqual(const Value& key,
                 const std::function<bool(RowId)>& callback) const;

  /// Range scan over [lo, hi] with per-bound inclusivity; nullopt means
  /// unbounded. Entries are visited in key order.
  void ScanRange(const std::optional<Value>& lo, bool lo_inclusive,
                 const std::optional<Value>& hi, bool hi_inclusive,
                 const std::function<bool(const Value&, RowId)>& callback)
      const;

  size_t size() const;
  int height() const;

 private:
  struct Entry {
    Value key;
    RowId row_id;
  };
  struct Node;
  struct SplitResult {
    Value sep_key;
    RowId sep_row_id;
    Node* right;
  };

  static int CompareEntry(const Value& a_key, RowId a_rid, const Value& b_key,
                          RowId b_rid);
  std::optional<SplitResult> InsertInto(Node* node, const Value& key,
                                        RowId row_id);
  const Node* FindLeaf(const Value& key, RowId row_id) const;
  static void DeleteTree(Node* node);

  const std::string column_name_;
  const size_t fanout_;
  mutable std::mutex mu_;
  Node* root_;
  size_t size_ = 0;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_BTREE_INDEX_H_
