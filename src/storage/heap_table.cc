#include "storage/heap_table.h"

namespace streamrel::storage {

HeapTable::HeapTable(Schema schema, std::shared_ptr<SimulatedDisk> disk,
                     size_t page_size)
    : schema_(std::move(schema)),
      page_size_(page_size),
      disk_(std::move(disk)) {}

Result<RowId> HeapTable::Insert(const Row& row, TxnId xmin) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString());
  }
  std::lock_guard<std::mutex> lock(mu_);
  RowLocation loc{kTailPage, static_cast<uint32_t>(tail_.size())};
  SerializeRow(row, &tail_);
  locations_.push_back(loc);
  meta_.push_back(RowMeta{xmin, kInvalidTxn});
  if (tail_.size() >= page_size_) {
    RETURN_IF_ERROR(FlushTailLocked());
  }
  return static_cast<RowId>(locations_.size() - 1);
}

Status HeapTable::FlushTailLocked() {
  if (tail_.empty()) return Status::OK();
  PageId page = disk_->AllocatePage();
  flushed_bytes_ += static_cast<int64_t>(tail_.size());
  RETURN_IF_ERROR(disk_->WritePage(page, std::move(tail_)));
  tail_.clear();
  uint32_t page_index = static_cast<uint32_t>(pages_.size());
  pages_.push_back(page);
  for (auto it = locations_.rbegin();
       it != locations_.rend() && it->page_index == kTailPage; ++it) {
    it->page_index = page_index;
  }
  return Status::OK();
}

Status HeapTable::Delete(RowId row_id, TxnId xmax) {
  std::lock_guard<std::mutex> lock(mu_);
  if (row_id >= meta_.size()) {
    return Status::InvalidArgument("delete of unknown row id");
  }
  if (meta_[row_id].xmax != kInvalidTxn) {
    return Status::Aborted("row already deleted");
  }
  meta_[row_id].xmax = xmax;
  return Status::OK();
}

Result<Row> HeapTable::ReadRowAtLocked(const RowLocation& loc) const {
  size_t offset = loc.offset;
  if (loc.page_index == kTailPage) {
    return DeserializeRow(tail_, &offset);
  }
  ASSIGN_OR_RETURN(std::string page, disk_->ReadPage(pages_[loc.page_index]));
  return DeserializeRow(page, &offset);
}

Result<Row> HeapTable::GetRow(RowId row_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (row_id >= locations_.size()) {
    return Status::InvalidArgument("read of unknown row id");
  }
  return ReadRowAtLocked(locations_[row_id]);
}

Result<HeapTable::RowMeta> HeapTable::GetRowMeta(RowId row_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (row_id >= meta_.size()) {
    return Status::InvalidArgument("meta of unknown row id");
  }
  return meta_[row_id];
}

Status HeapTable::Scan(
    const TransactionManager& txns, const Snapshot& snap, TxnId reader,
    const std::function<bool(RowId, const Row&)>& callback) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Sequential page-at-a-time scan: one physical read per page regardless of
  // how many rows it holds.
  std::string current_page;
  uint32_t current_page_index = kTailPage - 1;  // sentinel: nothing loaded
  for (RowId id = 0; id < locations_.size(); ++id) {
    const RowMeta& m = meta_[id];
    if (!txns.IsVisible(m.xmin, m.xmax, snap, reader)) continue;
    const RowLocation& loc = locations_[id];
    const std::string* source;
    if (loc.page_index == kTailPage) {
      source = &tail_;
    } else {
      if (loc.page_index != current_page_index) {
        ASSIGN_OR_RETURN(current_page, disk_->ReadPage(pages_[loc.page_index]));
        current_page_index = loc.page_index;
      }
      source = &current_page;
    }
    size_t offset = loc.offset;
    ASSIGN_OR_RETURN(Row row, DeserializeRow(*source, &offset));
    if (!callback(id, row)) break;
  }
  return Status::OK();
}

RowId HeapTable::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<RowId>(locations_.size());
}

int64_t HeapTable::byte_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return flushed_bytes_ + static_cast<int64_t>(tail_.size());
}

Status HeapTable::Truncate() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PageId page : pages_) {
    RETURN_IF_ERROR(disk_->FreePage(page));
  }
  pages_.clear();
  tail_.clear();
  locations_.clear();
  meta_.clear();
  flushed_bytes_ = 0;
  return Status::OK();
}

}  // namespace streamrel::storage
