#ifndef STREAMREL_STORAGE_HEAP_TABLE_H_
#define STREAMREL_STORAGE_HEAP_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "storage/disk.h"
#include "storage/transaction.h"

namespace streamrel::storage {

using RowId = uint64_t;

/// MVCC heap storage for one table. Row payloads live in pages on the
/// SimulatedDisk (so full scans pay real deserialization work and simulated
/// I/O), while the per-row MVCC metadata (xmin/xmax) stays in memory for
/// cheap visibility checks and deletes.
///
/// Rows are append-only within a page; deletes set xmax (tombstone). This
/// matches the paper's additive workloads and keeps REPLACE channels and
/// MV-style refreshes simple.
///
/// Thread-safe (one mutex; the engine is effectively single-writer).
class HeapTable {
 public:
  /// `page_size` is the target serialized-bytes-per-page before the tail
  /// buffer is flushed to the disk.
  HeapTable(Schema schema, std::shared_ptr<SimulatedDisk> disk,
            size_t page_size = 64 * 1024);

  const Schema& schema() const { return schema_; }

  /// Appends `row` stamped with creating transaction `xmin`.
  Result<RowId> Insert(const Row& row, TxnId xmin);

  /// Marks `row_id` deleted by `xmax`. Errors if already deleted.
  Status Delete(RowId row_id, TxnId xmax);

  /// Reads one row by id (pays page-read cost unless cached); visibility is
  /// NOT applied — callers pair this with GetRowMeta.
  Result<Row> GetRow(RowId row_id) const;

  struct RowMeta {
    TxnId xmin = kInvalidTxn;
    TxnId xmax = kInvalidTxn;
  };
  Result<RowMeta> GetRowMeta(RowId row_id) const;

  /// Scans every version visible under (`snap`, `reader`), invoking
  /// `callback(row_id, row)`; a false return stops the scan early.
  Status Scan(const TransactionManager& txns, const Snapshot& snap,
              TxnId reader,
              const std::function<bool(RowId, const Row&)>& callback) const;

  /// Number of row versions ever inserted (including deleted ones).
  RowId row_count() const;

  /// Serialized payload bytes across all pages plus the tail buffer.
  int64_t byte_size() const;

  /// Drops all rows and pages.
  Status Truncate();

 private:
  struct RowLocation {
    uint32_t page_index;  // index into pages_, or kTailPage for the buffer
    uint32_t offset;
  };
  static constexpr uint32_t kTailPage = 0xffffffff;

  // Flushes the tail buffer as a new page. Caller holds mu_.
  Status FlushTailLocked();
  Result<Row> ReadRowAtLocked(const RowLocation& loc) const;

  const Schema schema_;
  const size_t page_size_;
  std::shared_ptr<SimulatedDisk> disk_;

  mutable std::mutex mu_;
  std::vector<PageId> pages_;
  std::string tail_;  // serialized rows not yet flushed to a page
  std::vector<RowLocation> locations_;
  std::vector<RowMeta> meta_;
  int64_t flushed_bytes_ = 0;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_HEAP_TABLE_H_
