#include "storage/btree_index.h"

#include <algorithm>
#include <cassert>

namespace streamrel::storage {

/// B+Tree node. Leaves hold entries and a next-leaf link; internal nodes
/// hold separator entries and child pointers (children.size() ==
/// separators.size() + 1; child i holds entries < separators[i], child i+1
/// holds entries >= separators[i]).
struct BTreeIndex::Node {
  bool is_leaf;
  std::vector<Entry> entries;       // leaf payload or internal separators
  std::vector<Node*> children;      // internal only
  Node* next = nullptr;             // leaf chain

  explicit Node(bool leaf) : is_leaf(leaf) {}
};

BTreeIndex::BTreeIndex(std::string column_name, size_t fanout)
    : column_name_(std::move(column_name)),
      fanout_(std::max<size_t>(fanout, 4)),
      root_(new Node(/*leaf=*/true)) {}

BTreeIndex::~BTreeIndex() { DeleteTree(root_); }

void BTreeIndex::DeleteTree(Node* node) {
  if (!node->is_leaf) {
    for (Node* child : node->children) DeleteTree(child);
  }
  delete node;
}

int BTreeIndex::CompareEntry(const Value& a_key, RowId a_rid,
                             const Value& b_key, RowId b_rid) {
  int c = a_key.Compare(b_key);
  if (c != 0) return c;
  return a_rid < b_rid ? -1 : (a_rid > b_rid ? 1 : 0);
}

std::optional<BTreeIndex::SplitResult> BTreeIndex::InsertInto(
    Node* node, const Value& key, RowId row_id) {
  if (node->is_leaf) {
    auto it = std::lower_bound(
        node->entries.begin(), node->entries.end(), Entry{key, row_id},
        [](const Entry& a, const Entry& b) {
          return CompareEntry(a.key, a.row_id, b.key, b.row_id) < 0;
        });
    node->entries.insert(it, Entry{key, row_id});
    if (node->entries.size() <= fanout_) return std::nullopt;
    // Split the leaf.
    Node* right = new Node(/*leaf=*/true);
    size_t mid = node->entries.size() / 2;
    right->entries.assign(node->entries.begin() + mid, node->entries.end());
    node->entries.resize(mid);
    right->next = node->next;
    node->next = right;
    return SplitResult{right->entries.front().key,
                       right->entries.front().row_id, right};
  }
  // Internal node: find child.
  size_t lo = 0, hi = node->entries.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (CompareEntry(node->entries[mid].key, node->entries[mid].row_id, key,
                     row_id) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  auto split = InsertInto(node->children[lo], key, row_id);
  if (!split.has_value()) return std::nullopt;
  node->entries.insert(node->entries.begin() + lo,
                       Entry{split->sep_key, split->sep_row_id});
  node->children.insert(node->children.begin() + lo + 1, split->right);
  if (node->entries.size() <= fanout_) return std::nullopt;
  // Split the internal node: middle separator moves up.
  Node* right = new Node(/*leaf=*/false);
  size_t mid = node->entries.size() / 2;
  Entry up = node->entries[mid];
  right->entries.assign(node->entries.begin() + mid + 1, node->entries.end());
  right->children.assign(node->children.begin() + mid + 1,
                         node->children.end());
  node->entries.resize(mid);
  node->children.resize(mid + 1);
  return SplitResult{up.key, up.row_id, right};
}

void BTreeIndex::Insert(const Value& key, RowId row_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto split = InsertInto(root_, key, row_id);
  if (split.has_value()) {
    Node* new_root = new Node(/*leaf=*/false);
    new_root->entries.push_back(Entry{split->sep_key, split->sep_row_id});
    new_root->children.push_back(root_);
    new_root->children.push_back(split->right);
    root_ = new_root;
  }
  ++size_;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key,
                                             RowId row_id) const {
  const Node* node = root_;
  while (!node->is_leaf) {
    size_t lo = 0, hi = node->entries.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (CompareEntry(node->entries[mid].key, node->entries[mid].row_id, key,
                       row_id) <= 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    node = node->children[lo];
  }
  return node;
}

Status BTreeIndex::Remove(const Value& key, RowId row_id) {
  std::lock_guard<std::mutex> lock(mu_);
  Node* leaf = const_cast<Node*>(FindLeaf(key, row_id));
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), Entry{key, row_id},
      [](const Entry& a, const Entry& b) {
        return CompareEntry(a.key, a.row_id, b.key, b.row_id) < 0;
      });
  if (it == leaf->entries.end() ||
      CompareEntry(it->key, it->row_id, key, row_id) != 0) {
    return Status::NotFound("index entry not found for removal");
  }
  leaf->entries.erase(it);
  --size_;
  return Status::OK();
}

void BTreeIndex::ScanEqual(const Value& key,
                           const std::function<bool(RowId)>& callback) const {
  ScanRange(key, /*lo_inclusive=*/true, key, /*hi_inclusive=*/true,
            [&](const Value&, RowId rid) { return callback(rid); });
}

void BTreeIndex::ScanRange(
    const std::optional<Value>& lo, bool lo_inclusive,
    const std::optional<Value>& hi, bool hi_inclusive,
    const std::function<bool(const Value&, RowId)>& callback) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Node* leaf;
  if (lo.has_value()) {
    // Composite probe: (lo, 0) for inclusive (first entry with key >= lo),
    // (lo, max rid) for exclusive (first entry with key > lo).
    RowId probe_rid = lo_inclusive ? 0 : ~RowId{0};
    leaf = FindLeaf(*lo, probe_rid);
  } else {
    leaf = root_;
    while (!leaf->is_leaf) leaf = leaf->children.front();
  }
  for (const Node* node = leaf; node != nullptr; node = node->next) {
    for (const Entry& e : node->entries) {
      if (lo.has_value()) {
        int c = e.key.Compare(*lo);
        if (c < 0 || (c == 0 && !lo_inclusive)) continue;
      }
      if (hi.has_value()) {
        int c = e.key.Compare(*hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      if (!callback(e.key, e.row_id)) return;
    }
  }
}

size_t BTreeIndex::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

int BTreeIndex::height() const {
  std::lock_guard<std::mutex> lock(mu_);
  int h = 1;
  const Node* node = root_;
  while (!node->is_leaf) {
    node = node->children.front();
    ++h;
  }
  return h;
}

}  // namespace streamrel::storage
