#ifndef STREAMREL_STORAGE_TRANSACTION_H_
#define STREAMREL_STORAGE_TRANSACTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace streamrel::storage {

using TxnId = uint64_t;
inline constexpr TxnId kInvalidTxn = 0;

/// A point-in-time view of the database used for MVCC visibility checks.
///
/// Ordinary snapshot queries use a sequence snapshot (everything committed
/// when the query started). Continuous queries use *window-consistent*
/// time snapshots (Section 4 of the paper): each transaction carries a
/// commit time; a CQ evaluating the window closing at time T sees exactly
/// the transactions with commit_time <= T. Channel appends commit with
/// commit_time = window close, so "history as of one window ago" is
/// well-defined.
struct Snapshot {
  /// Transactions with commit_seq <= this are visible.
  uint64_t commit_seq_high_water = 0;
};

/// Tracks transaction states, commit sequence numbers, and commit times.
/// Thread-safe; the engine's runtime is single-threaded but tests and
/// benchmarks may drive ingest and queries from different threads.
class TransactionManager {
 public:
  TransactionManager() = default;

  /// Starts a transaction and returns its id.
  TxnId Begin();

  /// Commits `txn` with the given logical commit time (micros). Returns the
  /// assigned commit sequence number.
  Result<uint64_t> Commit(TxnId txn, int64_t commit_time_micros);

  Status Abort(TxnId txn);

  bool IsCommitted(TxnId txn) const;
  bool IsAborted(TxnId txn) const;

  /// Snapshot covering everything committed so far.
  Snapshot CurrentSnapshot() const;

  /// Window-consistency snapshot: covers exactly the transactions whose
  /// commit_time <= `time_micros`.
  Snapshot SnapshotAsOf(int64_t time_micros) const;

  /// True if the version stamped by `xmin`/`xmax` is visible in `snap` to
  /// transaction `reader` (a transaction always sees its own writes).
  bool IsVisible(TxnId xmin, TxnId xmax, const Snapshot& snap,
                 TxnId reader = kInvalidTxn) const;

  uint64_t last_commit_seq() const;

 private:
  enum class TxnState { kActive, kCommitted, kAborted };
  struct TxnRecord {
    TxnState state = TxnState::kActive;
    uint64_t commit_seq = 0;
    int64_t commit_time = 0;
  };

  mutable std::mutex mu_;
  TxnId next_txn_ = 1;
  uint64_t next_commit_seq_ = 1;
  std::unordered_map<TxnId, TxnRecord> txns_;
  /// commit_time -> highest commit_seq at that time (sorted for AsOf).
  std::map<int64_t, uint64_t> commit_time_index_;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_TRANSACTION_H_
