#include "storage/disk.h"

#include "common/fault_injector.h"

namespace streamrel::storage {

SimulatedDisk::SimulatedDisk(DiskModel model) : model_(model) {}

PageId SimulatedDisk::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  PageId id = next_page_++;
  pages_[id] = std::string();
  return id;
}

int64_t SimulatedDisk::ReadCost(int64_t bytes) const {
  return model_.seek_micros +
         bytes / model_.read_mb_per_sec;  // bytes/MBps == micros/MiB-ish
}

int64_t SimulatedDisk::WriteCost(int64_t bytes) const {
  return model_.seek_micros + bytes / model_.write_mb_per_sec;
}

Status SimulatedDisk::WritePage(PageId page, std::string data) {
  RETURN_IF_ERROR(FaultInjector::Instance().Hit("disk.write"));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    return Status::IoError("write to unallocated page " +
                           std::to_string(page));
  }
  stats_.page_writes++;
  stats_.bytes_written += static_cast<int64_t>(data.size());
  stats_.simulated_io_micros += WriteCost(static_cast<int64_t>(data.size()));
  it->second = std::move(data);
  InstallInCache(page);
  return Status::OK();
}

Result<std::string> SimulatedDisk::ReadPage(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    return Status::IoError("read of unallocated page " + std::to_string(page));
  }
  if (cache_pos_.count(page)) {
    stats_.cache_hits++;
    TouchLru(page);
  } else {
    stats_.page_reads++;
    stats_.bytes_read += static_cast<int64_t>(it->second.size());
    stats_.simulated_io_micros +=
        ReadCost(static_cast<int64_t>(it->second.size()));
    InstallInCache(page);
  }
  return it->second;
}

Status SimulatedDisk::FreePage(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    return Status::IoError("free of unallocated page " + std::to_string(page));
  }
  pages_.erase(it);
  auto pos = cache_pos_.find(page);
  if (pos != cache_pos_.end()) {
    lru_.erase(pos->second);
    cache_pos_.erase(pos);
  }
  return Status::OK();
}

void SimulatedDisk::DropCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_pos_.clear();
}

void SimulatedDisk::ChargeSequentialWrite(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += bytes;
  // Sequential appends amortize positioning; charge bandwidth only.
  stats_.simulated_io_micros += bytes / model_.write_mb_per_sec;
}

void SimulatedDisk::ChargeFlush(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += bytes;
  stats_.page_writes++;  // one device round trip per flush
  stats_.simulated_io_micros +=
      model_.seek_micros + bytes / model_.write_mb_per_sec;
}

void SimulatedDisk::ChargeSequentialRead(int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_read += bytes;
  stats_.simulated_io_micros += bytes / model_.read_mb_per_sec;
}

DiskStats SimulatedDisk::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void SimulatedDisk::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DiskStats();
}

void SimulatedDisk::TouchLru(PageId page) {
  auto pos = cache_pos_.find(page);
  lru_.erase(pos->second);
  lru_.push_front(page);
  pos->second = lru_.begin();
}

void SimulatedDisk::InstallInCache(PageId page) {
  auto pos = cache_pos_.find(page);
  if (pos != cache_pos_.end()) {
    TouchLru(page);
    return;
  }
  lru_.push_front(page);
  cache_pos_[page] = lru_.begin();
  while (lru_.size() > model_.cache_pages) {
    PageId victim = lru_.back();
    lru_.pop_back();
    cache_pos_.erase(victim);
  }
}

}  // namespace streamrel::storage
