#ifndef STREAMREL_STORAGE_WAL_H_
#define STREAMREL_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "storage/disk.h"

namespace streamrel::storage {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,           // (table, row)
  kDelete = 5,           // (table, row_id)
  kChannelProgress = 6,  // (channel, window-close watermark micros)
  kCheckpoint = 7,       // opaque operator-state blob (checkpoint recovery)
  kVacuum = 8,           // (table, compaction commit time) — replayed as a
                         // barrier so post-vacuum RowIds stay stable
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id = 0;
  std::string object_name;  // table or channel name
  Row row;                  // kInsert
  int64_t int_payload = 0;  // kDelete row id / kChannelProgress watermark /
                            // kCommit commit-time / kCheckpoint coverage
  std::string blob;         // kCheckpoint state
};

/// How a simulated crash leaves the end of the durable log.
enum class CrashMode {
  kClean,       // unsynced tail cut exactly at the last synced frame
  kTornTail,    // the first unsynced frame survives partially (torn write)
  kCorruptTail  // the first unsynced frame survives whole but bit-flipped
};

/// What a Replay pass observed about the log's tail.
struct WalReplayStats {
  int64_t records = 0;
  bool stopped_at_torn_tail = false;
  bool stopped_at_corrupt_tail = false;
};

/// Append-only write-ahead log. Records are buffered and charged to the
/// simulated disk as sequential writes on Sync(); a group-commit interval
/// is modeled by syncing once per Append when `sync_every_append` is set
/// (the expensive store-first configuration) or explicitly by the caller.
///
/// Crash model: the durable image is the *synced prefix* only. Each record
/// is framed with its length and an FNV-1a checksum; SimulateCrash()
/// discards everything unsynced (optionally leaving a torn or corrupt
/// final frame, as a real device would after a mid-write power cut), and
/// Replay treats a damaged frame at the tail as end-of-log rather than a
/// recovery failure. Damage anywhere BEFORE the tail is real corruption
/// and still fails replay.
///
/// Fault points: `wal.append` (before anything is buffered) and
/// `wal.sync` (before anything is charged or marked durable).
///
/// Thread-safe.
class WriteAheadLog {
 public:
  WriteAheadLog(std::shared_ptr<SimulatedDisk> disk,
                bool sync_every_append = false);

  Status Append(const WalRecord& record);

  /// Charges any unsynced bytes to the disk model (one positioning cost +
  /// bandwidth), i.e. an fsync. Everything appended so far becomes part of
  /// the durable image. Fails without advancing durability when the
  /// `wal.sync` fault point fires.
  Status Sync();

  /// Replays all durable records in append order. A torn or
  /// checksum-mismatched frame at the very end of the log ends the replay
  /// cleanly (stats/counters record it); damage before the tail returns
  /// kIoError.
  Status Replay(const std::function<Status(const WalRecord&)>& callback,
                WalReplayStats* stats = nullptr) const;

  /// Simulates a process/machine crash: the unsynced tail is discarded
  /// (it never reached the device). kTornTail keeps a prefix of the first
  /// unsynced frame; kCorruptTail keeps the whole frame with a flipped
  /// payload byte. The next Append overwrites any such damaged tail, as a
  /// recovering system truncates it before writing.
  void SimulateCrash(CrashMode mode = CrashMode::kClean);

  /// Truncates the log (after a full checkpoint).
  void Reset();

  int64_t record_count() const;
  int64_t byte_size() const;

  /// Cumulative count of replays that ended at a torn / corrupt tail
  /// (surfaced under the `recovery` scope in SHOW STATS).
  int64_t torn_tails_seen() const;
  int64_t corrupt_tails_seen() const;

 private:
  static void Encode(const WalRecord& record, std::string* out);
  static Result<WalRecord> Decode(const std::string& data, size_t* offset);

  std::shared_ptr<SimulatedDisk> disk_;
  const bool sync_every_append_;
  mutable std::mutex mu_;
  std::string log_;            // intact frames, in append order
  std::string tail_damage_;    // torn/corrupt bytes a crash left at the end
  int64_t synced_bytes_ = 0;   // prefix of log_ already charged
  int64_t synced_records_ = 0;
  int64_t record_count_ = 0;
  mutable int64_t torn_tails_seen_ = 0;
  mutable int64_t corrupt_tails_seen_ = 0;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_WAL_H_
