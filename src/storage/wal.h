#ifndef STREAMREL_STORAGE_WAL_H_
#define STREAMREL_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "storage/disk.h"

namespace streamrel::storage {

enum class WalRecordType : uint8_t {
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,           // (table, row)
  kDelete = 5,           // (table, row_id)
  kChannelProgress = 6,  // (channel, window-close watermark micros)
  kCheckpoint = 7,       // opaque operator-state blob (checkpoint recovery)
  kVacuum = 8,           // (table, compaction commit time) — replayed as a
                         // barrier so post-vacuum RowIds stay stable
};

struct WalRecord {
  WalRecordType type;
  uint64_t txn_id = 0;
  std::string object_name;  // table or channel name
  Row row;                  // kInsert
  int64_t int_payload = 0;  // kDelete row id / kChannelProgress watermark /
                            // kCommit commit-time
  std::string blob;         // kCheckpoint state
};

/// Append-only write-ahead log. Records are buffered and charged to the
/// simulated disk as sequential writes on Sync(); a group-commit interval
/// is modeled by syncing once per Append when `sync_every_append` is set
/// (the expensive store-first configuration) or explicitly by the caller.
///
/// Thread-safe.
class WriteAheadLog {
 public:
  WriteAheadLog(std::shared_ptr<SimulatedDisk> disk,
                bool sync_every_append = false);

  Status Append(const WalRecord& record);

  /// Charges any unsynced bytes to the disk model (one positioning cost +
  /// bandwidth), i.e. an fsync.
  void Sync();

  /// Replays all records in append order.
  Status Replay(
      const std::function<Status(const WalRecord&)>& callback) const;

  /// Truncates the log (after a full checkpoint).
  void Reset();

  int64_t record_count() const;
  int64_t byte_size() const;

  /// Test hook: makes the next `count` Append calls fail with kIoError
  /// without logging anything, simulating a device that rejects writes.
  void InjectAppendFailures(int64_t count);

 private:
  static void Encode(const WalRecord& record, std::string* out);
  static Result<WalRecord> Decode(const std::string& data, size_t* offset);

  std::shared_ptr<SimulatedDisk> disk_;
  const bool sync_every_append_;
  mutable std::mutex mu_;
  std::string log_;          // the durable image
  int64_t synced_bytes_ = 0;  // prefix of log_ already charged
  int64_t record_count_ = 0;
  int64_t inject_append_failures_ = 0;
};

}  // namespace streamrel::storage

#endif  // STREAMREL_STORAGE_WAL_H_
