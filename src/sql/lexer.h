#ifndef STREAMREL_SQL_LEXER_H_
#define STREAMREL_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamrel::sql {

enum class TokenType {
  kIdentifier,    // foo, "Foo"
  kString,        // 'abc'
  kInteger,       // 42
  kFloat,         // 4.2
  kOperator,      // ( ) , . ; + - * / % = <> != < > <= >= :: ||
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier text (original case) / literal payload
  int64_t int_value = 0;
  double float_value = 0;
  size_t position = 0;  // byte offset in the SQL text, for error messages

  bool IsKeyword(const char* kw) const;
  bool IsOperator(const char* op) const;
};

/// Tokenizes SQL text. Identifiers keep their original case (keyword checks
/// are case-insensitive). '--' comments and /* */ comments are skipped.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace streamrel::sql

#endif  // STREAMREL_SQL_LEXER_H_
