#ifndef STREAMREL_SQL_AST_H_
#define STREAMREL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace streamrel::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kStar,          // `*` or `t.*` in a select list / count(*)
  kUnary,         // - x, NOT x
  kBinary,        // arithmetic / comparison / AND / OR / LIKE / ||
  kFunctionCall,  // f(args) incl. aggregates and cq_close(*)
  kCast,          // CAST(e AS t) or e::t
  kCase,          // CASE WHEN ... THEN ... [ELSE ...] END
  kIn,            // e IN (v1, v2, ...)
  kBetween,       // e BETWEEN lo AND hi
  kIsNull,        // e IS [NOT] NULL
};

enum class UnaryOp { kNegate, kNot };

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kLike,
  kConcat,
};

const char* BinaryOpToString(BinaryOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A parsed SQL expression node. One struct with a kind tag (rather than a
/// class hierarchy) keeps the parser and binder compact.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef: qualifier may be empty. kStar: qualifier may be set (t.*).
  std::string qualifier;
  std::string column_name;

  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNegate;
  BinaryOp binary_op = BinaryOp::kAdd;

  // kFunctionCall
  std::string function_name;  // lowercased
  bool distinct = false;      // count(DISTINCT x)

  // kCast
  DataType cast_type = DataType::kNull;

  // kIsNull
  bool is_not = false;  // IS NOT NULL / NOT BETWEEN / NOT IN / NOT LIKE

  // Children. kUnary: [operand]. kBinary: [lhs, rhs]. kFunctionCall: args.
  // kCast: [operand]. kCase: [when1, then1, when2, then2, ..., else?]
  // (case_has_else tells whether the last child is the ELSE branch).
  // kIn: [needle, v1, v2, ...]. kBetween: [e, lo, hi]. kIsNull: [e].
  std::vector<ExprPtr> children;
  bool case_has_else = false;

  explicit Expr(ExprKind k) : kind(k) {}

  static ExprPtr MakeLiteral(Value v);
  static ExprPtr MakeColumnRef(std::string qualifier, std::string name);
  static ExprPtr MakeStar(std::string qualifier = "");
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                                  bool distinct = false);
  static ExprPtr MakeCast(ExprPtr operand, DataType type);

  /// Deep copy.
  ExprPtr Clone() const;

  /// SQL-ish rendering for error messages, plan display, and output column
  /// naming.
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Window clauses (the TruSQL stream extension)
// ---------------------------------------------------------------------------

enum class WindowUnit { kTime, kRows };

/// `<VISIBLE x ADVANCE y>` (time or row units) or `<SLICES n WINDOWS>`.
/// A bare `<VISIBLE x>` defaults ADVANCE to VISIBLE (a tumbling window).
/// `<SLICES n WINDOWS>` over a derived stream groups every n upstream
/// window-close batches into one relation (Example 5 in the paper uses
/// `<slices 1 windows>` to take each batch as-is).
struct WindowSpecAst {
  bool is_slices = false;
  int64_t slices_count = 0;  // for kSlices

  WindowUnit unit = WindowUnit::kTime;
  int64_t visible = 0;  // micros (kTime) or row count (kRows)
  int64_t advance = 0;  // micros (kTime) or row count (kRows)

  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Table references (FROM items)
// ---------------------------------------------------------------------------

struct SelectStmt;

enum class TableRefKind { kBase, kSubquery, kJoin };
enum class JoinType { kInner, kLeft, kCross };

struct TableRef;
using TableRefPtr = std::unique_ptr<TableRef>;

struct TableRef {
  TableRefKind kind;

  // kBase: a table, stream, or view name; window only legal on streams.
  std::string name;
  std::optional<WindowSpecAst> window;

  // kSubquery
  std::unique_ptr<SelectStmt> subquery;

  // kJoin
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr join_condition;  // null for CROSS

  std::string alias;  // empty if none

  explicit TableRef(TableRefKind k) : kind(k) {}
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateStream,         // raw stream DDL
  kCreateDerivedStream,  // CREATE STREAM name AS SELECT ...
  kCreateView,
  kCreateChannel,
  kCreateIndex,
  kDrop,
  kVacuum,
  kExplain,
  kTransaction,  // BEGIN / COMMIT / ROLLBACK
  kShowStats,    // SHOW STATS [FOR CQ|STREAM|CHANNEL <name>]
  kSet,          // SET PARALLELISM <n>
  kSetFault,     // SET FAULT '<point>' <policy> | SET FAULT RESET
  kShowFaults,   // SHOW FAULTS
  kSubscribe,    // SUBSCRIBE TO <stream|cq>   (network sessions only)
  kUnsubscribe,  // UNSUBSCRIBE [FROM] <stream|cq>
};

struct Statement {
  virtual ~Statement() = default;
  virtual StatementKind kind() const = 0;
};
using StatementPtr = std::unique_ptr<Statement>;

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty if none
};

struct OrderByItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStmt : Statement {
  bool distinct = false;
  std::vector<SelectItem> select_list;
  std::vector<TableRefPtr> from;  // comma-joined items (cross product)
  ExprPtr where;                  // may be null
  std::vector<ExprPtr> group_by;
  ExprPtr having;  // may be null
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  /// UNION ALL chain: this select's results followed by each entry's.
  std::vector<std::unique_ptr<SelectStmt>> union_all;

  StatementKind kind() const override { return StatementKind::kSelect; }
  std::unique_ptr<SelectStmt> CloneSelect() const;
};

struct InsertStmt : Statement {
  std::string table;
  std::vector<std::string> columns;    // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;

  StatementKind kind() const override { return StatementKind::kInsert; }
};

struct UpdateStmt : Statement {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;  // col = expr
  ExprPtr where;  // may be null (update all)

  StatementKind kind() const override { return StatementKind::kUpdate; }
};

struct DeleteStmt : Statement {
  std::string table;
  ExprPtr where;  // may be null (delete all)

  StatementKind kind() const override { return StatementKind::kDelete; }
};

/// VACUUM <table>: compacts the heap, dropping row versions invisible to
/// the current snapshot. Reclaims the space REPLACE channels churn through;
/// discards time-travel history for the table.
struct VacuumStmt : Statement {
  std::string table;

  StatementKind kind() const override { return StatementKind::kVacuum; }
};

/// EXPLAIN <select>: returns the physical plan as text rows.
struct ExplainStmt : Statement {
  std::unique_ptr<SelectStmt> select;

  StatementKind kind() const override { return StatementKind::kExplain; }
};

/// SHOW STATS [FOR CQ|STREAM|CHANNEL <name>]: engine observability as
/// ordinary rows (scope, name, metric, value). Without FOR, every metric
/// the engine tracks is returned.
struct ShowStatsStmt : Statement {
  enum class Target { kAll, kCq, kStream, kChannel, kOverload, kNet };
  Target target = Target::kAll;
  std::string name;  // empty for kAll

  StatementKind kind() const override { return StatementKind::kShowStats; }
};

/// SUBSCRIBE TO <stream|cq>: live push delivery of window-close batches
/// (or raw-stream batches) over the issuing network session. Only network
/// sessions can execute it — the in-process API is Database::Subscribe.
struct SubscribeStmt : Statement {
  std::string name;  // stream or CQ name (dotted names allowed)

  StatementKind kind() const override { return StatementKind::kSubscribe; }
};

/// UNSUBSCRIBE [FROM] <stream|cq>: removes this session's subscription.
struct UnsubscribeStmt : Statement {
  std::string name;

  StatementKind kind() const override { return StatementKind::kUnsubscribe; }
};

/// SET <option> <value>: engine-level runtime options.
///   SET PARALLELISM <n>                — worker-shard count for ingest
///   SET MEMORY LIMIT <bytes>           — governor budget (0 = unlimited)
///   SET OVERLOAD POLICY <stream> BLOCK|SHED_NEWEST|SHED_OLDEST
///   SET RETRY LIMIT <n>                — sink delivery attempts (1..1000)
///   SET RETRY BACKOFF <micros>         — base retry backoff
struct SetStmt : Statement {
  std::string option;      // lowercased, e.g. "parallelism", "memory_limit",
                           // "overload_policy", "retry_limit", "retry_backoff"
  int64_t value = 0;       // numeric operand (parallelism, bytes, attempts)
  std::string target;      // object operand: stream name for OVERLOAD POLICY
  std::string text_value;  // symbolic operand: policy name, uppercased

  StatementKind kind() const override { return StatementKind::kSet; }
};

/// SET FAULT '<point>' FAIL ONCE | FAIL NTH <n> | PROBABILITY <p> [SEED <s>]
///           | CRASH [NTH <n>] | OFF, and SET FAULT RESET (clear all).
/// Test-only fault injection: arms a named fault point in the engine's
/// FaultInjector. Mirrors common::FaultPolicy so the sql layer stays
/// decoupled from the injector.
struct SetFaultStmt : Statement {
  bool reset_all = false;  // SET FAULT RESET
  std::string point;       // e.g. "wal.sync"
  enum class Policy { kOff, kFailOnce, kFailNth, kProbability, kCrash };
  Policy policy = Policy::kOff;
  int64_t nth = 1;           // kFailNth / kCrash
  double probability = 0.0;  // kProbability
  int64_t seed = 0;          // kProbability

  StatementKind kind() const override { return StatementKind::kSetFault; }
};

/// SHOW FAULTS: every armed (or previously hit) fault point with its
/// policy and hit/fire counters, as ordinary rows.
struct ShowFaultsStmt : Statement {
  StatementKind kind() const override { return StatementKind::kShowFaults; }
};

enum class TransactionOp { kBegin, kCommit, kRollback };

/// BEGIN [TRANSACTION] / COMMIT / ROLLBACK — explicit multi-statement
/// transactions (the engine is autocommit otherwise).
struct TransactionStmt : Statement {
  TransactionOp op = TransactionOp::kBegin;

  StatementKind kind() const override { return StatementKind::kTransaction; }
};

struct ColumnDef {
  std::string name;
  DataType type = DataType::kNull;
  /// CREATE STREAM only: this column carries the stream's CQTIME, i.e. its
  /// logical ordering attribute (Example 1: `atime timestamp CQTIME USER`).
  bool is_cqtime = false;
  /// CQTIME USER: values supplied by the source; CQTIME SYSTEM: stamped by
  /// the engine at ingest.
  bool cqtime_system = false;
};

struct CreateTableStmt : Statement {
  std::string name;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
  /// CREATE TABLE name AS SELECT ...: schema comes from the query's output
  /// and the result rows are loaded (columns must then be empty).
  std::unique_ptr<SelectStmt> as_select;

  StatementKind kind() const override { return StatementKind::kCreateTable; }
};

struct CreateStreamStmt : Statement {
  std::string name;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;

  StatementKind kind() const override { return StatementKind::kCreateStream; }
};

struct CreateDerivedStreamStmt : Statement {
  std::string name;
  std::unique_ptr<SelectStmt> select;

  StatementKind kind() const override {
    return StatementKind::kCreateDerivedStream;
  }
};

struct CreateViewStmt : Statement {
  std::string name;
  std::unique_ptr<SelectStmt> select;

  StatementKind kind() const override { return StatementKind::kCreateView; }
};

enum class ChannelMode { kAppend, kReplace };

struct CreateChannelStmt : Statement {
  std::string name;
  std::string from_stream;
  std::string into_table;
  ChannelMode mode = ChannelMode::kAppend;

  StatementKind kind() const override { return StatementKind::kCreateChannel; }
};

struct CreateIndexStmt : Statement {
  std::string name;
  std::string table;
  std::string column;

  StatementKind kind() const override { return StatementKind::kCreateIndex; }
};

enum class ObjectKind { kTable, kStream, kView, kChannel, kIndex };

struct DropStmt : Statement {
  ObjectKind object_kind = ObjectKind::kTable;
  std::string name;
  bool if_exists = false;

  StatementKind kind() const override { return StatementKind::kDrop; }
};

}  // namespace streamrel::sql

#endif  // STREAMREL_SQL_AST_H_
