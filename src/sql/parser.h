#ifndef STREAMREL_SQL_PARSER_H_
#define STREAMREL_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace streamrel::sql {

/// Parses one or more ';'-separated SQL statements.
Result<std::vector<StatementPtr>> ParseSql(const std::string& sql);

/// Parses exactly one statement; errors if there is more than one.
Result<StatementPtr> ParseSingleStatement(const std::string& sql);

/// Parses a standalone scalar expression (used in tests).
Result<ExprPtr> ParseExpression(const std::string& text);

/// Maps a SQL type name ("varchar", "bigint", ...) to a DataType.
Result<DataType> ParseTypeName(const std::string& name);

}  // namespace streamrel::sql

#endif  // STREAMREL_SQL_PARSER_H_
