#include "sql/parser.h"

#include <unordered_set>

#include "common/string_util.h"
#include "common/time.h"

namespace streamrel::sql {

namespace {

// Words that terminate clauses and therefore cannot be implicit aliases.
const std::unordered_set<std::string>& ReservedWords() {
  static const auto* kSet = new std::unordered_set<std::string>{
      "select", "from",   "where",  "group",  "having", "order",  "limit",
      "offset", "union",  "join",   "inner",  "left",   "cross",  "on",
      "and",    "or",     "not",    "as",     "by",     "asc",    "desc",
      "insert", "into",   "values", "create", "drop",   "when",   "then",
      "else",   "end",    "case",   "is",     "in",     "between", "like",
      "distinct", "all",  "outer"};
  return *kSet;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<StatementPtr>> ParseStatements() {
    std::vector<StatementPtr> stmts;
    while (!AtEnd()) {
      if (MatchOperator(";")) continue;
      ASSIGN_OR_RETURN(StatementPtr stmt, ParseStatement());
      stmts.push_back(std::move(stmt));
      if (!AtEnd() && !MatchOperator(";")) {
        return Error("expected ';' between statements");
      }
    }
    return stmts;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Error("trailing tokens after expression");
    return e;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() {
    const Token& t = Peek();
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool MatchKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool MatchOperator(const char* op) {
    if (Peek().IsOperator(op)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!MatchKeyword(kw)) {
      return Error(std::string("expected keyword ") + ToUpper(kw));
    }
    return Status::OK();
  }
  Status ExpectOperator(const char* op) {
    if (!MatchOperator(op)) {
      return Error(std::string("expected '") + op + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Result<std::string>(
          Error(std::string("expected ") + what));
    }
    return Advance().text;
  }

  Result<int64_t> ExpectInteger(const char* what) {
    if (Peek().type != TokenType::kInteger) {
      return Result<int64_t>(Error(std::string("expected ") + what));
    }
    return Advance().int_value;
  }

  /// Possibly-dotted object name: `ident ('.' ident)*`, joined with dots.
  /// The lexer emits '.' as an operator, so names like
  /// `trades.__quarantine` arrive as three tokens.
  Result<std::string> ParseObjectName(const char* what) {
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier(what));
    while (Peek().IsOperator(".") && Peek(1).type == TokenType::kIdentifier) {
      Advance();  // '.'
      name += "." + Advance().text;
    }
    return name;
  }

  /// Recursion limiter for the self-recursive productions (parenthesised
  /// expressions, NOT/unary chains, subqueries). Deeply nested input must
  /// come back as a ParseError, never a stack overflow.
  struct DepthGuard {
    explicit DepthGuard(Parser* p) : p_(p) { ++p_->depth_; }
    ~DepthGuard() { --p_->depth_; }
    Parser* p_;
  };
  Status CheckDepth() const {
    if (depth_ > kMaxDepth) {
      return Status::ParseError("statement nesting exceeds the depth limit (" +
                                std::to_string(kMaxDepth) + ")");
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    std::string got = t.type == TokenType::kEnd ? "end of input"
                                                : "'" + t.text + "'";
    return Status::ParseError(msg + ", got " + got + " at offset " +
                              std::to_string(t.position));
  }

  // --- statements ---------------------------------------------------------

  Result<StatementPtr> ParseStatement() {
    if (Peek().IsKeyword("select")) {
      ASSIGN_OR_RETURN(auto sel, ParseSelect());
      return StatementPtr(std::move(sel));
    }
    if (MatchKeyword("insert")) return ParseInsert();
    if (MatchKeyword("update")) return ParseUpdate();
    if (MatchKeyword("delete")) return ParseDelete();
    if (MatchKeyword("create")) return ParseCreate();
    if (MatchKeyword("drop")) return ParseDrop();
    if (MatchKeyword("vacuum")) {
      auto stmt = std::make_unique<VacuumStmt>();
      ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("explain")) {
      auto stmt = std::make_unique<ExplainStmt>();
      ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("show")) return ParseShowStats();
    if (MatchKeyword("set")) return ParseSet();
    if (MatchKeyword("subscribe")) {
      RETURN_IF_ERROR(ExpectKeyword("to"));
      auto stmt = std::make_unique<SubscribeStmt>();
      ASSIGN_OR_RETURN(stmt->name, ParseObjectName("stream or CQ name"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("unsubscribe")) {
      MatchKeyword("from");
      auto stmt = std::make_unique<UnsubscribeStmt>();
      ASSIGN_OR_RETURN(stmt->name, ParseObjectName("stream or CQ name"));
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("begin") || MatchKeyword("start")) {
      MatchKeyword("transaction");
      MatchKeyword("work");
      auto stmt = std::make_unique<TransactionStmt>();
      stmt->op = TransactionOp::kBegin;
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("commit")) {
      MatchKeyword("transaction");
      MatchKeyword("work");
      auto stmt = std::make_unique<TransactionStmt>();
      stmt->op = TransactionOp::kCommit;
      return StatementPtr(std::move(stmt));
    }
    if (MatchKeyword("rollback") || MatchKeyword("abort")) {
      MatchKeyword("transaction");
      MatchKeyword("work");
      auto stmt = std::make_unique<TransactionStmt>();
      stmt->op = TransactionOp::kRollback;
      return StatementPtr(std::move(stmt));
    }
    return Result<StatementPtr>(
        Error("expected SELECT, INSERT, UPDATE, DELETE, CREATE, DROP, "
              "VACUUM, EXPLAIN, SHOW, SET, SUBSCRIBE, or UNSUBSCRIBE"));
  }

  Result<StatementPtr> ParseSet() {
    if (Peek().IsKeyword("fault")) {
      Advance();
      return ParseSetFault();
    }
    auto stmt = std::make_unique<SetStmt>();
    std::string option;
    ASSIGN_OR_RETURN(option, ExpectIdentifier("option name"));
    stmt->option = ToLower(option);
    if (stmt->option == "memory") {
      // SET MEMORY LIMIT <bytes>
      RETURN_IF_ERROR(ExpectKeyword("limit"));
      stmt->option = "memory_limit";
      ASSIGN_OR_RETURN(stmt->value, ExpectInteger("byte budget"));
      return StatementPtr(std::move(stmt));
    }
    if (stmt->option == "overload") {
      // SET OVERLOAD POLICY <stream> BLOCK|SHED_NEWEST|SHED_OLDEST
      RETURN_IF_ERROR(ExpectKeyword("policy"));
      stmt->option = "overload_policy";
      ASSIGN_OR_RETURN(stmt->target, ParseObjectName("stream name"));
      ASSIGN_OR_RETURN(std::string policy, ExpectIdentifier("overload policy"));
      stmt->text_value = ToUpper(policy);
      if (stmt->text_value != "BLOCK" && stmt->text_value != "SHED_NEWEST" &&
          stmt->text_value != "SHED_OLDEST") {
        return Result<StatementPtr>(
            Error("expected BLOCK, SHED_NEWEST, or SHED_OLDEST"));
      }
      return StatementPtr(std::move(stmt));
    }
    if (stmt->option == "retry") {
      // SET RETRY LIMIT <attempts> | SET RETRY BACKOFF <micros>
      if (MatchKeyword("limit")) {
        stmt->option = "retry_limit";
        ASSIGN_OR_RETURN(stmt->value, ExpectInteger("attempt count"));
      } else if (MatchKeyword("backoff")) {
        stmt->option = "retry_backoff";
        ASSIGN_OR_RETURN(stmt->value, ExpectInteger("backoff microseconds"));
      } else {
        return Result<StatementPtr>(Error("expected LIMIT or BACKOFF"));
      }
      return StatementPtr(std::move(stmt));
    }
    if (stmt->option != "parallelism") {
      return Result<StatementPtr>(
          Error("unknown SET option '" + option + "'"));
    }
    ASSIGN_OR_RETURN(stmt->value, ExpectInteger("value"));
    return StatementPtr(std::move(stmt));
  }

  /// SET FAULT RESET
  /// SET FAULT '<point>' FAIL ONCE | FAIL NTH <n>
  ///                     | PROBABILITY <p> [SEED <s>] | CRASH [NTH <n>] | OFF
  Result<StatementPtr> ParseSetFault() {
    auto stmt = std::make_unique<SetFaultStmt>();
    if (MatchKeyword("reset")) {
      stmt->reset_all = true;
      return StatementPtr(std::move(stmt));
    }
    if (Peek().type != TokenType::kString) {
      return Result<StatementPtr>(
          Error("expected fault point string (e.g. 'wal.sync') or RESET"));
    }
    stmt->point = Advance().text;
    if (MatchKeyword("off")) {
      stmt->policy = SetFaultStmt::Policy::kOff;
    } else if (MatchKeyword("fail")) {
      if (MatchKeyword("once")) {
        stmt->policy = SetFaultStmt::Policy::kFailOnce;
      } else if (MatchKeyword("nth")) {
        stmt->policy = SetFaultStmt::Policy::kFailNth;
        if (Peek().type != TokenType::kInteger) {
          return Result<StatementPtr>(Error("expected hit count after NTH"));
        }
        stmt->nth = Advance().int_value;
      } else {
        return Result<StatementPtr>(Error("expected ONCE or NTH after FAIL"));
      }
    } else if (MatchKeyword("probability")) {
      stmt->policy = SetFaultStmt::Policy::kProbability;
      if (Peek().type == TokenType::kFloat) {
        stmt->probability = Advance().float_value;
      } else if (Peek().type == TokenType::kInteger) {
        stmt->probability = static_cast<double>(Advance().int_value);
      } else {
        return Result<StatementPtr>(
            Error("expected probability value in [0, 1]"));
      }
      if (MatchKeyword("seed")) {
        if (Peek().type != TokenType::kInteger) {
          return Result<StatementPtr>(Error("expected integer seed"));
        }
        stmt->seed = Advance().int_value;
      }
    } else if (MatchKeyword("crash")) {
      stmt->policy = SetFaultStmt::Policy::kCrash;
      if (MatchKeyword("nth")) {
        if (Peek().type != TokenType::kInteger) {
          return Result<StatementPtr>(Error("expected hit count after NTH"));
        }
        stmt->nth = Advance().int_value;
      }
    } else {
      return Result<StatementPtr>(
          Error("expected FAIL, PROBABILITY, CRASH, or OFF"));
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseShowStats() {
    if (MatchKeyword("faults")) {
      return StatementPtr(std::make_unique<ShowFaultsStmt>());
    }
    RETURN_IF_ERROR(ExpectKeyword("stats"));
    auto stmt = std::make_unique<ShowStatsStmt>();
    if (MatchKeyword("for")) {
      if (MatchKeyword("overload")) {
        // Whole overload scope (governor, retry, per-stream admission);
        // takes no object name.
        stmt->target = ShowStatsStmt::Target::kOverload;
        return StatementPtr(std::move(stmt));
      }
      if (MatchKeyword("net")) {
        // Whole network-front-end scope (connections, frames, send
        // queues, slow consumers); takes no object name.
        stmt->target = ShowStatsStmt::Target::kNet;
        return StatementPtr(std::move(stmt));
      }
      if (MatchKeyword("cq")) {
        stmt->target = ShowStatsStmt::Target::kCq;
      } else if (MatchKeyword("stream")) {
        stmt->target = ShowStatsStmt::Target::kStream;
      } else if (MatchKeyword("channel")) {
        stmt->target = ShowStatsStmt::Target::kChannel;
      } else {
        return Result<StatementPtr>(
            Error("expected CQ, STREAM, CHANNEL, OVERLOAD, or NET after FOR"));
      }
      ASSIGN_OR_RETURN(stmt->name, ParseObjectName("object name"));
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseUpdate() {
    auto stmt = std::make_unique<UpdateStmt>();
    ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    RETURN_IF_ERROR(ExpectKeyword("set"));
    do {
      std::string column;
      ASSIGN_OR_RETURN(column, ExpectIdentifier("column name"));
      RETURN_IF_ERROR(ExpectOperator("="));
      ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt->assignments.emplace_back(std::move(column), std::move(value));
    } while (MatchOperator(","));
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDelete() {
    RETURN_IF_ERROR(ExpectKeyword("from"));
    auto stmt = std::make_unique<DeleteStmt>();
    ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseInsert() {
    RETURN_IF_ERROR(ExpectKeyword("into"));
    auto stmt = std::make_unique<InsertStmt>();
    ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    if (MatchOperator("(")) {
      do {
        ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (MatchOperator(","));
      RETURN_IF_ERROR(ExpectOperator(")"));
    }
    RETURN_IF_ERROR(ExpectKeyword("values"));
    do {
      RETURN_IF_ERROR(ExpectOperator("("));
      std::vector<ExprPtr> row;
      do {
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchOperator(","));
      RETURN_IF_ERROR(ExpectOperator(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchOperator(","));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreate() {
    if (MatchKeyword("table")) return ParseCreateTable();
    if (MatchKeyword("stream")) return ParseCreateStream();
    if (MatchKeyword("view")) return ParseCreateView();
    if (MatchKeyword("channel")) return ParseCreateChannel();
    if (MatchKeyword("index")) return ParseCreateIndex();
    return Result<StatementPtr>(
        Error("expected TABLE, STREAM, VIEW, CHANNEL, or INDEX after CREATE"));
  }

  Result<bool> ParseIfNotExists() {
    if (MatchKeyword("if")) {
      RETURN_IF_ERROR(ExpectKeyword("not"));
      RETURN_IF_ERROR(ExpectKeyword("exists"));
      return true;
    }
    return false;
  }

  Result<StatementPtr> ParseCreateTable() {
    auto stmt = std::make_unique<CreateTableStmt>();
    ASSIGN_OR_RETURN(stmt->if_not_exists, ParseIfNotExists());
    ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("table name"));
    if (MatchKeyword("as")) {
      ASSIGN_OR_RETURN(stmt->as_select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    ASSIGN_OR_RETURN(stmt->columns, ParseColumnDefs(/*allow_cqtime=*/false));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateStream() {
    bool if_not_exists = false;
    ASSIGN_OR_RETURN(if_not_exists, ParseIfNotExists());
    ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("stream name"));
    if (MatchKeyword("as")) {
      auto stmt = std::make_unique<CreateDerivedStreamStmt>();
      stmt->name = std::move(name);
      ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return StatementPtr(std::move(stmt));
    }
    auto stmt = std::make_unique<CreateStreamStmt>();
    stmt->name = std::move(name);
    stmt->if_not_exists = if_not_exists;
    ASSIGN_OR_RETURN(stmt->columns, ParseColumnDefs(/*allow_cqtime=*/true));
    return StatementPtr(std::move(stmt));
  }

  Result<std::vector<ColumnDef>> ParseColumnDefs(bool allow_cqtime) {
    RETURN_IF_ERROR(ExpectOperator("("));
    std::vector<ColumnDef> defs;
    do {
      ColumnDef def;
      ASSIGN_OR_RETURN(def.name, ExpectIdentifier("column name"));
      ASSIGN_OR_RETURN(std::string type_name,
                       ExpectIdentifier("column type"));
      ASSIGN_OR_RETURN(def.type, ParseTypeName(type_name));
      // Optional length modifier, e.g. varchar(1024) — accepted, ignored.
      if (MatchOperator("(")) {
        if (Peek().type != TokenType::kInteger) {
          return Result<std::vector<ColumnDef>>(
              Error("expected length in type modifier"));
        }
        Advance();
        RETURN_IF_ERROR(ExpectOperator(")"));
      }
      if (MatchKeyword("cqtime")) {
        if (!allow_cqtime) {
          return Result<std::vector<ColumnDef>>(
              Error("CQTIME is only valid in CREATE STREAM"));
        }
        def.is_cqtime = true;
        if (MatchKeyword("system")) {
          def.cqtime_system = true;
        } else {
          RETURN_IF_ERROR(ExpectKeyword("user"));
        }
      }
      defs.push_back(std::move(def));
    } while (MatchOperator(","));
    RETURN_IF_ERROR(ExpectOperator(")"));
    return defs;
  }

  Result<StatementPtr> ParseCreateView() {
    auto stmt = std::make_unique<CreateViewStmt>();
    ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("view name"));
    RETURN_IF_ERROR(ExpectKeyword("as"));
    ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateChannel() {
    auto stmt = std::make_unique<CreateChannelStmt>();
    ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("channel name"));
    RETURN_IF_ERROR(ExpectKeyword("from"));
    ASSIGN_OR_RETURN(stmt->from_stream, ParseObjectName("stream name"));
    RETURN_IF_ERROR(ExpectKeyword("into"));
    ASSIGN_OR_RETURN(stmt->into_table, ExpectIdentifier("table name"));
    if (MatchKeyword("replace")) {
      stmt->mode = ChannelMode::kReplace;
    } else if (MatchKeyword("append")) {
      stmt->mode = ChannelMode::kAppend;
    }  // default APPEND
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseCreateIndex() {
    auto stmt = std::make_unique<CreateIndexStmt>();
    ASSIGN_OR_RETURN(stmt->name, ExpectIdentifier("index name"));
    RETURN_IF_ERROR(ExpectKeyword("on"));
    ASSIGN_OR_RETURN(stmt->table, ExpectIdentifier("table name"));
    RETURN_IF_ERROR(ExpectOperator("("));
    ASSIGN_OR_RETURN(stmt->column, ExpectIdentifier("column name"));
    RETURN_IF_ERROR(ExpectOperator(")"));
    return StatementPtr(std::move(stmt));
  }

  Result<StatementPtr> ParseDrop() {
    auto stmt = std::make_unique<DropStmt>();
    if (MatchKeyword("table")) {
      stmt->object_kind = ObjectKind::kTable;
    } else if (MatchKeyword("stream")) {
      stmt->object_kind = ObjectKind::kStream;
    } else if (MatchKeyword("view")) {
      stmt->object_kind = ObjectKind::kView;
    } else if (MatchKeyword("channel")) {
      stmt->object_kind = ObjectKind::kChannel;
    } else if (MatchKeyword("index")) {
      stmt->object_kind = ObjectKind::kIndex;
    } else {
      return Result<StatementPtr>(
          Error("expected TABLE, STREAM, VIEW, CHANNEL, or INDEX after DROP"));
    }
    if (MatchKeyword("if")) {
      RETURN_IF_ERROR(ExpectKeyword("exists"));
      stmt->if_exists = true;
    }
    ASSIGN_OR_RETURN(stmt->name, ParseObjectName("object name"));
    return StatementPtr(std::move(stmt));
  }

  // --- SELECT -------------------------------------------------------------

  /// Full select: core select, a flat UNION ALL chain, then ORDER BY /
  /// LIMIT / OFFSET applying to the whole result.
  Result<std::unique_ptr<SelectStmt>> ParseSelect() {
    ASSIGN_OR_RETURN(std::unique_ptr<SelectStmt> stmt, ParseSelectCore());
    while (MatchKeyword("union")) {
      RETURN_IF_ERROR(ExpectKeyword("all"));
      ASSIGN_OR_RETURN(auto rhs, ParseSelectCore());
      stmt->union_all.push_back(std::move(rhs));
    }
    if (MatchKeyword("order")) {
      RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        OrderByItem item;
        ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("desc")) {
          item.ascending = false;
        } else {
          MatchKeyword("asc");
        }
        stmt->order_by.push_back(std::move(item));
      } while (MatchOperator(","));
    }
    if (MatchKeyword("limit")) {
      if (Peek().type != TokenType::kInteger) {
        return Result<std::unique_ptr<SelectStmt>>(
            Error("expected integer after LIMIT"));
      }
      stmt->limit = Advance().int_value;
    }
    if (MatchKeyword("offset")) {
      if (Peek().type != TokenType::kInteger) {
        return Result<std::unique_ptr<SelectStmt>>(
            Error("expected integer after OFFSET"));
      }
      stmt->offset = Advance().int_value;
    }
    return stmt;
  }

  /// SELECT ... FROM ... WHERE ... GROUP BY ... HAVING (no union/order/limit).
  Result<std::unique_ptr<SelectStmt>> ParseSelectCore() {
    DepthGuard guard(this);
    RETURN_IF_ERROR(CheckDepth());
    RETURN_IF_ERROR(ExpectKeyword("select"));
    auto stmt = std::make_unique<SelectStmt>();
    if (MatchKeyword("distinct")) {
      stmt->distinct = true;
    } else {
      MatchKeyword("all");
    }
    do {
      SelectItem item;
      ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchKeyword("as")) {
        ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier &&
                 ReservedWords().count(ToLower(Peek().text)) == 0) {
        item.alias = Advance().text;
      }
      stmt->select_list.push_back(std::move(item));
    } while (MatchOperator(","));

    if (MatchKeyword("from")) {
      do {
        ASSIGN_OR_RETURN(TableRefPtr ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
      } while (MatchOperator(","));
    }
    if (MatchKeyword("where")) {
      ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("group")) {
      RETURN_IF_ERROR(ExpectKeyword("by"));
      do {
        ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (MatchOperator(","));
    }
    if (MatchKeyword("having")) {
      ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    return stmt;
  }

  Result<TableRefPtr> ParseTableRef() {
    ASSIGN_OR_RETURN(TableRefPtr left, ParseTableRefPrimary());
    for (;;) {
      JoinType type;
      if (MatchKeyword("cross")) {
        RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kCross;
      } else if (MatchKeyword("inner")) {
        RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kInner;
      } else if (MatchKeyword("left")) {
        MatchKeyword("outer");
        RETURN_IF_ERROR(ExpectKeyword("join"));
        type = JoinType::kLeft;
      } else if (MatchKeyword("join")) {
        type = JoinType::kInner;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(TableRefPtr right, ParseTableRefPrimary());
      auto join = std::make_unique<TableRef>(TableRefKind::kJoin);
      join->join_type = type;
      join->left = std::move(left);
      join->right = std::move(right);
      if (type != JoinType::kCross) {
        RETURN_IF_ERROR(ExpectKeyword("on"));
        ASSIGN_OR_RETURN(join->join_condition, ParseExpr());
      }
      left = std::move(join);
    }
    return left;
  }

  Result<TableRefPtr> ParseTableRefPrimary() {
    TableRefPtr ref;
    if (MatchOperator("(")) {
      ref = std::make_unique<TableRef>(TableRefKind::kSubquery);
      ASSIGN_OR_RETURN(ref->subquery, ParseSelect());
      RETURN_IF_ERROR(ExpectOperator(")"));
    } else {
      ref = std::make_unique<TableRef>(TableRefKind::kBase);
      ASSIGN_OR_RETURN(ref->name, ParseObjectName("table or stream name"));
    }
    // Optional TruSQL window clause: `<VISIBLE ... ADVANCE ...>` or
    // `<SLICES n WINDOWS>`. Disambiguated from comparison by the keyword
    // following '<'.
    if (Peek().IsOperator("<") &&
        (Peek(1).IsKeyword("visible") || Peek(1).IsKeyword("slices") ||
         Peek(1).IsKeyword("advance"))) {
      Advance();  // consume '<'
      ASSIGN_OR_RETURN(WindowSpecAst spec, ParseWindowSpec());
      ref->window = spec;
    }
    if (MatchKeyword("as")) {
      ASSIGN_OR_RETURN(ref->alias, ExpectIdentifier("alias"));
    } else if (Peek().type == TokenType::kIdentifier &&
               ReservedWords().count(ToLower(Peek().text)) == 0) {
      ref->alias = Advance().text;
    }
    if (ref->kind == TableRefKind::kSubquery && ref->alias.empty()) {
      return Result<TableRefPtr>(Error("subquery in FROM requires an alias"));
    }
    return ref;
  }

  /// Parses the body of a window clause; '<' already consumed, consumes '>'.
  Result<WindowSpecAst> ParseWindowSpec() {
    WindowSpecAst spec;
    if (MatchKeyword("slices")) {
      if (Peek().type != TokenType::kInteger) {
        return Result<WindowSpecAst>(Error("expected count after SLICES"));
      }
      spec.is_slices = true;
      spec.slices_count = Advance().int_value;
      RETURN_IF_ERROR(ExpectKeyword("windows"));
      RETURN_IF_ERROR(ExpectOperator(">"));
      return spec;
    }
    RETURN_IF_ERROR(ExpectKeyword("visible"));
    ASSIGN_OR_RETURN(auto vis, ParseWindowExtent());
    spec.unit = vis.first;
    spec.visible = vis.second;
    if (MatchKeyword("advance")) {
      ASSIGN_OR_RETURN(auto adv, ParseWindowExtent());
      if (adv.first != spec.unit) {
        return Result<WindowSpecAst>(
            Error("VISIBLE and ADVANCE must use the same unit"));
      }
      spec.advance = adv.second;
    } else {
      spec.advance = spec.visible;  // tumbling window
    }
    RETURN_IF_ERROR(ExpectOperator(">"));
    if (spec.visible <= 0 || spec.advance <= 0) {
      return Result<WindowSpecAst>(
          Error("window VISIBLE/ADVANCE must be positive"));
    }
    return spec;
  }

  /// One extent: '5 minutes' (time) or `100 ROWS`.
  Result<std::pair<WindowUnit, int64_t>> ParseWindowExtent() {
    if (Peek().type == TokenType::kString) {
      std::string text = Advance().text;
      auto micros = ParseIntervalMicros(text);
      if (!micros.ok()) {
        return Result<std::pair<WindowUnit, int64_t>>(
            Status::ParseError(micros.status().message()));
      }
      return std::make_pair(WindowUnit::kTime, *micros);
    }
    if (Peek().type == TokenType::kInteger) {
      int64_t count = Advance().int_value;
      RETURN_IF_ERROR(ExpectKeyword("rows"));
      return std::make_pair(WindowUnit::kRows, count);
    }
    return Result<std::pair<WindowUnit, int64_t>>(
        Error("expected interval string or row count in window clause"));
  }

  // --- expressions (precedence climbing) ----------------------------------

  Result<ExprPtr> ParseExpr() {
    DepthGuard guard(this);
    RETURN_IF_ERROR(CheckDepth());
    return ParseOr();
  }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (MatchKeyword("or")) {
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Peek().IsKeyword("and")) {
      Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (MatchKeyword("not")) {
      DepthGuard guard(this);
      RETURN_IF_ERROR(CheckDepth());
      ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return Expr::MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    for (;;) {
      BinaryOp op;
      if (MatchOperator("=")) {
        op = BinaryOp::kEq;
      } else if (MatchOperator("<>") || MatchOperator("!=")) {
        op = BinaryOp::kNe;
      } else if (MatchOperator("<=")) {
        op = BinaryOp::kLe;
      } else if (MatchOperator(">=")) {
        op = BinaryOp::kGe;
      } else if (MatchOperator("<")) {
        op = BinaryOp::kLt;
      } else if (MatchOperator(">")) {
        op = BinaryOp::kGt;
      } else if (Peek().IsKeyword("is")) {
        Advance();
        auto e = std::make_unique<Expr>(ExprKind::kIsNull);
        e->is_not = MatchKeyword("not");
        RETURN_IF_ERROR(ExpectKeyword("null"));
        e->children.push_back(std::move(lhs));
        lhs = std::move(e);
        continue;
      } else if (Peek().IsKeyword("like") ||
                 (Peek().IsKeyword("not") && Peek(1).IsKeyword("like"))) {
        bool neg = MatchKeyword("not");
        Advance();  // LIKE
        ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        lhs = Expr::MakeBinary(BinaryOp::kLike, std::move(lhs),
                               std::move(rhs));
        if (neg) lhs = Expr::MakeUnary(UnaryOp::kNot, std::move(lhs));
        continue;
      } else if (Peek().IsKeyword("in") ||
                 (Peek().IsKeyword("not") && Peek(1).IsKeyword("in"))) {
        bool neg = MatchKeyword("not");
        Advance();  // IN
        RETURN_IF_ERROR(ExpectOperator("("));
        auto e = std::make_unique<Expr>(ExprKind::kIn);
        e->is_not = neg;
        e->children.push_back(std::move(lhs));
        do {
          ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          e->children.push_back(std::move(item));
        } while (MatchOperator(","));
        RETURN_IF_ERROR(ExpectOperator(")"));
        lhs = std::move(e);
        continue;
      } else if (Peek().IsKeyword("between") ||
                 (Peek().IsKeyword("not") && Peek(1).IsKeyword("between"))) {
        bool neg = MatchKeyword("not");
        Advance();  // BETWEEN
        auto e = std::make_unique<Expr>(ExprKind::kBetween);
        e->is_not = neg;
        e->children.push_back(std::move(lhs));
        ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        e->children.push_back(std::move(lo));
        RETURN_IF_ERROR(ExpectKeyword("and"));
        ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        e->children.push_back(std::move(hi));
        lhs = std::move(e);
        continue;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (MatchOperator("+")) {
        op = BinaryOp::kAdd;
      } else if (MatchOperator("-")) {
        op = BinaryOp::kSub;
      } else if (MatchOperator("||")) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (MatchOperator("*")) {
        op = BinaryOp::kMul;
      } else if (MatchOperator("/")) {
        op = BinaryOp::kDiv;
      } else if (MatchOperator("%")) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (MatchOperator("-")) {
      DepthGuard guard(this);
      RETURN_IF_ERROR(CheckDepth());
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return Expr::MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    MatchOperator("+");  // unary plus is a no-op
    return ParsePostfix();
  }

  // Handles the `expr::type` cast suffix (Example 5: '1 week'::interval).
  Result<ExprPtr> ParsePostfix() {
    ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (MatchOperator("::")) {
      ASSIGN_OR_RETURN(std::string type_name,
                       ExpectIdentifier("type name after ::"));
      ASSIGN_OR_RETURN(DataType type, ParseTypeName(type_name));
      e = Expr::MakeCast(std::move(e), type);
    }
    return e;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    if (t.type == TokenType::kInteger) {
      Advance();
      return Expr::MakeLiteral(Value::Int64(t.int_value));
    }
    if (t.type == TokenType::kFloat) {
      Advance();
      return Expr::MakeLiteral(Value::Double(t.float_value));
    }
    if (t.type == TokenType::kString) {
      Advance();
      return Expr::MakeLiteral(Value::String(t.text));
    }
    if (MatchOperator("(")) {
      if (Peek().IsKeyword("select")) {
        return Result<ExprPtr>(
            Error("scalar subqueries are not supported"));
      }
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RETURN_IF_ERROR(ExpectOperator(")"));
      return e;
    }
    if (MatchOperator("*")) {
      return Expr::MakeStar();
    }
    if (t.type != TokenType::kIdentifier) {
      return Result<ExprPtr>(Error("expected expression"));
    }
    // Keyword-led expressions.
    if (t.IsKeyword("null")) {
      Advance();
      return Expr::MakeLiteral(Value::Null());
    }
    if (t.IsKeyword("true")) {
      Advance();
      return Expr::MakeLiteral(Value::Bool(true));
    }
    if (t.IsKeyword("false")) {
      Advance();
      return Expr::MakeLiteral(Value::Bool(false));
    }
    if (t.IsKeyword("interval") && Peek(1).type == TokenType::kString) {
      Advance();
      std::string text = Advance().text;
      auto micros = ParseIntervalMicros(text);
      if (!micros.ok()) {
        return Result<ExprPtr>(Status::ParseError(micros.status().message()));
      }
      return Expr::MakeLiteral(Value::Interval(*micros));
    }
    if (t.IsKeyword("timestamp") && Peek(1).type == TokenType::kString) {
      Advance();
      std::string text = Advance().text;
      auto micros = ParseTimestampMicros(text);
      if (!micros.ok()) {
        return Result<ExprPtr>(Status::ParseError(micros.status().message()));
      }
      return Expr::MakeLiteral(Value::Timestamp(*micros));
    }
    if (t.IsKeyword("cast")) {
      Advance();
      RETURN_IF_ERROR(ExpectOperator("("));
      ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
      RETURN_IF_ERROR(ExpectKeyword("as"));
      ASSIGN_OR_RETURN(std::string type_name, ExpectIdentifier("type name"));
      ASSIGN_OR_RETURN(DataType type, ParseTypeName(type_name));
      // Optional length modifier.
      if (MatchOperator("(")) {
        if (Peek().type != TokenType::kInteger) {
          return Result<ExprPtr>(Error("expected length in type modifier"));
        }
        Advance();
        RETURN_IF_ERROR(ExpectOperator(")"));
      }
      RETURN_IF_ERROR(ExpectOperator(")"));
      return Expr::MakeCast(std::move(operand), type);
    }
    if (t.IsKeyword("case")) {
      Advance();
      auto e = std::make_unique<Expr>(ExprKind::kCase);
      while (MatchKeyword("when")) {
        ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
        RETURN_IF_ERROR(ExpectKeyword("then"));
        ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
        e->children.push_back(std::move(cond));
        e->children.push_back(std::move(then));
      }
      if (e->children.empty()) {
        return Result<ExprPtr>(Error("CASE requires at least one WHEN"));
      }
      if (MatchKeyword("else")) {
        ASSIGN_OR_RETURN(ExprPtr els, ParseExpr());
        e->children.push_back(std::move(els));
        e->case_has_else = true;
      }
      RETURN_IF_ERROR(ExpectKeyword("end"));
      return ExprPtr(std::move(e));
    }

    // Reserved clause keywords cannot start an expression; catching them
    // here turns "SELECT FROM t" into a clear error instead of binding a
    // column named "from".
    if (ReservedWords().count(ToLower(t.text)) != 0 &&
        !Peek(1).IsOperator("(")) {
      return Result<ExprPtr>(Error("expected expression"));
    }

    // Identifier: function call, qualified column, bare column, or t.*.
    std::string first = Advance().text;
    if (Peek().IsOperator("(")) {
      Advance();
      bool distinct = false;
      std::vector<ExprPtr> args;
      if (!Peek().IsOperator(")")) {
        if (MatchKeyword("distinct")) distinct = true;
        do {
          ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          args.push_back(std::move(arg));
        } while (MatchOperator(","));
      }
      RETURN_IF_ERROR(ExpectOperator(")"));
      return Expr::MakeFunctionCall(ToLower(first), std::move(args),
                                    distinct);
    }
    if (MatchOperator(".")) {
      if (MatchOperator("*")) {
        return Expr::MakeStar(first);
      }
      ASSIGN_OR_RETURN(std::string second,
                       ExpectIdentifier("column name after '.'"));
      return Expr::MakeColumnRef(first, second);
    }
    return Expr::MakeColumnRef("", first);
  }

  // One parenthesis/NOT/unary/subquery level costs one depth unit but ~10
  // stack frames through the precedence chain; 250 keeps the worst case
  // under the default 8 MB stack even with ASan's enlarged frames.
  static constexpr int kMaxDepth = 250;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<std::vector<StatementPtr>> ParseSql(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatements();
}

Result<StatementPtr> ParseSingleStatement(const std::string& sql) {
  ASSIGN_OR_RETURN(std::vector<StatementPtr> stmts, ParseSql(sql));
  if (stmts.size() != 1) {
    return Status::ParseError("expected exactly one statement, got " +
                              std::to_string(stmts.size()));
  }
  return std::move(stmts[0]);
}

Result<ExprPtr> ParseExpression(const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

Result<DataType> ParseTypeName(const std::string& name) {
  std::string lower = ToLower(name);
  if (lower == "varchar" || lower == "text" || lower == "string" ||
      lower == "char") {
    return DataType::kString;
  }
  if (lower == "int" || lower == "integer" || lower == "bigint" ||
      lower == "smallint" || lower == "int8" || lower == "int4") {
    return DataType::kInt64;
  }
  if (lower == "double" || lower == "float" || lower == "real" ||
      lower == "float8" || lower == "numeric" || lower == "decimal") {
    return DataType::kDouble;
  }
  if (lower == "boolean" || lower == "bool") return DataType::kBool;
  if (lower == "timestamp" || lower == "timestamptz") {
    return DataType::kTimestamp;
  }
  if (lower == "interval") return DataType::kInterval;
  return Status::ParseError("unknown type name: " + name);
}

}  // namespace streamrel::sql
