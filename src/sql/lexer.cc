#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace streamrel::sql {

bool Token::IsKeyword(const char* kw) const {
  return type == TokenType::kIdentifier && EqualsIgnoreCase(text, kw);
}

bool Token::IsOperator(const char* op) const {
  return type == TokenType::kOperator && text == op;
}

namespace {

bool IsIdentStart(char c) {
  return isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

}  // namespace

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string::npos) {
        return Status::ParseError("unterminated /* comment");
      }
      i = end + 2;
      continue;
    }
    Token tok;
    tok.position = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      // Quoted identifier.
      size_t start = ++i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) return Status::ParseError("unterminated quoted identifier");
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote ''
            text.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) return Status::ParseError("unterminated string literal");
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' &&
          !(i + 1 < n && sql[i + 1] == '.')) {  // not the range op
        is_float = true;
        ++i;
        while (i < n && isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t save = i;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        if (i < n && isdigit(static_cast<unsigned char>(sql[i]))) {
          is_float = true;
          while (i < n && isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        } else {
          i = save;  // 'e' starts an identifier, not an exponent
        }
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators first.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "::" || two == "||") {
      tok.type = TokenType::kOperator;
      tok.text = two;
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "(),.;+-*/%=<>";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace streamrel::sql
