#include "sql/ast.h"

#include "common/time.h"

namespace streamrel::sql {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string qualifier, std::string name) {
  auto e = std::make_unique<Expr>(ExprKind::kColumnRef);
  e->qualifier = std::move(qualifier);
  e->column_name = std::move(name);
  return e;
}

ExprPtr Expr::MakeStar(std::string qualifier) {
  auto e = std::make_unique<Expr>(ExprKind::kStar);
  e->qualifier = std::move(qualifier);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>(ExprKind::kUnary);
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>(ExprKind::kBinary);
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::MakeFunctionCall(std::string name, std::vector<ExprPtr> args,
                               bool distinct) {
  auto e = std::make_unique<Expr>(ExprKind::kFunctionCall);
  e->function_name = std::move(name);
  e->children = std::move(args);
  e->distinct = distinct;
  return e;
}

ExprPtr Expr::MakeCast(ExprPtr operand, DataType type) {
  auto e = std::make_unique<Expr>(ExprKind::kCast);
  e->cast_type = type;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>(kind);
  e->literal = literal;
  e->qualifier = qualifier;
  e->column_name = column_name;
  e->unary_op = unary_op;
  e->binary_op = binary_op;
  e->function_name = function_name;
  e->distinct = distinct;
  e->cast_type = cast_type;
  e->is_not = is_not;
  e->case_has_else = case_has_else;
  e->children.reserve(children.size());
  for (const auto& c : children) e->children.push_back(c->Clone());
  return e;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.type() == DataType::kString) {
        return "'" + literal.ToString() + "'";
      }
      if (literal.type() == DataType::kInterval) {
        return "interval '" + literal.ToString() + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef:
      return qualifier.empty() ? column_name : qualifier + "." + column_name;
    case ExprKind::kStar:
      return qualifier.empty() ? "*" : qualifier + ".*";
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNegate ? "-" : "NOT ") +
             children[0]->ToString();
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpToString(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string s = function_name + "(";
      if (distinct) s += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             DataTypeToString(cast_type) + ")";
    case ExprKind::kCase: {
      std::string s = "CASE";
      size_t pairs = (children.size() - (case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        s += " WHEN " + children[2 * i]->ToString() + " THEN " +
             children[2 * i + 1]->ToString();
      }
      if (case_has_else) s += " ELSE " + children.back()->ToString();
      return s + " END";
    }
    case ExprKind::kIn: {
      std::string s =
          children[0]->ToString() + (is_not ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kBetween:
      return children[0]->ToString() + (is_not ? " NOT" : "") + " BETWEEN " +
             children[1]->ToString() + " AND " + children[2]->ToString();
    case ExprKind::kIsNull:
      return children[0]->ToString() + (is_not ? " IS NOT NULL" : " IS NULL");
  }
  return "?";
}

std::string WindowSpecAst::ToString() const {
  if (is_slices) {
    return "<SLICES " + std::to_string(slices_count) + " WINDOWS>";
  }
  if (unit == WindowUnit::kRows) {
    return "<VISIBLE " + std::to_string(visible) + " ROWS ADVANCE " +
           std::to_string(advance) + " ROWS>";
  }
  return "<VISIBLE '" + FormatIntervalMicros(visible) + "' ADVANCE '" +
         FormatIntervalMicros(advance) + "'>";
}

std::string TableRef::ToString() const {
  std::string s;
  switch (kind) {
    case TableRefKind::kBase:
      s = name;
      if (window.has_value()) s += " " + window->ToString();
      break;
    case TableRefKind::kSubquery:
      s = "(subquery)";
      break;
    case TableRefKind::kJoin:
      s = left->ToString() +
          (join_type == JoinType::kLeft ? " LEFT JOIN " : " JOIN ") +
          right->ToString();
      if (join_condition) s += " ON " + join_condition->ToString();
      break;
  }
  if (!alias.empty()) s += " AS " + alias;
  return s;
}

namespace {

ExprPtr CloneOrNull(const ExprPtr& e) { return e ? e->Clone() : nullptr; }

TableRefPtr CloneTableRef(const TableRef& ref) {
  auto out = std::make_unique<TableRef>(ref.kind);
  out->name = ref.name;
  out->window = ref.window;
  out->alias = ref.alias;
  out->join_type = ref.join_type;
  if (ref.subquery) out->subquery = ref.subquery->CloneSelect();
  if (ref.left) out->left = CloneTableRef(*ref.left);
  if (ref.right) out->right = CloneTableRef(*ref.right);
  out->join_condition = CloneOrNull(ref.join_condition);
  return out;
}

}  // namespace

std::unique_ptr<SelectStmt> SelectStmt::CloneSelect() const {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = distinct;
  for (const auto& item : select_list) {
    out->select_list.push_back({item.expr->Clone(), item.alias});
  }
  for (const auto& ref : from) out->from.push_back(CloneTableRef(*ref));
  out->where = CloneOrNull(where);
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  out->having = CloneOrNull(having);
  for (const auto& o : order_by) {
    out->order_by.push_back({o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  out->offset = offset;
  for (const auto& u : union_all) out->union_all.push_back(u->CloneSelect());
  return out;
}

}  // namespace streamrel::sql
