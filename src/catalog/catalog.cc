#include "catalog/catalog.h"

#include "common/string_util.h"

namespace streamrel::catalog {

storage::BTreeIndex* TableInfo::FindIndexOn(const std::string& column) const {
  for (const auto& index : indexes) {
    if (EqualsIgnoreCase(index->column_name(), column)) return index.get();
  }
  return nullptr;
}

Status Catalog::CheckNameFree(const std::string& name) const {
  std::string key = ToLower(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("a table named '" + name + "' exists");
  }
  if (streams_.count(key)) {
    return Status::AlreadyExists("a stream named '" + name + "' exists");
  }
  if (views_.count(key)) {
    return Status::AlreadyExists("a view named '" + name + "' exists");
  }
  return Status::OK();
}

Status Catalog::CreateTable(TableInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckNameFree(info.name));
  tables_.emplace(ToLower(info.name), std::move(info));
  return Status::OK();
}

Status Catalog::CreateStream(StreamInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckNameFree(info.name));
  streams_.emplace(ToLower(info.name), std::move(info));
  return Status::OK();
}

Status Catalog::CreateView(ViewInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckNameFree(info.name));
  views_.emplace(ToLower(info.name), std::move(info));
  return Status::OK();
}

Status Catalog::CreateChannel(ChannelInfo info) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(info.name);
  if (channels_.count(key)) {
    return Status::AlreadyExists("a channel named '" + info.name +
                                 "' exists");
  }
  channels_.emplace(std::move(key), std::move(info));
  return Status::OK();
}

Status Catalog::CreateIndex(const std::string& index_name,
                            const std::string& table,
                            std::shared_ptr<storage::BTreeIndex> index) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string key = ToLower(index_name);
  if (index_owners_.count(key)) {
    return Status::AlreadyExists("an index named '" + index_name +
                                 "' exists");
  }
  TableInfo* info = FindTableLocked(table);
  if (info == nullptr) {
    return Status::NotFound("table '" + table + "' not found");
  }
  index_owners_.emplace(std::move(key),
                        IndexRegistration{ToLower(table),
                                          index->column_name()});
  info->indexes.push_back(std::move(index));
  return Status::OK();
}

TableInfo* Catalog::FindTableLocked(const std::string& name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

TableInfo* Catalog::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindTableLocked(name);
}
const TableInfo* Catalog::GetTable(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}
StreamInfo* Catalog::GetStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}
const StreamInfo* Catalog::GetStream(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}
ViewInfo* Catalog::GetView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : &it->second;
}
const ViewInfo* Catalog::GetView(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : &it->second;
}
ChannelInfo* Catalog::GetChannel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(ToLower(name));
  return it == channels_.end() ? nullptr : &it->second;
}
const ChannelInfo* Catalog::GetChannel(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(ToLower(name));
  return it == channels_.end() ? nullptr : &it->second;
}

Status Catalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table '" + name + "' not found");
  }
  // Drop this table's index registrations too.
  for (auto idx = index_owners_.begin(); idx != index_owners_.end();) {
    if (idx->second.table == it->first) {
      idx = index_owners_.erase(idx);
    } else {
      ++idx;
    }
  }
  tables_.erase(it);
  return Status::OK();
}

Status Catalog::DropStream(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = streams_.find(ToLower(name));
  if (it == streams_.end()) {
    return Status::NotFound("stream '" + name + "' not found");
  }
  streams_.erase(it);
  return Status::OK();
}

Status Catalog::DropView(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = views_.find(ToLower(name));
  if (it == views_.end()) {
    return Status::NotFound("view '" + name + "' not found");
  }
  views_.erase(it);
  return Status::OK();
}

Status Catalog::DropChannel(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find(ToLower(name));
  if (it == channels_.end()) {
    return Status::NotFound("channel '" + name + "' not found");
  }
  channels_.erase(it);
  return Status::OK();
}

Status Catalog::DropIndex(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_owners_.find(ToLower(name));
  if (it == index_owners_.end()) {
    return Status::NotFound("index '" + name + "' not found");
  }
  TableInfo* table = FindTableLocked(it->second.table);
  if (table != nullptr) {
    for (auto iit = table->indexes.begin(); iit != table->indexes.end();
         ++iit) {
      if (EqualsIgnoreCase((*iit)->column_name(), it->second.column)) {
        table->indexes.erase(iit);
        break;
      }
    }
  }
  index_owners_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, info] : tables_) names.push_back(info.name);
  return names;
}

std::vector<std::string> Catalog::StreamNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(streams_.size());
  for (const auto& [key, info] : streams_) names.push_back(info.name);
  return names;
}

std::vector<const ChannelInfo*> Catalog::Channels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const ChannelInfo*> out;
  out.reserve(channels_.size());
  for (const auto& [key, info] : channels_) out.push_back(&info);
  return out;
}

}  // namespace streamrel::catalog
