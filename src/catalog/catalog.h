#ifndef STREAMREL_CATALOG_CATALOG_H_
#define STREAMREL_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "sql/ast.h"
#include "storage/btree_index.h"
#include "storage/heap_table.h"

namespace streamrel::catalog {

/// A persistent SQL table and its secondary indexes.
struct TableInfo {
  std::string name;
  Schema schema;
  std::shared_ptr<storage::HeapTable> heap;
  std::vector<std::shared_ptr<storage::BTreeIndex>> indexes;

  /// Index over `column`, or nullptr.
  storage::BTreeIndex* FindIndexOn(const std::string& column) const;
};

/// A stream definition. Raw streams have a column list and a CQTIME ordering
/// column (Example 1 in the paper); derived streams carry their defining
/// continuous query (Example 3) and get their schema from binding it.
struct StreamInfo {
  std::string name;
  Schema schema;
  /// Index of the CQTIME column within `schema`.
  size_t cqtime_column = 0;
  /// CQTIME SYSTEM: stamped by the engine at ingest rather than supplied.
  bool cqtime_system = false;
  bool is_derived = false;
  /// Defining query for derived streams (owned).
  std::unique_ptr<sql::SelectStmt> defining_query;
};

/// A (streaming or plain) SQL view: macro-expanded at query time.
struct ViewInfo {
  std::string name;
  std::unique_ptr<sql::SelectStmt> select;
};

/// A channel persists a derived stream into an active table (Example 4).
struct ChannelInfo {
  std::string name;
  std::string from_stream;
  std::string into_table;
  sql::ChannelMode mode = sql::ChannelMode::kAppend;
};

/// The system catalog: name -> object for tables, streams, views, channels,
/// and indexes. Tables, streams, and views share one namespace (they are all
/// legal FROM targets); channels and indexes have their own.
///
/// Map operations serialize on an internal leaf mutex, so concurrent
/// shared-mode readers and the quarantine path's lazy CreateStream (the one
/// create that runs *without* the engine DDL lock held exclusive) are safe.
/// Returned object pointers stay valid across concurrent creates because
/// std::map nodes are stable; erases happen only under the exclusive engine
/// lock, when no shared-mode holder can be mid-lookup.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(TableInfo info);
  Status CreateStream(StreamInfo info);
  Status CreateView(ViewInfo info);
  Status CreateChannel(ChannelInfo info);
  /// Registers `index` under `index_name` and attaches it to `table`.
  Status CreateIndex(const std::string& index_name, const std::string& table,
                     std::shared_ptr<storage::BTreeIndex> index);

  /// nullptr if absent (shared namespace lookups).
  TableInfo* GetTable(const std::string& name);
  const TableInfo* GetTable(const std::string& name) const;
  StreamInfo* GetStream(const std::string& name);
  const StreamInfo* GetStream(const std::string& name) const;
  ViewInfo* GetView(const std::string& name);
  const ViewInfo* GetView(const std::string& name) const;
  ChannelInfo* GetChannel(const std::string& name);
  const ChannelInfo* GetChannel(const std::string& name) const;

  Status DropTable(const std::string& name);
  Status DropStream(const std::string& name);
  Status DropView(const std::string& name);
  Status DropChannel(const std::string& name);
  Status DropIndex(const std::string& name);

  std::vector<std::string> TableNames() const;
  std::vector<std::string> StreamNames() const;
  std::vector<const ChannelInfo*> Channels() const;

 private:
  /// Errors if `name` collides with any table/stream/view. Caller holds mu_.
  Status CheckNameFree(const std::string& name) const;
  /// Lookup without taking mu_ (for callers already holding it).
  TableInfo* FindTableLocked(const std::string& name);

  /// Leaf mutex: held only for map operations, never while acquiring any
  /// other lock.
  mutable std::mutex mu_;
  // Keys are lowercased names.
  std::map<std::string, TableInfo> tables_;
  std::map<std::string, StreamInfo> streams_;
  std::map<std::string, ViewInfo> views_;
  std::map<std::string, ChannelInfo> channels_;
  struct IndexRegistration {
    std::string table;   // lowercased owner table
    std::string column;  // indexed column (as registered)
  };
  /// index name -> owner (the index object lives in TableInfo).
  std::map<std::string, IndexRegistration> index_owners_;
};

}  // namespace streamrel::catalog

#endif  // STREAMREL_CATALOG_CATALOG_H_
