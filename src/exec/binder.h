#ifndef STREAMREL_EXEC_BINDER_H_
#define STREAMREL_EXEC_BINDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "exec/aggregates.h"
#include "exec/expr.h"
#include "sql/ast.h"

namespace streamrel::exec {

/// One aggregate occurrence collected from a query
/// (e.g. `count(*)`, `sum(price)`).
struct AggregateCall {
  std::string function;   // lowercased
  bool star = false;      // count(*)
  bool distinct = false;  // count(DISTINCT x)
  BoundExprPtr argument;  // bound against the pre-aggregation input; may be
                          // null for count(*)
  DataType result_type = DataType::kNull;
  std::string display_name;  // for output column naming
};

/// Binds AST expressions against an input schema, resolving column
/// references, inferring types, folding constants, and (in aggregate mode)
/// extracting aggregate calls.
///
/// Aggregate mode models the SQL two-phase evaluation: the aggregation
/// operator produces rows laid out as [group keys..., aggregate results...],
/// and post-aggregation expressions (select list, HAVING, ORDER BY) are
/// bound against that layout. A sub-expression that syntactically matches a
/// GROUP BY item becomes a reference to the corresponding key slot; an
/// aggregate function becomes a reference to its result slot; any other
/// column reference is an error ("column must appear in GROUP BY").
class ExprBinder {
 public:
  explicit ExprBinder(const Schema& input) : input_(input) {}

  /// Switches to aggregate mode. `group_exprs` are the GROUP BY items
  /// (already alias/ordinal-resolved by the planner); they are bound here
  /// against the input schema. Pass an empty list for implicit aggregation
  /// (e.g. `SELECT count(*) FROM t`).
  Status EnterAggregateMode(const std::vector<const sql::Expr*>& group_exprs);

  bool aggregate_mode() const { return aggregate_mode_; }

  /// Binds a scalar expression against the input schema; aggregate
  /// functions are rejected. Used for WHERE, JOIN ON, and INSERT values.
  Result<BoundExprPtr> BindScalar(const sql::Expr& expr);

  /// Binds a projection/HAVING/ORDER BY expression. In aggregate mode this
  /// applies the group/aggregate slot mapping described above; otherwise it
  /// behaves like BindScalar.
  Result<BoundExprPtr> BindProjection(const sql::Expr& expr);

  /// Group key expressions (bound against input); valid after
  /// EnterAggregateMode.
  const std::vector<BoundExprPtr>& group_exprs() const { return group_exprs_; }
  std::vector<BoundExprPtr> TakeGroupExprs() { return std::move(group_exprs_); }

  /// Aggregate calls collected so far, in slot order.
  const std::vector<AggregateCall>& agg_calls() const { return agg_calls_; }
  std::vector<AggregateCall> TakeAggCalls() { return std::move(agg_calls_); }

  /// Schema of the post-aggregation row: group keys then aggregates.
  Schema PostAggregateSchema() const;

  /// True if `expr` contains any aggregate function call.
  static bool ContainsAggregate(const sql::Expr& expr);

 private:
  Result<BoundExprPtr> BindInternal(const sql::Expr& expr, bool post_agg);
  Result<BoundExprPtr> BindColumnRef(const sql::Expr& expr);
  Result<BoundExprPtr> BindAggregateCall(const sql::Expr& expr);
  /// Fold a constant subtree into a literal when possible.
  static BoundExprPtr MaybeFold(BoundExprPtr expr);

  const Schema& input_;
  bool aggregate_mode_ = false;
  std::vector<std::string> group_texts_;  // ToString of each GROUP BY item
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateCall> agg_calls_;
};

}  // namespace streamrel::exec

#endif  // STREAMREL_EXEC_BINDER_H_
