#ifndef STREAMREL_EXEC_PLANNER_H_
#define STREAMREL_EXEC_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/operators.h"
#include "sql/ast.h"

namespace streamrel::exec {

/// A stream reference discovered during planning. The continuous-query
/// runtime feeds each closing window's rows through `buffer` (owned by the
/// plan) and re-executes the plan.
struct StreamLeaf {
  std::string stream_name;
  sql::WindowSpecAst window;
  BufferScanNode* buffer = nullptr;  // not owned
  Schema stream_schema;
};

/// The executable form of one SELECT statement.
struct PlannedQuery {
  ExecNodePtr root;
  Schema output_schema;
  /// Non-empty iff this is a continuous query. At most one stream leaf is
  /// supported (stream-table joins yes, stream-stream joins no — matching
  /// the paper's examples).
  std::vector<StreamLeaf> stream_leaves;
  /// Base tables the plan scans or index-probes (lowercased). Long-lived
  /// plans (continuous queries) hold raw pointers into the catalog, so the
  /// engine refuses to drop these tables while the CQ runs.
  std::vector<std::string> referenced_tables;

  bool is_continuous() const { return !stream_leaves.empty(); }
};

/// Translates bound SELECT ASTs into operator trees. Performs:
///  - view expansion (macro substitution),
///  - predicate pushdown into scans,
///  - B+Tree index selection for equality/range predicates,
///  - hash-join selection for equi-join conjuncts (nested-loop fallback),
///  - two-phase aggregation binding (keys + mergeable aggregate states),
///  - ORDER BY via visible or hidden sort columns, DISTINCT, LIMIT/OFFSET,
///    UNION ALL.
class Planner {
 public:
  explicit Planner(const catalog::Catalog* catalog) : catalog_(catalog) {}

  Result<PlannedQuery> PlanSelect(const sql::SelectStmt& stmt) const;

 private:
  struct RelInput {
    ExecNodePtr node;
    Schema schema;  // node's schema with FROM-item qualifiers applied
    /// Set while this input is still a bare full scan of one base table
    /// (no pushed predicates, no wrapping): joins may then replace the
    /// scan with index lookups.
    const catalog::TableInfo* plain_base_table = nullptr;
  };

  /// Full select including UNION ALL branches and union-level ORDER BY /
  /// LIMIT; used by PlanSelect and by subquery planning.
  Result<PlannedQuery> PlanSelectInternal(const sql::SelectStmt& stmt,
                                          std::vector<StreamLeaf>* leaves,
                                          std::vector<std::string>* tables)
      const;

  Result<PlannedQuery> PlanSelectNoUnion(const sql::SelectStmt& stmt,
                                         std::vector<StreamLeaf>* leaves,
                                         std::vector<std::string>* tables)
      const;

  Result<RelInput> PlanTableRef(const sql::TableRef& ref,
                                std::vector<StreamLeaf>* leaves,
                                std::vector<std::string>* tables,
                                int view_depth) const;
  Result<RelInput> PlanBaseTable(const catalog::TableInfo& info,
                                 const std::string& qualifier) const;

  /// Applies single-relation conjuncts to `input` (index selection or scan
  /// predicate/filter); consumed conjuncts are removed from `conjuncts`.
  Result<RelInput> ApplyLocalPredicates(
      RelInput input, const catalog::TableInfo* base_table,
      std::vector<const sql::Expr*>* conjuncts) const;

  /// Joins `left` and `right`, consuming applicable conjuncts as hash keys
  /// or residuals.
  Result<RelInput> JoinInputs(RelInput left, RelInput right,
                              sql::JoinType join_type,
                              const sql::Expr* on_condition,
                              std::vector<const sql::Expr*>* conjuncts) const;

  const catalog::Catalog* catalog_;
};

/// Splits an AND tree into conjuncts (appended to `out`).
void SplitConjuncts(const sql::Expr& expr,
                    std::vector<const sql::Expr*>* out);

}  // namespace streamrel::exec

#endif  // STREAMREL_EXEC_PLANNER_H_
