#ifndef STREAMREL_EXEC_EXPR_H_
#define STREAMREL_EXEC_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "sql/ast.h"

namespace streamrel::exec {

/// Per-evaluation ambient state. Continuous queries evaluate once per window
/// close; `window_close_micros` feeds the TruSQL cq_close(*) function.
struct EvalContext {
  bool has_window = false;
  int64_t window_close_micros = 0;
  /// The engine's logical clock (max stream watermark); feeds now().
  int64_t now_micros = 0;
};

enum class BoundExprKind {
  kLiteral,
  kColumn,      // input row slot
  kUnary,
  kBinary,
  kFunction,    // scalar builtin
  kCast,
  kCase,
  kIn,
  kBetween,
  kIsNull,
  kCqClose,     // cq_close(*): the closing window's timestamp
  kNow,         // now() / current_timestamp: the engine's logical clock
};

/// A type-resolved executable expression tree. Built by the binder from an
/// AST expression; evaluated row-at-a-time with SQL three-valued logic.
class BoundExpr {
 public:
  BoundExprKind kind;
  DataType type = DataType::kNull;  // static result type (kNull = unknown)

  Value literal;                    // kLiteral
  size_t column_index = 0;          // kColumn
  sql::UnaryOp unary_op = sql::UnaryOp::kNegate;
  sql::BinaryOp binary_op = sql::BinaryOp::kAdd;
  std::string function_name;        // kFunction (lowercased)
  DataType cast_type = DataType::kNull;
  bool is_not = false;              // kIn / kBetween / kIsNull negation
  bool case_has_else = false;
  std::vector<std::unique_ptr<BoundExpr>> children;

  explicit BoundExpr(BoundExprKind k) : kind(k) {}

  /// Evaluates against `row` (positional) and `ctx`.
  Result<Value> Eval(const Row& row, const EvalContext& ctx) const;

  /// True if any node reads an input column (false => constant-foldable).
  bool ReferencesInput() const;
};

using BoundExprPtr = std::unique_ptr<BoundExpr>;

/// SQL LIKE with '%' and '_' wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Evaluates a WHERE/HAVING/JOIN predicate: NULL and false both reject.
Result<bool> EvalPredicate(const BoundExpr& predicate, const Row& row,
                           const EvalContext& ctx);

/// Returns the static result type of applying `op` to (`lhs`, `rhs`), or an
/// error for incompatible operand types. kNull operands are permissive.
Result<DataType> InferBinaryType(sql::BinaryOp op, DataType lhs, DataType rhs);

/// True if `name` is a recognized scalar builtin; sets `*out_type` from the
/// argument types when deducible.
bool IsScalarFunction(const std::string& name);

/// Static result type for scalar builtin `name` given argument types.
Result<DataType> InferFunctionType(const std::string& name,
                                   const std::vector<DataType>& args);

}  // namespace streamrel::exec

#endif  // STREAMREL_EXEC_EXPR_H_
