#ifndef STREAMREL_EXEC_AGGREGATES_H_
#define STREAMREL_EXEC_AGGREGATES_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace streamrel::exec {

/// Incremental state of one aggregate over one group. States are
/// *mergeable*: the stream runtime computes per-slice partial states once
/// and combines them per window ("paned" evaluation) and across the CQs
/// that share them (the paper's jellybean processing). Every aggregate here
/// therefore implements Update (one input row) and Merge (absorb another
/// partial state).
class AggState {
 public:
  virtual ~AggState() = default;

  /// Folds one input value in. For count(*) the argument is ignored.
  virtual void Update(const Value& arg) = 0;

  /// Absorbs `other` (same concrete type). Used by slice/pane combination.
  virtual Status Merge(const AggState& other) = 0;

  /// Produces the aggregate result for the rows folded so far.
  virtual Value Final() const = 0;

  /// Deep copy (shared slices are merged into per-window accumulators
  /// without destroying the slice partials).
  virtual std::unique_ptr<AggState> Clone() const = 0;
};

using AggStatePtr = std::unique_ptr<AggState>;

/// True if `name` (lowercased) is a supported aggregate:
/// count / sum / avg / min / max / stddev / count(distinct).
bool IsAggregateFunction(const std::string& name);

/// Creates fresh state. `star` marks count(*); `distinct` marks
/// count(DISTINCT x) (only count supports DISTINCT).
Result<AggStatePtr> MakeAggState(const std::string& name, bool star,
                                 bool distinct);

/// Static result type: count -> bigint, avg/stddev -> double, sum/min/max
/// follow the input type.
Result<DataType> InferAggregateType(const std::string& name, bool star,
                                    DataType input);

}  // namespace streamrel::exec

#endif  // STREAMREL_EXEC_AGGREGATES_H_
