#include "exec/planner.h"

#include <unordered_set>

#include "common/string_util.h"
#include "exec/binder.h"

namespace streamrel::exec {

namespace {

constexpr int kMaxViewDepth = 16;

/// True if `expr` binds cleanly as a scalar against `schema`.
bool BindsOn(const sql::Expr& expr, const Schema& schema) {
  ExprBinder binder(schema);
  return binder.BindScalar(expr).ok();
}

/// Combines conjuncts into one AND tree (cloned); nullptr if empty.
sql::ExprPtr CombineConjuncts(const std::vector<const sql::Expr*>& conjuncts) {
  sql::ExprPtr combined;
  for (const sql::Expr* c : conjuncts) {
    combined = combined == nullptr
                   ? c->Clone()
                   : sql::Expr::MakeBinary(sql::BinaryOp::kAnd,
                                           std::move(combined), c->Clone());
  }
  return combined;
}

/// Output column name for a select item: alias > column name > expression
/// text.
std::string OutputName(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == sql::ExprKind::kColumnRef) {
    return item.expr->column_name;
  }
  return item.expr->ToString();
}

}  // namespace

void SplitConjuncts(const sql::Expr& expr,
                    std::vector<const sql::Expr*>* out) {
  if (expr.kind == sql::ExprKind::kBinary &&
      expr.binary_op == sql::BinaryOp::kAnd) {
    SplitConjuncts(*expr.children[0], out);
    SplitConjuncts(*expr.children[1], out);
    return;
  }
  out->push_back(&expr);
}

Result<Planner::RelInput> Planner::PlanBaseTable(
    const catalog::TableInfo& info, const std::string& qualifier) const {
  RelInput input;
  input.schema = info.schema.WithQualifier(qualifier);
  input.node = std::make_unique<SeqScanNode>(info.schema, &info, nullptr);
  input.plain_base_table = &info;
  return input;
}

Result<Planner::RelInput> Planner::PlanTableRef(
    const sql::TableRef& ref, std::vector<StreamLeaf>* leaves,
    std::vector<std::string>* tables, int view_depth) const {
  if (view_depth > kMaxViewDepth) {
    return Status::BindError("view nesting too deep (cycle?)");
  }
  switch (ref.kind) {
    case sql::TableRefKind::kBase: {
      std::string qualifier = ref.alias.empty() ? ref.name : ref.alias;
      if (const catalog::TableInfo* table = catalog_->GetTable(ref.name)) {
        if (ref.window.has_value()) {
          return Status::BindError("window clause on table '" + ref.name +
                                   "' (windows apply to streams)");
        }
        tables->push_back(ToLower(table->name));
        return PlanBaseTable(*table, qualifier);
      }
      if (const catalog::StreamInfo* stream = catalog_->GetStream(ref.name)) {
        if (!ref.window.has_value()) {
          return Status::BindError(
              "stream '" + ref.name +
              "' requires a window clause (e.g. <VISIBLE '5 minutes' "
              "ADVANCE '1 minute'>) when used in FROM");
        }
        RelInput input;
        input.schema = stream->schema.WithQualifier(qualifier);
        auto buffer = std::make_unique<BufferScanNode>(stream->schema,
                                                       nullptr);
        StreamLeaf leaf;
        leaf.stream_name = stream->name;
        leaf.window = *ref.window;
        leaf.buffer = buffer.get();
        leaf.stream_schema = stream->schema;
        leaves->push_back(std::move(leaf));
        input.node = std::move(buffer);
        return input;
      }
      if (const catalog::ViewInfo* view = catalog_->GetView(ref.name)) {
        // Macro-expand the view: plan its defining query. Streaming views
        // (Section 3.2) are instantiated here, on use.
        std::vector<StreamLeaf> view_leaves;
        ASSIGN_OR_RETURN(PlannedQuery sub,
                         PlanSelectInternal(*view->select, &view_leaves,
                                            tables));
        for (StreamLeaf& leaf : view_leaves) leaves->push_back(std::move(leaf));
        RelInput input;
        input.schema = sub.output_schema.WithQualifier(qualifier);
        input.node = std::move(sub.root);
        return input;
      }
      return Status::NotFound("relation '" + ref.name +
                              "' does not exist (no table, stream, or view)");
    }
    case sql::TableRefKind::kSubquery: {
      ASSIGN_OR_RETURN(PlannedQuery sub,
                       PlanSelectInternal(*ref.subquery, leaves, tables));
      RelInput input;
      input.schema = sub.output_schema.WithQualifier(ref.alias);
      input.node = std::move(sub.root);
      return input;
    }
    case sql::TableRefKind::kJoin: {
      ASSIGN_OR_RETURN(RelInput left,
                       PlanTableRef(*ref.left, leaves, tables, view_depth));
      ASSIGN_OR_RETURN(RelInput right,
                       PlanTableRef(*ref.right, leaves, tables, view_depth));
      // ON conjuncts are always consumed by the join itself (critical for
      // LEFT joins, where evaluating them above the join would discard the
      // null-padded rows).
      std::vector<const sql::Expr*> no_where_conjuncts;
      ASSIGN_OR_RETURN(RelInput joined,
                       JoinInputs(std::move(left), std::move(right),
                                  ref.join_type, ref.join_condition.get(),
                                  &no_where_conjuncts));
      if (!ref.alias.empty()) {
        joined.schema = joined.schema.WithQualifier(ref.alias);
      }
      return joined;
    }
  }
  return Status::Internal("unreachable table-ref kind");
}

Result<Planner::RelInput> Planner::ApplyLocalPredicates(
    RelInput input, const catalog::TableInfo* base_table,
    std::vector<const sql::Expr*>* conjuncts) const {
  // Collect the conjuncts that bind against this input alone.
  std::vector<const sql::Expr*> local;
  for (auto it = conjuncts->begin(); it != conjuncts->end();) {
    if (BindsOn(**it, input.schema)) {
      local.push_back(*it);
      it = conjuncts->erase(it);
    } else {
      ++it;
    }
  }
  if (local.empty()) return input;

  ExprBinder binder(input.schema);

  if (base_table != nullptr) {
    // Index selection: find bounds of the form col OP literal over an
    // indexed column. The first indexed column with usable bounds wins.
    std::optional<Value> lo, hi;
    bool lo_inclusive = true, hi_inclusive = true;
    const storage::BTreeIndex* chosen = nullptr;
    std::vector<const sql::Expr*> residual_asts;
    for (const sql::Expr* c : local) {
      bool consumed = false;
      if (c->kind == sql::ExprKind::kBinary) {
        auto try_bound = [&](const sql::Expr& col_side,
                             const sql::Expr& lit_side,
                             sql::BinaryOp op) -> Result<bool> {
          if (col_side.kind != sql::ExprKind::kColumnRef) return false;
          ExprBinder lit_binder(input.schema);
          ASSIGN_OR_RETURN(BoundExprPtr lit_bound,
                           lit_binder.BindScalar(lit_side));
          if (lit_bound->kind != BoundExprKind::kLiteral) return false;
          const storage::BTreeIndex* index =
              base_table->FindIndexOn(col_side.column_name);
          if (index == nullptr) return false;
          if (chosen != nullptr && chosen != index) return false;
          const Value& v = lit_bound->literal;
          switch (op) {
            case sql::BinaryOp::kEq:
              lo = v;
              hi = v;
              lo_inclusive = hi_inclusive = true;
              break;
            case sql::BinaryOp::kLt:
              hi = v;
              hi_inclusive = false;
              break;
            case sql::BinaryOp::kLe:
              hi = v;
              hi_inclusive = true;
              break;
            case sql::BinaryOp::kGt:
              lo = v;
              lo_inclusive = false;
              break;
            case sql::BinaryOp::kGe:
              lo = v;
              lo_inclusive = true;
              break;
            default:
              return false;
          }
          chosen = index;
          return true;
        };
        auto flip = [](sql::BinaryOp op) {
          switch (op) {
            case sql::BinaryOp::kLt:
              return sql::BinaryOp::kGt;
            case sql::BinaryOp::kLe:
              return sql::BinaryOp::kGe;
            case sql::BinaryOp::kGt:
              return sql::BinaryOp::kLt;
            case sql::BinaryOp::kGe:
              return sql::BinaryOp::kLe;
            default:
              return op;
          }
        };
        auto direct = try_bound(*c->children[0], *c->children[1],
                                c->binary_op);
        if (direct.ok() && *direct) {
          consumed = true;
        } else {
          auto flipped = try_bound(*c->children[1], *c->children[0],
                                   flip(c->binary_op));
          if (flipped.ok() && *flipped) consumed = true;
        }
      }
      if (!consumed) residual_asts.push_back(c);
    }
    if (chosen != nullptr) {
      BoundExprPtr residual;
      if (!residual_asts.empty()) {
        ASSIGN_OR_RETURN(residual,
                         binder.BindScalar(*CombineConjuncts(residual_asts)));
      }
      RelInput out;
      out.schema = input.schema;
      out.node = std::make_unique<IndexScanNode>(
          base_table->schema, base_table, chosen, lo, lo_inclusive, hi,
          hi_inclusive, std::move(residual));
      return out;
    }
    // No index: push the combined predicate into the sequential scan.
    ASSIGN_OR_RETURN(BoundExprPtr bound,
                     binder.BindScalar(*CombineConjuncts(local)));
    RelInput out;
    out.schema = input.schema;
    out.node = std::make_unique<SeqScanNode>(base_table->schema, base_table,
                                             std::move(bound));
    return out;
  }

  ASSIGN_OR_RETURN(BoundExprPtr bound,
                   binder.BindScalar(*CombineConjuncts(local)));
  input.node =
      std::make_unique<FilterNode>(std::move(input.node), std::move(bound));
  input.plain_base_table = nullptr;
  return input;
}

Result<Planner::RelInput> Planner::JoinInputs(
    RelInput left, RelInput right, sql::JoinType join_type,
    const sql::Expr* on_condition,
    std::vector<const sql::Expr*>* conjuncts) const {
  Schema combined = Schema::Concat(left.schema, right.schema);
  std::vector<const sql::Expr*> candidates;
  if (on_condition != nullptr) SplitConjuncts(*on_condition, &candidates);

  // Conjuncts from WHERE that bind on the combined schema (but not on
  // either side alone — those were already pushed down) participate in this
  // join. For LEFT joins WHERE conjuncts must stay above the join to keep
  // null-extension semantics, so only ON conjuncts apply.
  if (join_type != sql::JoinType::kLeft) {
    for (auto it = conjuncts->begin(); it != conjuncts->end();) {
      if (BindsOn(**it, combined)) {
        candidates.push_back(*it);
        it = conjuncts->erase(it);
      } else {
        ++it;
      }
    }
  }

  // Partition candidates into equi-key pairs (keeping their ASTs, so a
  // pair can be demoted to a residual later) and residual conditions.
  struct EquiPair {
    const sql::Expr* ast;
    BoundExprPtr left_expr;   // bound against left.schema
    BoundExprPtr right_expr;  // bound against right.schema
  };
  std::vector<EquiPair> equi;
  std::vector<const sql::Expr*> residual_asts;
  for (const sql::Expr* c : candidates) {
    bool is_key = false;
    if (c->kind == sql::ExprKind::kBinary &&
        c->binary_op == sql::BinaryOp::kEq) {
      const sql::Expr& a = *c->children[0];
      const sql::Expr& b = *c->children[1];
      ExprBinder lb(left.schema), rb(right.schema);
      auto a_on_left = lb.BindScalar(a);
      auto b_on_right = rb.BindScalar(b);
      if (a_on_left.ok() && b_on_right.ok()) {
        equi.push_back(
            EquiPair{c, std::move(*a_on_left), std::move(*b_on_right)});
        is_key = true;
      } else {
        ExprBinder lb2(left.schema), rb2(right.schema);
        auto b_on_left = lb2.BindScalar(b);
        auto a_on_right = rb2.BindScalar(a);
        if (b_on_left.ok() && a_on_right.ok()) {
          equi.push_back(
              EquiPair{c, std::move(*b_on_left), std::move(*a_on_right)});
          is_key = true;
        }
      }
    }
    if (!is_key) residual_asts.push_back(c);
  }

  RelInput out;
  out.schema = std::move(combined);
  Schema node_schema = Schema::Concat(left.node->schema(),
                                      right.node->schema());

  // Index nested-loop join: when the right side is a bare base-table scan
  // and some equi key is a plain indexed column, probe the index per left
  // row instead of hashing the whole table. This is what keeps the
  // paper's stream-vs-active-table joins cheap as history grows.
  if (right.plain_base_table != nullptr && !equi.empty()) {
    for (size_t i = 0; i < equi.size(); ++i) {
      if (equi[i].right_expr->kind != BoundExprKind::kColumn) continue;
      const std::string& column =
          right.plain_base_table->schema
              .column(equi[i].right_expr->column_index)
              .name;
      const storage::BTreeIndex* index =
          right.plain_base_table->FindIndexOn(column);
      if (index == nullptr) continue;
      // Remaining equi pairs join as residuals over the combined row.
      for (size_t j = 0; j < equi.size(); ++j) {
        if (j != i) residual_asts.push_back(equi[j].ast);
      }
      BoundExprPtr residual;
      if (!residual_asts.empty()) {
        ExprBinder binder(out.schema);
        ASSIGN_OR_RETURN(residual,
                         binder.BindScalar(*CombineConjuncts(residual_asts)));
      }
      out.node = std::make_unique<IndexLookupJoinNode>(
          std::move(node_schema), std::move(left.node),
          right.plain_base_table, index, std::move(equi[i].left_expr),
          std::move(residual), join_type);
      return out;
    }
  }

  BoundExprPtr residual;
  if (!residual_asts.empty()) {
    ExprBinder binder(out.schema);
    ASSIGN_OR_RETURN(residual,
                     binder.BindScalar(*CombineConjuncts(residual_asts)));
  }
  if (!equi.empty()) {
    std::vector<BoundExprPtr> left_keys, right_keys;
    for (EquiPair& pair : equi) {
      left_keys.push_back(std::move(pair.left_expr));
      right_keys.push_back(std::move(pair.right_expr));
    }
    out.node = std::make_unique<HashJoinNode>(
        std::move(node_schema), std::move(left.node), std::move(right.node),
        std::move(left_keys), std::move(right_keys), std::move(residual),
        join_type);
  } else {
    out.node = std::make_unique<NestedLoopJoinNode>(
        std::move(node_schema), std::move(left.node), std::move(right.node),
        std::move(residual), join_type);
  }
  return out;
}

Result<PlannedQuery> Planner::PlanSelectNoUnion(
    const sql::SelectStmt& stmt, std::vector<StreamLeaf>* leaves,
    std::vector<std::string>* tables) const {
  if (stmt.select_list.empty()) {
    return Status::BindError("empty select list");
  }

  // --- FROM ---------------------------------------------------------------
  std::vector<RelInput> inputs;
  for (const auto& ref : stmt.from) {
    ASSIGN_OR_RETURN(RelInput input, PlanTableRef(*ref, leaves, tables, 0));
    inputs.push_back(std::move(input));
  }

  std::vector<const sql::Expr*> conjuncts;
  if (stmt.where != nullptr) SplitConjuncts(*stmt.where, &conjuncts);

  RelInput current;
  if (inputs.empty()) {
    // FROM-less SELECT (e.g. SELECT 1+1): a single empty row.
    auto batch = std::make_shared<std::vector<Row>>();
    batch->push_back(Row{});
    current.node = std::make_unique<BufferScanNode>(Schema(), batch);
    current.schema = Schema();
  } else {
    // Push single-relation predicates into each input (index selection for
    // base tables happens here). We must know which inputs are base tables:
    // re-resolve by node type via dynamic_cast-free bookkeeping — instead,
    // consult the catalog again from the FROM ast.
    for (size_t i = 0; i < inputs.size(); ++i) {
      const catalog::TableInfo* base = nullptr;
      if (stmt.from[i]->kind == sql::TableRefKind::kBase) {
        base = catalog_->GetTable(stmt.from[i]->name);
      }
      ASSIGN_OR_RETURN(inputs[i], ApplyLocalPredicates(std::move(inputs[i]),
                                                       base, &conjuncts));
    }
    current = std::move(inputs[0]);
    for (size_t i = 1; i < inputs.size(); ++i) {
      ASSIGN_OR_RETURN(current,
                       JoinInputs(std::move(current), std::move(inputs[i]),
                                  sql::JoinType::kInner, nullptr, &conjuncts));
    }
  }

  // Any remaining conjuncts apply above the joins.
  if (!conjuncts.empty()) {
    ExprBinder binder(current.schema);
    auto bound = binder.BindScalar(*CombineConjuncts(conjuncts));
    if (!bound.ok()) return bound.status();
    current.node = std::make_unique<FilterNode>(std::move(current.node),
                                                std::move(*bound));
  }

  // --- Select list: expand stars ------------------------------------------
  struct EffectiveItem {
    sql::ExprPtr owned;        // for synthesized column refs
    const sql::Expr* expr;     // points into stmt or owned
    std::string name;
  };
  std::vector<EffectiveItem> items;
  for (const auto& item : stmt.select_list) {
    if (item.expr->kind == sql::ExprKind::kStar) {
      const std::string& qual = item.expr->qualifier;
      bool found = false;
      for (const Column& col : current.schema.columns()) {
        if (!qual.empty() && !EqualsIgnoreCase(col.qualifier, qual)) continue;
        EffectiveItem out;
        out.owned = sql::Expr::MakeColumnRef(col.qualifier, col.name);
        out.expr = out.owned.get();
        out.name = col.name;
        items.push_back(std::move(out));
        found = true;
      }
      if (!found) {
        return Status::BindError("no columns match " + item.expr->ToString());
      }
      continue;
    }
    EffectiveItem out;
    out.expr = item.expr.get();
    out.name = OutputName(item);
    items.push_back(std::move(out));
  }

  // --- Aggregation decision -------------------------------------------------
  bool has_aggregates = !stmt.group_by.empty();
  for (const auto& item : items) {
    if (ExprBinder::ContainsAggregate(*item.expr)) has_aggregates = true;
  }
  if (stmt.having != nullptr) has_aggregates = true;

  ExprBinder binder(current.schema);
  std::vector<sql::ExprPtr> owned_group_exprs;  // alias/ordinal-resolved
  if (has_aggregates) {
    std::vector<const sql::Expr*> group_asts;
    for (const auto& g : stmt.group_by) {
      const sql::Expr* resolved = g.get();
      // Ordinal: GROUP BY 1.
      if (g->kind == sql::ExprKind::kLiteral &&
          g->literal.type() == DataType::kInt64) {
        int64_t ordinal = g->literal.AsInt64();
        if (ordinal < 1 || ordinal > static_cast<int64_t>(items.size())) {
          return Status::BindError("GROUP BY ordinal out of range");
        }
        resolved = items[static_cast<size_t>(ordinal - 1)].expr;
      } else if (g->kind == sql::ExprKind::kColumnRef &&
                 g->qualifier.empty() && !BindsOn(*g, current.schema)) {
        // Alias: GROUP BY url_count where url_count is a select alias.
        for (const auto& item : items) {
          if (EqualsIgnoreCase(item.name, g->column_name)) {
            resolved = item.expr;
            break;
          }
        }
      }
      group_asts.push_back(resolved);
    }
    RETURN_IF_ERROR(binder.EnterAggregateMode(group_asts));
  }

  // --- Bind projection and HAVING -------------------------------------------
  std::vector<BoundExprPtr> projections;
  std::vector<Column> output_columns;
  for (const auto& item : items) {
    ASSIGN_OR_RETURN(BoundExprPtr bound, binder.BindProjection(*item.expr));
    output_columns.emplace_back(item.name, bound->type);
    projections.push_back(std::move(bound));
  }
  BoundExprPtr having_bound;
  if (stmt.having != nullptr) {
    ASSIGN_OR_RETURN(having_bound, binder.BindProjection(*stmt.having));
  }

  // --- ORDER BY resolution ---------------------------------------------------
  // Each key resolves to (a) an output ordinal, (b) an output column name or
  // alias, (c) a select item with identical text, or (d) a hidden extra
  // projection column bound in the same context as the select items.
  struct ResolvedOrderKey {
    size_t column = 0;  // into the (possibly extended) projection
    bool ascending = true;
  };
  std::vector<ResolvedOrderKey> order_keys;
  std::vector<BoundExprPtr> hidden;  // appended to projections
  for (const auto& ob : stmt.order_by) {
    ResolvedOrderKey key;
    key.ascending = ob.ascending;
    bool resolved = false;
    if (ob.expr->kind == sql::ExprKind::kLiteral &&
        ob.expr->literal.type() == DataType::kInt64) {
      int64_t ordinal = ob.expr->literal.AsInt64();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(items.size())) {
        return Status::BindError("ORDER BY ordinal out of range");
      }
      key.column = static_cast<size_t>(ordinal - 1);
      resolved = true;
    }
    if (!resolved && ob.expr->kind == sql::ExprKind::kColumnRef &&
        ob.expr->qualifier.empty()) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (EqualsIgnoreCase(items[i].name, ob.expr->column_name)) {
          key.column = i;
          resolved = true;
          break;
        }
      }
    }
    if (!resolved) {
      std::string text = ob.expr->ToString();
      for (size_t i = 0; i < items.size(); ++i) {
        if (items[i].expr->ToString() == text) {
          key.column = i;
          resolved = true;
          break;
        }
      }
    }
    if (!resolved) {
      if (stmt.distinct) {
        return Status::BindError(
            "ORDER BY expression must appear in the select list when "
            "DISTINCT is used");
      }
      ASSIGN_OR_RETURN(BoundExprPtr bound, binder.BindProjection(*ob.expr));
      key.column = projections.size() + hidden.size();
      hidden.push_back(std::move(bound));
      resolved = true;
    }
    order_keys.push_back(key);
  }

  // --- Assemble the pipeline -------------------------------------------------
  ExecNodePtr node = std::move(current.node);

  if (has_aggregates) {
    Schema agg_schema = binder.PostAggregateSchema();
    node = std::make_unique<HashAggregateNode>(
        std::move(agg_schema), std::move(node), binder.TakeGroupExprs(),
        binder.TakeAggCalls());
    if (having_bound != nullptr) {
      node = std::make_unique<FilterNode>(std::move(node),
                                          std::move(having_bound));
    }
  }

  // Projection (visible + hidden sort columns).
  std::vector<Column> projected_columns = output_columns;
  for (const auto& h : hidden) {
    projected_columns.emplace_back("$sort", h->type);
  }
  std::vector<BoundExprPtr> all_exprs = std::move(projections);
  for (auto& h : hidden) all_exprs.push_back(std::move(h));
  bool has_hidden = !hidden.empty();
  node = std::make_unique<ProjectNode>(Schema(projected_columns),
                                       std::move(node),
                                       std::move(all_exprs));

  if (stmt.distinct) {
    node = std::make_unique<DistinctNode>(std::move(node));
  }

  if (!order_keys.empty()) {
    std::vector<SortKey> keys;
    for (const ResolvedOrderKey& k : order_keys) {
      auto ref = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
      ref->column_index = k.column;
      ref->type = projected_columns[k.column].type;
      keys.push_back(SortKey{std::move(ref), k.ascending});
    }
    node = std::make_unique<SortNode>(std::move(node), std::move(keys));
  }

  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    node = std::make_unique<LimitNode>(std::move(node),
                                       stmt.limit.value_or(-1),
                                       stmt.offset.value_or(0));
  }

  if (has_hidden) {
    // Strip the hidden sort columns with a final narrow projection.
    std::vector<BoundExprPtr> strip;
    for (size_t i = 0; i < output_columns.size(); ++i) {
      auto ref = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
      ref->column_index = i;
      ref->type = output_columns[i].type;
      strip.push_back(std::move(ref));
    }
    node = std::make_unique<ProjectNode>(Schema(output_columns),
                                         std::move(node), std::move(strip));
  }

  PlannedQuery out;
  out.root = std::move(node);
  out.output_schema = Schema(std::move(output_columns));
  return out;
}

Result<PlannedQuery> Planner::PlanSelect(const sql::SelectStmt& stmt) const {
  std::vector<StreamLeaf> leaves;
  std::vector<std::string> tables;
  ASSIGN_OR_RETURN(PlannedQuery base,
                   PlanSelectInternal(stmt, &leaves, &tables));
  if (leaves.size() > 1) {
    return Status::NotImplemented(
        "queries over more than one stream (stream-stream joins) are not "
        "supported; join the stream with an active table instead");
  }
  base.stream_leaves = std::move(leaves);
  base.referenced_tables = std::move(tables);
  return base;
}

Result<PlannedQuery> Planner::PlanSelectInternal(
    const sql::SelectStmt& stmt, std::vector<StreamLeaf>* out_leaves,
    std::vector<std::string>* out_tables) const {
  std::vector<StreamLeaf>& leaves = *out_leaves;
  std::vector<std::string>& tables = *out_tables;
  PlannedQuery base;
  if (!stmt.union_all.empty()) {
    // ORDER BY / LIMIT attach to the whole union, not the first branch:
    // plan the first branch without them, stack the union, then sort and
    // limit on top.
    std::unique_ptr<sql::SelectStmt> first = stmt.CloneSelect();
    first->union_all.clear();
    first->order_by.clear();
    first->limit.reset();
    first->offset.reset();
    ASSIGN_OR_RETURN(base, PlanSelectNoUnion(*first, &leaves, &tables));

    std::vector<ExecNodePtr> children;
    Schema schema = base.output_schema;
    children.push_back(std::move(base.root));
    for (const auto& branch : stmt.union_all) {
      ASSIGN_OR_RETURN(PlannedQuery sub,
                       PlanSelectNoUnion(*branch, &leaves, &tables));
      if (sub.output_schema.num_columns() != schema.num_columns()) {
        return Status::BindError(
            "UNION ALL branches must have the same number of columns");
      }
      children.push_back(std::move(sub.root));
    }
    base.root = std::make_unique<UnionAllNode>(schema, std::move(children));
    base.output_schema = schema;

    // Union-level ORDER BY may reference output columns or ordinals only.
    if (!stmt.order_by.empty()) {
      std::vector<SortKey> keys;
      for (const auto& ob : stmt.order_by) {
        size_t column = 0;
        bool resolved = false;
        if (ob.expr->kind == sql::ExprKind::kLiteral &&
            ob.expr->literal.type() == DataType::kInt64) {
          int64_t ordinal = ob.expr->literal.AsInt64();
          if (ordinal < 1 ||
              ordinal > static_cast<int64_t>(schema.num_columns())) {
            return Status::BindError("ORDER BY ordinal out of range");
          }
          column = static_cast<size_t>(ordinal - 1);
          resolved = true;
        } else if (ob.expr->kind == sql::ExprKind::kColumnRef &&
                   ob.expr->qualifier.empty()) {
          auto index = schema.IndexOf(ob.expr->column_name);
          if (index.has_value()) {
            column = *index;
            resolved = true;
          }
        }
        if (!resolved) {
          return Status::BindError(
              "ORDER BY over UNION ALL must reference an output column or "
              "ordinal");
        }
        auto ref = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
        ref->column_index = column;
        ref->type = schema.column(column).type;
        keys.push_back(SortKey{std::move(ref), ob.ascending});
      }
      base.root =
          std::make_unique<SortNode>(std::move(base.root), std::move(keys));
    }
    if (stmt.limit.has_value() || stmt.offset.has_value()) {
      base.root = std::make_unique<LimitNode>(std::move(base.root),
                                              stmt.limit.value_or(-1),
                                              stmt.offset.value_or(0));
    }
  } else {
    ASSIGN_OR_RETURN(base, PlanSelectNoUnion(stmt, &leaves, &tables));
  }
  return base;
}

}  // namespace streamrel::exec
