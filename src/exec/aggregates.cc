#include "exec/aggregates.h"

#include <cmath>

namespace streamrel::exec {

namespace {

class CountState : public AggState {
 public:
  explicit CountState(bool star) : star_(star) {}

  void Update(const Value& arg) override {
    if (star_ || !arg.is_null()) ++count_;
  }
  Status Merge(const AggState& other) override {
    count_ += static_cast<const CountState&>(other).count_;
    return Status::OK();
  }
  Value Final() const override { return Value::Int64(count_); }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<CountState>(star_);
    copy->count_ = count_;
    return copy;
  }

 private:
  bool star_;
  int64_t count_ = 0;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

class CountDistinctState : public AggState {
 public:
  void Update(const Value& arg) override {
    if (!arg.is_null()) seen_.insert(arg);
  }
  Status Merge(const AggState& other) override {
    const auto& o = static_cast<const CountDistinctState&>(other);
    seen_.insert(o.seen_.begin(), o.seen_.end());
    return Status::OK();
  }
  Value Final() const override {
    return Value::Int64(static_cast<int64_t>(seen_.size()));
  }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<CountDistinctState>();
    copy->seen_ = seen_;
    return copy;
  }

 private:
  std::unordered_set<Value, ValueHasher> seen_;
};

class SumState : public AggState {
 public:
  void Update(const Value& arg) override {
    if (arg.is_null()) return;
    if (!has_value_) {
      sum_ = arg;
      has_value_ = true;
      return;
    }
    auto r = ValueAdd(sum_, arg);
    if (r.ok()) sum_ = *r;
  }
  Status Merge(const AggState& other) override {
    const auto& o = static_cast<const SumState&>(other);
    if (o.has_value_) Update(o.sum_);
    return Status::OK();
  }
  Value Final() const override { return has_value_ ? sum_ : Value::Null(); }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<SumState>();
    copy->sum_ = sum_;
    copy->has_value_ = has_value_;
    return copy;
  }

 private:
  Value sum_;
  bool has_value_ = false;
};

class AvgState : public AggState {
 public:
  void Update(const Value& arg) override {
    if (arg.is_null()) return;
    sum_ += arg.AsDouble();
    ++count_;
  }
  Status Merge(const AggState& other) override {
    const auto& o = static_cast<const AvgState&>(other);
    sum_ += o.sum_;
    count_ += o.count_;
    return Status::OK();
  }
  Value Final() const override {
    if (count_ == 0) return Value::Null();
    return Value::Double(sum_ / static_cast<double>(count_));
  }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<AvgState>();
    copy->sum_ = sum_;
    copy->count_ = count_;
    return copy;
  }

 private:
  double sum_ = 0;
  int64_t count_ = 0;
};

class MinMaxState : public AggState {
 public:
  explicit MinMaxState(bool is_min) : is_min_(is_min) {}

  void Update(const Value& arg) override {
    if (arg.is_null()) return;
    if (best_.is_null() || (is_min_ ? arg < best_ : best_ < arg)) {
      best_ = arg;
    }
  }
  Status Merge(const AggState& other) override {
    Update(static_cast<const MinMaxState&>(other).best_);
    return Status::OK();
  }
  Value Final() const override { return best_; }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<MinMaxState>(is_min_);
    copy->best_ = best_;
    return copy;
  }

 private:
  bool is_min_;
  Value best_;
};

/// Sample standard deviation tracked as (n, sum, sum of squares) so that
/// slice partials merge exactly.
class StddevState : public AggState {
 public:
  void Update(const Value& arg) override {
    if (arg.is_null()) return;
    double x = arg.AsDouble();
    ++n_;
    sum_ += x;
    sumsq_ += x * x;
  }
  Status Merge(const AggState& other) override {
    const auto& o = static_cast<const StddevState&>(other);
    n_ += o.n_;
    sum_ += o.sum_;
    sumsq_ += o.sumsq_;
    return Status::OK();
  }
  Value Final() const override {
    if (n_ < 2) return Value::Null();
    double mean = sum_ / static_cast<double>(n_);
    double var =
        (sumsq_ - static_cast<double>(n_) * mean * mean) /
        static_cast<double>(n_ - 1);
    return Value::Double(std::sqrt(var < 0 ? 0 : var));
  }
  AggStatePtr Clone() const override {
    auto copy = std::make_unique<StddevState>();
    copy->n_ = n_;
    copy->sum_ = sum_;
    copy->sumsq_ = sumsq_;
    return copy;
  }

 private:
  int64_t n_ = 0;
  double sum_ = 0;
  double sumsq_ = 0;
};

}  // namespace

bool IsAggregateFunction(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" ||
         name == "min" || name == "max" || name == "stddev";
}

Result<AggStatePtr> MakeAggState(const std::string& name, bool star,
                                 bool distinct) {
  if (distinct) {
    if (name != "count") {
      return Status::NotImplemented("DISTINCT is only supported for count()");
    }
    return AggStatePtr(std::make_unique<CountDistinctState>());
  }
  if (name == "count") return AggStatePtr(std::make_unique<CountState>(star));
  if (star) {
    return Status::BindError(name + "(*) is not valid; only count(*)");
  }
  if (name == "sum") return AggStatePtr(std::make_unique<SumState>());
  if (name == "avg") return AggStatePtr(std::make_unique<AvgState>());
  if (name == "min") return AggStatePtr(std::make_unique<MinMaxState>(true));
  if (name == "max") return AggStatePtr(std::make_unique<MinMaxState>(false));
  if (name == "stddev") return AggStatePtr(std::make_unique<StddevState>());
  return Status::BindError("unknown aggregate: " + name);
}

Result<DataType> InferAggregateType(const std::string& name, bool star,
                                    DataType input) {
  if (name == "count") return DataType::kInt64;
  if (star) return Status::BindError("only count(*) takes '*'");
  if (name == "avg" || name == "stddev") return DataType::kDouble;
  if (name == "sum" || name == "min" || name == "max") return input;
  return Status::BindError("unknown aggregate: " + name);
}

}  // namespace streamrel::exec
