#include "exec/operators.h"

#include <algorithm>
#include <unordered_set>

namespace streamrel::exec {

void ExecNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(name());
  out->append("\n");
}

std::string ExplainPlan(const ExecNode& root) {
  std::string out;
  root.Explain(0, &out);
  return out;
}

size_t HashValues(const std::vector<Value>& values) {
  size_t h = 0x345678;
  for (const Value& v : values) {
    h = h * 1000003 ^ v.Hash();
  }
  return h;
}

bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].Compare(b[i]) != 0) return false;
  }
  return true;
}

Result<std::vector<Row>> CollectRows(ExecNode* root, ExecContext* ctx) {
  RETURN_IF_ERROR(root->Open(ctx));
  std::vector<Row> rows;
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, root->Next(&row));
    if (!has) break;
    rows.push_back(row);
  }
  root->Close();
  return rows;
}

// --- BufferScanNode ---------------------------------------------------------

BufferScanNode::BufferScanNode(Schema schema,
                               std::shared_ptr<const std::vector<Row>> batch)
    : ExecNode(std::move(schema)), batch_(std::move(batch)) {}

void BufferScanNode::SetBatch(std::shared_ptr<const std::vector<Row>> batch) {
  batch_ = std::move(batch);
}

Status BufferScanNode::Open(ExecContext*) {
  pos_ = 0;
  return Status::OK();
}

Result<bool> BufferScanNode::Next(Row* row) {
  if (batch_ == nullptr || pos_ >= batch_->size()) return false;
  *row = (*batch_)[pos_++];
  return true;
}

// --- SeqScanNode ------------------------------------------------------------

SeqScanNode::SeqScanNode(Schema schema, const catalog::TableInfo* table,
                         BoundExprPtr predicate)
    : ExecNode(std::move(schema)),
      table_(table),
      predicate_(std::move(predicate)) {}

Status SeqScanNode::Open(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  Status inner = Status::OK();
  Status scan = table_->heap->Scan(
      *ctx->txns, ctx->snapshot, ctx->reader,
      [&](storage::RowId, const Row& row) {
        if (predicate_ != nullptr) {
          auto keep = EvalPredicate(*predicate_, row, ctx->eval);
          if (!keep.ok()) {
            inner = keep.status();
            return false;
          }
          if (!*keep) return true;
        }
        rows_.push_back(row);
        return true;
      });
  RETURN_IF_ERROR(inner);
  return scan;
}

Result<bool> SeqScanNode::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  return true;
}

void SeqScanNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("SeqScan(");
  out->append(table_->name);
  if (predicate_ != nullptr) out->append(", filtered");
  out->append(")\n");
}

// --- IndexScanNode ----------------------------------------------------------

IndexScanNode::IndexScanNode(Schema schema, const catalog::TableInfo* table,
                             const storage::BTreeIndex* index,
                             std::optional<Value> lo, bool lo_inclusive,
                             std::optional<Value> hi, bool hi_inclusive,
                             BoundExprPtr residual)
    : ExecNode(std::move(schema)),
      table_(table),
      index_(index),
      lo_(std::move(lo)),
      hi_(std::move(hi)),
      lo_inclusive_(lo_inclusive),
      hi_inclusive_(hi_inclusive),
      residual_(std::move(residual)) {}

Status IndexScanNode::Open(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  std::vector<storage::RowId> ids;
  index_->ScanRange(lo_, lo_inclusive_, hi_, hi_inclusive_,
                    [&](const Value&, storage::RowId id) {
                      ids.push_back(id);
                      return true;
                    });
  for (storage::RowId id : ids) {
    ASSIGN_OR_RETURN(auto meta, table_->heap->GetRowMeta(id));
    if (!ctx->txns->IsVisible(meta.xmin, meta.xmax, ctx->snapshot,
                              ctx->reader)) {
      continue;
    }
    ASSIGN_OR_RETURN(Row row, table_->heap->GetRow(id));
    if (residual_ != nullptr) {
      ASSIGN_OR_RETURN(bool keep, EvalPredicate(*residual_, row, ctx->eval));
      if (!keep) continue;
    }
    rows_.push_back(std::move(row));
  }
  return Status::OK();
}

Result<bool> IndexScanNode::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  return true;
}

void IndexScanNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("IndexScan(");
  out->append(table_->name);
  out->append(".");
  out->append(index_->column_name());
  out->append(")\n");
}

// --- FilterNode -------------------------------------------------------------

FilterNode::FilterNode(ExecNodePtr child, BoundExprPtr predicate)
    : ExecNode(child->schema()),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Status FilterNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> FilterNode::Next(Row* row) {
  for (;;) {
    ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ASSIGN_OR_RETURN(bool keep, EvalPredicate(*predicate_, *row, ctx_->eval));
    if (keep) return true;
  }
}

void FilterNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  child_->Explain(indent + 1, out);
}

// --- ProjectNode ------------------------------------------------------------

ProjectNode::ProjectNode(Schema schema, ExecNodePtr child,
                         std::vector<BoundExprPtr> exprs)
    : ExecNode(std::move(schema)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status ProjectNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Result<bool> ProjectNode::Next(Row* row) {
  Row input;
  ASSIGN_OR_RETURN(bool has, child_->Next(&input));
  if (!has) return false;
  row->clear();
  row->reserve(exprs_.size());
  for (const auto& expr : exprs_) {
    ASSIGN_OR_RETURN(Value v, expr->Eval(input, ctx_->eval));
    row->push_back(std::move(v));
  }
  return true;
}

void ProjectNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  child_->Explain(indent + 1, out);
}

// --- LimitNode --------------------------------------------------------------

LimitNode::LimitNode(ExecNodePtr child, int64_t limit, int64_t offset)
    : ExecNode(child->schema()),
      child_(std::move(child)),
      limit_(limit),
      offset_(offset) {}

Status LimitNode::Open(ExecContext* ctx) {
  returned_ = 0;
  skipped_ = 0;
  return child_->Open(ctx);
}

Result<bool> LimitNode::Next(Row* row) {
  while (skipped_ < offset_) {
    ASSIGN_OR_RETURN(bool has, child_->Next(row));
    if (!has) return false;
    ++skipped_;
  }
  if (limit_ >= 0 && returned_ >= limit_) return false;
  ASSIGN_OR_RETURN(bool has, child_->Next(row));
  if (!has) return false;
  ++returned_;
  return true;
}

void LimitNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("Limit(" + std::to_string(limit_) +
              (offset_ > 0 ? ", offset " + std::to_string(offset_) : "") +
              ")\n");
  child_->Explain(indent + 1, out);
}

// --- DistinctNode -----------------------------------------------------------

DistinctNode::DistinctNode(ExecNodePtr child)
    : ExecNode(child->schema()), child_(std::move(child)) {}

Status DistinctNode::Open(ExecContext* ctx) {
  unique_rows_.clear();
  pos_ = 0;
  RETURN_IF_ERROR(child_->Open(ctx));
  std::unordered_map<size_t, std::vector<size_t>> seen;  // hash -> indexes
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    size_t h = HashValues(row);
    auto& bucket = seen[h];
    bool duplicate = false;
    for (size_t idx : bucket) {
      if (ValuesEqual(unique_rows_[idx], row)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(unique_rows_.size());
      unique_rows_.push_back(row);
    }
  }
  child_->Close();
  return Status::OK();
}

Result<bool> DistinctNode::Next(Row* row) {
  if (pos_ >= unique_rows_.size()) return false;
  *row = unique_rows_[pos_++];
  return true;
}

void DistinctNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  child_->Explain(indent + 1, out);
}

// --- SortNode ---------------------------------------------------------------

SortNode::SortNode(ExecNodePtr child, std::vector<SortKey> keys)
    : ExecNode(child->schema()),
      child_(std::move(child)),
      keys_(std::move(keys)) {}

Status SortNode::Open(ExecContext* ctx) {
  rows_.clear();
  pos_ = 0;
  RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<std::pair<std::vector<Value>, Row>> keyed;
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    std::vector<Value> key;
    key.reserve(keys_.size());
    for (const SortKey& k : keys_) {
      ASSIGN_OR_RETURN(Value v, k.expr->Eval(row, ctx->eval));
      key.push_back(std::move(v));
    }
    keyed.emplace_back(std::move(key), std::move(row));
  }
  child_->Close();
  std::stable_sort(keyed.begin(), keyed.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t i = 0; i < keys_.size(); ++i) {
                       int c = a.first[i].Compare(b.first[i]);
                       if (c != 0) return keys_[i].ascending ? c < 0 : c > 0;
                     }
                     return false;
                   });
  rows_.reserve(keyed.size());
  for (auto& [key, r] : keyed) rows_.push_back(std::move(r));
  return Status::OK();
}

Result<bool> SortNode::Next(Row* row) {
  if (pos_ >= rows_.size()) return false;
  *row = std::move(rows_[pos_++]);
  return true;
}

void SortNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  child_->Explain(indent + 1, out);
}

// --- HashAggregateNode ------------------------------------------------------

HashAggregateNode::HashAggregateNode(Schema schema, ExecNodePtr child,
                                     std::vector<BoundExprPtr> group_exprs,
                                     std::vector<AggregateCall> agg_calls)
    : ExecNode(std::move(schema)),
      child_(std::move(child)),
      group_exprs_(std::move(group_exprs)),
      agg_calls_(std::move(agg_calls)) {}

Status HashAggregateNode::Open(ExecContext* ctx) {
  results_.clear();
  pos_ = 0;
  RETURN_IF_ERROR(child_->Open(ctx));

  struct Group {
    std::vector<Value> keys;
    std::vector<AggStatePtr> states;
  };
  std::vector<Group> groups;
  std::unordered_map<size_t, std::vector<size_t>> lookup;  // hash -> indexes

  auto new_states = [&]() -> Result<std::vector<AggStatePtr>> {
    std::vector<AggStatePtr> states;
    states.reserve(agg_calls_.size());
    for (const AggregateCall& call : agg_calls_) {
      ASSIGN_OR_RETURN(AggStatePtr state,
                       MakeAggState(call.function, call.star, call.distinct));
      states.push_back(std::move(state));
    }
    return states;
  };

  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, child_->Next(&row));
    if (!has) break;
    std::vector<Value> keys;
    keys.reserve(group_exprs_.size());
    for (const auto& g : group_exprs_) {
      ASSIGN_OR_RETURN(Value v, g->Eval(row, ctx->eval));
      keys.push_back(std::move(v));
    }
    size_t h = HashValues(keys);
    auto& bucket = lookup[h];
    Group* group = nullptr;
    for (size_t idx : bucket) {
      if (ValuesEqual(groups[idx].keys, keys)) {
        group = &groups[idx];
        break;
      }
    }
    if (group == nullptr) {
      bucket.push_back(groups.size());
      Group g;
      g.keys = std::move(keys);
      ASSIGN_OR_RETURN(g.states, new_states());
      groups.push_back(std::move(g));
      group = &groups.back();
    }
    for (size_t i = 0; i < agg_calls_.size(); ++i) {
      Value arg = Value::Null();
      if (agg_calls_[i].argument != nullptr) {
        ASSIGN_OR_RETURN(arg, agg_calls_[i].argument->Eval(row, ctx->eval));
      }
      group->states[i]->Update(arg);
    }
  }
  child_->Close();

  // Scalar aggregation produces one row even on empty input.
  if (groups.empty() && group_exprs_.empty()) {
    Group g;
    ASSIGN_OR_RETURN(g.states, new_states());
    groups.push_back(std::move(g));
  }

  results_.reserve(groups.size());
  for (Group& g : groups) {
    Row out = std::move(g.keys);
    for (const AggStatePtr& state : g.states) {
      out.push_back(state->Final());
    }
    results_.push_back(std::move(out));
  }
  return Status::OK();
}

Result<bool> HashAggregateNode::Next(Row* row) {
  if (pos_ >= results_.size()) return false;
  *row = std::move(results_[pos_++]);
  return true;
}

void HashAggregateNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append("HashAggregate(groups=" + std::to_string(group_exprs_.size()) +
              ", aggs=" + std::to_string(agg_calls_.size()) + ")\n");
  child_->Explain(indent + 1, out);
}

// --- HashJoinNode -----------------------------------------------------------

HashJoinNode::HashJoinNode(Schema schema, ExecNodePtr left, ExecNodePtr right,
                           std::vector<BoundExprPtr> left_keys,
                           std::vector<BoundExprPtr> right_keys,
                           BoundExprPtr residual, sql::JoinType join_type)
    : ExecNode(std::move(schema)),
      left_(std::move(left)),
      right_(std::move(right)),
      left_keys_(std::move(left_keys)),
      right_keys_(std::move(right_keys)),
      residual_(std::move(residual)),
      join_type_(join_type) {}

Status HashJoinNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  hash_table_.clear();
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  left_exhausted_ = false;
  current_matched_ = false;
  started_ = false;
  RETURN_IF_ERROR(left_->Open(ctx));
  RETURN_IF_ERROR(right_->Open(ctx));
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    std::vector<Value> key;
    key.reserve(right_keys_.size());
    bool has_null = false;
    for (const auto& k : right_keys_) {
      ASSIGN_OR_RETURN(Value v, k->Eval(row, ctx->eval));
      if (v.is_null()) has_null = true;
      key.push_back(std::move(v));
    }
    if (has_null) continue;  // NULL keys never join
    // Store the key values with the row so probes can confirm equality.
    size_t h = HashValues(key);
    Row keyed = row;
    for (Value& v : key) keyed.push_back(std::move(v));
    hash_table_[h].push_back(std::move(keyed));
  }
  right_->Close();
  return Status::OK();
}

Result<bool> HashJoinNode::PullLeft() {
  ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
  if (!has) {
    left_exhausted_ = true;
    return false;
  }
  current_left_key_.clear();
  current_left_key_.reserve(left_keys_.size());
  bool has_null = false;
  for (const auto& k : left_keys_) {
    ASSIGN_OR_RETURN(Value v, k->Eval(current_left_, ctx_->eval));
    if (v.is_null()) has_null = true;
    current_left_key_.push_back(std::move(v));
  }
  if (has_null) {
    current_bucket_ = nullptr;
  } else {
    auto it = hash_table_.find(HashValues(current_left_key_));
    current_bucket_ = it == hash_table_.end() ? nullptr : &it->second;
  }
  bucket_pos_ = 0;
  current_matched_ = false;
  return true;
}

Result<bool> HashJoinNode::Next(Row* row) {
  if (!started_) {
    started_ = true;
    ASSIGN_OR_RETURN(bool has, PullLeft());
    if (!has) return false;
  }
  for (;;) {
    if (left_exhausted_) return false;
    while (current_bucket_ != nullptr &&
           bucket_pos_ < current_bucket_->size()) {
      const Row& keyed = (*current_bucket_)[bucket_pos_++];
      size_t right_width = keyed.size() - right_keys_.size();
      std::vector<Value> rkey(keyed.begin() + right_width, keyed.end());
      if (!ValuesEqual(current_left_key_, rkey)) continue;
      Row joined = current_left_;
      joined.insert(joined.end(), keyed.begin(),
                    keyed.begin() + right_width);
      if (residual_ != nullptr) {
        ASSIGN_OR_RETURN(bool keep,
                         EvalPredicate(*residual_, joined, ctx_->eval));
        if (!keep) continue;
      }
      current_matched_ = true;
      *row = std::move(joined);
      return true;
    }
    // Bucket exhausted for this left row.
    if (join_type_ == sql::JoinType::kLeft && !current_matched_) {
      Row joined = current_left_;
      size_t right_width = schema_.num_columns() - current_left_.size();
      for (size_t i = 0; i < right_width; ++i) joined.push_back(Value::Null());
      current_matched_ = true;  // emit the null-padded row only once
      *row = std::move(joined);
      return true;
    }
    ASSIGN_OR_RETURN(bool has, PullLeft());
    if (!has) return false;
  }
}

void HashJoinNode::Close() {
  left_->Close();
  hash_table_.clear();
}

void HashJoinNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(std::string("HashJoin(") +
              (join_type_ == sql::JoinType::kLeft ? "left" : "inner") + ")\n");
  left_->Explain(indent + 1, out);
  right_->Explain(indent + 1, out);
}

// --- IndexLookupJoinNode ----------------------------------------------------

IndexLookupJoinNode::IndexLookupJoinNode(Schema schema, ExecNodePtr left,
                                         const catalog::TableInfo* table,
                                         const storage::BTreeIndex* index,
                                         BoundExprPtr left_key,
                                         BoundExprPtr residual,
                                         sql::JoinType join_type)
    : ExecNode(std::move(schema)),
      left_(std::move(left)),
      table_(table),
      index_(index),
      left_key_(std::move(left_key)),
      residual_(std::move(residual)),
      join_type_(join_type) {}

Status IndexLookupJoinNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  matches_.clear();
  match_pos_ = 0;
  left_exhausted_ = false;
  started_ = false;
  current_matched_ = false;
  return left_->Open(ctx);
}

Result<bool> IndexLookupJoinNode::PullLeft() {
  ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
  if (!has) {
    left_exhausted_ = true;
    return false;
  }
  matches_.clear();
  match_pos_ = 0;
  current_matched_ = false;
  ASSIGN_OR_RETURN(Value key, left_key_->Eval(current_left_, ctx_->eval));
  if (!key.is_null()) {  // NULL keys never join
    index_->ScanEqual(key, [&](storage::RowId id) {
      matches_.push_back(id);
      return true;
    });
  }
  return true;
}

Result<bool> IndexLookupJoinNode::Next(Row* row) {
  if (!started_) {
    started_ = true;
    ASSIGN_OR_RETURN(bool has, PullLeft());
    if (!has) return false;
  }
  for (;;) {
    if (left_exhausted_) return false;
    while (match_pos_ < matches_.size()) {
      storage::RowId id = matches_[match_pos_++];
      ASSIGN_OR_RETURN(auto meta, table_->heap->GetRowMeta(id));
      if (!ctx_->txns->IsVisible(meta.xmin, meta.xmax, ctx_->snapshot,
                                 ctx_->reader)) {
        continue;
      }
      ASSIGN_OR_RETURN(Row right_row, table_->heap->GetRow(id));
      Row joined = current_left_;
      joined.insert(joined.end(), right_row.begin(), right_row.end());
      if (residual_ != nullptr) {
        ASSIGN_OR_RETURN(bool keep,
                         EvalPredicate(*residual_, joined, ctx_->eval));
        if (!keep) continue;
      }
      current_matched_ = true;
      *row = std::move(joined);
      return true;
    }
    if (join_type_ == sql::JoinType::kLeft && !current_matched_) {
      Row joined = current_left_;
      size_t right_width = table_->schema.num_columns();
      for (size_t i = 0; i < right_width; ++i) joined.push_back(Value::Null());
      current_matched_ = true;
      *row = std::move(joined);
      return true;
    }
    ASSIGN_OR_RETURN(bool has, PullLeft());
    if (!has) return false;
  }
}

void IndexLookupJoinNode::Explain(int indent, std::string* out) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(std::string("IndexLookupJoin(") + table_->name + "." +
              index_->column_name() + ", " +
              (join_type_ == sql::JoinType::kLeft ? "left" : "inner") +
              ")\n");
  left_->Explain(indent + 1, out);
}

// --- NestedLoopJoinNode -----------------------------------------------------

NestedLoopJoinNode::NestedLoopJoinNode(Schema schema, ExecNodePtr left,
                                       ExecNodePtr right,
                                       BoundExprPtr condition,
                                       sql::JoinType join_type)
    : ExecNode(std::move(schema)),
      left_(std::move(left)),
      right_(std::move(right)),
      condition_(std::move(condition)),
      join_type_(join_type) {}

Status NestedLoopJoinNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  right_rows_.clear();
  right_pos_ = 0;
  left_valid_ = false;
  current_matched_ = false;
  RETURN_IF_ERROR(left_->Open(ctx));
  RETURN_IF_ERROR(right_->Open(ctx));
  Row row;
  for (;;) {
    ASSIGN_OR_RETURN(bool has, right_->Next(&row));
    if (!has) break;
    right_rows_.push_back(std::move(row));
  }
  right_->Close();
  return Status::OK();
}

Result<bool> NestedLoopJoinNode::Next(Row* row) {
  for (;;) {
    if (!left_valid_) {
      ASSIGN_OR_RETURN(bool has, left_->Next(&current_left_));
      if (!has) return false;
      left_valid_ = true;
      right_pos_ = 0;
      current_matched_ = false;
    }
    while (right_pos_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_pos_++];
      Row joined = current_left_;
      joined.insert(joined.end(), right_row.begin(), right_row.end());
      if (condition_ != nullptr) {
        ASSIGN_OR_RETURN(bool keep,
                         EvalPredicate(*condition_, joined, ctx_->eval));
        if (!keep) continue;
      }
      current_matched_ = true;
      *row = std::move(joined);
      return true;
    }
    if (join_type_ == sql::JoinType::kLeft && !current_matched_) {
      Row joined = current_left_;
      size_t right_width = schema_.num_columns() - current_left_.size();
      for (size_t i = 0; i < right_width; ++i) joined.push_back(Value::Null());
      left_valid_ = false;
      *row = std::move(joined);
      return true;
    }
    left_valid_ = false;
  }
}

void NestedLoopJoinNode::Close() {
  left_->Close();
  right_rows_.clear();
}

void NestedLoopJoinNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  left_->Explain(indent + 1, out);
  right_->Explain(indent + 1, out);
}

// --- UnionAllNode -----------------------------------------------------------

UnionAllNode::UnionAllNode(Schema schema, std::vector<ExecNodePtr> children)
    : ExecNode(std::move(schema)), children_(std::move(children)) {}

Status UnionAllNode::Open(ExecContext* ctx) {
  ctx_ = ctx;
  current_ = 0;
  if (!children_.empty()) {
    RETURN_IF_ERROR(children_[0]->Open(ctx));
  }
  return Status::OK();
}

Result<bool> UnionAllNode::Next(Row* row) {
  while (current_ < children_.size()) {
    ASSIGN_OR_RETURN(bool has, children_[current_]->Next(row));
    if (has) return true;
    children_[current_]->Close();
    ++current_;
    if (current_ < children_.size()) {
      RETURN_IF_ERROR(children_[current_]->Open(ctx_));
    }
  }
  return false;
}

void UnionAllNode::Close() {
  if (current_ < children_.size()) children_[current_]->Close();
}

void UnionAllNode::Explain(int indent, std::string* out) const {
  ExecNode::Explain(indent, out);
  for (const auto& child : children_) child->Explain(indent + 1, out);
}

}  // namespace streamrel::exec
