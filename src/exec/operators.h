#ifndef STREAMREL_EXEC_OPERATORS_H_
#define STREAMREL_EXEC_OPERATORS_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/binder.h"
#include "exec/expr.h"
#include "storage/transaction.h"

namespace streamrel::exec {

/// Per-execution state threaded through the operator tree: the MVCC
/// snapshot to read under, the reading transaction, and the window context
/// for cq_close(*).
struct ExecContext {
  const storage::TransactionManager* txns = nullptr;
  storage::Snapshot snapshot;
  storage::TxnId reader = storage::kInvalidTxn;
  EvalContext eval;
};

/// Volcano-style pull iterator. Lifecycle: Open -> Next* -> Close; a plan
/// may be re-executed (continuous queries re-run the same plan once per
/// window close).
class ExecNode {
 public:
  explicit ExecNode(Schema schema) : schema_(std::move(schema)) {}
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  const Schema& schema() const { return schema_; }

  virtual Status Open(ExecContext* ctx) = 0;
  /// Fills `*row` and returns true, or returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;
  virtual void Close() {}

  virtual const char* name() const = 0;
  /// Appends an indented plan-tree rendering (for tests and EXPLAIN-style
  /// debugging).
  virtual void Explain(int indent, std::string* out) const;

 protected:
  Schema schema_;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Renders the whole plan tree.
std::string ExplainPlan(const ExecNode& root);

// ---------------------------------------------------------------------------
// Leaves
// ---------------------------------------------------------------------------

/// Scans an in-memory batch of rows. The batch is shared and swappable:
/// the continuous-query executor re-points it at each window's contents and
/// re-opens the plan.
class BufferScanNode : public ExecNode {
 public:
  BufferScanNode(Schema schema,
                 std::shared_ptr<const std::vector<Row>> batch);

  /// Swaps the batch (between executions, not while open).
  void SetBatch(std::shared_ptr<const std::vector<Row>> batch);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  const char* name() const override { return "BufferScan"; }

 private:
  std::shared_ptr<const std::vector<Row>> batch_;
  size_t pos_ = 0;
};

/// Full MVCC scan of a heap table with an optional pushed-down predicate.
class SeqScanNode : public ExecNode {
 public:
  SeqScanNode(Schema schema, const catalog::TableInfo* table,
              BoundExprPtr predicate /* may be null */);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  const char* name() const override { return "SeqScan"; }
  void Explain(int indent, std::string* out) const override;

 private:
  const catalog::TableInfo* table_;
  BoundExprPtr predicate_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// B+Tree index range scan: fetches matching RowIds, then the rows, then
/// applies MVCC visibility and the residual predicate.
class IndexScanNode : public ExecNode {
 public:
  IndexScanNode(Schema schema, const catalog::TableInfo* table,
                const storage::BTreeIndex* index, std::optional<Value> lo,
                bool lo_inclusive, std::optional<Value> hi, bool hi_inclusive,
                BoundExprPtr residual /* may be null */);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  const char* name() const override { return "IndexScan"; }
  void Explain(int indent, std::string* out) const override;

 private:
  const catalog::TableInfo* table_;
  const storage::BTreeIndex* index_;
  std::optional<Value> lo_, hi_;
  bool lo_inclusive_, hi_inclusive_;
  BoundExprPtr residual_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Unary operators
// ---------------------------------------------------------------------------

class FilterNode : public ExecNode {
 public:
  FilterNode(ExecNodePtr child, BoundExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Filter"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  BoundExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
};

class ProjectNode : public ExecNode {
 public:
  ProjectNode(Schema schema, ExecNodePtr child,
              std::vector<BoundExprPtr> exprs);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Project"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<BoundExprPtr> exprs_;
  ExecContext* ctx_ = nullptr;
};

class LimitNode : public ExecNode {
 public:
  LimitNode(ExecNodePtr child, int64_t limit, int64_t offset);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Limit"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  int64_t limit_, offset_;
  int64_t returned_ = 0, skipped_ = 0;
};

class DistinctNode : public ExecNode {
 public:
  explicit DistinctNode(ExecNodePtr child);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Distinct"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<Row> unique_rows_;
  size_t pos_ = 0;
};

struct SortKey {
  BoundExprPtr expr;
  bool ascending = true;
};

class SortNode : public ExecNode {
 public:
  SortNode(ExecNodePtr child, std::vector<SortKey> keys);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "Sort"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

/// Hash aggregation. Output layout: [group keys..., aggregate results...].
/// With no group keys, exactly one output row is produced even for empty
/// input (SQL scalar-aggregate semantics).
class HashAggregateNode : public ExecNode {
 public:
  HashAggregateNode(Schema schema, ExecNodePtr child,
                    std::vector<BoundExprPtr> group_exprs,
                    std::vector<AggregateCall> agg_calls);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { child_->Close(); }
  const char* name() const override { return "HashAggregate"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr child_;
  std::vector<BoundExprPtr> group_exprs_;
  std::vector<AggregateCall> agg_calls_;
  std::vector<Row> results_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// Hash equi-join; the right side is built into a hash table, the left side
/// probes. Supports INNER and LEFT (left rows preserved). An optional
/// residual predicate is evaluated on the concatenated row.
class HashJoinNode : public ExecNode {
 public:
  HashJoinNode(Schema schema, ExecNodePtr left, ExecNodePtr right,
               std::vector<BoundExprPtr> left_keys,
               std::vector<BoundExprPtr> right_keys, BoundExprPtr residual,
               sql::JoinType join_type);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const char* name() const override { return "HashJoin"; }
  void Explain(int indent, std::string* out) const override;

 private:
  Result<bool> PullLeft();

  ExecNodePtr left_, right_;
  std::vector<BoundExprPtr> left_keys_, right_keys_;
  BoundExprPtr residual_;
  sql::JoinType join_type_;
  ExecContext* ctx_ = nullptr;

  std::unordered_map<size_t, std::vector<Row>> hash_table_;
  Row current_left_;
  const std::vector<Row>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  std::vector<Value> current_left_key_;
  bool left_exhausted_ = false;
  bool current_matched_ = false;
  bool started_ = false;
};

/// Index nested-loop join: for each left row, the join key expression is
/// evaluated and probed into a B+Tree index on the right base table
/// (fetch + MVCC visibility + residual). The preferred plan for the
/// paper's stream-table joins: the left side is one window's worth of rows
/// while the right side is an ever-growing active table that must not be
/// scanned or hashed in full per window.
class IndexLookupJoinNode : public ExecNode {
 public:
  IndexLookupJoinNode(Schema schema, ExecNodePtr left,
                      const catalog::TableInfo* table,
                      const storage::BTreeIndex* index,
                      BoundExprPtr left_key,
                      BoundExprPtr residual /* may be null */,
                      sql::JoinType join_type);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override { left_->Close(); }
  const char* name() const override { return "IndexLookupJoin"; }
  void Explain(int indent, std::string* out) const override;

 private:
  Result<bool> PullLeft();

  ExecNodePtr left_;
  const catalog::TableInfo* table_;
  const storage::BTreeIndex* index_;
  BoundExprPtr left_key_;
  BoundExprPtr residual_;
  sql::JoinType join_type_;
  ExecContext* ctx_ = nullptr;

  Row current_left_;
  std::vector<storage::RowId> matches_;
  size_t match_pos_ = 0;
  bool left_exhausted_ = false;
  bool started_ = false;
  bool current_matched_ = false;
};

/// Nested-loop join for arbitrary (non-equi) conditions; the right side is
/// materialized once. Supports INNER, LEFT, and CROSS.
class NestedLoopJoinNode : public ExecNode {
 public:
  NestedLoopJoinNode(Schema schema, ExecNodePtr left, ExecNodePtr right,
                     BoundExprPtr condition /* may be null (cross) */,
                     sql::JoinType join_type);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const char* name() const override { return "NestedLoopJoin"; }
  void Explain(int indent, std::string* out) const override;

 private:
  ExecNodePtr left_, right_;
  BoundExprPtr condition_;
  sql::JoinType join_type_;
  ExecContext* ctx_ = nullptr;

  std::vector<Row> right_rows_;
  Row current_left_;
  size_t right_pos_ = 0;
  bool left_valid_ = false;
  bool current_matched_ = false;
};

class UnionAllNode : public ExecNode {
 public:
  UnionAllNode(Schema schema, std::vector<ExecNodePtr> children);

  Status Open(ExecContext* ctx) override;
  Result<bool> Next(Row* row) override;
  void Close() override;
  const char* name() const override { return "UnionAll"; }
  void Explain(int indent, std::string* out) const override;

 private:
  std::vector<ExecNodePtr> children_;
  size_t current_ = 0;
  ExecContext* ctx_ = nullptr;
};

// ---------------------------------------------------------------------------
// Helpers shared with the stream runtime
// ---------------------------------------------------------------------------

/// Hash of a key-value vector, consistent with RowKeyEquals.
size_t HashValues(const std::vector<Value>& values);

/// Element-wise equality via Value::Compare.
bool ValuesEqual(const std::vector<Value>& a, const std::vector<Value>& b);

/// Runs a plan to completion and collects its output.
Result<std::vector<Row>> CollectRows(ExecNode* root, ExecContext* ctx);

}  // namespace streamrel::exec

#endif  // STREAMREL_EXEC_OPERATORS_H_
