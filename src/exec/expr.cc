#include "exec/expr.h"

#include <cmath>

#include "common/time.h"

namespace streamrel::exec {

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative wildcard matching with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

bool BoundExpr::ReferencesInput() const {
  if (kind == BoundExprKind::kColumn || kind == BoundExprKind::kCqClose ||
      kind == BoundExprKind::kNow) {
    return true;
  }
  for (const auto& child : children) {
    if (child->ReferencesInput()) return true;
  }
  return false;
}

namespace {

Result<Value> EvalComparison(sql::BinaryOp op, const Value& lhs,
                             const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  int c = lhs.Compare(rhs);
  switch (op) {
    case sql::BinaryOp::kEq:
      return Value::Bool(c == 0);
    case sql::BinaryOp::kNe:
      return Value::Bool(c != 0);
    case sql::BinaryOp::kLt:
      return Value::Bool(c < 0);
    case sql::BinaryOp::kLe:
      return Value::Bool(c <= 0);
    case sql::BinaryOp::kGt:
      return Value::Bool(c > 0);
    case sql::BinaryOp::kGe:
      return Value::Bool(c >= 0);
    default:
      return Status::Internal("not a comparison op");
  }
}

Result<Value> EvalScalarFunction(const std::string& name,
                                 const std::vector<Value>& args) {
  auto arity_error = [&]() {
    return Status::ExecutionError("wrong number of arguments to " + name +
                                  "()");
  };
  if (name == "lower" || name == "upper" || name == "length") {
    if (args.size() != 1) return arity_error();
    if (args[0].is_null()) return Value::Null();
    const std::string& s = args[0].AsString();
    if (name == "length") {
      return Value::Int64(static_cast<int64_t>(s.size()));
    }
    std::string out = s;
    for (char& c : out) {
      c = name == "lower"
              ? static_cast<char>(tolower(static_cast<unsigned char>(c)))
              : static_cast<char>(toupper(static_cast<unsigned char>(c)));
    }
    return Value::String(std::move(out));
  }
  if (name == "substr" || name == "substring") {
    if (args.size() != 2 && args.size() != 3) return arity_error();
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    const std::string& s = args[0].AsString();
    int64_t start = args[1].AsInt64();  // 1-based, SQL style
    int64_t len = args.size() == 3 && !args[2].is_null()
                      ? args[2].AsInt64()
                      : static_cast<int64_t>(s.size());
    if (start < 1) start = 1;
    if (start > static_cast<int64_t>(s.size()) || len <= 0) {
      return Value::String("");
    }
    return Value::String(s.substr(static_cast<size_t>(start - 1),
                                  static_cast<size_t>(len)));
  }
  if (name == "abs") {
    if (args.size() != 1) return arity_error();
    if (args[0].is_null()) return Value::Null();
    if (args[0].type() == DataType::kInt64) {
      return Value::Int64(std::abs(args[0].AsInt64()));
    }
    return Value::Double(std::abs(args[0].AsDouble()));
  }
  if (name == "round" || name == "floor" || name == "ceil" ||
      name == "ceiling") {
    if (args.empty() || args.size() > 2) return arity_error();
    if (args[0].is_null()) return Value::Null();
    double v = args[0].AsDouble();
    if (name == "floor") return Value::Double(std::floor(v));
    if (name != "round") return Value::Double(std::ceil(v));
    int64_t digits = args.size() == 2 ? args[1].AsInt64() : 0;
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(v * scale) / scale);
  }
  if (name == "sqrt") {
    if (args.size() != 1) return arity_error();
    if (args[0].is_null()) return Value::Null();
    double v = args[0].AsDouble();
    if (v < 0) return Status::ExecutionError("sqrt of negative value");
    return Value::Double(std::sqrt(v));
  }
  if (name == "power" || name == "pow") {
    if (args.size() != 2) return arity_error();
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    return Value::Double(std::pow(args[0].AsDouble(), args[1].AsDouble()));
  }
  if (name == "mod") {
    if (args.size() != 2) return arity_error();
    return ValueMod(args[0], args[1]);
  }
  if (name == "coalesce") {
    for (const Value& v : args) {
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "nullif") {
    if (args.size() != 2) return arity_error();
    if (!args[0].is_null() && !args[1].is_null() && args[0] == args[1]) {
      return Value::Null();
    }
    return args[0];
  }
  if (name == "greatest" || name == "least") {
    if (args.empty()) return arity_error();
    Value best = Value::Null();
    for (const Value& v : args) {
      if (v.is_null()) continue;
      if (best.is_null() || (name == "greatest" ? best < v : v < best)) {
        best = v;
      }
    }
    return best;
  }
  if (name == "date_trunc") {
    if (args.size() != 2) return arity_error();
    if (args[0].is_null() || args[1].is_null()) return Value::Null();
    const std::string& unit = args[0].AsString();
    int64_t micros = args[1].AsTimestampMicros();
    int64_t quantum;
    if (unit == "second") {
      quantum = kMicrosPerSecond;
    } else if (unit == "minute") {
      quantum = kMicrosPerMinute;
    } else if (unit == "hour") {
      quantum = kMicrosPerHour;
    } else if (unit == "day") {
      quantum = kMicrosPerDay;
    } else if (unit == "week") {
      quantum = kMicrosPerWeek;
    } else {
      return Status::ExecutionError("unsupported date_trunc unit: " + unit);
    }
    int64_t floored = micros - ((micros % quantum) + quantum) % quantum;
    return Value::Timestamp(floored);
  }
  if (name == "concat") {
    std::string out;
    for (const Value& v : args) {
      if (!v.is_null()) out += v.ToString();
    }
    return Value::String(std::move(out));
  }
  return Status::ExecutionError("unknown function: " + name + "()");
}

}  // namespace

Result<Value> BoundExpr::Eval(const Row& row, const EvalContext& ctx) const {
  switch (kind) {
    case BoundExprKind::kLiteral:
      return literal;
    case BoundExprKind::kColumn:
      if (column_index >= row.size()) {
        return Status::Internal("column index out of range");
      }
      return row[column_index];
    case BoundExprKind::kCqClose:
      if (!ctx.has_window) {
        return Status::ExecutionError(
            "cq_close(*) is only valid in a continuous query");
      }
      return Value::Timestamp(ctx.window_close_micros);
    case BoundExprKind::kNow:
      return Value::Timestamp(ctx.now_micros);
    case BoundExprKind::kUnary: {
      ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      if (unary_op == sql::UnaryOp::kNegate) {
        if (v.is_null()) return Value::Null();
        if (v.type() == DataType::kInt64) return Value::Int64(-v.AsInt64());
        if (v.type() == DataType::kDouble) {
          return Value::Double(-v.AsDouble());
        }
        if (v.type() == DataType::kInterval) {
          return Value::Interval(-v.AsIntervalMicros());
        }
        return Status::ExecutionError("cannot negate non-numeric value");
      }
      // NOT: three-valued.
      if (v.is_null()) return Value::Null();
      return Value::Bool(!v.AsBool());
    }
    case BoundExprKind::kBinary: {
      // Short-circuit 3VL AND/OR.
      if (binary_op == sql::BinaryOp::kAnd ||
          binary_op == sql::BinaryOp::kOr) {
        ASSIGN_OR_RETURN(Value lhs, children[0]->Eval(row, ctx));
        bool is_and = binary_op == sql::BinaryOp::kAnd;
        if (!lhs.is_null() && lhs.AsBool() != is_and) {
          return Value::Bool(!is_and);  // false AND _, true OR _
        }
        ASSIGN_OR_RETURN(Value rhs, children[1]->Eval(row, ctx));
        if (!rhs.is_null() && rhs.AsBool() != is_and) {
          return Value::Bool(!is_and);
        }
        if (lhs.is_null() || rhs.is_null()) return Value::Null();
        return Value::Bool(is_and);
      }
      ASSIGN_OR_RETURN(Value lhs, children[0]->Eval(row, ctx));
      ASSIGN_OR_RETURN(Value rhs, children[1]->Eval(row, ctx));
      switch (binary_op) {
        case sql::BinaryOp::kAdd:
          return ValueAdd(lhs, rhs);
        case sql::BinaryOp::kSub:
          return ValueSub(lhs, rhs);
        case sql::BinaryOp::kMul:
          return ValueMul(lhs, rhs);
        case sql::BinaryOp::kDiv:
          return ValueDiv(lhs, rhs);
        case sql::BinaryOp::kMod:
          return ValueMod(lhs, rhs);
        case sql::BinaryOp::kLike: {
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::Bool(LikeMatch(lhs.ToString(), rhs.ToString()));
        }
        case sql::BinaryOp::kConcat: {
          if (lhs.is_null() || rhs.is_null()) return Value::Null();
          return Value::String(lhs.ToString() + rhs.ToString());
        }
        default:
          return EvalComparison(binary_op, lhs, rhs);
      }
    }
    case BoundExprKind::kFunction: {
      std::vector<Value> args;
      args.reserve(children.size());
      for (const auto& child : children) {
        ASSIGN_OR_RETURN(Value v, child->Eval(row, ctx));
        args.push_back(std::move(v));
      }
      return EvalScalarFunction(function_name, args);
    }
    case BoundExprKind::kCast: {
      ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      auto cast = v.CastTo(cast_type);
      if (!cast.ok()) {
        return Status::ExecutionError(cast.status().message());
      }
      return *cast;
    }
    case BoundExprKind::kCase: {
      size_t pairs = (children.size() - (case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        ASSIGN_OR_RETURN(Value cond, children[2 * i]->Eval(row, ctx));
        if (!cond.is_null() && cond.AsBool()) {
          return children[2 * i + 1]->Eval(row, ctx);
        }
      }
      if (case_has_else) return children.back()->Eval(row, ctx);
      return Value::Null();
    }
    case BoundExprKind::kIn: {
      ASSIGN_OR_RETURN(Value needle, children[0]->Eval(row, ctx));
      if (needle.is_null()) return Value::Null();
      bool saw_null = false;
      for (size_t i = 1; i < children.size(); ++i) {
        ASSIGN_OR_RETURN(Value v, children[i]->Eval(row, ctx));
        if (v.is_null()) {
          saw_null = true;
          continue;
        }
        if (needle == v) return Value::Bool(!is_not);
      }
      if (saw_null) return Value::Null();
      return Value::Bool(is_not);
    }
    case BoundExprKind::kBetween: {
      ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      ASSIGN_OR_RETURN(Value lo, children[1]->Eval(row, ctx));
      ASSIGN_OR_RETURN(Value hi, children[2]->Eval(row, ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) return Value::Null();
      bool in_range = lo.Compare(v) <= 0 && v.Compare(hi) <= 0;
      return Value::Bool(is_not ? !in_range : in_range);
    }
    case BoundExprKind::kIsNull: {
      ASSIGN_OR_RETURN(Value v, children[0]->Eval(row, ctx));
      return Value::Bool(is_not ? !v.is_null() : v.is_null());
    }
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> EvalPredicate(const BoundExpr& predicate, const Row& row,
                           const EvalContext& ctx) {
  ASSIGN_OR_RETURN(Value v, predicate.Eval(row, ctx));
  return !v.is_null() && v.AsBool();
}

Result<DataType> InferBinaryType(sql::BinaryOp op, DataType lhs,
                                 DataType rhs) {
  using sql::BinaryOp;
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
    case BinaryOp::kAnd:
    case BinaryOp::kOr:
    case BinaryOp::kLike:
      return DataType::kBool;
    case BinaryOp::kConcat:
      return DataType::kString;
    default:
      break;
  }
  // Arithmetic.
  if (lhs == DataType::kNull || rhs == DataType::kNull) return DataType::kNull;
  if (lhs == DataType::kTimestamp && rhs == DataType::kInterval) {
    return DataType::kTimestamp;
  }
  if (lhs == DataType::kInterval && rhs == DataType::kTimestamp &&
      op == BinaryOp::kAdd) {
    return DataType::kTimestamp;
  }
  if (lhs == DataType::kTimestamp && rhs == DataType::kTimestamp &&
      op == BinaryOp::kSub) {
    return DataType::kInterval;
  }
  if (lhs == DataType::kInterval || rhs == DataType::kInterval) {
    return DataType::kInterval;
  }
  if (lhs == DataType::kString && rhs == DataType::kString &&
      op == BinaryOp::kAdd) {
    return DataType::kString;
  }
  if (IsNumericType(lhs) && IsNumericType(rhs)) {
    return (lhs == DataType::kDouble || rhs == DataType::kDouble)
               ? DataType::kDouble
               : DataType::kInt64;
  }
  return Status::BindError(std::string("operator ") +
                           sql::BinaryOpToString(op) +
                           " not defined for types " + DataTypeToString(lhs) +
                           " and " + DataTypeToString(rhs));
}

bool IsScalarFunction(const std::string& name) {
  static const char* kNames[] = {
      "lower",  "upper",    "length",  "substr",   "substring", "abs",
      "round",  "floor",    "ceil",    "ceiling",  "sqrt",      "power",
      "pow",    "mod",      "coalesce", "nullif",  "greatest",  "least",
      "date_trunc", "concat"};
  for (const char* n : kNames) {
    if (name == n) return true;
  }
  return false;
}

Result<DataType> InferFunctionType(const std::string& name,
                                   const std::vector<DataType>& args) {
  if (name == "lower" || name == "upper" || name == "substr" ||
      name == "substring" || name == "concat") {
    return DataType::kString;
  }
  if (name == "length") return DataType::kInt64;
  if (name == "round" || name == "floor" || name == "ceil" ||
      name == "ceiling" || name == "sqrt" || name == "power" ||
      name == "pow") {
    return DataType::kDouble;
  }
  if (name == "date_trunc") return DataType::kTimestamp;
  if (name == "abs" || name == "mod" || name == "coalesce" ||
      name == "nullif" || name == "greatest" || name == "least") {
    for (DataType t : args) {
      if (t != DataType::kNull) return t;
    }
    return DataType::kNull;
  }
  return Status::BindError("unknown function: " + name + "()");
}

}  // namespace streamrel::exec
