#include "exec/binder.h"

namespace streamrel::exec {

bool ExprBinder::ContainsAggregate(const sql::Expr& expr) {
  if (expr.kind == sql::ExprKind::kFunctionCall &&
      IsAggregateFunction(expr.function_name)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

Status ExprBinder::EnterAggregateMode(
    const std::vector<const sql::Expr*>& group_exprs) {
  aggregate_mode_ = true;
  for (const sql::Expr* g : group_exprs) {
    if (ContainsAggregate(*g)) {
      return Status::BindError("aggregate functions are not allowed in GROUP BY");
    }
    ASSIGN_OR_RETURN(BoundExprPtr bound, BindInternal(*g, /*post_agg=*/false));
    group_texts_.push_back(g->ToString());
    group_exprs_.push_back(std::move(bound));
  }
  return Status::OK();
}

Result<BoundExprPtr> ExprBinder::BindScalar(const sql::Expr& expr) {
  if (ContainsAggregate(expr)) {
    return Status::BindError(
        "aggregate functions are not allowed in this context: " +
        expr.ToString());
  }
  return BindInternal(expr, /*post_agg=*/false);
}

Result<BoundExprPtr> ExprBinder::BindProjection(const sql::Expr& expr) {
  return BindInternal(expr, aggregate_mode_);
}

Schema ExprBinder::PostAggregateSchema() const {
  std::vector<Column> cols;
  for (size_t i = 0; i < group_exprs_.size(); ++i) {
    cols.emplace_back(group_texts_[i], group_exprs_[i]->type);
  }
  for (const AggregateCall& call : agg_calls_) {
    cols.emplace_back(call.display_name, call.result_type);
  }
  return Schema(std::move(cols));
}

BoundExprPtr ExprBinder::MaybeFold(BoundExprPtr expr) {
  switch (expr->kind) {
    case BoundExprKind::kLiteral:
    case BoundExprKind::kColumn:
    case BoundExprKind::kCqClose:
      return expr;
    default:
      break;
  }
  if (expr->ReferencesInput()) return expr;
  Row empty;
  EvalContext ctx;
  auto folded = expr->Eval(empty, ctx);
  if (!folded.ok()) return expr;  // fold-time error: leave for runtime
  auto literal = std::make_unique<BoundExpr>(BoundExprKind::kLiteral);
  literal->literal = *folded;
  literal->type = expr->type;
  return literal;
}

Result<BoundExprPtr> ExprBinder::BindColumnRef(const sql::Expr& expr) {
  ASSIGN_OR_RETURN(size_t index,
                   input_.FindColumn(expr.column_name, expr.qualifier));
  auto bound = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
  bound->column_index = index;
  bound->type = input_.column(index).type;
  return BoundExprPtr(std::move(bound));
}

Result<BoundExprPtr> ExprBinder::BindAggregateCall(const sql::Expr& expr) {
  AggregateCall call;
  call.function = expr.function_name;
  call.distinct = expr.distinct;
  call.display_name = expr.ToString();
  DataType input_type = DataType::kNull;
  if (expr.children.size() == 1 &&
      expr.children[0]->kind == sql::ExprKind::kStar) {
    call.star = true;
  } else if (expr.children.size() == 1) {
    ASSIGN_OR_RETURN(call.argument,
                     BindInternal(*expr.children[0], /*post_agg=*/false));
    input_type = call.argument->type;
  } else if (expr.children.empty() && expr.function_name == "count") {
    call.star = true;  // count() treated as count(*)
  } else {
    return Status::BindError("aggregate " + expr.function_name +
                             "() takes exactly one argument");
  }
  ASSIGN_OR_RETURN(call.result_type,
                   InferAggregateType(call.function, call.star, input_type));
  // Validate the aggregate/DISTINCT combination eagerly.
  RETURN_IF_ERROR(
      MakeAggState(call.function, call.star, call.distinct).status());

  // Reuse an identical prior call (e.g. HAVING count(*) > 1 with count(*)
  // already in the select list) — this is intra-query sharing.
  size_t slot = agg_calls_.size();
  for (size_t i = 0; i < agg_calls_.size(); ++i) {
    if (agg_calls_[i].display_name == call.display_name) {
      slot = i;
      break;
    }
  }
  if (slot == agg_calls_.size()) agg_calls_.push_back(std::move(call));

  auto bound = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
  bound->column_index = group_exprs_.size() + slot;
  bound->type = agg_calls_[slot].result_type;
  return BoundExprPtr(std::move(bound));
}

Result<BoundExprPtr> ExprBinder::BindInternal(const sql::Expr& expr,
                                              bool post_agg) {
  if (post_agg) {
    // A subtree that matches a GROUP BY item refers to its key slot.
    std::string text = expr.ToString();
    for (size_t i = 0; i < group_texts_.size(); ++i) {
      if (group_texts_[i] == text) {
        auto bound = std::make_unique<BoundExpr>(BoundExprKind::kColumn);
        bound->column_index = i;
        bound->type = group_exprs_[i]->type;
        return BoundExprPtr(std::move(bound));
      }
    }
    if (expr.kind == sql::ExprKind::kFunctionCall &&
        IsAggregateFunction(expr.function_name)) {
      return BindAggregateCall(expr);
    }
    if (expr.kind == sql::ExprKind::kColumnRef) {
      return Status::BindError("column '" + expr.ToString() +
                               "' must appear in GROUP BY or inside an "
                               "aggregate function");
    }
  }

  switch (expr.kind) {
    case sql::ExprKind::kLiteral: {
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kLiteral);
      bound->literal = expr.literal;
      bound->type = expr.literal.type();
      return BoundExprPtr(std::move(bound));
    }
    case sql::ExprKind::kColumnRef:
      return BindColumnRef(expr);
    case sql::ExprKind::kStar:
      return Status::BindError("'*' is not valid in this context");
    case sql::ExprKind::kUnary: {
      ASSIGN_OR_RETURN(BoundExprPtr child,
                       BindInternal(*expr.children[0], post_agg));
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kUnary);
      bound->unary_op = expr.unary_op;
      bound->type = expr.unary_op == sql::UnaryOp::kNot ? DataType::kBool
                                                        : child->type;
      bound->children.push_back(std::move(child));
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kBinary: {
      ASSIGN_OR_RETURN(BoundExprPtr lhs,
                       BindInternal(*expr.children[0], post_agg));
      ASSIGN_OR_RETURN(BoundExprPtr rhs,
                       BindInternal(*expr.children[1], post_agg));
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kBinary);
      bound->binary_op = expr.binary_op;
      ASSIGN_OR_RETURN(bound->type,
                       InferBinaryType(expr.binary_op, lhs->type, rhs->type));
      bound->children.push_back(std::move(lhs));
      bound->children.push_back(std::move(rhs));
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kFunctionCall: {
      if (IsAggregateFunction(expr.function_name)) {
        return Status::BindError("aggregate function " + expr.function_name +
                                 "() is not allowed here");
      }
      if (expr.function_name == "cq_close") {
        auto bound = std::make_unique<BoundExpr>(BoundExprKind::kCqClose);
        bound->type = DataType::kTimestamp;
        return BoundExprPtr(std::move(bound));
      }
      if (expr.function_name == "now" ||
          expr.function_name == "current_timestamp") {
        if (!expr.children.empty()) {
          return Status::BindError(expr.function_name + "() takes no arguments");
        }
        auto bound = std::make_unique<BoundExpr>(BoundExprKind::kNow);
        bound->type = DataType::kTimestamp;
        return BoundExprPtr(std::move(bound));
      }
      if (!IsScalarFunction(expr.function_name)) {
        return Status::BindError("unknown function: " + expr.function_name +
                                 "()");
      }
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kFunction);
      bound->function_name = expr.function_name;
      std::vector<DataType> arg_types;
      for (const auto& arg : expr.children) {
        ASSIGN_OR_RETURN(BoundExprPtr child, BindInternal(*arg, post_agg));
        arg_types.push_back(child->type);
        bound->children.push_back(std::move(child));
      }
      ASSIGN_OR_RETURN(bound->type,
                       InferFunctionType(expr.function_name, arg_types));
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kCast: {
      ASSIGN_OR_RETURN(BoundExprPtr child,
                       BindInternal(*expr.children[0], post_agg));
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kCast);
      bound->cast_type = expr.cast_type;
      bound->type = expr.cast_type;
      bound->children.push_back(std::move(child));
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kCase: {
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kCase);
      bound->case_has_else = expr.case_has_else;
      DataType result = DataType::kNull;
      size_t pairs = (expr.children.size() - (expr.case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < expr.children.size(); ++i) {
        ASSIGN_OR_RETURN(BoundExprPtr child,
                         BindInternal(*expr.children[i], post_agg));
        bool is_result_branch =
            (i < 2 * pairs) ? (i % 2 == 1) : expr.case_has_else;
        if (is_result_branch && result == DataType::kNull) {
          result = child->type;
        }
        bound->children.push_back(std::move(child));
      }
      bound->type = result;
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kIn: {
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kIn);
      bound->is_not = expr.is_not;
      bound->type = DataType::kBool;
      for (const auto& child : expr.children) {
        ASSIGN_OR_RETURN(BoundExprPtr b, BindInternal(*child, post_agg));
        bound->children.push_back(std::move(b));
      }
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kBetween: {
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kBetween);
      bound->is_not = expr.is_not;
      bound->type = DataType::kBool;
      for (const auto& child : expr.children) {
        ASSIGN_OR_RETURN(BoundExprPtr b, BindInternal(*child, post_agg));
        bound->children.push_back(std::move(b));
      }
      return MaybeFold(std::move(bound));
    }
    case sql::ExprKind::kIsNull: {
      auto bound = std::make_unique<BoundExpr>(BoundExprKind::kIsNull);
      bound->is_not = expr.is_not;
      bound->type = DataType::kBool;
      ASSIGN_OR_RETURN(BoundExprPtr child,
                       BindInternal(*expr.children[0], post_agg));
      bound->children.push_back(std::move(child));
      return MaybeFold(std::move(bound));
    }
  }
  return Status::Internal("unreachable AST expression kind");
}

}  // namespace streamrel::exec
