#ifndef STREAMREL_STREAM_SHARED_AGGREGATION_H_
#define STREAMREL_STREAM_SHARED_AGGREGATION_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/memory_governor.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/binder.h"

namespace streamrel::stream {

/// The paper's "jellybean processing" engine: one pass over the arriving
/// stream computes, simultaneously, the partial aggregates that many
/// continuous queries need (Sections 2.2 and 5; the technique follows the
/// paned/paired-window decomposition of [Krishnamurthy et al., SIGMOD'06]).
///
/// A sliding window <VISIBLE V ADVANCE A> decomposes into disjoint
/// *slices* of width gcd(V, A). Each arriving row updates the per-group
/// aggregate states of its slice exactly once; when a window closes, the
/// V/gcd slices it covers are merged. CQs over the same stream with the
/// same filter and grouping — even with different window widths, as long as
/// the slice width divides both — share one SliceAggregator, so N dashboard
/// metrics cost one update per row instead of N.
///
/// The aggregate-call list is the union across member CQs; each member gets
/// a slot mapping from its calls into the union.
///
/// Partition-parallel execution: a pipeline can be split into N *shard*
/// replicas (SetShardCount). Each replica shares the parent's filter,
/// group expressions, and call union (read-only at evaluation time) but
/// owns its own slice map, so N worker threads can absorb disjoint row
/// partitions concurrently. At window close, ComputeWindow on the parent
/// merges the shards' per-slice partial states; each group's position in
/// the output follows the global first-seen ingest sequence number, so the
/// merged relation is exactly what single-threaded absorption would have
/// produced (aggregate states Merge associatively; see AggState).
class SliceAggregator {
 public:
  /// `filter` (nullable) and `group_exprs` are bound against the stream
  /// schema; `slice_width_micros` must divide every member window's VISIBLE
  /// and ADVANCE.
  SliceAggregator(int64_t slice_width_micros, exec::BoundExprPtr filter,
                  std::vector<exec::BoundExprPtr> group_exprs);
  ~SliceAggregator();

  /// Charges group-state bytes (kAggregator account) to `governor` from
  /// now on, propagating to existing and future shard replicas. Existing
  /// state is charged immediately; nullptr detaches and releases.
  void BindGovernor(MemoryGovernor* governor);

  /// Registers a member CQ's aggregate calls; calls with a display name
  /// already in the union are shared, new ones are appended. Appending is
  /// only allowed while no rows have been absorbed (a later CQ with new
  /// aggregates gets its own aggregator — its history cannot be
  /// backfilled). Returns the union slot of each call, in order.
  Result<std::vector<size_t>> RegisterCalls(
      std::vector<exec::AggregateCall> calls);

  /// True if RegisterCalls(calls) would succeed: either the pipeline has
  /// absorbed nothing yet, or every call's display name is already in the
  /// union.
  bool CanAccept(const std::vector<exec::AggregateCall>& calls) const;

  /// Absorbs one stream row into its slice (ts / slice_width). `seq` is the
  /// row's global per-stream ingest sequence number; a group remembers the
  /// seq of its first row per slice so sharded partials can be merged back
  /// in exact arrival order.
  Status AddRow(int64_t ts, const Row& row, int64_t seq = 0);

  /// Produces the aggregated relation for the window [close - visible,
  /// close). With `slots == nullptr`, rows are laid out as
  /// [group keys..., all union aggregate results...]; otherwise only the
  /// requested union slots are merged and finalized, in the given order —
  /// a member CQ passes its slot mapping so it never pays for aggregates
  /// other members registered. With no group keys, exactly one row is
  /// produced (possibly from zero input). `visible` must be a multiple of
  /// the slice width. When shard replicas exist, partials from the parent
  /// and every shard are merged.
  Result<std::vector<Row>> ComputeWindow(
      int64_t close, int64_t visible,
      const std::vector<size_t>* slots = nullptr) const;

  /// Drops slices (own and shards') that no member window can reference.
  void EvictBefore(int64_t ts);

  // --- sharding --------------------------------------------------------------

  /// Re-partitions the pipeline for `n` parallel workers: existing shard
  /// state (if any) is folded back into the parent exactly once, then
  /// `n` fresh replicas are created (none for n <= 1, returning the
  /// pipeline to single-threaded operation). Callers must guarantee no
  /// worker is touching the shards (the runtime barriers first).
  Status SetShardCount(size_t n);
  size_t shard_count() const { return shards_.size(); }
  /// Worker `i`'s replica. Only that worker may call AddRow on it.
  SliceAggregator* shard(size_t i) { return shards_[i].get(); }

  /// The bound GROUP BY expressions (parent config; empty for scalar
  /// aggregation). The runtime evaluates these to hash-partition rows.
  const std::vector<exec::BoundExprPtr>& group_exprs() const {
    return parent_ != nullptr ? parent_->group_exprs() : group_exprs_;
  }

  int64_t slice_width() const { return slice_width_; }
  size_t union_call_count() const { return calls().size(); }
  /// Live slices across the parent and all shards.
  size_t live_slices() const;
  /// Rows absorbed across the parent and all shards.
  int64_t rows_absorbed() const;
  /// CQs that have attached to this pipeline (RegisterCalls count). One
  /// means dedicated; more means the per-row work is genuinely shared.
  int64_t member_cqs() const { return member_cqs_; }

  /// Records that a member window needs `visible` micros of history;
  /// eviction keeps max over members.
  void NoteWindowVisible(int64_t visible) {
    if (visible > max_visible_) max_visible_ = visible;
  }
  int64_t max_visible() const { return max_visible_; }

 private:
  struct Group {
    std::vector<Value> keys;
    std::vector<exec::AggStatePtr> states;
    /// Ingest seq of the first row that created this group in this slice;
    /// total order across shards (each row lands in exactly one shard).
    int64_t first_seq = 0;
  };
  struct Slice {
    std::vector<Group> groups;
    std::unordered_map<size_t, std::vector<size_t>> lookup;
    /// Governor charge attributed to this slice's groups; released whole
    /// when the slice is evicted.
    int64_t bytes = 0;
  };

  /// Shard replica: shares the parent's filter/group/call configuration,
  /// owns only its slice map.
  explicit SliceAggregator(const SliceAggregator* parent);

  const exec::BoundExpr* filter() const {
    return parent_ != nullptr ? parent_->filter() : filter_.get();
  }
  const std::vector<exec::AggregateCall>& calls() const {
    return parent_ != nullptr ? parent_->calls() : calls_;
  }
  /// True once any row or slice exists anywhere in the pipeline (parent or
  /// shards) — the point after which the call union is frozen.
  bool HasAbsorbed() const;

  Result<std::vector<exec::AggStatePtr>> NewStates() const;

  /// Locates or creates `keys`' group in `slice`, preserving insertion
  /// order; `first_seq` is recorded on creation.
  Group* FindOrCreateGroup(Slice* slice, std::vector<Value> keys,
                           int64_t first_seq, Status* status);

  /// Merges every shard's slices back into the parent's own slice map (in
  /// global first-seen order) and discards the shards.
  Status FoldShardsIn();

  /// Deterministic size estimate of one group (keys + fixed per-state
  /// cost); the governor charge unit for the kAggregator account.
  static int64_t GroupBytes(const Group& g);
  /// Records `bytes` against `slice` and the governor.
  void ChargeSlice(Slice* slice, int64_t bytes);
  void ReleaseAllCharges();

  const int64_t slice_width_;
  exec::BoundExprPtr filter_;
  std::vector<exec::BoundExprPtr> group_exprs_;
  std::vector<exec::AggregateCall> calls_;  // the union
  std::map<int64_t, Slice> slices_;         // keyed by slice start time
  // Atomics: bumped under the owning stream's ingest lock (or by the
  // owning shard worker), but read by concurrent SHOW STATS holding only
  // the shared engine lock. live_slice_count_ mirrors slices_.size() so
  // observability never has to walk the map a writer may be growing.
  std::atomic<int64_t> rows_absorbed_{0};
  std::atomic<int64_t> live_slice_count_{0};
  int64_t max_visible_ = 0;
  int64_t member_cqs_ = 0;

  MemoryGovernor* governor_ = nullptr;
  int64_t bytes_held_ = 0;

  const SliceAggregator* parent_ = nullptr;  // set on shard replicas
  std::vector<std::unique_ptr<SliceAggregator>> shards_;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_SHARED_AGGREGATION_H_
