#ifndef STREAMREL_STREAM_RECOVERY_H_
#define STREAMREL_STREAM_RECOVERY_H_

#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/transaction.h"
#include "storage/wal.h"
#include "stream/runtime.h"

namespace streamrel::stream {

/// The newest durable operator-state snapshot for one CQ.
struct CheckpointEntry {
  std::string blob;
  /// Source-stream watermark at checkpoint time: every row with a
  /// timestamp at or before this is already folded into the blob, so a
  /// re-feed after restore may start strictly past it.
  int64_t coverage = INT64_MIN;
};

/// What WAL replay reconstructed.
struct WalReplayResult {
  int64_t rows_inserted = 0;
  int64_t rows_deleted = 0;
  int64_t transactions_committed = 0;
  /// Last persisted window close per channel (lowercased name). Only
  /// progress records whose transaction committed count: a batch that
  /// failed mid-persist must not advance the recovered watermark, or its
  /// window would be lost forever.
  std::map<std::string, int64_t> channel_watermarks;
  /// Latest operator-state checkpoint per CQ (checkpoint strategy only).
  std::map<std::string, CheckpointEntry> latest_checkpoints;
  /// True when replay ended at a crash-damaged final record (clean stop,
  /// not an error — the synced prefix before it is intact).
  bool stopped_at_torn_tail = false;
  bool stopped_at_corrupt_tail = false;
};

/// Replays the WAL into freshly-created tables: inserts and deletes are
/// re-applied under new transactions that commit with their original
/// commit times, so window-consistent snapshots behave identically after
/// recovery. Transactions without a commit record are implicitly aborted
/// (their rows stay invisible) — the standard durability guarantee.
///
/// RowIds are stable across replay (tables start empty and inserts re-run
/// in order), so logged deletes target the right rows.
Result<WalReplayResult> ReplayWal(catalog::Catalog* catalog,
                                  storage::TransactionManager* txns,
                                  const storage::WriteAheadLog& wal);

/// The *active-table* recovery strategy the paper advocates (Section 4):
/// no operator state is persisted at all. After WAL replay rebuilds the
/// durable tables and channel watermarks, each restarted CQ simply resumes
/// from its channel's watermark — window state is rebuilt from the data
/// already in the active tables / newly arriving rows, and windows at or
/// before the watermark are suppressed rather than re-delivered.
Status ResumeFromActiveTables(StreamRuntime* runtime,
                              const WalReplayResult& replay);

/// The conventional alternative: periodically serialize every generic
/// CQ's window operator state into the WAL, paying steady-state I/O; on
/// restart, restore the blobs. Shared-strategy CQs keep their data in the
/// slice aggregator, which has no serializable operator state — they are
/// skipped at checkpoint time and recovered the active-table way instead
/// (RestoreFromCheckpoints falls back per CQ). Benchmarked against
/// ResumeFromActiveTables in T5.
class CheckpointManager {
 public:
  CheckpointManager(StreamRuntime* runtime, storage::WriteAheadLog* wal)
      : runtime_(runtime), wal_(wal) {}

  /// Snapshots every generic CQ's operator state into the WAL, stamped
  /// with the source stream's watermark (the blob's coverage). Fault
  /// point: `checkpoint.write`.
  Status WriteCheckpoint();

  /// Restores CQ state from the latest checkpoint blobs, then resumes
  /// channels from their replayed watermarks: a CQ whose blob was
  /// restored keeps its buffered rows and only suppresses re-delivery of
  /// already-persisted windows; a CQ without a blob (shared strategy, or
  /// never checkpointed) is reset to the watermark as in
  /// ResumeFromActiveTables. A complete recovery strategy by itself — do
  /// NOT also call ResumeFromActiveTables, which would drop restored
  /// state.
  Status RestoreFromCheckpoints(const WalReplayResult& replay);

  int64_t checkpoints_written() const { return checkpoints_written_; }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  StreamRuntime* runtime_;
  storage::WriteAheadLog* wal_;
  int64_t checkpoints_written_ = 0;
  int64_t bytes_written_ = 0;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_RECOVERY_H_
