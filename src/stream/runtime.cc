#include "stream/runtime.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "exec/operators.h"

namespace streamrel::stream {

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "BLOCK";
    case OverloadPolicy::kShedNewest:
      return "SHED_NEWEST";
    case OverloadPolicy::kShedOldest:
      return "SHED_OLDEST";
  }
  return "?";
}

namespace {
/// Rows per shard chunk: large enough that queue traffic is rare, small
/// enough that absorption overlaps the coordinator's stamping loop.
constexpr size_t kShardChunkRows = 256;
/// In-flight chunks per worker before Push blocks (backpressure bound).
constexpr size_t kShardQueueCapacity = 16;
}  // namespace

StreamRuntime::StreamRuntime(catalog::Catalog* catalog,
                             storage::TransactionManager* txns,
                             storage::WriteAheadLog* wal)
    : catalog_(catalog), txns_(txns), wal_(wal) {
  engine_rows_metric_ =
      metrics_.GetCounter("engine", "runtime", "rows_ingested");
}

StreamRuntime::StreamState* StreamRuntime::GetState(const std::string& name) {
  std::lock_guard<std::mutex> lock(maps_mu_);
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : it->second.get();
}
const StreamRuntime::StreamState* StreamRuntime::GetState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(maps_mu_);
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::RegisterStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr) {
    return Status::NotFound("stream '" + name + "' not in catalog");
  }
  std::string key = ToLower(name);
  {
    std::lock_guard<std::mutex> lock(maps_mu_);
    if (streams_.count(key)) return Status::OK();
  }
  // Metric cells are created before taking maps_mu_: the registry has its
  // own leaf mutex and cell creation is idempotent, so losing the insert
  // race below just means this state object (bound to the same cells) is
  // discarded.
  auto state = std::make_unique<StreamState>();
  state->info = info;
  state->rows_ingested_metric = metrics_.GetCounter(
      "stream", key, "rows_ingested");
  state->batches_published_metric = metrics_.GetCounter(
      "stream", key, "batches_published");
  state->rows_published_metric = metrics_.GetCounter(
      "stream", key, "rows_published");
  state->watermark_metric = metrics_.GetWatermarkGauge(
      "stream", key, "watermark");
  std::lock_guard<std::mutex> lock(maps_mu_);
  streams_.try_emplace(std::move(key), std::move(state));
  return Status::OK();
}

Status StreamRuntime::AttachCqSubscription(ContinuousQuery* cq) {
  RETURN_IF_ERROR(RegisterStream(cq->stream_name()));
  StreamState* state = GetState(cq->stream_name());
  if (cq->window().kind == WindowSpec::Kind::kSlices &&
      !state->info->is_derived) {
    return Status::InvalidArgument(
        "<SLICES n WINDOWS> applies to derived streams (it groups upstream "
        "window closes); stream '" + cq->stream_name() + "' is a raw stream "
        "— use a VISIBLE/ADVANCE window instead");
  }
  Subscription sub;
  sub.cq = cq;
  sub.window_op = std::make_unique<WindowOperator>(cq->window());
  sub.window_op->BindGovernor(&governor_);
  sub.feed_rows = !cq->is_shared();
  state->subs.push_back(std::move(sub));
  return Status::OK();
}

Result<ContinuousQuery*> StreamRuntime::CreateCq(const std::string& name,
                                                 const sql::SelectStmt& stmt,
                                                 bool allow_shared) {
  std::string key = ToLower(name);
  if (cqs_.count(key)) {
    return Status::AlreadyExists("a continuous query named '" + name +
                                 "' exists");
  }
  ASSIGN_OR_RETURN(std::unique_ptr<ContinuousQuery> cq,
                   ContinuousQuery::Build(name, stmt, catalog_, txns_,
                                          &registry_, allow_shared));
  ContinuousQuery* ptr = cq.get();
  RETURN_IF_ERROR(AttachCqSubscription(ptr));
  if (ptr->is_shared()) {
    ptr->shared_aggregator()->BindGovernor(&governor_);
  }
  // A CQ created while parallel may have opened a fresh pipeline; give it
  // the same shard fan-out as the rest of the engine.
  if (ptr->is_shared() &&
      ptr->shared_aggregator()->shard_count() != workers_.size()) {
    RETURN_IF_ERROR(ptr->shared_aggregator()->SetShardCount(workers_.size()));
  }
  ptr->BindMetrics(metrics_.GetCounter("cq", key, "windows_closed"),
                   metrics_.GetCounter("cq", key, "rows_emitted"),
                   metrics_.GetHistogram("cq", key, "eval_micros"));
  metrics_.GetGauge("cq", key, "is_shared")->Set(ptr->is_shared() ? 1 : 0);
  cqs_.emplace(std::move(key), std::move(cq));
  return ptr;
}

Status StreamRuntime::DropCq(const std::string& name) {
  std::string key = ToLower(name);
  auto it = cqs_.find(key);
  if (it == cqs_.end()) {
    return Status::NotFound("continuous query '" + name + "' not found");
  }
  ContinuousQuery* cq = it->second.get();
  StreamState* state = GetState(cq->stream_name());
  if (state != nullptr) {
    for (auto sit = state->subs.begin(); sit != state->subs.end(); ++sit) {
      if (sit->cq == cq) {
        state->subs.erase(sit);
        break;
      }
    }
  }
  cqs_.erase(it);
  metrics_.RemoveObject("cq", key);
  return Status::OK();
}

ContinuousQuery* StreamRuntime::GetCq(const std::string& name) {
  auto it = cqs_.find(ToLower(name));
  return it == cqs_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StartDerivedStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr || !info->is_derived) {
    return Status::NotFound("derived stream '" + name + "' not in catalog");
  }
  if (info->defining_query == nullptr) {
    return Status::Internal("derived stream '" + name +
                            "' has no defining query");
  }
  RETURN_IF_ERROR(RegisterStream(name));
  std::string cq_name = "$derived$" + ToLower(name);
  ASSIGN_OR_RETURN(ContinuousQuery * cq,
                   CreateCq(cq_name, *info->defining_query,
                            /*allow_shared=*/true));
  std::string stream_name = info->name;
  cq->AddCallback([this, stream_name](int64_t close,
                                      const std::vector<Row>& rows) {
    return PublishBatch(stream_name, close, rows);
  });
  return Status::OK();
}

Status StreamRuntime::StartChannel(const std::string& name) {
  catalog::ChannelInfo* info = catalog_->GetChannel(name);
  if (info == nullptr) {
    return Status::NotFound("channel '" + name + "' not in catalog");
  }
  catalog::TableInfo* table = catalog_->GetTable(info->into_table);
  if (table == nullptr) {
    return Status::NotFound("channel target table '" + info->into_table +
                            "' not found");
  }
  RETURN_IF_ERROR(RegisterStream(info->from_stream));
  std::string key = ToLower(name);
  if (channels_.count(key)) {
    return Status::AlreadyExists("channel '" + name + "' already running");
  }
  auto channel = std::make_unique<Channel>(*info, table, txns_, wal_);
  channel->BindMetrics(
      metrics_.GetCounter("channel", key, "batches_persisted"),
      metrics_.GetCounter("channel", key, "rows_persisted"),
      metrics_.GetWatermarkGauge("channel", key, "commit_watermark"));
  GetState(info->from_stream)->channels.push_back(channel.get());
  channels_.emplace(std::move(key), std::move(channel));
  return Status::OK();
}

Channel* StreamRuntime::GetChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  return it == channels_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StopChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  if (it == channels_.end()) {
    return Status::NotFound("channel '" + name + "' is not running");
  }
  Channel* channel = it->second.get();
  StreamState* state = GetState(channel->info().from_stream);
  if (state != nullptr) {
    for (auto cit = state->channels.begin(); cit != state->channels.end();
         ++cit) {
      if (*cit == channel) {
        state->channels.erase(cit);
        break;
      }
    }
  }
  channels_.erase(it);
  metrics_.RemoveObject("channel", ToLower(name));
  return Status::OK();
}

std::string StreamRuntime::StreamInUseBy(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  if (state == nullptr) return "";
  for (const Subscription& sub : state->subs) {
    return "continuous query '" + sub.cq->name() + "'";
  }
  if (!state->channels.empty()) {
    return "channel '" + state->channels.front()->info().name + "'";
  }
  if (!state->client_subs.empty()) return "a client subscription";
  return "";
}

std::string StreamRuntime::TableInUseBy(const std::string& table) const {
  std::string key = ToLower(table);
  for (const auto& [name, channel] : channels_) {
    if (ToLower(channel->info().into_table) == key) {
      return "channel '" + channel->info().name + "'";
    }
  }
  for (const auto& [name, cq] : cqs_) {
    for (const std::string& ref : cq->referenced_tables()) {
      if (ref == key) {
        return "continuous query '" + cq->name() + "'";
      }
    }
  }
  return "";
}

Status StreamRuntime::UnregisterStream(const std::string& name) {
  std::string in_use = StreamInUseBy(name);
  if (!in_use.empty()) {
    return Status::InvalidArgument("stream '" + name + "' is in use by " +
                                   in_use);
  }
  {
    std::lock_guard<std::mutex> lock(maps_mu_);
    streams_.erase(ToLower(name));
  }
  metrics_.RemoveObject("stream", ToLower(name));
  return Status::OK();
}

Result<int64_t> StreamRuntime::SubscribeStream(const std::string& stream,
                                               CqCallback callback) {
  RETURN_IF_ERROR(RegisterStream(stream));
  int64_t id = next_client_sub_id_.fetch_add(1, std::memory_order_relaxed);
  GetState(stream)->client_subs.push_back({id, std::move(callback)});
  return id;
}

Status StreamRuntime::UnsubscribeStream(const std::string& stream,
                                        int64_t id) {
  StreamState* state = GetState(stream);
  if (state == nullptr) return Status::OK();
  std::erase_if(state->client_subs, [id](const StreamState::ClientSub& s) {
    return s.id == id;
  });
  return Status::OK();
}

Status StreamRuntime::ProcessClosed(Subscription* sub,
                                    std::vector<WindowBatch>* closed) {
  for (WindowBatch& batch : *closed) {
    RETURN_IF_ERROR(sub->cq->OnWindowClose(batch));
  }
  closed->clear();
  return Status::OK();
}

Status StreamRuntime::Ingest(const std::string& stream,
                             const std::vector<Row>& rows,
                             int64_t system_time) {
  return IngestEntry(stream, rows, system_time, /*quarantine_flush=*/false);
}

Status StreamRuntime::IngestEntry(const std::string& stream,
                                  const std::vector<Row>& rows,
                                  int64_t system_time,
                                  bool quarantine_flush) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  // Lock order (DESIGN decision 11): shard fleet before any stream lock.
  // The worker fleet and its replica pipelines are shared engine-wide, so
  // parallel ingest batches take turns on the shard lock; at the default
  // PARALLELISM 1 there is no fleet and disjoint streams only contend on
  // their own ingest locks. A nested re-entry (a delivery callback
  // ingesting into another stream) already holds the shard lock and must
  // not retake it "fresh" below the stream rank it also holds.
  const bool take_shard = !workers_.empty() && !shard_mu_.held_by_me();
  if (take_shard) shard_mu_.lock();
  Status status;
  std::vector<PendingQuarantine> flush_batch;
  {
    std::lock_guard<OrderedMutex> stream_lock(state->mu);
    ++state->ingest_depth;
    status = IngestImpl(state, rows, system_time, quarantine_flush);
    --state->ingest_depth;
    if (state->ingest_depth == 0 && !state->pending_quarantine.empty()) {
      flush_batch = std::move(state->pending_quarantine);
      state->pending_quarantine.clear();
    }
  }
  if (take_shard) shard_mu_.unlock();
  // Dead-letter rows publish only after this stream's locks are released:
  // the flush is an ordinary ingest into the dead-letter stream and must
  // start from a clean lock state.
  if (!flush_batch.empty()) FlushQuarantine(std::move(flush_batch));
  return status;
}

Status StreamRuntime::IngestImpl(StreamState* state,
                                 const std::vector<Row>& rows,
                                 int64_t system_time, bool quarantine_flush) {
  catalog::StreamInfo* info = state->info;
  if (info->is_derived) {
    return Status::InvalidArgument(
        "cannot ingest into derived stream '" + info->name +
        "'; it is computed by its defining query");
  }
  // Batch-level contract violations stay hard errors; only per-row data
  // problems divert to the quarantine stream.
  if (info->cqtime_system && system_time == INT64_MIN) {
    return Status::InvalidArgument(
        "stream '" + info->name + "' has CQTIME SYSTEM; pass an ingest time");
  }
  size_t admit_begin = 0;
  size_t admit_end = rows.size();
  AdmitBatch(state, rows, &admit_begin, &admit_end, quarantine_flush);
  if (!workers_.empty()) {
    return IngestParallel(state, rows, system_time, admit_begin, admit_end,
                          quarantine_flush);
  }
  const size_t arity = info->schema.num_columns();
  std::vector<WindowBatch> closed;
  // Rows as actually admitted (CQTIME SYSTEM stamps the timestamp column);
  // channels and client subscriptions see these, not the raw input.
  std::vector<Row> admitted;
  admitted.reserve(admit_end - admit_begin);
  for (size_t i = admit_begin; i < admit_end; ++i) {
    const Row& row = rows[i];
    if (row.size() != arity) {
      QuarantineRow(state, "arity",
                    "row arity " + std::to_string(row.size()) +
                        " does not match stream '" + info->name + "' (" +
                        std::to_string(arity) + " columns)",
                    row, quarantine_flush);
      continue;
    }
    int64_t ts;
    if (info->cqtime_system) {
      ts = system_time;
    } else {
      const Value& tv = row[info->cqtime_column];
      if (tv.is_null()) {
        QuarantineRow(state, "null_cqtime", "NULL CQTIME value", row,
                      quarantine_flush);
        continue;
      }
      if (tv.type() == DataType::kTimestamp) {
        ts = tv.AsTimestampMicros();
      } else if (tv.type() == DataType::kInt64) {
        ts = tv.AsInt64();
      } else {
        QuarantineRow(state, "bad_cqtime_type",
                      std::string("CQTIME column must be a timestamp, got ") +
                          DataTypeToString(tv.type()),
                      row, quarantine_flush);
        continue;
      }
    }
    const int64_t wm = state->watermark.load(std::memory_order_relaxed);
    if (wm != INT64_MIN && ts < wm) {
      QuarantineRow(state, "late",
                    "ts " + std::to_string(ts) +
                        " is behind stream watermark " + std::to_string(wm),
                    row, quarantine_flush);
      continue;
    }
    Row stamped = row;
    if (info->cqtime_system) {
      stamped[info->cqtime_column] = Value::Timestamp(ts);
    }

    const int64_t seq = state->ingest_seq++;
    for (SliceAggregator* agg : registry_.ForStream(info->name)) {
      RETURN_IF_ERROR(agg->AddRow(ts, stamped, seq));
    }
    for (Subscription& sub : state->subs) {
      if (sub.feed_rows) {
        RETURN_IF_ERROR(sub.window_op->AddRow(ts, stamped, &closed));
      } else {
        sub.window_op->StartAt(ts);
        RETURN_IF_ERROR(sub.window_op->AdvanceTime(ts, &closed));
      }
      RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
    }
    state->watermark.store(ts, std::memory_order_relaxed);
    rows_ingested_.fetch_add(1, std::memory_order_relaxed);
    state->overload.rows_admitted.fetch_add(1, std::memory_order_relaxed);
    admitted.push_back(std::move(stamped));
  }
  const int64_t final_wm = state->watermark.load(std::memory_order_relaxed);
  if (metrics_.enabled() && !admitted.empty()) {
    const int64_t n = static_cast<int64_t>(admitted.size());
    state->rows_ingested_metric->Add(n);
    engine_rows_metric_->Add(n);
    state->watermark_metric->Set(final_wm);
  }

  // Evict slices no live window can reference.
  for (SliceAggregator* agg : registry_.ForStream(info->name)) {
    agg->EvictBefore(final_wm - agg->max_visible());
  }
  // Raw-stream channels archive ingested rows directly (commit time =
  // current watermark). Transient sink failures (WAL/table hiccups) are
  // retried with backoff; OnRawRows restores its watermark on failure, so
  // a retry re-delivers exactly the undelivered group.
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(WithSinkRetry(
        [&] { return channel->OnRawRows(final_wm, admitted); }));
  }
  // Index loop: a delivery callback may re-enter the engine and mutate
  // the subscription list.
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(final_wm, admitted));
  }
  return Status::OK();
}

Status StreamRuntime::IngestParallel(StreamState* state,
                                     const std::vector<Row>& rows,
                                     int64_t system_time, size_t admit_begin,
                                     size_t admit_end,
                                     bool quarantine_flush) {
  catalog::StreamInfo* info = state->info;
  const size_t arity = info->schema.num_columns();
  // Resolved on the coordinator and re-resolved after every window close:
  // a delivery callback may re-enter the engine and create a CQ on this
  // stream, growing (and reallocating) the registry's pipeline vector.
  // Workers are always drained before callbacks run, so nothing holds the
  // old pointer when that happens.
  const std::vector<SliceAggregator*>* pipelines =
      &registry_.ForStream(info->name);
  // Partitioning key: the first grouped pipeline's GROUP BY expressions.
  // Rows of one group always land on the same worker, so that pipeline's
  // per-group slice states are built in exact arrival order (bit-identical
  // to serial execution, even for floating-point states). Pipelines keyed
  // differently may see a group's rows split across workers; their
  // partials are still merged exactly at window close (AggState::Merge).
  // With no grouped pipeline (scalar aggregates only) rows round-robin.
  const std::vector<exec::BoundExprPtr>* routing = nullptr;
  auto pick_routing = [&]() {
    routing = nullptr;
    for (SliceAggregator* p : *pipelines) {
      if (!p->group_exprs().empty()) {
        routing = &p->group_exprs();
        break;
      }
    }
  };
  pick_routing();
  const size_t nworkers = workers_.size();
  std::vector<std::vector<ShardRow>> pending(nworkers);

  // Queued chunks are charged to the governor (kShardQueue) at enqueue;
  // the worker releases the charge once the chunk is absorbed.
  auto charge_chunk = [&](const std::vector<ShardRow>& chunk_rows) {
    int64_t bytes = 0;
    for (const ShardRow& sr : chunk_rows) bytes += EstimateRowBytes(sr.row);
    governor_.Add(MemoryGovernor::Account::kShardQueue, bytes);
    return bytes;
  };
  auto flush = [&]() -> Status {
    for (size_t w = 0; w < nworkers; ++w) {
      if (pending[w].empty()) continue;
      RETURN_IF_ERROR(FaultInjector::Instance().Hit("shard.enqueue"));
      int64_t bytes = charge_chunk(pending[w]);
      workers_[w]->Push(
          ShardChunk{pipelines, std::move(pending[w]), &governor_, bytes});
      pending[w].clear();
    }
    return Status::OK();
  };
  // Drains every worker and surfaces the first shard-side error. Run
  // before evaluating window closes (merges must see complete partials)
  // and before returning (callers may inspect state right after Ingest).
  auto barrier = [&]() -> Status {
    RETURN_IF_ERROR(flush());
    for (auto& w : workers_) w->WaitIdle();
    for (auto& w : workers_) RETURN_IF_ERROR(w->TakeError());
    return Status::OK();
  };
  // On a validation error mid-batch, rows before the bad one must still be
  // absorbed (the serial path processes row by row), so drain first.
  auto fail = [&](Status status) -> Status {
    Status drained = barrier();
    return status.ok() ? drained : status;
  };

  std::vector<WindowBatch> closed;
  std::vector<Row> admitted;
  admitted.reserve(admit_end - admit_begin);
  for (size_t i = admit_begin; i < admit_end; ++i) {
    const Row& row = rows[i];
    // Row-level validation runs on the coordinator with exactly the serial
    // path's checks, so quarantine decisions are identical at every
    // parallelism level.
    if (row.size() != arity) {
      QuarantineRow(state, "arity",
                    "row arity " + std::to_string(row.size()) +
                        " does not match stream '" + info->name + "' (" +
                        std::to_string(arity) + " columns)",
                    row, quarantine_flush);
      continue;
    }
    int64_t ts;
    if (info->cqtime_system) {
      ts = system_time;
    } else {
      const Value& tv = row[info->cqtime_column];
      if (tv.is_null()) {
        QuarantineRow(state, "null_cqtime", "NULL CQTIME value", row,
                      quarantine_flush);
        continue;
      }
      if (tv.type() == DataType::kTimestamp) {
        ts = tv.AsTimestampMicros();
      } else if (tv.type() == DataType::kInt64) {
        ts = tv.AsInt64();
      } else {
        QuarantineRow(state, "bad_cqtime_type",
                      std::string("CQTIME column must be a timestamp, got ") +
                          DataTypeToString(tv.type()),
                      row, quarantine_flush);
        continue;
      }
    }
    const int64_t wm = state->watermark.load(std::memory_order_relaxed);
    if (wm != INT64_MIN && ts < wm) {
      QuarantineRow(state, "late",
                    "ts " + std::to_string(ts) +
                        " is behind stream watermark " + std::to_string(wm),
                    row, quarantine_flush);
      continue;
    }
    Row stamped = row;
    if (info->cqtime_system) {
      stamped[info->cqtime_column] = Value::Timestamp(ts);
    }

    const int64_t seq = state->ingest_seq++;
    if (!pipelines->empty()) {
      size_t target = static_cast<size_t>(seq) % nworkers;
      if (routing != nullptr) {
        exec::EvalContext ctx;
        std::vector<Value> keys;
        keys.reserve(routing->size());
        bool keyed = true;
        for (const auto& g : *routing) {
          Result<Value> v = g->Eval(stamped, ctx);
          if (!v.ok()) {
            // Routing is best-effort: if the key errors, any worker will
            // reproduce the real evaluation error (or the row is filtered
            // out and the error never existed serially either).
            keyed = false;
            break;
          }
          keys.push_back(v.TakeValue());
        }
        if (keyed) target = exec::HashValues(keys) % nworkers;
      }
      pending[target].push_back(ShardRow{ts, seq, stamped});
      if (pending[target].size() >= kShardChunkRows) {
        Status st = FaultInjector::Instance().Hit("shard.enqueue");
        if (!st.ok()) return fail(std::move(st));
        int64_t bytes = charge_chunk(pending[target]);
        workers_[target]->Push(ShardChunk{pipelines,
                                          std::move(pending[target]),
                                          &governor_, bytes});
        pending[target].clear();
      }
    }

    for (Subscription& sub : state->subs) {
      Status status;
      if (sub.feed_rows) {
        status = sub.window_op->AddRow(ts, stamped, &closed);
      } else {
        sub.window_op->StartAt(ts);
        status = sub.window_op->AdvanceTime(ts, &closed);
      }
      if (!status.ok()) return fail(std::move(status));
      if (!closed.empty()) {
        // Merge-at-window-close: every row of this batch so far is in its
        // shard before any close is evaluated. Later rows in the batch
        // cannot contaminate the merge — their timestamps are at or past
        // the close, outside every closing window's slices.
        RETURN_IF_ERROR(barrier());
        RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
        pipelines = &registry_.ForStream(info->name);
        pick_routing();
      }
    }
    state->watermark.store(ts, std::memory_order_relaxed);
    rows_ingested_.fetch_add(1, std::memory_order_relaxed);
    state->overload.rows_admitted.fetch_add(1, std::memory_order_relaxed);
    admitted.push_back(std::move(stamped));
  }
  RETURN_IF_ERROR(barrier());
  const int64_t final_wm = state->watermark.load(std::memory_order_relaxed);
  if (metrics_.enabled() && !admitted.empty()) {
    const int64_t n = static_cast<int64_t>(admitted.size());
    state->rows_ingested_metric->Add(n);
    engine_rows_metric_->Add(n);
    state->watermark_metric->Set(final_wm);
  }
  UpdateShardMetrics();

  // Evict slices no live window can reference (workers are idle: eviction
  // walks shard state from the coordinator).
  for (SliceAggregator* agg : registry_.ForStream(info->name)) {
    agg->EvictBefore(final_wm - agg->max_visible());
  }
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(WithSinkRetry(
        [&] { return channel->OnRawRows(final_wm, admitted); }));
  }
  // Index loop: a delivery callback may re-enter the engine and mutate
  // the subscription list.
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(final_wm, admitted));
  }
  return Status::OK();
}

Status StreamRuntime::SetParallelism(int n) {
  if (n < 1 || n > kMaxParallelism) {
    return Status::InvalidArgument(
        "PARALLELISM must be between 1 and " +
        std::to_string(kMaxParallelism));
  }
  if (n == parallelism_.load(std::memory_order_relaxed)) return Status::OK();
  // The caller holds the engine lock exclusive, so no ingest is in flight
  // and the workers are idle; re-shard every pipeline (folding any
  // existing shard state back into the parents) before changing the
  // worker fleet.
  const size_t shard_count = n > 1 ? static_cast<size_t>(n) : 0;
  for (SliceAggregator* agg : registry_.MutablePipelines()) {
    RETURN_IF_ERROR(agg->SetShardCount(shard_count));
  }
  workers_.clear();
  for (size_t i = 0; i < shard_cells_.size(); ++i) {
    metrics_.RemoveObject("shard", "worker" + std::to_string(i));
  }
  shard_cells_.clear();
  parallelism_.store(n, std::memory_order_relaxed);
  for (size_t i = 0; i < shard_count; ++i) {
    workers_.emplace_back(
        std::make_unique<ShardWorker>(i, kShardQueueCapacity));
    const std::string name = "worker" + std::to_string(i);
    ShardMetricCells cells;
    cells.rows = metrics_.GetCounter("shard", name, "rows_absorbed");
    cells.chunks = metrics_.GetCounter("shard", name, "chunks");
    cells.backpressure_waits =
        metrics_.GetCounter("shard", name, "backpressure_waits");
    cells.queue_high_water =
        metrics_.GetGauge("shard", name, "queue_high_water");
    shard_cells_.push_back(cells);
  }
  metrics_.GetGauge("engine", "runtime", "parallelism")->Set(n);
  return Status::OK();
}

void StreamRuntime::UpdateShardMetrics() {
  if (!metrics_.enabled()) return;
  // Leaf mutex: the delta fold runs from ingest barriers (shard lock held)
  // and from gauge refreshes (no shard lock), possibly concurrently.
  std::lock_guard<std::mutex> lock(shard_metrics_mu_);
  for (size_t i = 0; i < workers_.size(); ++i) {
    ShardMetricCells& cells = shard_cells_[i];
    const ShardWorker& w = *workers_[i];
    cells.rows->Add(w.rows_processed() - cells.last_rows);
    cells.last_rows = w.rows_processed();
    cells.chunks->Add(w.chunks_processed() - cells.last_chunks);
    cells.last_chunks = w.chunks_processed();
    cells.backpressure_waits->Add(w.backpressure_waits() -
                                  cells.last_backpressure);
    cells.last_backpressure = w.backpressure_waits();
    cells.queue_high_water->Set(w.max_queue_depth());
  }
}

Status StreamRuntime::AdvanceTime(const std::string& stream,
                                  int64_t watermark) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  // Same lock order as IngestEntry: eviction below walks shard replica
  // state, so the fleet must be quiesced (holding the shard lock implies
  // idle workers) before the stream lock is taken.
  const bool take_shard = !workers_.empty() && !shard_mu_.held_by_me();
  if (take_shard) shard_mu_.lock();
  Status status = Status::OK();
  {
    std::lock_guard<OrderedMutex> stream_lock(state->mu);
    const int64_t wm = state->watermark.load(std::memory_order_relaxed);
    if (wm != INT64_MIN && watermark < wm) {
      status = Status::InvalidArgument("watermark regression");
    } else {
      std::vector<WindowBatch> closed;
      for (Subscription& sub : state->subs) {
        status = sub.window_op->AdvanceTime(watermark, &closed);
        if (status.ok()) status = ProcessClosed(&sub, &closed);
        if (!status.ok()) break;
      }
      if (status.ok()) {
        state->watermark.store(watermark, std::memory_order_relaxed);
        if (metrics_.enabled()) state->watermark_metric->Set(watermark);
        for (SliceAggregator* agg : registry_.ForStream(state->info->name)) {
          agg->EvictBefore(watermark - agg->max_visible());
        }
      }
    }
  }
  if (take_shard) shard_mu_.unlock();
  return status;
}

Status StreamRuntime::PublishBatch(const std::string& stream, int64_t close,
                                   const std::vector<Row>& rows) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    return Status::Internal("derived stream '" + stream + "' not registered");
  }
  // Nested same-rank acquisition: the caller holds the source stream's
  // ingest lock; cascades form a forest, so locking the derived stream
  // under it cannot deadlock.
  std::lock_guard<OrderedMutex> stream_lock(state->mu);
  std::vector<WindowBatch> closed;
  for (Subscription& sub : state->subs) {
    RETURN_IF_ERROR(sub.window_op->AddBatch(close, rows, &closed));
    RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
  }
  state->watermark.store(close, std::memory_order_relaxed);
  if (metrics_.enabled()) {
    state->batches_published_metric->Add();
    state->rows_published_metric->Add(static_cast<int64_t>(rows.size()));
    state->watermark_metric->Set(close);
  }
  for (Channel* channel : state->channels) {
    // OnBatch dedups closes at or below the channel watermark, so a retry
    // after a transient failure re-applies only the unpersisted batch.
    RETURN_IF_ERROR(
        WithSinkRetry([&] { return channel->OnBatch(close, rows); }));
  }
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(close, rows));
  }
  return Status::OK();
}

int64_t StreamRuntime::watermark(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? INT64_MIN
                          : state->watermark.load(std::memory_order_relaxed);
}

// The four recovery/checkpoint walkers below run only under the exclusive
// engine lock (RECOVER / CHECKPOINT statements), which excludes every
// shared-mode mutator of streams_, so they iterate without maps_mu_.
Result<std::string> StreamRuntime::SerializeCqState(
    const std::string& name) const {
  for (const auto& [key, state] : streams_) {
    for (const Subscription& sub : state->subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        if (!sub.feed_rows) {
          return Status::NotImplemented(
              "shared-strategy CQ '" + name +
              "' has no serializable operator state; recover it from "
              "active tables");
        }
        std::string blob;
        sub.window_op->Serialize(&blob);
        return blob;
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::RestoreCqState(const std::string& name,
                                     const std::string& blob) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state->subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        return sub.window_op->Restore(blob);
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::ResetCqToWatermark(const std::string& name,
                                         int64_t watermark) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state->subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        sub.window_op->ResetToWatermark(watermark);
        sub.cq->SetEmitWatermark(watermark);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::SetCqEmitWatermark(const std::string& name,
                                         int64_t watermark) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state->subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        sub.cq->SetEmitWatermark(watermark);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::SetOverloadPolicy(const std::string& stream,
                                        OverloadPolicy policy) {
  RETURN_IF_ERROR(RegisterStream(stream));
  GetState(stream)->policy = policy;
  return Status::OK();
}

OverloadPolicy StreamRuntime::overload_policy(
    const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? OverloadPolicy::kBlock : state->policy;
}

Status StreamRuntime::SetRetryLimit(int64_t attempts) {
  if (attempts < 1 || attempts > 1000) {
    return Status::InvalidArgument(
        "RETRY LIMIT must be between 1 and 1000 attempts");
  }
  retry_limit_.store(attempts, std::memory_order_relaxed);
  return Status::OK();
}

Status StreamRuntime::SetRetryBackoff(int64_t micros) {
  if (micros < 0) {
    return Status::InvalidArgument("RETRY BACKOFF must be >= 0");
  }
  retry_backoff_micros_.store(micros, std::memory_order_relaxed);
  return Status::OK();
}

StreamRuntime::OverloadCounters StreamRuntime::overload_counters(
    const std::string& stream) const {
  const StreamState* state = GetState(stream);
  OverloadCounters counters;
  if (state == nullptr) return counters;
  counters.rows_admitted =
      state->overload.rows_admitted.load(std::memory_order_relaxed);
  counters.rows_shed =
      state->overload.rows_shed.load(std::memory_order_relaxed);
  counters.rows_quarantined =
      state->overload.rows_quarantined.load(std::memory_order_relaxed);
  counters.blocked_micros =
      state->overload.blocked_micros.load(std::memory_order_relaxed);
  return counters;
}

std::string StreamRuntime::QuarantineName(const std::string& stream) {
  return ToLower(stream) + ".__quarantine";
}

bool StreamRuntime::IsQuarantineName(const std::string& name) {
  static const std::string kSuffix = ".__quarantine";
  std::string lower = ToLower(name);
  return lower.size() > kSuffix.size() &&
         lower.compare(lower.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) == 0;
}

Status StreamRuntime::EnsureQuarantineStream(const std::string& stream) {
  if (IsQuarantineName(stream)) {
    return Status::InvalidArgument(
        "quarantine streams have no quarantine of their own");
  }
  std::string qname = QuarantineName(stream);
  if (catalog_->GetStream(qname) == nullptr) {
    catalog::StreamInfo info;
    info.name = qname;
    info.schema = Schema({Column("qtime", DataType::kTimestamp),
                          Column("reason", DataType::kString),
                          Column("detail", DataType::kString),
                          Column("row_data", DataType::kString)});
    info.cqtime_column = 0;
    Status status = catalog_->CreateStream(std::move(info));
    // Concurrent ingests may race to create the same dead-letter stream;
    // the loser just registers the winner's.
    if (!status.ok() && catalog_->GetStream(qname) == nullptr) {
      return status;
    }
  }
  return RegisterStream(qname);
}

void StreamRuntime::AdmitBatch(StreamState* state,
                               const std::vector<Row>& rows, size_t* begin,
                               size_t* end, bool quarantine_flush) {
  *begin = 0;
  *end = rows.size();
  // Dead-letter capture must not itself be refused: quarantine flushes
  // bypass admission (their buffered footprint is still accounted).
  if (rows.empty() || quarantine_flush || governor_.budget() == 0) {
    return;
  }
  std::vector<int64_t> bytes(rows.size());
  int64_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    bytes[i] = EstimateRowBytes(rows[i]);
    total += bytes[i];
  }
  const int64_t headroom = governor_.headroom();
  if (total <= headroom) return;
  switch (state->policy) {
    case OverloadPolicy::kBlock: {
      // Backpressure: drain in-flight shard chunks (the only charge
      // another thread can free), then wait out the bounded budget for
      // headroom. BLOCK is lossless — after the timeout the batch is
      // admitted regardless, trading latency (counted), never rows.
      const auto start = std::chrono::steady_clock::now();
      for (auto& w : workers_) w->WaitIdle();
      constexpr int64_t kPollMicros = 200;
      const int64_t timeout =
          block_timeout_micros_.load(std::memory_order_relaxed);
      while (governor_.headroom() < total) {
        const int64_t waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (waited >= timeout) break;
        std::this_thread::sleep_for(std::chrono::microseconds(kPollMicros));
      }
      state->overload.blocked_micros.fetch_add(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count(),
          std::memory_order_relaxed);
      return;
    }
    case OverloadPolicy::kShedNewest: {
      // Keep the longest prefix that fits: older rows win under a policy
      // that sheds the newest arrivals.
      int64_t acc = 0;
      size_t keep = 0;
      while (keep < rows.size() && acc + bytes[keep] <= headroom) {
        acc += bytes[keep];
        ++keep;
      }
      *end = keep;
      break;
    }
    case OverloadPolicy::kShedOldest: {
      // Keep the longest suffix that fits; shedding the head preserves
      // the batch's timestamp order for the admitted remainder.
      int64_t acc = 0;
      size_t keep = 0;
      while (keep < rows.size() &&
             acc + bytes[rows.size() - 1 - keep] <= headroom) {
        acc += bytes[rows.size() - 1 - keep];
        ++keep;
      }
      *begin = rows.size() - keep;
      break;
    }
  }
  state->overload.rows_shed.fetch_add(
      static_cast<int64_t>(rows.size() - (*end - *begin)),
      std::memory_order_relaxed);
}

void StreamRuntime::QuarantineRow(StreamState* state, const char* reason,
                                  std::string detail, const Row& row,
                                  bool quarantine_flush) {
  state->overload.rows_quarantined.fetch_add(1, std::memory_order_relaxed);
  if (quarantine_flush) {
    // A dead-letter row rejected by its own dead-letter stream has
    // nowhere left to go; count the drop instead of recursing.
    quarantine_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const int64_t wm = state->watermark.load(std::memory_order_relaxed);
  const int64_t qtime = wm == INT64_MIN ? 0 : wm;
  Row qrow;
  qrow.reserve(4);
  qrow.push_back(Value::Timestamp(qtime));
  qrow.push_back(Value::String(reason));
  qrow.push_back(Value::String(std::move(detail)));
  qrow.push_back(Value::String(RowToString(row)));
  state->pending_quarantine.push_back(
      PendingQuarantine{state->info->name, std::move(qrow)});
}

void StreamRuntime::FlushQuarantine(std::vector<PendingQuarantine> batch) {
  // Publishing a dead-letter row can itself quarantine-drop (counted) but
  // never fails the source batch; errors here are absorbed.
  for (PendingQuarantine& q : batch) {
    Status status = EnsureQuarantineStream(q.stream);
    if (status.ok()) {
      status = IngestEntry(QuarantineName(q.stream), {std::move(q.row)},
                           INT64_MIN, /*quarantine_flush=*/true);
    }
    if (!status.ok()) {
      quarantine_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status StreamRuntime::WithSinkRetry(const std::function<Status()>& op) {
  // Sinks write tables (heap + indexes + WAL): each attempt runs under the
  // DML lock (rank kDml, above the stream locks held here), serializing
  // against SQL DML on the same tables. Backoff sleeps run unlocked.
  auto attempt = [&]() -> Status {
    std::lock_guard<OrderedMutex> dml_lock(dml_mu_);
    return op();
  };
  Status status = attempt();
  int64_t backoff = retry_backoff_micros_.load(std::memory_order_relaxed);
  const int64_t limit = retry_limit_.load(std::memory_order_relaxed);
  for (int64_t attempts = 1; attempts < limit; ++attempts) {
    if (status.ok() || status.code() != StatusCode::kIoError ||
        FaultInjector::IsInjectedCrash(status)) {
      return status;
    }
    // Exponential backoff with deterministic jitter: derived from the
    // cumulative retry counter instead of an RNG, so reruns of a seeded
    // workload retry on an identical schedule while periodic retries
    // still de-phase from one another.
    const int64_t jitter =
        (backoff / 4) * (retries_.load(std::memory_order_relaxed) % 3) / 2;
    if (backoff + jitter > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff + jitter));
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    status = attempt();
    if (backoff <= INT64_MAX / 2) backoff *= 2;
  }
  if (!status.ok() && limit > 1 &&
      status.code() == StatusCode::kIoError &&
      !FaultInjector::IsInjectedCrash(status)) {
    retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

std::vector<std::string> StreamRuntime::CqNames() const {
  std::vector<std::string> names;
  names.reserve(cqs_.size());
  for (const auto& [key, cq] : cqs_) names.push_back(cq->name());
  return names;
}

void StreamRuntime::StreamLockStats(int64_t* acquisitions,
                                    int64_t* contended) const {
  *acquisitions = 0;
  *contended = 0;
  std::lock_guard<std::mutex> lock(maps_mu_);
  for (const auto& [key, state] : streams_) {
    *acquisitions += state->mu.acquisitions();
    *contended += state->mu.contended();
  }
}

void StreamRuntime::RefreshMetricsGauges() {
  int64_t shared = 0;
  for (const auto& [key, cq] : cqs_) {
    if (cq->is_shared()) ++shared;
    metrics_.GetWatermarkGauge("cq", key, "emit_watermark")
        ->Set(cq->emit_watermark());
  }
  int64_t stream_count;
  {
    std::lock_guard<std::mutex> lock(maps_mu_);
    stream_count = static_cast<int64_t>(streams_.size());
  }
  metrics_.GetGauge("engine", "runtime", "streams")->Set(stream_count);
  metrics_.GetGauge("engine", "runtime", "cqs")
      ->Set(static_cast<int64_t>(cqs_.size()));
  metrics_.GetGauge("engine", "runtime", "cqs_shared")->Set(shared);
  metrics_.GetGauge("engine", "runtime", "cqs_generic")
      ->Set(static_cast<int64_t>(cqs_.size()) - shared);
  metrics_.GetGauge("engine", "runtime", "channels")
      ->Set(static_cast<int64_t>(channels_.size()));
  metrics_.GetGauge("engine", "runtime", "shared_pipelines")
      ->Set(static_cast<int64_t>(registry_.pipeline_count()));
  metrics_.GetGauge("engine", "runtime", "parallelism")
      ->Set(parallelism_.load(std::memory_order_relaxed));
  UpdateShardMetrics();

  {
    // maps_mu_ is held across the walk so a concurrent lazy registration
    // cannot invalidate the iterator; the registry calls below only nest
    // its own leaf mutex (the one permitted leaf-under-leaf pairing).
    std::lock_guard<std::mutex> lock(maps_mu_);
    for (const auto& [key, state_ptr] : streams_) {
      const StreamState& state = *state_ptr;
      metrics_.GetGauge("stream", key, "cq_subscriptions")
          ->Set(static_cast<int64_t>(state.subs.size()));
      metrics_.GetGauge("stream", key, "channels")
          ->Set(static_cast<int64_t>(state.channels.size()));
      metrics_.GetGauge("stream", key, "client_subscriptions")
          ->Set(static_cast<int64_t>(state.client_subs.size()));
      state.watermark_metric->Set(
          state.watermark.load(std::memory_order_relaxed));
      metrics_.GetGauge("overload", key, "rows_admitted")
          ->Set(state.overload.rows_admitted.load(std::memory_order_relaxed));
      metrics_.GetGauge("overload", key, "rows_shed")
          ->Set(state.overload.rows_shed.load(std::memory_order_relaxed));
      metrics_.GetGauge("overload", key, "rows_quarantined")
          ->Set(state.overload.rows_quarantined.load(
              std::memory_order_relaxed));
      metrics_.GetGauge("overload", key, "blocked_micros")
          ->Set(state.overload.blocked_micros.load(
              std::memory_order_relaxed));
    }
  }

  metrics_.GetGauge("overload", "governor", "bytes_held")
      ->Set(governor_.held());
  metrics_.GetGauge("overload", "governor", "bytes_budget")
      ->Set(governor_.budget());
  metrics_.GetGauge("overload", "governor", "bytes_peak")
      ->Set(governor_.peak_held());
  metrics_.GetGauge("overload", "governor", "bytes_window")
      ->Set(governor_.held(MemoryGovernor::Account::kWindow));
  metrics_.GetGauge("overload", "governor", "bytes_aggregator")
      ->Set(governor_.held(MemoryGovernor::Account::kAggregator));
  metrics_.GetGauge("overload", "governor", "bytes_shard_queue")
      ->Set(governor_.held(MemoryGovernor::Account::kShardQueue));
  metrics_.GetGauge("overload", "governor", "bytes_reorder")
      ->Set(governor_.held(MemoryGovernor::Account::kReorder));
  metrics_.GetGauge("overload", "governor", "bytes_net_send_queue")
      ->Set(governor_.held(MemoryGovernor::Account::kNetSendQueue));
  metrics_.GetGauge("overload", "retry", "retries")
      ->Set(retries_.load(std::memory_order_relaxed));
  metrics_.GetGauge("overload", "retry", "exhausted")
      ->Set(retries_exhausted_.load(std::memory_order_relaxed));
  metrics_.GetGauge("overload", "quarantine", "rows_dropped")
      ->Set(quarantine_dropped_.load(std::memory_order_relaxed));

  // Shared pipelines are keyed by their versioned signature; the registry
  // never drops one while the runtime lives, so refreshing in place is
  // enough (no RemoveObject pass needed).
  for (const auto& ref : registry_.Pipelines()) {
    metrics_.GetGauge("aggregator", ref.key, "member_cqs")
        ->Set(ref.aggregator->member_cqs());
    metrics_.GetGauge("aggregator", ref.key, "rows_absorbed")
        ->Set(ref.aggregator->rows_absorbed());
    metrics_.GetGauge("aggregator", ref.key, "live_slices")
        ->Set(static_cast<int64_t>(ref.aggregator->live_slices()));
    metrics_.GetGauge("aggregator", ref.key, "union_calls")
        ->Set(static_cast<int64_t>(ref.aggregator->union_call_count()));
    metrics_.GetGauge("aggregator", ref.key, "slice_width_micros")
        ->Set(ref.aggregator->slice_width());
  }
}

}  // namespace streamrel::stream
