#include "stream/runtime.h"

#include <chrono>
#include <thread>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "exec/operators.h"

namespace streamrel::stream {

const char* OverloadPolicyName(OverloadPolicy policy) {
  switch (policy) {
    case OverloadPolicy::kBlock:
      return "BLOCK";
    case OverloadPolicy::kShedNewest:
      return "SHED_NEWEST";
    case OverloadPolicy::kShedOldest:
      return "SHED_OLDEST";
  }
  return "?";
}

namespace {
/// Rows per shard chunk: large enough that queue traffic is rare, small
/// enough that absorption overlaps the coordinator's stamping loop.
constexpr size_t kShardChunkRows = 256;
/// In-flight chunks per worker before Push blocks (backpressure bound).
constexpr size_t kShardQueueCapacity = 16;
}  // namespace

StreamRuntime::StreamRuntime(catalog::Catalog* catalog,
                             storage::TransactionManager* txns,
                             storage::WriteAheadLog* wal)
    : catalog_(catalog), txns_(txns), wal_(wal) {
  engine_rows_metric_ =
      metrics_.GetCounter("engine", "runtime", "rows_ingested");
}

StreamRuntime::StreamState* StreamRuntime::GetState(const std::string& name) {
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}
const StreamRuntime::StreamState* StreamRuntime::GetState(
    const std::string& name) const {
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}

Status StreamRuntime::RegisterStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr) {
    return Status::NotFound("stream '" + name + "' not in catalog");
  }
  std::string key = ToLower(name);
  if (streams_.count(key)) return Status::OK();
  StreamState state;
  state.info = info;
  state.rows_ingested_metric = metrics_.GetCounter(
      "stream", key, "rows_ingested");
  state.batches_published_metric = metrics_.GetCounter(
      "stream", key, "batches_published");
  state.rows_published_metric = metrics_.GetCounter(
      "stream", key, "rows_published");
  state.watermark_metric = metrics_.GetWatermarkGauge(
      "stream", key, "watermark");
  streams_.emplace(std::move(key), std::move(state));
  return Status::OK();
}

Status StreamRuntime::AttachCqSubscription(ContinuousQuery* cq) {
  RETURN_IF_ERROR(RegisterStream(cq->stream_name()));
  StreamState* state = GetState(cq->stream_name());
  if (cq->window().kind == WindowSpec::Kind::kSlices &&
      !state->info->is_derived) {
    return Status::InvalidArgument(
        "<SLICES n WINDOWS> applies to derived streams (it groups upstream "
        "window closes); stream '" + cq->stream_name() + "' is a raw stream "
        "— use a VISIBLE/ADVANCE window instead");
  }
  Subscription sub;
  sub.cq = cq;
  sub.window_op = std::make_unique<WindowOperator>(cq->window());
  sub.window_op->BindGovernor(&governor_);
  sub.feed_rows = !cq->is_shared();
  state->subs.push_back(std::move(sub));
  return Status::OK();
}

Result<ContinuousQuery*> StreamRuntime::CreateCq(const std::string& name,
                                                 const sql::SelectStmt& stmt,
                                                 bool allow_shared) {
  std::string key = ToLower(name);
  if (cqs_.count(key)) {
    return Status::AlreadyExists("a continuous query named '" + name +
                                 "' exists");
  }
  ASSIGN_OR_RETURN(std::unique_ptr<ContinuousQuery> cq,
                   ContinuousQuery::Build(name, stmt, catalog_, txns_,
                                          &registry_, allow_shared));
  ContinuousQuery* ptr = cq.get();
  RETURN_IF_ERROR(AttachCqSubscription(ptr));
  if (ptr->is_shared()) {
    ptr->shared_aggregator()->BindGovernor(&governor_);
  }
  // A CQ created while parallel may have opened a fresh pipeline; give it
  // the same shard fan-out as the rest of the engine.
  if (ptr->is_shared() &&
      ptr->shared_aggregator()->shard_count() != workers_.size()) {
    RETURN_IF_ERROR(ptr->shared_aggregator()->SetShardCount(workers_.size()));
  }
  ptr->BindMetrics(metrics_.GetCounter("cq", key, "windows_closed"),
                   metrics_.GetCounter("cq", key, "rows_emitted"),
                   metrics_.GetHistogram("cq", key, "eval_micros"));
  metrics_.GetGauge("cq", key, "is_shared")->Set(ptr->is_shared() ? 1 : 0);
  cqs_.emplace(std::move(key), std::move(cq));
  return ptr;
}

Status StreamRuntime::DropCq(const std::string& name) {
  std::string key = ToLower(name);
  auto it = cqs_.find(key);
  if (it == cqs_.end()) {
    return Status::NotFound("continuous query '" + name + "' not found");
  }
  ContinuousQuery* cq = it->second.get();
  StreamState* state = GetState(cq->stream_name());
  if (state != nullptr) {
    for (auto sit = state->subs.begin(); sit != state->subs.end(); ++sit) {
      if (sit->cq == cq) {
        state->subs.erase(sit);
        break;
      }
    }
  }
  cqs_.erase(it);
  metrics_.RemoveObject("cq", key);
  return Status::OK();
}

ContinuousQuery* StreamRuntime::GetCq(const std::string& name) {
  auto it = cqs_.find(ToLower(name));
  return it == cqs_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StartDerivedStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr || !info->is_derived) {
    return Status::NotFound("derived stream '" + name + "' not in catalog");
  }
  if (info->defining_query == nullptr) {
    return Status::Internal("derived stream '" + name +
                            "' has no defining query");
  }
  RETURN_IF_ERROR(RegisterStream(name));
  std::string cq_name = "$derived$" + ToLower(name);
  ASSIGN_OR_RETURN(ContinuousQuery * cq,
                   CreateCq(cq_name, *info->defining_query,
                            /*allow_shared=*/true));
  std::string stream_name = info->name;
  cq->AddCallback([this, stream_name](int64_t close,
                                      const std::vector<Row>& rows) {
    return PublishBatch(stream_name, close, rows);
  });
  return Status::OK();
}

Status StreamRuntime::StartChannel(const std::string& name) {
  catalog::ChannelInfo* info = catalog_->GetChannel(name);
  if (info == nullptr) {
    return Status::NotFound("channel '" + name + "' not in catalog");
  }
  catalog::TableInfo* table = catalog_->GetTable(info->into_table);
  if (table == nullptr) {
    return Status::NotFound("channel target table '" + info->into_table +
                            "' not found");
  }
  RETURN_IF_ERROR(RegisterStream(info->from_stream));
  std::string key = ToLower(name);
  if (channels_.count(key)) {
    return Status::AlreadyExists("channel '" + name + "' already running");
  }
  auto channel = std::make_unique<Channel>(*info, table, txns_, wal_);
  channel->BindMetrics(
      metrics_.GetCounter("channel", key, "batches_persisted"),
      metrics_.GetCounter("channel", key, "rows_persisted"),
      metrics_.GetWatermarkGauge("channel", key, "commit_watermark"));
  GetState(info->from_stream)->channels.push_back(channel.get());
  channels_.emplace(std::move(key), std::move(channel));
  return Status::OK();
}

Channel* StreamRuntime::GetChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  return it == channels_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StopChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  if (it == channels_.end()) {
    return Status::NotFound("channel '" + name + "' is not running");
  }
  Channel* channel = it->second.get();
  StreamState* state = GetState(channel->info().from_stream);
  if (state != nullptr) {
    for (auto cit = state->channels.begin(); cit != state->channels.end();
         ++cit) {
      if (*cit == channel) {
        state->channels.erase(cit);
        break;
      }
    }
  }
  channels_.erase(it);
  metrics_.RemoveObject("channel", ToLower(name));
  return Status::OK();
}

std::string StreamRuntime::StreamInUseBy(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  if (state == nullptr) return "";
  for (const Subscription& sub : state->subs) {
    return "continuous query '" + sub.cq->name() + "'";
  }
  if (!state->channels.empty()) {
    return "channel '" + state->channels.front()->info().name + "'";
  }
  if (!state->client_subs.empty()) return "a client subscription";
  return "";
}

std::string StreamRuntime::TableInUseBy(const std::string& table) const {
  std::string key = ToLower(table);
  for (const auto& [name, channel] : channels_) {
    if (ToLower(channel->info().into_table) == key) {
      return "channel '" + channel->info().name + "'";
    }
  }
  for (const auto& [name, cq] : cqs_) {
    for (const std::string& ref : cq->referenced_tables()) {
      if (ref == key) {
        return "continuous query '" + cq->name() + "'";
      }
    }
  }
  return "";
}

Status StreamRuntime::UnregisterStream(const std::string& name) {
  std::string in_use = StreamInUseBy(name);
  if (!in_use.empty()) {
    return Status::InvalidArgument("stream '" + name + "' is in use by " +
                                   in_use);
  }
  streams_.erase(ToLower(name));
  metrics_.RemoveObject("stream", ToLower(name));
  return Status::OK();
}

Result<int64_t> StreamRuntime::SubscribeStream(const std::string& stream,
                                               CqCallback callback) {
  RETURN_IF_ERROR(RegisterStream(stream));
  int64_t id = next_client_sub_id_++;
  GetState(stream)->client_subs.push_back({id, std::move(callback)});
  return id;
}

Status StreamRuntime::UnsubscribeStream(const std::string& stream,
                                        int64_t id) {
  StreamState* state = GetState(stream);
  if (state == nullptr) return Status::OK();
  std::erase_if(state->client_subs, [id](const StreamState::ClientSub& s) {
    return s.id == id;
  });
  return Status::OK();
}

Status StreamRuntime::ProcessClosed(Subscription* sub,
                                    std::vector<WindowBatch>* closed) {
  for (WindowBatch& batch : *closed) {
    RETURN_IF_ERROR(sub->cq->OnWindowClose(batch));
  }
  closed->clear();
  return Status::OK();
}

Status StreamRuntime::Ingest(const std::string& stream,
                             const std::vector<Row>& rows,
                             int64_t system_time) {
  // Dead-letter rows collected anywhere below are published only once the
  // outermost entry unwinds — a delivery callback may re-enter Ingest.
  ++ingest_depth_;
  Status status = IngestImpl(stream, rows, system_time);
  --ingest_depth_;
  if (ingest_depth_ == 0) FlushQuarantine();
  return status;
}

Status StreamRuntime::IngestImpl(const std::string& stream,
                                 const std::vector<Row>& rows,
                                 int64_t system_time) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  catalog::StreamInfo* info = state->info;
  if (info->is_derived) {
    return Status::InvalidArgument(
        "cannot ingest into derived stream '" + stream +
        "'; it is computed by its defining query");
  }
  // Batch-level contract violations stay hard errors; only per-row data
  // problems divert to the quarantine stream.
  if (info->cqtime_system && system_time == INT64_MIN) {
    return Status::InvalidArgument(
        "stream '" + stream + "' has CQTIME SYSTEM; pass an ingest time");
  }
  size_t admit_begin = 0;
  size_t admit_end = rows.size();
  AdmitBatch(state, rows, &admit_begin, &admit_end);
  if (!workers_.empty()) {
    return IngestParallel(state, rows, system_time, admit_begin, admit_end);
  }
  const size_t arity = info->schema.num_columns();
  std::vector<WindowBatch> closed;
  // Rows as actually admitted (CQTIME SYSTEM stamps the timestamp column);
  // channels and client subscriptions see these, not the raw input.
  std::vector<Row> admitted;
  admitted.reserve(admit_end - admit_begin);
  for (size_t i = admit_begin; i < admit_end; ++i) {
    const Row& row = rows[i];
    if (row.size() != arity) {
      QuarantineRow(state, "arity",
                    "row arity " + std::to_string(row.size()) +
                        " does not match stream '" + stream + "' (" +
                        std::to_string(arity) + " columns)",
                    row);
      continue;
    }
    int64_t ts;
    if (info->cqtime_system) {
      ts = system_time;
    } else {
      const Value& tv = row[info->cqtime_column];
      if (tv.is_null()) {
        QuarantineRow(state, "null_cqtime", "NULL CQTIME value", row);
        continue;
      }
      if (tv.type() == DataType::kTimestamp) {
        ts = tv.AsTimestampMicros();
      } else if (tv.type() == DataType::kInt64) {
        ts = tv.AsInt64();
      } else {
        QuarantineRow(state, "bad_cqtime_type",
                      std::string("CQTIME column must be a timestamp, got ") +
                          DataTypeToString(tv.type()),
                      row);
        continue;
      }
    }
    if (state->watermark != INT64_MIN && ts < state->watermark) {
      QuarantineRow(state, "late",
                    "ts " + std::to_string(ts) +
                        " is behind stream watermark " +
                        std::to_string(state->watermark),
                    row);
      continue;
    }
    Row stamped = row;
    if (info->cqtime_system) {
      stamped[info->cqtime_column] = Value::Timestamp(ts);
    }

    const int64_t seq = state->ingest_seq++;
    for (SliceAggregator* agg : registry_.ForStream(info->name)) {
      RETURN_IF_ERROR(agg->AddRow(ts, stamped, seq));
    }
    for (Subscription& sub : state->subs) {
      if (sub.feed_rows) {
        RETURN_IF_ERROR(sub.window_op->AddRow(ts, stamped, &closed));
      } else {
        sub.window_op->StartAt(ts);
        RETURN_IF_ERROR(sub.window_op->AdvanceTime(ts, &closed));
      }
      RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
    }
    state->watermark = ts;
    ++rows_ingested_;
    ++state->overload.rows_admitted;
    admitted.push_back(std::move(stamped));
  }
  if (metrics_.enabled() && !admitted.empty()) {
    const int64_t n = static_cast<int64_t>(admitted.size());
    state->rows_ingested_metric->Add(n);
    engine_rows_metric_->Add(n);
    state->watermark_metric->Set(state->watermark);
  }

  // Evict slices no live window can reference.
  for (SliceAggregator* agg : registry_.ForStream(info->name)) {
    agg->EvictBefore(state->watermark - agg->max_visible());
  }
  // Raw-stream channels archive ingested rows directly (commit time =
  // current watermark). Transient sink failures (WAL/table hiccups) are
  // retried with backoff; OnRawRows restores its watermark on failure, so
  // a retry re-delivers exactly the undelivered group.
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(WithSinkRetry(
        [&] { return channel->OnRawRows(state->watermark, admitted); }));
  }
  // Index loop: a delivery callback may re-enter the engine and mutate
  // the subscription list.
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(state->watermark,
                                                   admitted));
  }
  return Status::OK();
}

Status StreamRuntime::IngestParallel(StreamState* state,
                                     const std::vector<Row>& rows,
                                     int64_t system_time, size_t admit_begin,
                                     size_t admit_end) {
  catalog::StreamInfo* info = state->info;
  const size_t arity = info->schema.num_columns();
  // Resolved on the coordinator and re-resolved after every window close:
  // a delivery callback may re-enter the engine and create a CQ on this
  // stream, growing (and reallocating) the registry's pipeline vector.
  // Workers are always drained before callbacks run, so nothing holds the
  // old pointer when that happens.
  const std::vector<SliceAggregator*>* pipelines =
      &registry_.ForStream(info->name);
  // Partitioning key: the first grouped pipeline's GROUP BY expressions.
  // Rows of one group always land on the same worker, so that pipeline's
  // per-group slice states are built in exact arrival order (bit-identical
  // to serial execution, even for floating-point states). Pipelines keyed
  // differently may see a group's rows split across workers; their
  // partials are still merged exactly at window close (AggState::Merge).
  // With no grouped pipeline (scalar aggregates only) rows round-robin.
  const std::vector<exec::BoundExprPtr>* routing = nullptr;
  auto pick_routing = [&]() {
    routing = nullptr;
    for (SliceAggregator* p : *pipelines) {
      if (!p->group_exprs().empty()) {
        routing = &p->group_exprs();
        break;
      }
    }
  };
  pick_routing();
  const size_t nworkers = workers_.size();
  std::vector<std::vector<ShardRow>> pending(nworkers);

  // Queued chunks are charged to the governor (kShardQueue) at enqueue;
  // the worker releases the charge once the chunk is absorbed.
  auto charge_chunk = [&](const std::vector<ShardRow>& chunk_rows) {
    int64_t bytes = 0;
    for (const ShardRow& sr : chunk_rows) bytes += EstimateRowBytes(sr.row);
    governor_.Add(MemoryGovernor::Account::kShardQueue, bytes);
    return bytes;
  };
  auto flush = [&]() -> Status {
    for (size_t w = 0; w < nworkers; ++w) {
      if (pending[w].empty()) continue;
      RETURN_IF_ERROR(FaultInjector::Instance().Hit("shard.enqueue"));
      int64_t bytes = charge_chunk(pending[w]);
      workers_[w]->Push(
          ShardChunk{pipelines, std::move(pending[w]), &governor_, bytes});
      pending[w].clear();
    }
    return Status::OK();
  };
  // Drains every worker and surfaces the first shard-side error. Run
  // before evaluating window closes (merges must see complete partials)
  // and before returning (callers may inspect state right after Ingest).
  auto barrier = [&]() -> Status {
    RETURN_IF_ERROR(flush());
    for (auto& w : workers_) w->WaitIdle();
    for (auto& w : workers_) RETURN_IF_ERROR(w->TakeError());
    return Status::OK();
  };
  // On a validation error mid-batch, rows before the bad one must still be
  // absorbed (the serial path processes row by row), so drain first.
  auto fail = [&](Status status) -> Status {
    Status drained = barrier();
    return status.ok() ? drained : status;
  };

  std::vector<WindowBatch> closed;
  std::vector<Row> admitted;
  admitted.reserve(admit_end - admit_begin);
  for (size_t i = admit_begin; i < admit_end; ++i) {
    const Row& row = rows[i];
    // Row-level validation runs on the coordinator with exactly the serial
    // path's checks, so quarantine decisions are identical at every
    // parallelism level.
    if (row.size() != arity) {
      QuarantineRow(state, "arity",
                    "row arity " + std::to_string(row.size()) +
                        " does not match stream '" + info->name + "' (" +
                        std::to_string(arity) + " columns)",
                    row);
      continue;
    }
    int64_t ts;
    if (info->cqtime_system) {
      ts = system_time;
    } else {
      const Value& tv = row[info->cqtime_column];
      if (tv.is_null()) {
        QuarantineRow(state, "null_cqtime", "NULL CQTIME value", row);
        continue;
      }
      if (tv.type() == DataType::kTimestamp) {
        ts = tv.AsTimestampMicros();
      } else if (tv.type() == DataType::kInt64) {
        ts = tv.AsInt64();
      } else {
        QuarantineRow(state, "bad_cqtime_type",
                      std::string("CQTIME column must be a timestamp, got ") +
                          DataTypeToString(tv.type()),
                      row);
        continue;
      }
    }
    if (state->watermark != INT64_MIN && ts < state->watermark) {
      QuarantineRow(state, "late",
                    "ts " + std::to_string(ts) +
                        " is behind stream watermark " +
                        std::to_string(state->watermark),
                    row);
      continue;
    }
    Row stamped = row;
    if (info->cqtime_system) {
      stamped[info->cqtime_column] = Value::Timestamp(ts);
    }

    const int64_t seq = state->ingest_seq++;
    if (!pipelines->empty()) {
      size_t target = static_cast<size_t>(seq) % nworkers;
      if (routing != nullptr) {
        exec::EvalContext ctx;
        std::vector<Value> keys;
        keys.reserve(routing->size());
        bool keyed = true;
        for (const auto& g : *routing) {
          Result<Value> v = g->Eval(stamped, ctx);
          if (!v.ok()) {
            // Routing is best-effort: if the key errors, any worker will
            // reproduce the real evaluation error (or the row is filtered
            // out and the error never existed serially either).
            keyed = false;
            break;
          }
          keys.push_back(v.TakeValue());
        }
        if (keyed) target = exec::HashValues(keys) % nworkers;
      }
      pending[target].push_back(ShardRow{ts, seq, stamped});
      if (pending[target].size() >= kShardChunkRows) {
        Status st = FaultInjector::Instance().Hit("shard.enqueue");
        if (!st.ok()) return fail(std::move(st));
        int64_t bytes = charge_chunk(pending[target]);
        workers_[target]->Push(ShardChunk{pipelines,
                                          std::move(pending[target]),
                                          &governor_, bytes});
        pending[target].clear();
      }
    }

    for (Subscription& sub : state->subs) {
      Status status;
      if (sub.feed_rows) {
        status = sub.window_op->AddRow(ts, stamped, &closed);
      } else {
        sub.window_op->StartAt(ts);
        status = sub.window_op->AdvanceTime(ts, &closed);
      }
      if (!status.ok()) return fail(std::move(status));
      if (!closed.empty()) {
        // Merge-at-window-close: every row of this batch so far is in its
        // shard before any close is evaluated. Later rows in the batch
        // cannot contaminate the merge — their timestamps are at or past
        // the close, outside every closing window's slices.
        RETURN_IF_ERROR(barrier());
        RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
        pipelines = &registry_.ForStream(info->name);
        pick_routing();
      }
    }
    state->watermark = ts;
    ++rows_ingested_;
    ++state->overload.rows_admitted;
    admitted.push_back(std::move(stamped));
  }
  RETURN_IF_ERROR(barrier());
  if (metrics_.enabled() && !admitted.empty()) {
    const int64_t n = static_cast<int64_t>(admitted.size());
    state->rows_ingested_metric->Add(n);
    engine_rows_metric_->Add(n);
    state->watermark_metric->Set(state->watermark);
  }
  UpdateShardMetrics();

  // Evict slices no live window can reference (workers are idle: eviction
  // walks shard state from the coordinator).
  for (SliceAggregator* agg : registry_.ForStream(info->name)) {
    agg->EvictBefore(state->watermark - agg->max_visible());
  }
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(WithSinkRetry(
        [&] { return channel->OnRawRows(state->watermark, admitted); }));
  }
  // Index loop: a delivery callback may re-enter the engine and mutate
  // the subscription list.
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(state->watermark,
                                                   admitted));
  }
  return Status::OK();
}

Status StreamRuntime::SetParallelism(int n) {
  if (n < 1 || n > kMaxParallelism) {
    return Status::InvalidArgument(
        "PARALLELISM must be between 1 and " +
        std::to_string(kMaxParallelism));
  }
  if (n == parallelism_) return Status::OK();
  // Workers are always idle between Ingest calls; re-shard every pipeline
  // (folding any existing shard state back into the parents) before
  // changing the worker fleet.
  const size_t shard_count = n > 1 ? static_cast<size_t>(n) : 0;
  for (SliceAggregator* agg : registry_.MutablePipelines()) {
    RETURN_IF_ERROR(agg->SetShardCount(shard_count));
  }
  workers_.clear();
  for (size_t i = 0; i < shard_cells_.size(); ++i) {
    metrics_.RemoveObject("shard", "worker" + std::to_string(i));
  }
  shard_cells_.clear();
  parallelism_ = n;
  for (size_t i = 0; i < shard_count; ++i) {
    workers_.emplace_back(
        std::make_unique<ShardWorker>(i, kShardQueueCapacity));
    const std::string name = "worker" + std::to_string(i);
    ShardMetricCells cells;
    cells.rows = metrics_.GetCounter("shard", name, "rows_absorbed");
    cells.chunks = metrics_.GetCounter("shard", name, "chunks");
    cells.backpressure_waits =
        metrics_.GetCounter("shard", name, "backpressure_waits");
    cells.queue_high_water =
        metrics_.GetGauge("shard", name, "queue_high_water");
    shard_cells_.push_back(cells);
  }
  metrics_.GetGauge("engine", "runtime", "parallelism")->Set(n);
  return Status::OK();
}

void StreamRuntime::UpdateShardMetrics() {
  if (!metrics_.enabled()) return;
  for (size_t i = 0; i < workers_.size(); ++i) {
    ShardMetricCells& cells = shard_cells_[i];
    const ShardWorker& w = *workers_[i];
    cells.rows->Add(w.rows_processed() - cells.last_rows);
    cells.last_rows = w.rows_processed();
    cells.chunks->Add(w.chunks_processed() - cells.last_chunks);
    cells.last_chunks = w.chunks_processed();
    cells.backpressure_waits->Add(w.backpressure_waits() -
                                  cells.last_backpressure);
    cells.last_backpressure = w.backpressure_waits();
    cells.queue_high_water->Set(w.max_queue_depth());
  }
}

Status StreamRuntime::AdvanceTime(const std::string& stream,
                                  int64_t watermark) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  if (state->watermark != INT64_MIN && watermark < state->watermark) {
    return Status::InvalidArgument("watermark regression");
  }
  std::vector<WindowBatch> closed;
  for (Subscription& sub : state->subs) {
    RETURN_IF_ERROR(sub.window_op->AdvanceTime(watermark, &closed));
    RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
  }
  state->watermark = watermark;
  if (metrics_.enabled()) state->watermark_metric->Set(watermark);
  for (SliceAggregator* agg : registry_.ForStream(state->info->name)) {
    agg->EvictBefore(state->watermark - agg->max_visible());
  }
  return Status::OK();
}

Status StreamRuntime::PublishBatch(const std::string& stream, int64_t close,
                                   const std::vector<Row>& rows) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    return Status::Internal("derived stream '" + stream + "' not registered");
  }
  std::vector<WindowBatch> closed;
  for (Subscription& sub : state->subs) {
    RETURN_IF_ERROR(sub.window_op->AddBatch(close, rows, &closed));
    RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
  }
  state->watermark = close;
  if (metrics_.enabled()) {
    state->batches_published_metric->Add();
    state->rows_published_metric->Add(static_cast<int64_t>(rows.size()));
    state->watermark_metric->Set(close);
  }
  for (Channel* channel : state->channels) {
    // OnBatch dedups closes at or below the channel watermark, so a retry
    // after a transient failure re-applies only the unpersisted batch.
    RETURN_IF_ERROR(
        WithSinkRetry([&] { return channel->OnBatch(close, rows); }));
  }
  for (size_t i = 0; i < state->client_subs.size(); ++i) {
    RETURN_IF_ERROR(state->client_subs[i].callback(close, rows));
  }
  return Status::OK();
}

int64_t StreamRuntime::watermark(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? INT64_MIN : state->watermark;
}

Result<std::string> StreamRuntime::SerializeCqState(
    const std::string& name) const {
  for (const auto& [key, state] : streams_) {
    for (const Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        if (!sub.feed_rows) {
          return Status::NotImplemented(
              "shared-strategy CQ '" + name +
              "' has no serializable operator state; recover it from "
              "active tables");
        }
        std::string blob;
        sub.window_op->Serialize(&blob);
        return blob;
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::RestoreCqState(const std::string& name,
                                     const std::string& blob) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        return sub.window_op->Restore(blob);
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::ResetCqToWatermark(const std::string& name,
                                         int64_t watermark) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        sub.window_op->ResetToWatermark(watermark);
        sub.cq->SetEmitWatermark(watermark);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::SetCqEmitWatermark(const std::string& name,
                                         int64_t watermark) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        sub.cq->SetEmitWatermark(watermark);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::SetOverloadPolicy(const std::string& stream,
                                        OverloadPolicy policy) {
  RETURN_IF_ERROR(RegisterStream(stream));
  GetState(stream)->policy = policy;
  return Status::OK();
}

OverloadPolicy StreamRuntime::overload_policy(
    const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? OverloadPolicy::kBlock : state->policy;
}

Status StreamRuntime::SetRetryLimit(int64_t attempts) {
  if (attempts < 1 || attempts > 1000) {
    return Status::InvalidArgument(
        "RETRY LIMIT must be between 1 and 1000 attempts");
  }
  retry_limit_ = attempts;
  return Status::OK();
}

Status StreamRuntime::SetRetryBackoff(int64_t micros) {
  if (micros < 0) {
    return Status::InvalidArgument("RETRY BACKOFF must be >= 0");
  }
  retry_backoff_micros_ = micros;
  return Status::OK();
}

StreamRuntime::OverloadCounters StreamRuntime::overload_counters(
    const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? OverloadCounters{} : state->overload;
}

std::string StreamRuntime::QuarantineName(const std::string& stream) {
  return ToLower(stream) + ".__quarantine";
}

bool StreamRuntime::IsQuarantineName(const std::string& name) {
  static const std::string kSuffix = ".__quarantine";
  std::string lower = ToLower(name);
  return lower.size() > kSuffix.size() &&
         lower.compare(lower.size() - kSuffix.size(), kSuffix.size(),
                       kSuffix) == 0;
}

Status StreamRuntime::EnsureQuarantineStream(const std::string& stream) {
  if (IsQuarantineName(stream)) {
    return Status::InvalidArgument(
        "quarantine streams have no quarantine of their own");
  }
  std::string qname = QuarantineName(stream);
  if (catalog_->GetStream(qname) == nullptr) {
    catalog::StreamInfo info;
    info.name = qname;
    info.schema = Schema({Column("qtime", DataType::kTimestamp),
                          Column("reason", DataType::kString),
                          Column("detail", DataType::kString),
                          Column("row_data", DataType::kString)});
    info.cqtime_column = 0;
    RETURN_IF_ERROR(catalog_->CreateStream(std::move(info)));
  }
  return RegisterStream(qname);
}

void StreamRuntime::AdmitBatch(StreamState* state,
                               const std::vector<Row>& rows, size_t* begin,
                               size_t* end) {
  *begin = 0;
  *end = rows.size();
  // Dead-letter capture must not itself be refused: quarantine flushes
  // bypass admission (their buffered footprint is still accounted).
  if (rows.empty() || flushing_quarantine_ || governor_.budget() == 0) {
    return;
  }
  std::vector<int64_t> bytes(rows.size());
  int64_t total = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    bytes[i] = EstimateRowBytes(rows[i]);
    total += bytes[i];
  }
  const int64_t headroom = governor_.headroom();
  if (total <= headroom) return;
  switch (state->policy) {
    case OverloadPolicy::kBlock: {
      // Backpressure: drain in-flight shard chunks (the only charge
      // another thread can free), then wait out the bounded budget for
      // headroom. BLOCK is lossless — after the timeout the batch is
      // admitted regardless, trading latency (counted), never rows.
      const auto start = std::chrono::steady_clock::now();
      for (auto& w : workers_) w->WaitIdle();
      constexpr int64_t kPollMicros = 200;
      while (governor_.headroom() < total) {
        const int64_t waited =
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (waited >= block_timeout_micros_) break;
        std::this_thread::sleep_for(std::chrono::microseconds(kPollMicros));
      }
      state->overload.blocked_micros +=
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      return;
    }
    case OverloadPolicy::kShedNewest: {
      // Keep the longest prefix that fits: older rows win under a policy
      // that sheds the newest arrivals.
      int64_t acc = 0;
      size_t keep = 0;
      while (keep < rows.size() && acc + bytes[keep] <= headroom) {
        acc += bytes[keep];
        ++keep;
      }
      *end = keep;
      break;
    }
    case OverloadPolicy::kShedOldest: {
      // Keep the longest suffix that fits; shedding the head preserves
      // the batch's timestamp order for the admitted remainder.
      int64_t acc = 0;
      size_t keep = 0;
      while (keep < rows.size() &&
             acc + bytes[rows.size() - 1 - keep] <= headroom) {
        acc += bytes[rows.size() - 1 - keep];
        ++keep;
      }
      *begin = rows.size() - keep;
      break;
    }
  }
  state->overload.rows_shed +=
      static_cast<int64_t>(rows.size() - (*end - *begin));
}

void StreamRuntime::QuarantineRow(StreamState* state, const char* reason,
                                  std::string detail, const Row& row) {
  ++state->overload.rows_quarantined;
  if (flushing_quarantine_) {
    // A dead-letter row rejected by its own dead-letter stream has
    // nowhere left to go; count the drop instead of recursing.
    ++quarantine_dropped_;
    return;
  }
  const int64_t qtime =
      state->watermark == INT64_MIN ? 0 : state->watermark;
  Row qrow;
  qrow.reserve(4);
  qrow.push_back(Value::Timestamp(qtime));
  qrow.push_back(Value::String(reason));
  qrow.push_back(Value::String(std::move(detail)));
  qrow.push_back(Value::String(RowToString(row)));
  pending_quarantine_.push_back(
      PendingQuarantine{state->info->name, std::move(qrow)});
}

void StreamRuntime::FlushQuarantine() {
  if (flushing_quarantine_ || pending_quarantine_.empty()) return;
  flushing_quarantine_ = true;
  // Publishing a dead-letter row can itself quarantine-drop (counted) but
  // never fails the source batch; errors here are absorbed.
  while (!pending_quarantine_.empty()) {
    std::vector<PendingQuarantine> batch = std::move(pending_quarantine_);
    pending_quarantine_.clear();
    for (PendingQuarantine& q : batch) {
      Status status = EnsureQuarantineStream(q.stream);
      if (status.ok()) {
        status = Ingest(QuarantineName(q.stream), {std::move(q.row)});
      }
      if (!status.ok()) ++quarantine_dropped_;
    }
  }
  flushing_quarantine_ = false;
}

Status StreamRuntime::WithSinkRetry(const std::function<Status()>& op) {
  Status status = op();
  int64_t backoff = retry_backoff_micros_;
  for (int64_t attempt = 1; attempt < retry_limit_; ++attempt) {
    if (status.ok() || status.code() != StatusCode::kIoError ||
        FaultInjector::IsInjectedCrash(status)) {
      return status;
    }
    // Exponential backoff with deterministic jitter: derived from the
    // cumulative retry counter instead of an RNG, so reruns of a seeded
    // workload retry on an identical schedule while periodic retries
    // still de-phase from one another.
    const int64_t jitter = (backoff / 4) * (retries_ % 3) / 2;
    if (backoff + jitter > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff + jitter));
    }
    ++retries_;
    status = op();
    if (backoff <= INT64_MAX / 2) backoff *= 2;
  }
  if (!status.ok() && retry_limit_ > 1 &&
      status.code() == StatusCode::kIoError &&
      !FaultInjector::IsInjectedCrash(status)) {
    ++retries_exhausted_;
  }
  return status;
}

std::vector<std::string> StreamRuntime::CqNames() const {
  std::vector<std::string> names;
  names.reserve(cqs_.size());
  for (const auto& [key, cq] : cqs_) names.push_back(cq->name());
  return names;
}

void StreamRuntime::RefreshMetricsGauges() {
  int64_t shared = 0;
  for (const auto& [key, cq] : cqs_) {
    if (cq->is_shared()) ++shared;
    metrics_.GetWatermarkGauge("cq", key, "emit_watermark")
        ->Set(cq->emit_watermark());
  }
  metrics_.GetGauge("engine", "runtime", "streams")
      ->Set(static_cast<int64_t>(streams_.size()));
  metrics_.GetGauge("engine", "runtime", "cqs")
      ->Set(static_cast<int64_t>(cqs_.size()));
  metrics_.GetGauge("engine", "runtime", "cqs_shared")->Set(shared);
  metrics_.GetGauge("engine", "runtime", "cqs_generic")
      ->Set(static_cast<int64_t>(cqs_.size()) - shared);
  metrics_.GetGauge("engine", "runtime", "channels")
      ->Set(static_cast<int64_t>(channels_.size()));
  metrics_.GetGauge("engine", "runtime", "shared_pipelines")
      ->Set(static_cast<int64_t>(registry_.pipeline_count()));
  metrics_.GetGauge("engine", "runtime", "parallelism")->Set(parallelism_);
  UpdateShardMetrics();

  for (const auto& [key, state] : streams_) {
    metrics_.GetGauge("stream", key, "cq_subscriptions")
        ->Set(static_cast<int64_t>(state.subs.size()));
    metrics_.GetGauge("stream", key, "channels")
        ->Set(static_cast<int64_t>(state.channels.size()));
    metrics_.GetGauge("stream", key, "client_subscriptions")
        ->Set(static_cast<int64_t>(state.client_subs.size()));
    state.watermark_metric->Set(state.watermark);
    metrics_.GetGauge("overload", key, "rows_admitted")
        ->Set(state.overload.rows_admitted);
    metrics_.GetGauge("overload", key, "rows_shed")
        ->Set(state.overload.rows_shed);
    metrics_.GetGauge("overload", key, "rows_quarantined")
        ->Set(state.overload.rows_quarantined);
    metrics_.GetGauge("overload", key, "blocked_micros")
        ->Set(state.overload.blocked_micros);
  }

  metrics_.GetGauge("overload", "governor", "bytes_held")
      ->Set(governor_.held());
  metrics_.GetGauge("overload", "governor", "bytes_budget")
      ->Set(governor_.budget());
  metrics_.GetGauge("overload", "governor", "bytes_peak")
      ->Set(governor_.peak_held());
  metrics_.GetGauge("overload", "governor", "bytes_window")
      ->Set(governor_.held(MemoryGovernor::Account::kWindow));
  metrics_.GetGauge("overload", "governor", "bytes_aggregator")
      ->Set(governor_.held(MemoryGovernor::Account::kAggregator));
  metrics_.GetGauge("overload", "governor", "bytes_shard_queue")
      ->Set(governor_.held(MemoryGovernor::Account::kShardQueue));
  metrics_.GetGauge("overload", "governor", "bytes_reorder")
      ->Set(governor_.held(MemoryGovernor::Account::kReorder));
  metrics_.GetGauge("overload", "governor", "bytes_net_send_queue")
      ->Set(governor_.held(MemoryGovernor::Account::kNetSendQueue));
  metrics_.GetGauge("overload", "retry", "retries")->Set(retries_);
  metrics_.GetGauge("overload", "retry", "exhausted")
      ->Set(retries_exhausted_);
  metrics_.GetGauge("overload", "quarantine", "rows_dropped")
      ->Set(quarantine_dropped_);

  // Shared pipelines are keyed by their versioned signature; the registry
  // never drops one while the runtime lives, so refreshing in place is
  // enough (no RemoveObject pass needed).
  for (const auto& ref : registry_.Pipelines()) {
    metrics_.GetGauge("aggregator", ref.key, "member_cqs")
        ->Set(ref.aggregator->member_cqs());
    metrics_.GetGauge("aggregator", ref.key, "rows_absorbed")
        ->Set(ref.aggregator->rows_absorbed());
    metrics_.GetGauge("aggregator", ref.key, "live_slices")
        ->Set(static_cast<int64_t>(ref.aggregator->live_slices()));
    metrics_.GetGauge("aggregator", ref.key, "union_calls")
        ->Set(static_cast<int64_t>(ref.aggregator->union_call_count()));
    metrics_.GetGauge("aggregator", ref.key, "slice_width_micros")
        ->Set(ref.aggregator->slice_width());
  }
}

}  // namespace streamrel::stream
