#include "stream/runtime.h"

#include "common/string_util.h"

namespace streamrel::stream {

StreamRuntime::StreamRuntime(catalog::Catalog* catalog,
                             storage::TransactionManager* txns,
                             storage::WriteAheadLog* wal)
    : catalog_(catalog), txns_(txns), wal_(wal) {
  engine_rows_metric_ =
      metrics_.GetCounter("engine", "runtime", "rows_ingested");
}

StreamRuntime::StreamState* StreamRuntime::GetState(const std::string& name) {
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}
const StreamRuntime::StreamState* StreamRuntime::GetState(
    const std::string& name) const {
  auto it = streams_.find(ToLower(name));
  return it == streams_.end() ? nullptr : &it->second;
}

Status StreamRuntime::RegisterStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr) {
    return Status::NotFound("stream '" + name + "' not in catalog");
  }
  std::string key = ToLower(name);
  if (streams_.count(key)) return Status::OK();
  StreamState state;
  state.info = info;
  state.rows_ingested_metric = metrics_.GetCounter(
      "stream", key, "rows_ingested");
  state.batches_published_metric = metrics_.GetCounter(
      "stream", key, "batches_published");
  state.rows_published_metric = metrics_.GetCounter(
      "stream", key, "rows_published");
  state.watermark_metric = metrics_.GetWatermarkGauge(
      "stream", key, "watermark");
  streams_.emplace(std::move(key), std::move(state));
  return Status::OK();
}

Status StreamRuntime::AttachCqSubscription(ContinuousQuery* cq) {
  RETURN_IF_ERROR(RegisterStream(cq->stream_name()));
  StreamState* state = GetState(cq->stream_name());
  if (cq->window().kind == WindowSpec::Kind::kSlices &&
      !state->info->is_derived) {
    return Status::InvalidArgument(
        "<SLICES n WINDOWS> applies to derived streams (it groups upstream "
        "window closes); stream '" + cq->stream_name() + "' is a raw stream "
        "— use a VISIBLE/ADVANCE window instead");
  }
  Subscription sub;
  sub.cq = cq;
  sub.window_op = std::make_unique<WindowOperator>(cq->window());
  sub.feed_rows = !cq->is_shared();
  state->subs.push_back(std::move(sub));
  return Status::OK();
}

Result<ContinuousQuery*> StreamRuntime::CreateCq(const std::string& name,
                                                 const sql::SelectStmt& stmt,
                                                 bool allow_shared) {
  std::string key = ToLower(name);
  if (cqs_.count(key)) {
    return Status::AlreadyExists("a continuous query named '" + name +
                                 "' exists");
  }
  ASSIGN_OR_RETURN(std::unique_ptr<ContinuousQuery> cq,
                   ContinuousQuery::Build(name, stmt, catalog_, txns_,
                                          &registry_, allow_shared));
  ContinuousQuery* ptr = cq.get();
  RETURN_IF_ERROR(AttachCqSubscription(ptr));
  ptr->BindMetrics(metrics_.GetCounter("cq", key, "windows_closed"),
                   metrics_.GetCounter("cq", key, "rows_emitted"),
                   metrics_.GetHistogram("cq", key, "eval_micros"));
  metrics_.GetGauge("cq", key, "is_shared")->Set(ptr->is_shared() ? 1 : 0);
  cqs_.emplace(std::move(key), std::move(cq));
  return ptr;
}

Status StreamRuntime::DropCq(const std::string& name) {
  std::string key = ToLower(name);
  auto it = cqs_.find(key);
  if (it == cqs_.end()) {
    return Status::NotFound("continuous query '" + name + "' not found");
  }
  ContinuousQuery* cq = it->second.get();
  StreamState* state = GetState(cq->stream_name());
  if (state != nullptr) {
    for (auto sit = state->subs.begin(); sit != state->subs.end(); ++sit) {
      if (sit->cq == cq) {
        state->subs.erase(sit);
        break;
      }
    }
  }
  cqs_.erase(it);
  metrics_.RemoveObject("cq", key);
  return Status::OK();
}

ContinuousQuery* StreamRuntime::GetCq(const std::string& name) {
  auto it = cqs_.find(ToLower(name));
  return it == cqs_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StartDerivedStream(const std::string& name) {
  catalog::StreamInfo* info = catalog_->GetStream(name);
  if (info == nullptr || !info->is_derived) {
    return Status::NotFound("derived stream '" + name + "' not in catalog");
  }
  if (info->defining_query == nullptr) {
    return Status::Internal("derived stream '" + name +
                            "' has no defining query");
  }
  RETURN_IF_ERROR(RegisterStream(name));
  std::string cq_name = "$derived$" + ToLower(name);
  ASSIGN_OR_RETURN(ContinuousQuery * cq,
                   CreateCq(cq_name, *info->defining_query,
                            /*allow_shared=*/true));
  std::string stream_name = info->name;
  cq->AddCallback([this, stream_name](int64_t close,
                                      const std::vector<Row>& rows) {
    return PublishBatch(stream_name, close, rows);
  });
  return Status::OK();
}

Status StreamRuntime::StartChannel(const std::string& name) {
  catalog::ChannelInfo* info = catalog_->GetChannel(name);
  if (info == nullptr) {
    return Status::NotFound("channel '" + name + "' not in catalog");
  }
  catalog::TableInfo* table = catalog_->GetTable(info->into_table);
  if (table == nullptr) {
    return Status::NotFound("channel target table '" + info->into_table +
                            "' not found");
  }
  RETURN_IF_ERROR(RegisterStream(info->from_stream));
  std::string key = ToLower(name);
  if (channels_.count(key)) {
    return Status::AlreadyExists("channel '" + name + "' already running");
  }
  auto channel = std::make_unique<Channel>(*info, table, txns_, wal_);
  channel->BindMetrics(
      metrics_.GetCounter("channel", key, "batches_persisted"),
      metrics_.GetCounter("channel", key, "rows_persisted"),
      metrics_.GetWatermarkGauge("channel", key, "commit_watermark"));
  GetState(info->from_stream)->channels.push_back(channel.get());
  channels_.emplace(std::move(key), std::move(channel));
  return Status::OK();
}

Channel* StreamRuntime::GetChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  return it == channels_.end() ? nullptr : it->second.get();
}

Status StreamRuntime::StopChannel(const std::string& name) {
  auto it = channels_.find(ToLower(name));
  if (it == channels_.end()) {
    return Status::NotFound("channel '" + name + "' is not running");
  }
  Channel* channel = it->second.get();
  StreamState* state = GetState(channel->info().from_stream);
  if (state != nullptr) {
    for (auto cit = state->channels.begin(); cit != state->channels.end();
         ++cit) {
      if (*cit == channel) {
        state->channels.erase(cit);
        break;
      }
    }
  }
  channels_.erase(it);
  metrics_.RemoveObject("channel", ToLower(name));
  return Status::OK();
}

std::string StreamRuntime::StreamInUseBy(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  if (state == nullptr) return "";
  for (const Subscription& sub : state->subs) {
    return "continuous query '" + sub.cq->name() + "'";
  }
  if (!state->channels.empty()) {
    return "channel '" + state->channels.front()->info().name + "'";
  }
  if (!state->client_subs.empty()) return "a client subscription";
  return "";
}

std::string StreamRuntime::TableInUseBy(const std::string& table) const {
  std::string key = ToLower(table);
  for (const auto& [name, channel] : channels_) {
    if (ToLower(channel->info().into_table) == key) {
      return "channel '" + channel->info().name + "'";
    }
  }
  for (const auto& [name, cq] : cqs_) {
    for (const std::string& ref : cq->referenced_tables()) {
      if (ref == key) {
        return "continuous query '" + cq->name() + "'";
      }
    }
  }
  return "";
}

Status StreamRuntime::UnregisterStream(const std::string& name) {
  std::string in_use = StreamInUseBy(name);
  if (!in_use.empty()) {
    return Status::InvalidArgument("stream '" + name + "' is in use by " +
                                   in_use);
  }
  streams_.erase(ToLower(name));
  metrics_.RemoveObject("stream", ToLower(name));
  return Status::OK();
}

Status StreamRuntime::SubscribeStream(const std::string& stream,
                                      CqCallback callback) {
  RETURN_IF_ERROR(RegisterStream(stream));
  GetState(stream)->client_subs.push_back(std::move(callback));
  return Status::OK();
}

Status StreamRuntime::ProcessClosed(Subscription* sub,
                                    std::vector<WindowBatch>* closed) {
  for (WindowBatch& batch : *closed) {
    RETURN_IF_ERROR(sub->cq->OnWindowClose(batch));
  }
  closed->clear();
  return Status::OK();
}

Status StreamRuntime::Ingest(const std::string& stream,
                             const std::vector<Row>& rows,
                             int64_t system_time) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  catalog::StreamInfo* info = state->info;
  if (info->is_derived) {
    return Status::InvalidArgument(
        "cannot ingest into derived stream '" + stream +
        "'; it is computed by its defining query");
  }
  const size_t arity = info->schema.num_columns();
  std::vector<WindowBatch> closed;
  // Rows as actually admitted (CQTIME SYSTEM stamps the timestamp column);
  // channels and client subscriptions see these, not the raw input.
  std::vector<Row> admitted;
  admitted.reserve(rows.size());
  for (const Row& row : rows) {
    if (row.size() != arity) {
      return Status::InvalidArgument(
          "row arity does not match stream '" + stream + "'");
    }
    int64_t ts;
    if (info->cqtime_system) {
      if (system_time == INT64_MIN) {
        return Status::InvalidArgument(
            "stream '" + stream +
            "' has CQTIME SYSTEM; pass an ingest time");
      }
      ts = system_time;
    } else {
      const Value& tv = row[info->cqtime_column];
      if (tv.is_null()) {
        return Status::InvalidArgument("NULL CQTIME value");
      }
      if (tv.type() == DataType::kTimestamp) {
        ts = tv.AsTimestampMicros();
      } else if (tv.type() == DataType::kInt64) {
        ts = tv.AsInt64();
      } else {
        return Status::InvalidArgument(
            "CQTIME column must be a timestamp");
      }
    }
    if (state->watermark != INT64_MIN && ts < state->watermark) {
      return Status::InvalidArgument(
          "out-of-order row: ts " + std::to_string(ts) +
          " is behind stream watermark " +
          std::to_string(state->watermark));
    }
    Row stamped = row;
    if (info->cqtime_system) {
      stamped[info->cqtime_column] = Value::Timestamp(ts);
    }

    for (SliceAggregator* agg : registry_.ForStream(info->name)) {
      RETURN_IF_ERROR(agg->AddRow(ts, stamped));
    }
    for (Subscription& sub : state->subs) {
      if (sub.feed_rows) {
        RETURN_IF_ERROR(sub.window_op->AddRow(ts, stamped, &closed));
      } else {
        sub.window_op->StartAt(ts);
        RETURN_IF_ERROR(sub.window_op->AdvanceTime(ts, &closed));
      }
      RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
    }
    state->watermark = ts;
    ++rows_ingested_;
    admitted.push_back(std::move(stamped));
  }
  if (metrics_.enabled() && !admitted.empty()) {
    const int64_t n = static_cast<int64_t>(admitted.size());
    state->rows_ingested_metric->Add(n);
    engine_rows_metric_->Add(n);
    state->watermark_metric->Set(state->watermark);
  }

  // Evict slices no live window can reference.
  for (SliceAggregator* agg : registry_.ForStream(info->name)) {
    agg->EvictBefore(state->watermark - agg->max_visible());
  }
  // Raw-stream channels archive ingested rows directly (commit time =
  // current watermark).
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(channel->OnRawRows(state->watermark, admitted));
  }
  for (const CqCallback& cb : state->client_subs) {
    RETURN_IF_ERROR(cb(state->watermark, admitted));
  }
  return Status::OK();
}

Status StreamRuntime::AdvanceTime(const std::string& stream,
                                  int64_t watermark) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    RETURN_IF_ERROR(RegisterStream(stream));
    state = GetState(stream);
  }
  if (state->watermark != INT64_MIN && watermark < state->watermark) {
    return Status::InvalidArgument("watermark regression");
  }
  std::vector<WindowBatch> closed;
  for (Subscription& sub : state->subs) {
    RETURN_IF_ERROR(sub.window_op->AdvanceTime(watermark, &closed));
    RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
  }
  state->watermark = watermark;
  if (metrics_.enabled()) state->watermark_metric->Set(watermark);
  for (SliceAggregator* agg : registry_.ForStream(state->info->name)) {
    agg->EvictBefore(state->watermark - agg->max_visible());
  }
  return Status::OK();
}

Status StreamRuntime::PublishBatch(const std::string& stream, int64_t close,
                                   const std::vector<Row>& rows) {
  StreamState* state = GetState(stream);
  if (state == nullptr) {
    return Status::Internal("derived stream '" + stream + "' not registered");
  }
  std::vector<WindowBatch> closed;
  for (Subscription& sub : state->subs) {
    RETURN_IF_ERROR(sub.window_op->AddBatch(close, rows, &closed));
    RETURN_IF_ERROR(ProcessClosed(&sub, &closed));
  }
  state->watermark = close;
  if (metrics_.enabled()) {
    state->batches_published_metric->Add();
    state->rows_published_metric->Add(static_cast<int64_t>(rows.size()));
    state->watermark_metric->Set(close);
  }
  for (Channel* channel : state->channels) {
    RETURN_IF_ERROR(channel->OnBatch(close, rows));
  }
  for (const CqCallback& cb : state->client_subs) {
    RETURN_IF_ERROR(cb(close, rows));
  }
  return Status::OK();
}

int64_t StreamRuntime::watermark(const std::string& stream) const {
  const StreamState* state = GetState(stream);
  return state == nullptr ? INT64_MIN : state->watermark;
}

Result<std::string> StreamRuntime::SerializeCqState(
    const std::string& name) const {
  for (const auto& [key, state] : streams_) {
    for (const Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        std::string blob;
        sub.window_op->Serialize(&blob);
        return blob;
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::RestoreCqState(const std::string& name,
                                     const std::string& blob) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        return sub.window_op->Restore(blob);
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

Status StreamRuntime::ResetCqToWatermark(const std::string& name,
                                         int64_t watermark) {
  for (auto& [key, state] : streams_) {
    for (Subscription& sub : state.subs) {
      if (EqualsIgnoreCase(sub.cq->name(), name)) {
        sub.window_op->ResetToWatermark(watermark);
        sub.cq->SetEmitWatermark(watermark);
        return Status::OK();
      }
    }
  }
  return Status::NotFound("continuous query '" + name + "' not found");
}

std::vector<std::string> StreamRuntime::CqNames() const {
  std::vector<std::string> names;
  names.reserve(cqs_.size());
  for (const auto& [key, cq] : cqs_) names.push_back(cq->name());
  return names;
}

void StreamRuntime::RefreshMetricsGauges() {
  int64_t shared = 0;
  for (const auto& [key, cq] : cqs_) {
    if (cq->is_shared()) ++shared;
    metrics_.GetWatermarkGauge("cq", key, "emit_watermark")
        ->Set(cq->emit_watermark());
  }
  metrics_.GetGauge("engine", "runtime", "streams")
      ->Set(static_cast<int64_t>(streams_.size()));
  metrics_.GetGauge("engine", "runtime", "cqs")
      ->Set(static_cast<int64_t>(cqs_.size()));
  metrics_.GetGauge("engine", "runtime", "cqs_shared")->Set(shared);
  metrics_.GetGauge("engine", "runtime", "cqs_generic")
      ->Set(static_cast<int64_t>(cqs_.size()) - shared);
  metrics_.GetGauge("engine", "runtime", "channels")
      ->Set(static_cast<int64_t>(channels_.size()));
  metrics_.GetGauge("engine", "runtime", "shared_pipelines")
      ->Set(static_cast<int64_t>(registry_.pipeline_count()));

  for (const auto& [key, state] : streams_) {
    metrics_.GetGauge("stream", key, "cq_subscriptions")
        ->Set(static_cast<int64_t>(state.subs.size()));
    metrics_.GetGauge("stream", key, "channels")
        ->Set(static_cast<int64_t>(state.channels.size()));
    metrics_.GetGauge("stream", key, "client_subscriptions")
        ->Set(static_cast<int64_t>(state.client_subs.size()));
    state.watermark_metric->Set(state.watermark);
  }

  // Shared pipelines are keyed by their versioned signature; the registry
  // never drops one while the runtime lives, so refreshing in place is
  // enough (no RemoveObject pass needed).
  for (const auto& ref : registry_.Pipelines()) {
    metrics_.GetGauge("aggregator", ref.key, "member_cqs")
        ->Set(ref.aggregator->member_cqs());
    metrics_.GetGauge("aggregator", ref.key, "rows_absorbed")
        ->Set(ref.aggregator->rows_absorbed());
    metrics_.GetGauge("aggregator", ref.key, "live_slices")
        ->Set(static_cast<int64_t>(ref.aggregator->live_slices()));
    metrics_.GetGauge("aggregator", ref.key, "union_calls")
        ->Set(static_cast<int64_t>(ref.aggregator->union_call_count()));
    metrics_.GetGauge("aggregator", ref.key, "slice_width_micros")
        ->Set(ref.aggregator->slice_width());
  }
}

}  // namespace streamrel::stream
