#ifndef STREAMREL_STREAM_REORDER_BUFFER_H_
#define STREAMREL_STREAM_REORDER_BUFFER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/memory_governor.h"
#include "common/schema.h"
#include "common/status.h"
#include "stream/metrics.h"

namespace streamrel::stream {

/// Bounded-slack reordering for nearly-ordered sources.
///
/// The paper models streams as *ordered* unbounded relations, and the
/// runtime enforces monotone CQTIME at ingest. Real feeds (multiple
/// collectors, network skew) are only nearly ordered; the standard remedy
/// is a slack buffer: hold each row until the watermark has advanced
/// `slack` past its timestamp, releasing rows in timestamp order. Rows
/// older than the slack bound are rejected (the caller may count/drop
/// them).
///
/// Usage: push rows as they arrive; releases come out via the sink
/// callback, already ordered and safe to hand to StreamRuntime::Ingest.
/// Call Flush when the source ends.
class ReorderBuffer {
 public:
  /// `sink(ts, rows)` receives ordered rows; rows sharing a timestamp are
  /// released together in arrival order.
  using Sink =
      std::function<Status(const std::vector<Row>& ordered_rows)>;

  ReorderBuffer(int64_t slack_micros, Sink sink)
      : slack_(slack_micros), sink_(std::move(sink)) {}
  ~ReorderBuffer();

  /// Accepts a row with timestamp `ts`. Returns kInvalidArgument (and does
  /// not buffer) if the row is too late: ts < watermark - slack.
  Status Push(int64_t ts, Row row);

  /// Releases everything still buffered, in order (end of stream).
  Status Flush();

  /// Highest timestamp seen (the reordering watermark).
  int64_t watermark() const { return watermark_; }

  size_t buffered_rows() const { return buffered_; }
  /// Rows successfully delivered to the sink. Rows a failing sink did not
  /// accept are re-buffered (still counted in buffered_rows) so a
  /// transient sink failure is retryable: the next Push or Flush delivers
  /// them again, in order. Invariant: pushed == released + buffered +
  /// rejected — no row is ever silently lost.
  int64_t rows_released() const { return released_; }
  /// Rows rejected at Push for being older than the slack bound.
  int64_t rows_rejected() const { return rejected_; }

  /// Optional observability hookup: mirrors released/rejected counts and
  /// the buffered-row level into registry-owned metrics. Any pointer may
  /// be null.
  void BindMetrics(Counter* released, Counter* rejected, Gauge* buffered) {
    released_metric_ = released;
    rejected_metric_ = rejected;
    buffered_metric_ = buffered;
  }

  /// Charges pending-row bytes to `governor` (kReorder account) from now
  /// on; already-pending rows are charged immediately. nullptr detaches.
  void BindGovernor(MemoryGovernor* governor);

 private:
  Status ReleaseUpTo(int64_t bound);
  void ChargeRow(const Row& row);
  void ReleaseCharge(int64_t bytes);

  const int64_t slack_;
  Sink sink_;
  std::map<int64_t, std::vector<Row>> pending_;  // ts -> rows
  int64_t watermark_ = INT64_MIN;
  size_t buffered_ = 0;
  int64_t released_ = 0;
  int64_t rejected_ = 0;
  int64_t bytes_buffered_ = 0;
  MemoryGovernor* governor_ = nullptr;
  Counter* released_metric_ = nullptr;
  Counter* rejected_metric_ = nullptr;
  Gauge* buffered_metric_ = nullptr;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_REORDER_BUFFER_H_
