#ifndef STREAMREL_STREAM_METRICS_H_
#define STREAMREL_STREAM_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace streamrel::stream {

/// Monotonically increasing event count. Hot paths hold a Counter* obtained
/// once from the registry; Add() is a single relaxed atomic add, so counters
/// are safe to bump from concurrent per-stream ingest threads.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time level (watermarks, buffered rows, live slices). Set() is a
/// single relaxed atomic store; structural gauges are refreshed lazily
/// before a snapshot.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Bounded histogram over fixed bucket upper bounds (no per-sample
/// allocation, O(buckets) memory forever). Percentiles are reported as the
/// upper bound of the bucket where the cumulative count crosses the rank —
/// exact enough for latency dashboards, cheap enough for the hot path.
class Histogram {
 public:
  /// `bounds` are ascending bucket upper bounds; an implicit overflow
  /// bucket catches everything above the last bound.
  explicit Histogram(std::vector<int64_t> bounds);

  /// Default bounds for microsecond latencies: 1µs .. 1s, roughly
  /// logarithmic (1-2-5 per decade), 19 buckets + overflow.
  static std::vector<int64_t> LatencyMicrosBounds();

  void Record(int64_t value);

  int64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  int64_t sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  int64_t min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : min_;
  }
  int64_t max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0 : max_;
  }

  /// Upper bound of the bucket containing the q-quantile (0 < q <= 1);
  /// the overflow bucket reports the observed max. 0 when empty.
  int64_t Percentile(double q) const;

 private:
  /// Leaf mutex (no other lock is taken while held): buckets and the
  /// min/max/sum aggregates must move together, so a lone atomic per field
  /// would let Snapshot observe torn percentiles.
  mutable std::mutex mu_;
  const std::vector<int64_t> bounds_;
  std::vector<int64_t> buckets_;  // bounds_.size() + 1 (overflow)
  int64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// One row of a metrics snapshot, addressed the way SHOW STATS exposes it:
/// (scope, object, metric) -> value. Histograms expand into several
/// samples (metric_count, metric_total, metric_min/max/p50/p95/p99).
struct MetricSample {
  std::string scope;   // "engine" | "stream" | "cq" | "channel" |
                       // "aggregator" | "shard" | "recovery" | "overload"
  std::string name;    // object name; "" for engine-wide metrics
  std::string metric;  // e.g. "rows_ingested", "eval_micros_p95"
  int64_t value = 0;
  /// True for values that are timestamps and may be unset (INT64_MIN),
  /// e.g. watermarks; SHOW STATS renders unset as NULL.
  bool is_timestamp = false;
};

/// The engine's metric store. Components register (scope, object, metric)
/// cells once and keep the returned pointer; pointers stay valid until the
/// object's metrics are removed (DROP CQ / channel stop). Snapshot()
/// flattens everything into deterministic (scope, name, metric) order.
///
/// Thread-safe: cell registration and Snapshot() serialize on an internal
/// leaf mutex; the cells themselves (atomic counters/gauges, internally
/// locked histograms) are written lock-free from concurrent per-stream
/// ingest threads. Registered pointers stay valid across concurrent
/// registrations because std::map nodes are stable. `enabled` gates the
/// *expensive* instrumentation (clock reads for histograms) — counters are
/// single adds and always cheap; benchmarks flip it off to measure the
/// overhead of the observability layer on the ingest hot path.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& scope, const std::string& name,
                      const std::string& metric);
  Gauge* GetGauge(const std::string& scope, const std::string& name,
                  const std::string& metric);
  Histogram* GetHistogram(const std::string& scope, const std::string& name,
                          const std::string& metric);
  Histogram* GetHistogram(const std::string& scope, const std::string& name,
                          const std::string& metric,
                          std::vector<int64_t> bounds);

  /// Marks a gauge as carrying a timestamp (unset = INT64_MIN -> NULL).
  Gauge* GetWatermarkGauge(const std::string& scope, const std::string& name,
                           const std::string& metric);

  /// Drops every metric registered under (scope, name). Pointers handed
  /// out for them dangle afterwards — callers drop the owning object in
  /// the same breath (DROP CQ, channel stop).
  void RemoveObject(const std::string& scope, const std::string& name);

  std::vector<MetricSample> Snapshot() const;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    bool is_timestamp = false;
  };
  using Key = std::tuple<std::string, std::string, std::string>;

  /// Leaf mutex guarding the cell map (the histogram mutex nests inside it
  /// during Snapshot; nothing else is acquired while it is held).
  mutable std::mutex mu_;
  std::map<Key, Cell> cells_;
  std::atomic<bool> enabled_{true};
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_METRICS_H_
