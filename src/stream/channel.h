#ifndef STREAMREL_STREAM_CHANNEL_H_
#define STREAMREL_STREAM_CHANNEL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "common/status.h"
#include "storage/transaction.h"
#include "storage/wal.h"
#include "stream/metrics.h"

namespace streamrel::stream {

/// Persists a stream into an *Active Table* (Example 4 in the paper):
/// each window's results are stored transactionally, committing with
/// commit_time = window close, so the table participates in
/// window-consistent MVCC snapshots (a CQ joining the table as of its own
/// window close sees exactly the fully-persisted earlier windows).
///
/// APPEND adds the batch's rows; REPLACE deletes the previously visible
/// rows first, so the table always holds the latest window's results.
///
/// The channel's progress watermark (the last persisted window close) is
/// WAL-logged with each batch; recovery reads it back so a restarted
/// runtime neither loses nor duplicates windows.
class Channel {
 public:
  Channel(catalog::ChannelInfo info, catalog::TableInfo* table,
          storage::TransactionManager* txns, storage::WriteAheadLog* wal);

  const catalog::ChannelInfo& info() const { return info_; }

  /// Persists one window's batch. Batches with close <= watermark are
  /// skipped (recovery idempotence: a window is persisted exactly once).
  Status OnBatch(int64_t close, const std::vector<Row>& rows);

  /// Persists raw-stream rows at watermark `at`. Unlike window batches,
  /// several row groups may legitimately share a watermark (equal CQTIME
  /// values), so only `at < watermark` is skipped.
  Status OnRawRows(int64_t at, const std::vector<Row>& rows);

  int64_t watermark() const {
    return watermark_.load(std::memory_order_relaxed);
  }
  void SetWatermark(int64_t watermark) {
    watermark_.store(watermark, std::memory_order_relaxed);
  }

  int64_t batches_persisted() const {
    return batches_persisted_.load(std::memory_order_relaxed);
  }
  int64_t rows_persisted() const {
    return rows_persisted_.load(std::memory_order_relaxed);
  }

  /// Optional observability hookup: mirrors persisted batch/row counts and
  /// the last commit watermark into registry-owned metrics. Any pointer
  /// may be null.
  void BindMetrics(Counter* batches, Counter* rows, Gauge* commit_watermark) {
    batches_metric_ = batches;
    rows_metric_ = rows;
    watermark_metric_ = commit_watermark;
  }

 private:
  /// Inserts `row` (cast to the table's column types) and maintains
  /// indexes; WAL-logs the insert.
  Status InsertRow(const Row& row, storage::TxnId txn);

  catalog::ChannelInfo info_;
  catalog::TableInfo* table_;
  storage::TransactionManager* txns_;
  storage::WriteAheadLog* wal_;
  // Atomics: mutated under the source stream's ingest lock (plus the DML
  // lock for the table write), but read by concurrent sys_channels
  // refreshes holding only the shared engine lock.
  std::atomic<int64_t> watermark_{INT64_MIN};
  std::atomic<int64_t> batches_persisted_{0};
  std::atomic<int64_t> rows_persisted_{0};
  Counter* batches_metric_ = nullptr;
  Counter* rows_metric_ = nullptr;
  Gauge* watermark_metric_ = nullptr;
};

/// Shared helper: inserts a row into a table with type coercion, index
/// maintenance, and WAL logging. Used by channels and by SQL INSERT.
Status InsertIntoTable(catalog::TableInfo* table, const Row& row,
                       storage::TxnId txn, storage::WriteAheadLog* wal);

/// Shared helper: MVCC-deletes a row and removes its index entries.
Status DeleteFromTable(catalog::TableInfo* table, storage::RowId row_id,
                       const Row& row, storage::TxnId txn,
                       storage::WriteAheadLog* wal);

/// Compacts `table`: row versions invisible to the current snapshot are
/// dropped, survivors are re-written densely (in ascending old-RowId order,
/// so replaying the logged kVacuum barrier reproduces identical RowIds),
/// and indexes are rebuilt. Time-travel snapshots taken before the vacuum
/// no longer see this table's history. `commit_time` stamps the
/// re-inserted versions. Returns the number of dead versions reclaimed.
Result<int64_t> VacuumTable(catalog::TableInfo* table,
                            storage::TransactionManager* txns,
                            storage::WriteAheadLog* wal,
                            int64_t commit_time);

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_CHANNEL_H_
