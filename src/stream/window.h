#ifndef STREAMREL_STREAM_WINDOW_H_
#define STREAMREL_STREAM_WINDOW_H_

#include <cstdint>
#include <numeric>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace streamrel::stream {

/// Runtime form of a TruSQL window clause. Windows turn a stream into a
/// sequence of relations (Figure 1 in the paper): the relation for the
/// window closing at time `c` contains the rows with timestamp in
/// [c - visible, c); closes occur at every multiple of `advance`.
struct WindowSpec {
  enum class Kind {
    kTime,    // VISIBLE/ADVANCE as intervals over the CQTIME attribute
    kRows,    // VISIBLE/ADVANCE as row counts
    kSlices,  // SLICES n WINDOWS over an upstream derived stream's batches
  };

  Kind kind = Kind::kTime;
  int64_t visible = 0;       // micros or rows
  int64_t advance = 0;       // micros or rows
  int64_t slices_count = 1;  // kSlices

  static Result<WindowSpec> FromAst(const sql::WindowSpecAst& ast);

  bool is_time() const { return kind == Kind::kTime; }
  bool is_sliding() const { return visible > advance; }

  /// Width of the disjoint slices a time window decomposes into
  /// (gcd(visible, advance)) — the unit of shared partial aggregation.
  int64_t SliceWidthMicros() const {
    return std::gcd(visible, advance);
  }

  /// Earliest window close strictly greater than `ts` (time windows;
  /// closes are aligned to multiples of `advance` from the epoch).
  int64_t FirstCloseAfter(int64_t ts) const {
    return (ts / advance + 1) * advance;
  }

  std::string ToString() const;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_WINDOW_H_
