#include "stream/continuous_query.h"

#include <algorithm>
#include <chrono>

#include "common/string_util.h"
#include "exec/binder.h"
#include "exec/operators.h"

namespace streamrel::stream {

// --- SliceAggregatorRegistry -------------------------------------------------

Result<SliceAggregatorRegistry::Registration> SliceAggregatorRegistry::Attach(
    const std::string& stream_name, const std::string& signature,
    int64_t slice_width, exec::BoundExprPtr filter,
    std::vector<exec::BoundExprPtr> group_exprs,
    std::vector<exec::AggregateCall> calls) {
  std::lock_guard<std::mutex> lock(mu_);
  int& version = versions_[signature];
  for (int v = 0; v <= version; ++v) {
    std::string key = signature + "#" + std::to_string(v);
    auto it = aggregators_.find(key);
    if (it == aggregators_.end()) continue;
    if (!it->second.aggregator->CanAccept(calls)) continue;
    ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                     it->second.aggregator->RegisterCalls(std::move(calls)));
    Registration reg;
    reg.aggregator = it->second.aggregator.get();
    reg.slot_mapping = std::move(mapping);
    return reg;
  }
  // No compatible pipeline: open a fresh version. A CQ whose aggregates are
  // missing from a live pipeline cannot share it (its history cannot be
  // backfilled), so it starts a new one that future CQs can join.
  ++version;
  std::string key = signature + "#" + std::to_string(version);
  auto aggregator = std::make_unique<SliceAggregator>(
      slice_width, std::move(filter), std::move(group_exprs));
  ASSIGN_OR_RETURN(std::vector<size_t> mapping,
                   aggregator->RegisterCalls(std::move(calls)));
  Registration reg;
  reg.aggregator = aggregator.get();
  reg.slot_mapping = std::move(mapping);
  reg.newly_created = true;
  by_stream_[ToLower(stream_name)].push_back(aggregator.get());
  aggregators_[key] = Entry{ToLower(stream_name), std::move(aggregator)};
  return reg;
}

const std::vector<SliceAggregator*>& SliceAggregatorRegistry::ForStream(
    const std::string& stream_name) {
  std::lock_guard<std::mutex> lock(mu_);
  return by_stream_[ToLower(stream_name)];
}

std::vector<SliceAggregator*> SliceAggregatorRegistry::MutablePipelines() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SliceAggregator*> out;
  out.reserve(aggregators_.size());
  for (auto& [key, entry] : aggregators_) out.push_back(entry.aggregator.get());
  return out;
}

std::vector<SliceAggregatorRegistry::PipelineRef>
SliceAggregatorRegistry::Pipelines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PipelineRef> refs;
  refs.reserve(aggregators_.size());
  for (const auto& [key, entry] : aggregators_) {
    refs.push_back(PipelineRef{key, entry.stream, entry.aggregator.get()});
  }
  return refs;
}

// --- ContinuousQuery build ---------------------------------------------------

namespace {

/// Resolves GROUP BY ordinals and select-list aliases, mirroring the
/// planner's rules.
const sql::Expr* ResolveGroupItem(
    const sql::Expr* g, const std::vector<sql::SelectItem>& select_list,
    const Schema& input) {
  if (g->kind == sql::ExprKind::kLiteral &&
      g->literal.type() == DataType::kInt64) {
    int64_t ordinal = g->literal.AsInt64();
    if (ordinal >= 1 && ordinal <= static_cast<int64_t>(select_list.size())) {
      return select_list[static_cast<size_t>(ordinal - 1)].expr.get();
    }
    return g;
  }
  if (g->kind == sql::ExprKind::kColumnRef && g->qualifier.empty() &&
      !input.IndexOf(g->column_name).has_value()) {
    for (const auto& item : select_list) {
      if (EqualsIgnoreCase(item.alias, g->column_name)) {
        return item.expr.get();
      }
    }
  }
  return g;
}

bool ContainsCqClose(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunctionCall && e.function_name == "cq_close") {
    return true;
  }
  for (const auto& c : e.children) {
    if (ContainsCqClose(*c)) return true;
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<ContinuousQuery>> ContinuousQuery::Build(
    std::string name, const sql::SelectStmt& stmt,
    const catalog::Catalog* catalog, const storage::TransactionManager* txns,
    SliceAggregatorRegistry* registry, bool allow_shared) {
  // ---- Try the shared slice-aggregation strategy. --------------------------
  auto try_shared =
      [&]() -> Result<std::unique_ptr<ContinuousQuery>> {
    if (!allow_shared || registry == nullptr) {
      return Status::Aborted("shared path disabled");
    }
    if (!stmt.union_all.empty() || stmt.distinct || stmt.from.size() != 1 ||
        stmt.from[0]->kind != sql::TableRefKind::kBase ||
        !stmt.from[0]->window.has_value()) {
      return Status::Aborted("query shape not shareable");
    }
    const catalog::StreamInfo* stream =
        catalog->GetStream(stmt.from[0]->name);
    if (stream == nullptr || stream->is_derived) {
      return Status::Aborted("not a raw stream");
    }
    ASSIGN_OR_RETURN(WindowSpec window,
                     WindowSpec::FromAst(*stmt.from[0]->window));
    if (window.kind != WindowSpec::Kind::kTime) {
      return Status::Aborted("only time windows share slices");
    }
    bool any_aggregate = !stmt.group_by.empty() || stmt.having != nullptr;
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind == sql::ExprKind::kStar) {
        return Status::Aborted("star select is not an aggregate query");
      }
      if (exec::ExprBinder::ContainsAggregate(*item.expr)) {
        any_aggregate = true;
      }
    }
    if (!any_aggregate) return Status::Aborted("no aggregates");

    std::string qualifier =
        stmt.from[0]->alias.empty() ? stmt.from[0]->name : stmt.from[0]->alias;
    Schema input = stream->schema.WithQualifier(qualifier);

    // Filter.
    exec::BoundExprPtr filter;
    std::string filter_text;
    if (stmt.where != nullptr) {
      if (ContainsCqClose(*stmt.where)) {
        return Status::Aborted("cq_close in WHERE needs the generic path");
      }
      exec::ExprBinder where_binder(input);
      ASSIGN_OR_RETURN(filter, where_binder.BindScalar(*stmt.where));
      filter_text = stmt.where->ToString();
    }

    // Group-by resolution and binding.
    std::vector<const sql::Expr*> group_asts;
    std::string group_text;
    for (const auto& g : stmt.group_by) {
      const sql::Expr* resolved =
          ResolveGroupItem(g.get(), stmt.select_list, input);
      if (ContainsCqClose(*resolved)) {
        return Status::Aborted("cq_close in GROUP BY needs the generic path");
      }
      group_asts.push_back(resolved);
      group_text += resolved->ToString();
      group_text += "|";
    }
    exec::ExprBinder binder(input);
    RETURN_IF_ERROR(binder.EnterAggregateMode(group_asts));

    // Select list and HAVING.
    std::vector<exec::BoundExprPtr> projections;
    std::vector<Column> output_columns;
    for (const auto& item : stmt.select_list) {
      ASSIGN_OR_RETURN(exec::BoundExprPtr bound,
                       binder.BindProjection(*item.expr));
      std::string col_name = !item.alias.empty()
                                 ? item.alias
                                 : (item.expr->kind ==
                                            sql::ExprKind::kColumnRef
                                        ? item.expr->column_name
                                        : item.expr->ToString());
      output_columns.emplace_back(std::move(col_name), bound->type);
      projections.push_back(std::move(bound));
    }
    exec::BoundExprPtr having;
    if (stmt.having != nullptr) {
      ASSIGN_OR_RETURN(having, binder.BindProjection(*stmt.having));
    }

    // ORDER BY keys evaluated over the post-aggregation row.
    std::vector<SharedOrderKey> order_keys;
    for (const auto& ob : stmt.order_by) {
      const sql::Expr* target = ob.expr.get();
      if (target->kind == sql::ExprKind::kLiteral &&
          target->literal.type() == DataType::kInt64) {
        int64_t ordinal = target->literal.AsInt64();
        if (ordinal < 1 ||
            ordinal > static_cast<int64_t>(stmt.select_list.size())) {
          return Status::BindError("ORDER BY ordinal out of range");
        }
        target = stmt.select_list[static_cast<size_t>(ordinal - 1)].expr.get();
      } else if (target->kind == sql::ExprKind::kColumnRef &&
                 target->qualifier.empty()) {
        for (const auto& item : stmt.select_list) {
          if (EqualsIgnoreCase(item.alias, target->column_name)) {
            target = item.expr.get();
            break;
          }
        }
      }
      ASSIGN_OR_RETURN(exec::BoundExprPtr bound,
                       binder.BindProjection(*target));
      order_keys.push_back(SharedOrderKey{std::move(bound), ob.ascending});
    }

    size_t group_count = binder.group_exprs().size();
    std::string signature = ToLower(stream->name) + "|" +
                            std::to_string(window.SliceWidthMicros()) + "|" +
                            filter_text + "|" + group_text;
    ASSIGN_OR_RETURN(
        SliceAggregatorRegistry::Registration reg,
        registry->Attach(stream->name, signature, window.SliceWidthMicros(),
                         std::move(filter), binder.TakeGroupExprs(),
                         binder.TakeAggCalls()));
    reg.aggregator->NoteWindowVisible(window.visible);

    auto cq = std::unique_ptr<ContinuousQuery>(new ContinuousQuery());
    cq->name_ = name;
    cq->stream_name_ = stream->name;
    cq->window_ = window;
    cq->output_schema_ = Schema(std::move(output_columns));
    cq->txns_ = txns;
    cq->shared_agg_ = reg.aggregator;
    cq->slot_mapping_ = std::move(reg.slot_mapping);
    cq->group_count_ = group_count;
    cq->projections_ = std::move(projections);
    cq->having_ = std::move(having);
    cq->order_keys_ = std::move(order_keys);
    cq->limit_ = stmt.limit.value_or(-1);
    cq->offset_ = stmt.offset.value_or(0);
    return cq;
  };

  auto shared = try_shared();
  if (shared.ok()) return shared;
  if (shared.status().code() != StatusCode::kAborted) {
    // Real bind errors (not shape mismatches) surface to the user; the
    // generic planner would report them too, so let it decide.
  }

  // ---- Generic strategy: full plan re-executed per window. -----------------
  exec::Planner planner(catalog);
  ASSIGN_OR_RETURN(exec::PlannedQuery plan, planner.PlanSelect(stmt));
  if (!plan.is_continuous()) {
    return Status::InvalidArgument(
        "statement has no stream reference; it is a snapshot query, not a "
        "continuous query");
  }
  ASSIGN_OR_RETURN(WindowSpec window,
                   WindowSpec::FromAst(plan.stream_leaves[0].window));
  auto cq = std::unique_ptr<ContinuousQuery>(new ContinuousQuery());
  cq->name_ = std::move(name);
  cq->stream_name_ = plan.stream_leaves[0].stream_name;
  cq->window_ = window;
  cq->output_schema_ = plan.output_schema;
  cq->txns_ = txns;
  cq->plan_ = std::make_unique<exec::PlannedQuery>(std::move(plan));
  return cq;
}

// --- Execution ---------------------------------------------------------------

Status ContinuousQuery::OnWindowClose(const WindowBatch& batch) {
  windows_evaluated_.fetch_add(1, std::memory_order_relaxed);
  auto start = std::chrono::steady_clock::now();
  std::vector<Row> out;
  if (shared_agg_ != nullptr) {
    RETURN_IF_ERROR(EvaluateShared(batch.close_micros, &out));
  } else {
    RETURN_IF_ERROR(EvaluateGeneric(batch, &out));
  }
  int64_t eval_micros =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  eval_micros_total_.fetch_add(eval_micros, std::memory_order_relaxed);
  if (windows_metric_ != nullptr) windows_metric_->Add();
  if (eval_metric_ != nullptr) eval_metric_->Record(eval_micros);
  if (batch.close_micros > emit_watermark_.load(std::memory_order_relaxed)) {
    rows_emitted_.fetch_add(static_cast<int64_t>(out.size()),
                            std::memory_order_relaxed);
    if (rows_metric_ != nullptr) {
      rows_metric_->Add(static_cast<int64_t>(out.size()));
    }
    RETURN_IF_ERROR(Deliver(batch.close_micros, out));
  }
  return Status::OK();
}

Status ContinuousQuery::EvaluateGeneric(const WindowBatch& batch,
                                        std::vector<Row>* out) {
  exec::StreamLeaf& leaf = plan_->stream_leaves[0];
  leaf.buffer->SetBatch(std::make_shared<std::vector<Row>>(batch.rows));
  exec::ExecContext ctx;
  ctx.txns = txns_;
  // Window consistency (Section 4): table state is read as of the window
  // close, so every CQ evaluation sees a snapshot aligned with a window
  // boundary.
  ctx.snapshot = txns_->SnapshotAsOf(batch.close_micros);
  ctx.eval.has_window = true;
  ctx.eval.window_close_micros = batch.close_micros;
  ctx.eval.now_micros = batch.close_micros;
  ASSIGN_OR_RETURN(*out, exec::CollectRows(plan_->root.get(), &ctx));
  leaf.buffer->SetBatch(nullptr);
  return Status::OK();
}

Status ContinuousQuery::EvaluateShared(int64_t close, std::vector<Row>* out) {
  // Ask the shared pipeline for exactly this CQ's aggregate slots, so we
  // do not pay to merge/finalize states that other members registered.
  ASSIGN_OR_RETURN(
      std::vector<Row> local_rows,
      shared_agg_->ComputeWindow(close, window_.visible, &slot_mapping_));
  exec::EvalContext ctx;
  ctx.has_window = true;
  ctx.window_close_micros = close;
  ctx.now_micros = close;

  struct Keyed {
    Row output;
    std::vector<Value> sort_key;
  };
  std::vector<Keyed> kept;
  kept.reserve(local_rows.size());
  for (Row& local : local_rows) {
    // Already laid out as [group keys..., this CQ's aggs...].
    if (having_ != nullptr) {
      ASSIGN_OR_RETURN(bool keep, exec::EvalPredicate(*having_, local, ctx));
      if (!keep) continue;
    }
    Keyed k;
    k.output.reserve(projections_.size());
    for (const auto& p : projections_) {
      ASSIGN_OR_RETURN(Value v, p->Eval(local, ctx));
      k.output.push_back(std::move(v));
    }
    k.sort_key.reserve(order_keys_.size());
    for (const auto& ok : order_keys_) {
      ASSIGN_OR_RETURN(Value v, ok.expr->Eval(local, ctx));
      k.sort_key.push_back(std::move(v));
    }
    kept.push_back(std::move(k));
  }
  if (!order_keys_.empty()) {
    std::stable_sort(kept.begin(), kept.end(),
                     [this](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < order_keys_.size(); ++i) {
                         int c = a.sort_key[i].Compare(b.sort_key[i]);
                         if (c != 0) {
                           return order_keys_[i].ascending ? c < 0 : c > 0;
                         }
                       }
                       return false;
                     });
  }
  size_t begin = std::min(static_cast<size_t>(std::max<int64_t>(offset_, 0)),
                          kept.size());
  size_t end = limit_ >= 0 ? std::min(begin + static_cast<size_t>(limit_),
                                      kept.size())
                           : kept.size();
  out->reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    out->push_back(std::move(kept[i].output));
  }
  return Status::OK();
}

Status ContinuousQuery::Deliver(int64_t close, const std::vector<Row>& rows) {
  // Index loop: a callback may re-enter the engine and add/remove
  // subscriptions, invalidating iterators into callbacks_.
  for (size_t i = 0; i < callbacks_.size(); ++i) {
    RETURN_IF_ERROR(callbacks_[i].callback(close, rows));
  }
  return Status::OK();
}

}  // namespace streamrel::stream
