#include "stream/recovery.h"

#include <unordered_map>

#include "common/string_util.h"
#include "stream/channel.h"

namespace streamrel::stream {

Result<WalReplayResult> ReplayWal(catalog::Catalog* catalog,
                                  storage::TransactionManager* txns,
                                  const storage::WriteAheadLog& wal) {
  WalReplayResult result;
  std::unordered_map<uint64_t, storage::TxnId> txn_map;

  auto mapped_txn = [&](uint64_t old_id) {
    auto it = txn_map.find(old_id);
    if (it != txn_map.end()) return it->second;
    storage::TxnId fresh = txns->Begin();
    txn_map.emplace(old_id, fresh);
    return fresh;
  };

  Status status = wal.Replay([&](const storage::WalRecord& record) -> Status {
    switch (record.type) {
      case storage::WalRecordType::kBegin: {
        mapped_txn(record.txn_id);
        return Status::OK();
      }
      case storage::WalRecordType::kInsert: {
        catalog::TableInfo* table = catalog->GetTable(record.object_name);
        if (table == nullptr) {
          return Status::NotFound("WAL insert into unknown table '" +
                                  record.object_name + "'");
        }
        RETURN_IF_ERROR(InsertIntoTable(table, record.row,
                                        mapped_txn(record.txn_id),
                                        /*wal=*/nullptr));
        ++result.rows_inserted;
        return Status::OK();
      }
      case storage::WalRecordType::kDelete: {
        catalog::TableInfo* table = catalog->GetTable(record.object_name);
        if (table == nullptr) {
          return Status::NotFound("WAL delete in unknown table '" +
                                  record.object_name + "'");
        }
        auto row_id = static_cast<storage::RowId>(record.int_payload);
        ASSIGN_OR_RETURN(Row row, table->heap->GetRow(row_id));
        RETURN_IF_ERROR(DeleteFromTable(table, row_id, row,
                                        mapped_txn(record.txn_id),
                                        /*wal=*/nullptr));
        ++result.rows_deleted;
        return Status::OK();
      }
      case storage::WalRecordType::kCommit: {
        RETURN_IF_ERROR(txns->Commit(mapped_txn(record.txn_id),
                                     record.int_payload)
                            .status());
        ++result.transactions_committed;
        return Status::OK();
      }
      case storage::WalRecordType::kAbort: {
        return txns->Abort(mapped_txn(record.txn_id));
      }
      case storage::WalRecordType::kChannelProgress: {
        // Progress records appear in log order, so the last one wins.
        result.channel_watermarks[ToLower(record.object_name)] =
            record.int_payload;
        return Status::OK();
      }
      case storage::WalRecordType::kCheckpoint: {
        result.latest_checkpoints[ToLower(record.object_name)] = record.blob;
        return Status::OK();
      }
      case storage::WalRecordType::kVacuum: {
        catalog::TableInfo* table = catalog->GetTable(record.object_name);
        if (table == nullptr) {
          return Status::NotFound("WAL vacuum of unknown table '" +
                                  record.object_name + "'");
        }
        // Replaying the compaction reproduces the post-vacuum RowIds, so
        // later logged deletes keep targeting the right rows.
        return VacuumTable(table, txns, /*wal=*/nullptr,
                           record.int_payload)
            .status();
      }
    }
    return Status::IoError("unknown WAL record type");
  });
  RETURN_IF_ERROR(status);

  // Any transaction still open at end-of-log crashed mid-flight: abort it so
  // its rows stay permanently invisible.
  for (const auto& [old_id, fresh] : txn_map) {
    if (!txns->IsCommitted(fresh) && !txns->IsAborted(fresh)) {
      RETURN_IF_ERROR(txns->Abort(fresh));
    }
  }
  return result;
}

Status ResumeFromActiveTables(StreamRuntime* runtime,
                              const WalReplayResult& replay) {
  for (const auto& [channel_name, watermark] : replay.channel_watermarks) {
    Channel* channel = runtime->GetChannel(channel_name);
    if (channel == nullptr) continue;  // channel not restarted
    channel->SetWatermark(watermark);
    const std::string& source = channel->info().from_stream;
    const catalog::StreamInfo* stream = runtime->catalog()->GetStream(source);
    if (stream != nullptr && stream->is_derived) {
      // Rewind the always-on CQ behind the derived stream: it resumes at
      // the persisted watermark, recomputing nothing that is already in
      // the active table and re-delivering nothing.
      RETURN_IF_ERROR(runtime->ResetCqToWatermark(
          "$derived$" + ToLower(source), watermark));
    }
  }
  return Status::OK();
}

Status CheckpointManager::WriteCheckpoint() {
  for (const std::string& name : runtime_->CqNames()) {
    ASSIGN_OR_RETURN(std::string blob, runtime_->SerializeCqState(name));
    storage::WalRecord record;
    record.type = storage::WalRecordType::kCheckpoint;
    record.object_name = name;
    record.blob = std::move(blob);
    bytes_written_ += static_cast<int64_t>(record.blob.size());
    RETURN_IF_ERROR(wal_->Append(record));
  }
  wal_->Sync();
  ++checkpoints_written_;
  return Status::OK();
}

Status CheckpointManager::RestoreFromCheckpoints(
    const WalReplayResult& replay) {
  for (const auto& [name, blob] : replay.latest_checkpoints) {
    Status status = runtime_->RestoreCqState(name, blob);
    if (status.code() == StatusCode::kNotFound) continue;  // CQ not recreated
    RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

}  // namespace streamrel::stream
