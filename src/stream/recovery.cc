#include "stream/recovery.h"

#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/fault_injector.h"
#include "common/string_util.h"
#include "stream/channel.h"

namespace streamrel::stream {

Result<WalReplayResult> ReplayWal(catalog::Catalog* catalog,
                                  storage::TransactionManager* txns,
                                  const storage::WriteAheadLog& wal) {
  WalReplayResult result;
  std::unordered_map<uint64_t, storage::TxnId> txn_map;
  // Channel progress is transactional: it takes effect only when its
  // transaction's commit record is reached. Applying it eagerly would let
  // a batch that failed mid-persist advance the recovered watermark and
  // silently lose its window.
  std::unordered_map<uint64_t, std::vector<std::pair<std::string, int64_t>>>
      pending_progress;

  auto mapped_txn = [&](uint64_t old_id) {
    auto it = txn_map.find(old_id);
    if (it != txn_map.end()) return it->second;
    storage::TxnId fresh = txns->Begin();
    txn_map.emplace(old_id, fresh);
    return fresh;
  };

  storage::WalReplayStats wal_stats;
  Status status = wal.Replay(
      [&](const storage::WalRecord& record) -> Status {
        switch (record.type) {
          case storage::WalRecordType::kBegin: {
            mapped_txn(record.txn_id);
            return Status::OK();
          }
          case storage::WalRecordType::kInsert: {
            catalog::TableInfo* table = catalog->GetTable(record.object_name);
            if (table == nullptr) {
              return Status::NotFound("WAL insert into unknown table '" +
                                      record.object_name + "'");
            }
            RETURN_IF_ERROR(InsertIntoTable(table, record.row,
                                            mapped_txn(record.txn_id),
                                            /*wal=*/nullptr));
            ++result.rows_inserted;
            return Status::OK();
          }
          case storage::WalRecordType::kDelete: {
            catalog::TableInfo* table = catalog->GetTable(record.object_name);
            if (table == nullptr) {
              return Status::NotFound("WAL delete in unknown table '" +
                                      record.object_name + "'");
            }
            auto row_id = static_cast<storage::RowId>(record.int_payload);
            ASSIGN_OR_RETURN(Row row, table->heap->GetRow(row_id));
            RETURN_IF_ERROR(DeleteFromTable(table, row_id, row,
                                            mapped_txn(record.txn_id),
                                            /*wal=*/nullptr));
            ++result.rows_deleted;
            return Status::OK();
          }
          case storage::WalRecordType::kCommit: {
            RETURN_IF_ERROR(txns->Commit(mapped_txn(record.txn_id),
                                         record.int_payload)
                                .status());
            auto pending = pending_progress.find(record.txn_id);
            if (pending != pending_progress.end()) {
              // Progress records appear in log order, so the last
              // committed one wins.
              for (const auto& [channel, watermark] : pending->second) {
                result.channel_watermarks[channel] = watermark;
              }
              pending_progress.erase(pending);
            }
            ++result.transactions_committed;
            return Status::OK();
          }
          case storage::WalRecordType::kAbort: {
            pending_progress.erase(record.txn_id);
            return txns->Abort(mapped_txn(record.txn_id));
          }
          case storage::WalRecordType::kChannelProgress: {
            pending_progress[record.txn_id].emplace_back(
                ToLower(record.object_name), record.int_payload);
            return Status::OK();
          }
          case storage::WalRecordType::kCheckpoint: {
            CheckpointEntry& entry =
                result.latest_checkpoints[ToLower(record.object_name)];
            entry.blob = record.blob;
            entry.coverage = record.int_payload;
            return Status::OK();
          }
          case storage::WalRecordType::kVacuum: {
            catalog::TableInfo* table = catalog->GetTable(record.object_name);
            if (table == nullptr) {
              return Status::NotFound("WAL vacuum of unknown table '" +
                                      record.object_name + "'");
            }
            // Replaying the compaction reproduces the post-vacuum RowIds,
            // so later logged deletes keep targeting the right rows.
            return VacuumTable(table, txns, /*wal=*/nullptr,
                               record.int_payload)
                .status();
          }
        }
        return Status::IoError("unknown WAL record type");
      },
      &wal_stats);
  RETURN_IF_ERROR(status);
  result.stopped_at_torn_tail = wal_stats.stopped_at_torn_tail;
  result.stopped_at_corrupt_tail = wal_stats.stopped_at_corrupt_tail;

  // Any transaction still open at end-of-log crashed mid-flight: abort it so
  // its rows stay permanently invisible (its channel progress, if any, was
  // never applied either).
  for (const auto& [old_id, fresh] : txn_map) {
    if (!txns->IsCommitted(fresh) && !txns->IsAborted(fresh)) {
      RETURN_IF_ERROR(txns->Abort(fresh));
    }
  }
  return result;
}

Status ResumeFromActiveTables(StreamRuntime* runtime,
                              const WalReplayResult& replay) {
  for (const auto& [channel_name, watermark] : replay.channel_watermarks) {
    Channel* channel = runtime->GetChannel(channel_name);
    if (channel == nullptr) continue;  // channel not restarted
    channel->SetWatermark(watermark);
    const std::string& source = channel->info().from_stream;
    const catalog::StreamInfo* stream = runtime->catalog()->GetStream(source);
    if (stream != nullptr && stream->is_derived) {
      // Rewind the always-on CQ behind the derived stream: it resumes at
      // the persisted watermark, recomputing nothing that is already in
      // the active table and re-delivering nothing.
      RETURN_IF_ERROR(runtime->ResetCqToWatermark(
          "$derived$" + ToLower(source), watermark));
    }
  }
  return Status::OK();
}

Status CheckpointManager::WriteCheckpoint() {
  RETURN_IF_ERROR(FaultInjector::Instance().Hit("checkpoint.write"));
  for (const std::string& name : runtime_->CqNames()) {
    ContinuousQuery* cq = runtime_->GetCq(name);
    if (cq == nullptr || cq->is_shared()) {
      // Shared-strategy CQs keep their data in the slice aggregator; the
      // window operator holds only a close schedule, so a blob would
      // restore to an empty window. They recover the active-table way.
      continue;
    }
    ASSIGN_OR_RETURN(std::string blob, runtime_->SerializeCqState(name));
    storage::WalRecord record;
    record.type = storage::WalRecordType::kCheckpoint;
    record.object_name = name;
    record.int_payload = runtime_->watermark(cq->stream_name());
    record.blob = std::move(blob);
    bytes_written_ += static_cast<int64_t>(record.blob.size());
    RETURN_IF_ERROR(wal_->Append(record));
  }
  RETURN_IF_ERROR(wal_->Sync());
  ++checkpoints_written_;
  return Status::OK();
}

Status CheckpointManager::RestoreFromCheckpoints(
    const WalReplayResult& replay) {
  std::set<std::string> restored;
  for (const auto& [name, entry] : replay.latest_checkpoints) {
    Status status = runtime_->RestoreCqState(name, entry.blob);
    if (status.code() == StatusCode::kNotFound) continue;  // CQ not recreated
    RETURN_IF_ERROR(status);
    restored.insert(name);
  }
  // Channels resume from their durable watermarks. A restored CQ keeps
  // its buffered rows — only delivery of already-persisted windows is
  // suppressed; anything else is reset as in ResumeFromActiveTables.
  for (const auto& [channel_name, watermark] : replay.channel_watermarks) {
    Channel* channel = runtime_->GetChannel(channel_name);
    if (channel == nullptr) continue;
    channel->SetWatermark(watermark);
    const std::string& source = channel->info().from_stream;
    const catalog::StreamInfo* stream =
        runtime_->catalog()->GetStream(source);
    if (stream == nullptr || !stream->is_derived) continue;
    const std::string cq_name = "$derived$" + ToLower(source);
    if (restored.count(cq_name)) {
      RETURN_IF_ERROR(runtime_->SetCqEmitWatermark(cq_name, watermark));
    } else {
      RETURN_IF_ERROR(runtime_->ResetCqToWatermark(cq_name, watermark));
    }
  }
  return Status::OK();
}

}  // namespace streamrel::stream
