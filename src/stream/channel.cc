#include "stream/channel.h"

#include "common/fault_injector.h"

namespace streamrel::stream {

Status InsertIntoTable(catalog::TableInfo* table, const Row& row,
                       storage::TxnId txn, storage::WriteAheadLog* wal) {
  const Schema& schema = table->schema;
  if (row.size() != schema.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match table '" + table->name + "' (" +
        std::to_string(schema.num_columns()) + " columns)");
  }
  Row coerced;
  coerced.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    DataType target = schema.column(i).type;
    if (row[i].is_null() || row[i].type() == target) {
      coerced.push_back(row[i]);
    } else {
      ASSIGN_OR_RETURN(Value v, row[i].CastTo(target));
      coerced.push_back(std::move(v));
    }
  }
  ASSIGN_OR_RETURN(storage::RowId row_id, table->heap->Insert(coerced, txn));
  for (const auto& index : table->indexes) {
    ASSIGN_OR_RETURN(size_t col,
                     schema.FindColumn(index->column_name()));
    index->Insert(coerced[col], row_id);
  }
  if (wal != nullptr) {
    storage::WalRecord record;
    record.type = storage::WalRecordType::kInsert;
    record.txn_id = txn;
    record.object_name = table->name;
    record.row = std::move(coerced);
    RETURN_IF_ERROR(wal->Append(record));
  }
  return Status::OK();
}

Status DeleteFromTable(catalog::TableInfo* table, storage::RowId row_id,
                       const Row& row, storage::TxnId txn,
                       storage::WriteAheadLog* wal) {
  RETURN_IF_ERROR(table->heap->Delete(row_id, txn));
  for (const auto& index : table->indexes) {
    ASSIGN_OR_RETURN(size_t col, table->schema.FindColumn(
                                     index->column_name()));
    // Physical index entries are removed eagerly; MVCC readers that still
    // see the old version go through the heap's visibility check anyway
    // only for rows the index returns, so removal must wait until no
    // snapshot needs it. We keep the entry and let IndexScan's visibility
    // check filter it, EXCEPT when the deleting transaction also created
    // the row (insert+delete in one txn) — then nobody can see it.
    auto meta = table->heap->GetRowMeta(row_id);
    if (meta.ok() && meta->xmin == txn) {
      RETURN_IF_ERROR(index->Remove(row[col], row_id));
    }
  }
  if (wal != nullptr) {
    storage::WalRecord record;
    record.type = storage::WalRecordType::kDelete;
    record.txn_id = txn;
    record.object_name = table->name;
    record.int_payload = static_cast<int64_t>(row_id);
    RETURN_IF_ERROR(wal->Append(record));
  }
  return Status::OK();
}

Result<int64_t> VacuumTable(catalog::TableInfo* table,
                            storage::TransactionManager* txns,
                            storage::WriteAheadLog* wal,
                            int64_t commit_time) {
  // Collect the surviving rows in ascending RowId order (Scan guarantees
  // it), then rebuild the heap and indexes from scratch.
  std::vector<Row> survivors;
  storage::Snapshot snap = txns->CurrentSnapshot();
  RETURN_IF_ERROR(table->heap->Scan(*txns, snap, storage::kInvalidTxn,
                                    [&](storage::RowId, const Row& row) {
                                      survivors.push_back(row);
                                      return true;
                                    }));
  int64_t reclaimed = static_cast<int64_t>(table->heap->row_count()) -
                      static_cast<int64_t>(survivors.size());

  RETURN_IF_ERROR(table->heap->Truncate());
  std::vector<std::shared_ptr<storage::BTreeIndex>> fresh_indexes;
  fresh_indexes.reserve(table->indexes.size());
  for (const auto& index : table->indexes) {
    fresh_indexes.push_back(
        std::make_shared<storage::BTreeIndex>(index->column_name()));
  }
  table->indexes = std::move(fresh_indexes);

  storage::TxnId txn = txns->Begin();
  for (const Row& row : survivors) {
    // Indexes are maintained by InsertIntoTable; re-inserts are NOT
    // WAL-logged — the kVacuum barrier record replays this whole
    // compaction deterministically instead.
    RETURN_IF_ERROR(InsertIntoTable(table, row, txn, /*wal=*/nullptr));
  }
  RETURN_IF_ERROR(txns->Commit(txn, commit_time).status());

  if (wal != nullptr) {
    storage::WalRecord record;
    record.type = storage::WalRecordType::kVacuum;
    record.object_name = table->name;
    record.int_payload = commit_time;
    RETURN_IF_ERROR(wal->Append(record));
    RETURN_IF_ERROR(wal->Sync());
  }
  return reclaimed;
}

Channel::Channel(catalog::ChannelInfo info, catalog::TableInfo* table,
                 storage::TransactionManager* txns,
                 storage::WriteAheadLog* wal)
    : info_(std::move(info)), table_(table), txns_(txns), wal_(wal) {}

Status Channel::OnRawRows(int64_t at, const std::vector<Row>& rows) {
  if (at < watermark() || rows.empty()) return Status::OK();
  // Temporarily lower the recorded watermark so OnBatch accepts `at` even
  // when it equals the previous group's watermark. If the batch fails, the
  // prior watermark must come back: leaving it at `at - 1` would let a
  // redelivered earlier group slip past the dedup check and double-apply.
  // (Only this stream's ingest lock holder mutates the watermark, so the
  // interim value is never observed by another writer.)
  const int64_t prior = watermark();
  SetWatermark(at - 1);
  Status status = OnBatch(at, rows);
  if (!status.ok()) SetWatermark(prior);
  return status;
}

Status Channel::OnBatch(int64_t close, const std::vector<Row>& rows) {
  if (close <= watermark()) return Status::OK();  // already persisted
  RETURN_IF_ERROR(FaultInjector::Instance().Hit("channel.sink"));

  storage::TxnId txn = txns_->Begin();
  storage::WalRecord begin;
  begin.type = storage::WalRecordType::kBegin;
  begin.txn_id = txn;
  RETURN_IF_ERROR(wal_->Append(begin));

  if (info_.mode == sql::ChannelMode::kReplace) {
    // Delete every currently visible row so the table holds only this
    // window's results.
    storage::Snapshot snap = txns_->CurrentSnapshot();
    std::vector<std::pair<storage::RowId, Row>> victims;
    RETURN_IF_ERROR(table_->heap->Scan(
        *txns_, snap, txn, [&](storage::RowId id, const Row& row) {
          victims.emplace_back(id, row);
          return true;
        }));
    for (const auto& [id, row] : victims) {
      RETURN_IF_ERROR(DeleteFromTable(table_, id, row, txn, wal_));
    }
  }

  for (const Row& row : rows) {
    RETURN_IF_ERROR(InsertIntoTable(table_, row, txn, wal_));
  }

  storage::WalRecord progress;
  progress.type = storage::WalRecordType::kChannelProgress;
  progress.txn_id = txn;
  progress.object_name = info_.name;
  progress.int_payload = close;
  RETURN_IF_ERROR(wal_->Append(progress));

  storage::WalRecord commit;
  commit.type = storage::WalRecordType::kCommit;
  commit.txn_id = txn;
  commit.int_payload = close;  // commit time = window close
  RETURN_IF_ERROR(wal_->Append(commit));
  // The batch is committed only once its commit record is durable; a
  // failed sync leaves the transaction uncommitted and the watermark
  // unchanged, so the group is redelivered rather than half-applied.
  RETURN_IF_ERROR(wal_->Sync());

  // Window consistency: the batch becomes visible exactly at the window
  // boundary it belongs to.
  RETURN_IF_ERROR(txns_->Commit(txn, close).status());

  SetWatermark(close);
  batches_persisted_.fetch_add(1, std::memory_order_relaxed);
  rows_persisted_.fetch_add(static_cast<int64_t>(rows.size()),
                            std::memory_order_relaxed);
  if (batches_metric_ != nullptr) batches_metric_->Add();
  if (rows_metric_ != nullptr) {
    rows_metric_->Add(static_cast<int64_t>(rows.size()));
  }
  if (watermark_metric_ != nullptr) watermark_metric_->Set(close);
  return Status::OK();
}

}  // namespace streamrel::stream
