#include "stream/shared_aggregation.h"

#include <algorithm>

#include "exec/operators.h"

namespace streamrel::stream {

SliceAggregator::SliceAggregator(int64_t slice_width_micros,
                                 exec::BoundExprPtr filter,
                                 std::vector<exec::BoundExprPtr> group_exprs)
    : slice_width_(slice_width_micros),
      filter_(std::move(filter)),
      group_exprs_(std::move(group_exprs)) {}

SliceAggregator::SliceAggregator(const SliceAggregator* parent)
    : slice_width_(parent->slice_width_),
      governor_(parent->governor_),
      parent_(parent) {}

SliceAggregator::~SliceAggregator() { ReleaseAllCharges(); }

// Aggregate states are small fixed-size accumulators (count/sum/min/max
// cells); DISTINCT states can grow, but a stable flat estimate keeps the
// charge deterministic across runs and platforms.
static constexpr int64_t kAggStateBytes = 64;

int64_t SliceAggregator::GroupBytes(const Group& g) {
  int64_t bytes = static_cast<int64_t>(sizeof(Group));
  for (const Value& v : g.keys) bytes += EstimateValueBytes(v);
  bytes += static_cast<int64_t>(g.states.size()) * kAggStateBytes;
  return bytes;
}

void SliceAggregator::ChargeSlice(Slice* slice, int64_t bytes) {
  slice->bytes += bytes;
  bytes_held_ += bytes;
  if (governor_ != nullptr) {
    governor_->Add(MemoryGovernor::Account::kAggregator, bytes);
  }
}

void SliceAggregator::ReleaseAllCharges() {
  if (governor_ != nullptr && bytes_held_ != 0) {
    governor_->Release(MemoryGovernor::Account::kAggregator, bytes_held_);
  }
  bytes_held_ = 0;
}

void SliceAggregator::BindGovernor(MemoryGovernor* governor) {
  if (governor_ != governor) {
    if (governor_ != nullptr) {
      governor_->Release(MemoryGovernor::Account::kAggregator, bytes_held_);
    }
    governor_ = governor;
    if (governor_ != nullptr) {
      governor_->Add(MemoryGovernor::Account::kAggregator, bytes_held_);
    }
  }
  for (auto& shard : shards_) shard->BindGovernor(governor);
}

bool SliceAggregator::HasAbsorbed() const {
  if (rows_absorbed_.load(std::memory_order_relaxed) > 0 || !slices_.empty()) {
    return true;
  }
  for (const auto& shard : shards_) {
    if (shard->rows_absorbed_.load(std::memory_order_relaxed) > 0 ||
        !shard->slices_.empty()) {
      return true;
    }
  }
  return false;
}

Result<std::vector<size_t>> SliceAggregator::RegisterCalls(
    std::vector<exec::AggregateCall> calls) {
  std::vector<size_t> mapping;
  mapping.reserve(calls.size());
  for (exec::AggregateCall& call : calls) {
    size_t slot = calls_.size();
    for (size_t i = 0; i < calls_.size(); ++i) {
      if (calls_[i].display_name == call.display_name) {
        slot = i;
        break;
      }
    }
    if (slot == calls_.size()) {
      if (HasAbsorbed()) {
        return Status::Aborted(
            "cannot add aggregate '" + call.display_name +
            "' to a live shared pipeline (no backfill); use a fresh "
            "aggregator");
      }
      calls_.push_back(std::move(call));
    }
    mapping.push_back(slot);
  }
  ++member_cqs_;
  return mapping;
}

bool SliceAggregator::CanAccept(
    const std::vector<exec::AggregateCall>& calls) const {
  if (!HasAbsorbed()) return true;
  for (const exec::AggregateCall& call : calls) {
    bool found = false;
    for (const exec::AggregateCall& mine : calls_) {
      if (mine.display_name == call.display_name) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<std::vector<exec::AggStatePtr>> SliceAggregator::NewStates() const {
  const std::vector<exec::AggregateCall>& all = calls();
  std::vector<exec::AggStatePtr> states;
  states.reserve(all.size());
  for (const exec::AggregateCall& call : all) {
    ASSIGN_OR_RETURN(exec::AggStatePtr state,
                     exec::MakeAggState(call.function, call.star,
                                        call.distinct));
    states.push_back(std::move(state));
  }
  return states;
}

SliceAggregator::Group* SliceAggregator::FindOrCreateGroup(
    Slice* slice, std::vector<Value> keys, int64_t first_seq,
    Status* status) {
  size_t h = exec::HashValues(keys);
  auto& bucket = slice->lookup[h];
  for (size_t idx : bucket) {
    if (exec::ValuesEqual(slice->groups[idx].keys, keys)) {
      return &slice->groups[idx];
    }
  }
  bucket.push_back(slice->groups.size());
  Group g;
  g.keys = std::move(keys);
  g.first_seq = first_seq;
  auto states = NewStates();
  if (!states.ok()) {
    *status = states.status();
    return nullptr;
  }
  g.states = states.TakeValue();
  slice->groups.push_back(std::move(g));
  ChargeSlice(slice, GroupBytes(slice->groups.back()));
  return &slice->groups.back();
}

Status SliceAggregator::AddRow(int64_t ts, const Row& row, int64_t seq) {
  exec::EvalContext ctx;  // cq_close is not available pre-aggregation
  if (filter() != nullptr) {
    ASSIGN_OR_RETURN(bool keep, exec::EvalPredicate(*filter(), row, ctx));
    if (!keep) return Status::OK();
  }
  int64_t q = ts / slice_width_;
  if (ts % slice_width_ != 0 && ts < 0) --q;  // floor division
  int64_t slice_start = q * slice_width_;
  auto [slice_it, created] = slices_.try_emplace(slice_start);
  if (created) live_slice_count_.fetch_add(1, std::memory_order_relaxed);
  Slice& slice = slice_it->second;

  std::vector<Value> keys;
  keys.reserve(group_exprs().size());
  for (const auto& g : group_exprs()) {
    ASSIGN_OR_RETURN(Value v, g->Eval(row, ctx));
    keys.push_back(std::move(v));
  }
  Status status;
  Group* group = FindOrCreateGroup(&slice, std::move(keys), seq, &status);
  if (group == nullptr) return status;
  const std::vector<exec::AggregateCall>& all = calls();
  for (size_t i = 0; i < all.size(); ++i) {
    Value arg = Value::Null();
    if (all[i].argument != nullptr) {
      ASSIGN_OR_RETURN(arg, all[i].argument->Eval(row, ctx));
    }
    group->states[i]->Update(arg);
  }
  rows_absorbed_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::vector<Row>> SliceAggregator::ComputeWindow(
    int64_t close, int64_t visible,
    const std::vector<size_t>* slots) const {
  if (visible % slice_width_ != 0) {
    return Status::Internal("window width is not a multiple of slice width");
  }
  int64_t open = close - visible;

  // Which union slots to merge/finalize, in output order.
  std::vector<size_t> all;
  if (slots == nullptr) {
    all.resize(calls().size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    slots = &all;
  }
  for (size_t slot : *slots) {
    if (slot >= calls().size()) {
      return Status::Internal("aggregate slot out of range");
    }
  }

  std::vector<Group> merged;
  std::unordered_map<size_t, std::vector<size_t>> lookup;

  // Folds one partial group into the window accumulator, preserving
  // first-occurrence order (the order `absorb` is called in).
  auto absorb = [&](const Group& g) -> Status {
    size_t h = exec::HashValues(g.keys);
    auto& bucket = lookup[h];
    Group* target = nullptr;
    for (size_t idx : bucket) {
      if (exec::ValuesEqual(merged[idx].keys, g.keys)) {
        target = &merged[idx];
        break;
      }
    }
    if (target == nullptr) {
      bucket.push_back(merged.size());
      Group copy;
      copy.keys = g.keys;
      copy.states.reserve(slots->size());
      for (size_t slot : *slots) {
        copy.states.push_back(g.states[slot]->Clone());
      }
      merged.push_back(std::move(copy));
      return Status::OK();
    }
    for (size_t i = 0; i < slots->size(); ++i) {
      RETURN_IF_ERROR(target->states[i]->Merge(*g.states[(*slots)[i]]));
    }
    return Status::OK();
  };

  if (shards_.empty()) {
    // Single-threaded pipeline: slices in time order, groups in insertion
    // (= arrival) order.
    for (auto it = slices_.lower_bound(open);
         it != slices_.end() && it->first < close; ++it) {
      for (const Group& g : it->second.groups) {
        RETURN_IF_ERROR(absorb(g));
      }
    }
  } else {
    // Partition-parallel pipeline: gather each slice's partial groups from
    // the parent (pre-shard history) and every shard, then absorb them in
    // global arrival order (first_seq). Within one slice a shard's
    // insertion order already follows its rows' seqs, and each row lives in
    // exactly one shard, so the stable sort reconstructs the exact order a
    // single-threaded pass would have created the groups in.
    struct Entry {
      int64_t first_seq;
      const Group* group;
    };
    std::map<int64_t, std::vector<Entry>> by_slice;
    auto gather = [&](const SliceAggregator& src) {
      for (auto it = src.slices_.lower_bound(open);
           it != src.slices_.end() && it->first < close; ++it) {
        auto& entries = by_slice[it->first];
        for (const Group& g : it->second.groups) {
          entries.push_back(Entry{g.first_seq, &g});
        }
      }
    };
    gather(*this);
    for (const auto& shard : shards_) gather(*shard);
    for (auto& [start, entries] : by_slice) {
      std::stable_sort(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.first_seq < b.first_seq;
                       });
      for (const Entry& e : entries) {
        RETURN_IF_ERROR(absorb(*e.group));
      }
    }
  }

  // Scalar aggregation emits one row even for an empty window.
  if (merged.empty() && group_exprs().empty()) {
    Group g;
    ASSIGN_OR_RETURN(std::vector<exec::AggStatePtr> fresh, NewStates());
    g.states.reserve(slots->size());
    for (size_t slot : *slots) g.states.push_back(std::move(fresh[slot]));
    merged.push_back(std::move(g));
  }

  std::vector<Row> rows;
  rows.reserve(merged.size());
  for (Group& g : merged) {
    Row row = std::move(g.keys);
    for (const auto& state : g.states) row.push_back(state->Final());
    rows.push_back(std::move(row));
  }
  return rows;
}

void SliceAggregator::EvictBefore(int64_t ts) {
  while (!slices_.empty() && slices_.begin()->first + slice_width_ <= ts) {
    int64_t bytes = slices_.begin()->second.bytes;
    bytes_held_ -= bytes;
    if (governor_ != nullptr && bytes != 0) {
      governor_->Release(MemoryGovernor::Account::kAggregator, bytes);
    }
    slices_.erase(slices_.begin());
    live_slice_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  for (auto& shard : shards_) shard->EvictBefore(ts);
}

size_t SliceAggregator::live_slices() const {
  int64_t n = live_slice_count_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    n += shard->live_slice_count_.load(std::memory_order_relaxed);
  }
  return static_cast<size_t>(n);
}

int64_t SliceAggregator::rows_absorbed() const {
  int64_t n = rows_absorbed_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    n += shard->rows_absorbed_.load(std::memory_order_relaxed);
  }
  return n;
}

Status SliceAggregator::FoldShardsIn() {
  struct Entry {
    int64_t first_seq;
    const Group* group;
  };
  std::map<int64_t, std::vector<Entry>> by_slice;
  for (const auto& shard : shards_) {
    for (const auto& [start, slice] : shard->slices_) {
      auto& entries = by_slice[start];
      for (const Group& g : slice.groups) {
        entries.push_back(Entry{g.first_seq, &g});
      }
    }
    rows_absorbed_.fetch_add(
        shard->rows_absorbed_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  for (auto& [start, entries] : by_slice) {
    std::stable_sort(entries.begin(), entries.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first_seq < b.first_seq;
                     });
    auto [dst_it, dst_created] = slices_.try_emplace(start);
    if (dst_created) live_slice_count_.fetch_add(1, std::memory_order_relaxed);
    Slice& dst = dst_it->second;
    for (const Entry& e : entries) {
      size_t h = exec::HashValues(e.group->keys);
      auto& bucket = dst.lookup[h];
      Group* target = nullptr;
      for (size_t idx : bucket) {
        if (exec::ValuesEqual(dst.groups[idx].keys, e.group->keys)) {
          target = &dst.groups[idx];
          break;
        }
      }
      if (target == nullptr) {
        bucket.push_back(dst.groups.size());
        Group copy;
        copy.keys = e.group->keys;
        copy.first_seq = e.group->first_seq;
        copy.states.reserve(e.group->states.size());
        for (const auto& state : e.group->states) {
          copy.states.push_back(state->Clone());
        }
        dst.groups.push_back(std::move(copy));
        ChargeSlice(&dst, GroupBytes(dst.groups.back()));
        continue;
      }
      for (size_t i = 0; i < target->states.size(); ++i) {
        RETURN_IF_ERROR(target->states[i]->Merge(*e.group->states[i]));
      }
    }
  }
  shards_.clear();
  return Status::OK();
}

Status SliceAggregator::SetShardCount(size_t n) {
  if (parent_ != nullptr) {
    return Status::Internal("shard replicas cannot themselves be sharded");
  }
  RETURN_IF_ERROR(FoldShardsIn());
  if (n >= 2) {
    shards_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      shards_.emplace_back(new SliceAggregator(this));
    }
  }
  return Status::OK();
}

}  // namespace streamrel::stream
