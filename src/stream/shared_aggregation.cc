#include "stream/shared_aggregation.h"

#include "exec/operators.h"

namespace streamrel::stream {

SliceAggregator::SliceAggregator(int64_t slice_width_micros,
                                 exec::BoundExprPtr filter,
                                 std::vector<exec::BoundExprPtr> group_exprs)
    : slice_width_(slice_width_micros),
      filter_(std::move(filter)),
      group_exprs_(std::move(group_exprs)) {}

Result<std::vector<size_t>> SliceAggregator::RegisterCalls(
    std::vector<exec::AggregateCall> calls) {
  std::vector<size_t> mapping;
  mapping.reserve(calls.size());
  for (exec::AggregateCall& call : calls) {
    size_t slot = calls_.size();
    for (size_t i = 0; i < calls_.size(); ++i) {
      if (calls_[i].display_name == call.display_name) {
        slot = i;
        break;
      }
    }
    if (slot == calls_.size()) {
      if (rows_absorbed_ > 0 || !slices_.empty()) {
        return Status::Aborted(
            "cannot add aggregate '" + call.display_name +
            "' to a live shared pipeline (no backfill); use a fresh "
            "aggregator");
      }
      calls_.push_back(std::move(call));
    }
    mapping.push_back(slot);
  }
  ++member_cqs_;
  return mapping;
}

bool SliceAggregator::CanAccept(
    const std::vector<exec::AggregateCall>& calls) const {
  if (rows_absorbed_ == 0 && slices_.empty()) return true;
  for (const exec::AggregateCall& call : calls) {
    bool found = false;
    for (const exec::AggregateCall& mine : calls_) {
      if (mine.display_name == call.display_name) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

Result<std::vector<exec::AggStatePtr>> SliceAggregator::NewStates() const {
  std::vector<exec::AggStatePtr> states;
  states.reserve(calls_.size());
  for (const exec::AggregateCall& call : calls_) {
    ASSIGN_OR_RETURN(exec::AggStatePtr state,
                     exec::MakeAggState(call.function, call.star,
                                        call.distinct));
    states.push_back(std::move(state));
  }
  return states;
}

Status SliceAggregator::AddRow(int64_t ts, const Row& row) {
  exec::EvalContext ctx;  // cq_close is not available pre-aggregation
  if (filter_ != nullptr) {
    ASSIGN_OR_RETURN(bool keep, exec::EvalPredicate(*filter_, row, ctx));
    if (!keep) return Status::OK();
  }
  int64_t q = ts / slice_width_;
  if (ts % slice_width_ != 0 && ts < 0) --q;  // floor division
  int64_t slice_start = q * slice_width_;
  Slice& slice = slices_[slice_start];

  std::vector<Value> keys;
  keys.reserve(group_exprs_.size());
  for (const auto& g : group_exprs_) {
    ASSIGN_OR_RETURN(Value v, g->Eval(row, ctx));
    keys.push_back(std::move(v));
  }
  size_t h = exec::HashValues(keys);
  auto& bucket = slice.lookup[h];
  Group* group = nullptr;
  for (size_t idx : bucket) {
    if (exec::ValuesEqual(slice.groups[idx].keys, keys)) {
      group = &slice.groups[idx];
      break;
    }
  }
  if (group == nullptr) {
    bucket.push_back(slice.groups.size());
    Group g;
    g.keys = std::move(keys);
    ASSIGN_OR_RETURN(g.states, NewStates());
    slice.groups.push_back(std::move(g));
    group = &slice.groups.back();
  }
  for (size_t i = 0; i < calls_.size(); ++i) {
    Value arg = Value::Null();
    if (calls_[i].argument != nullptr) {
      ASSIGN_OR_RETURN(arg, calls_[i].argument->Eval(row, ctx));
    }
    group->states[i]->Update(arg);
  }
  ++rows_absorbed_;
  return Status::OK();
}

Result<std::vector<Row>> SliceAggregator::ComputeWindow(
    int64_t close, int64_t visible,
    const std::vector<size_t>* slots) const {
  if (visible % slice_width_ != 0) {
    return Status::Internal("window width is not a multiple of slice width");
  }
  int64_t open = close - visible;

  // Which union slots to merge/finalize, in output order.
  std::vector<size_t> all;
  if (slots == nullptr) {
    all.resize(calls_.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    slots = &all;
  }
  for (size_t slot : *slots) {
    if (slot >= calls_.size()) {
      return Status::Internal("aggregate slot out of range");
    }
  }

  std::vector<Group> merged;
  std::unordered_map<size_t, std::vector<size_t>> lookup;

  for (auto it = slices_.lower_bound(open);
       it != slices_.end() && it->first < close; ++it) {
    for (const Group& g : it->second.groups) {
      size_t h = exec::HashValues(g.keys);
      auto& bucket = lookup[h];
      Group* target = nullptr;
      for (size_t idx : bucket) {
        if (exec::ValuesEqual(merged[idx].keys, g.keys)) {
          target = &merged[idx];
          break;
        }
      }
      if (target == nullptr) {
        bucket.push_back(merged.size());
        Group copy;
        copy.keys = g.keys;
        copy.states.reserve(slots->size());
        for (size_t slot : *slots) {
          copy.states.push_back(g.states[slot]->Clone());
        }
        merged.push_back(std::move(copy));
        continue;
      }
      for (size_t i = 0; i < slots->size(); ++i) {
        RETURN_IF_ERROR(target->states[i]->Merge(*g.states[(*slots)[i]]));
      }
    }
  }

  // Scalar aggregation emits one row even for an empty window.
  if (merged.empty() && group_exprs_.empty()) {
    Group g;
    ASSIGN_OR_RETURN(std::vector<exec::AggStatePtr> fresh, NewStates());
    g.states.reserve(slots->size());
    for (size_t slot : *slots) g.states.push_back(std::move(fresh[slot]));
    merged.push_back(std::move(g));
  }

  std::vector<Row> rows;
  rows.reserve(merged.size());
  for (Group& g : merged) {
    Row row = std::move(g.keys);
    for (const auto& state : g.states) row.push_back(state->Final());
    rows.push_back(std::move(row));
  }
  return rows;
}

void SliceAggregator::EvictBefore(int64_t ts) {
  while (!slices_.empty() && slices_.begin()->first + slice_width_ <= ts) {
    slices_.erase(slices_.begin());
  }
}

}  // namespace streamrel::stream
