#include "stream/metrics.h"

#include <algorithm>
#include <cmath>

namespace streamrel::stream {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {}

std::vector<int64_t> Histogram::LatencyMicrosBounds() {
  return {1,    2,    5,     10,    25,    50,     100,    250,     500, 1000,
          2500, 5000, 10000, 25000, 50000, 100000, 250000, 500000, 1000000};
}

void Histogram::Record(int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  size_t i = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
             bounds_.begin();
  ++buckets_[i];
}

int64_t Histogram::Percentile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0;
  int64_t rank =
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return i < bounds_.size() ? bounds_[i] : max_;
    }
  }
  return max_;
}

Counter* MetricsRegistry::GetCounter(const std::string& scope,
                                     const std::string& name,
                                     const std::string& metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key(scope, name, metric)];
  if (cell.counter == nullptr) cell.counter = std::make_unique<Counter>();
  return cell.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& scope,
                                 const std::string& name,
                                 const std::string& metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key(scope, name, metric)];
  if (cell.gauge == nullptr) cell.gauge = std::make_unique<Gauge>();
  return cell.gauge.get();
}

Gauge* MetricsRegistry::GetWatermarkGauge(const std::string& scope,
                                          const std::string& name,
                                          const std::string& metric) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key(scope, name, metric)];
  cell.is_timestamp = true;
  if (cell.gauge == nullptr) {
    cell.gauge = std::make_unique<Gauge>();
    cell.gauge->Set(INT64_MIN);
  }
  return cell.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& scope,
                                         const std::string& name,
                                         const std::string& metric) {
  return GetHistogram(scope, name, metric, Histogram::LatencyMicrosBounds());
}

Histogram* MetricsRegistry::GetHistogram(const std::string& scope,
                                         const std::string& name,
                                         const std::string& metric,
                                         std::vector<int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = cells_[Key(scope, name, metric)];
  if (cell.histogram == nullptr) {
    cell.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return cell.histogram.get();
}

void MetricsRegistry::RemoveObject(const std::string& scope,
                                   const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cells_.lower_bound(Key(scope, name, ""));
  while (it != cells_.end() && std::get<0>(it->first) == scope &&
         std::get<1>(it->first) == name) {
    it = cells_.erase(it);
  }
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> samples;
  samples.reserve(cells_.size() * 2);
  for (const auto& [key, cell] : cells_) {
    const auto& [scope, name, metric] = key;
    auto emit = [&](const std::string& suffix, int64_t value,
                    bool is_timestamp = false) {
      MetricSample s;
      s.scope = scope;
      s.name = name;
      s.metric = suffix.empty() ? metric : metric + suffix;
      s.value = value;
      s.is_timestamp = is_timestamp;
      samples.push_back(std::move(s));
    };
    if (cell.counter != nullptr) emit("", cell.counter->value());
    if (cell.gauge != nullptr) {
      emit("", cell.gauge->value(), cell.is_timestamp);
    }
    if (cell.histogram != nullptr) {
      const Histogram& h = *cell.histogram;
      emit("_count", h.count());
      emit("_total", h.sum());
      emit("_min", h.min());
      emit("_max", h.max());
      emit("_p50", h.Percentile(0.50));
      emit("_p95", h.Percentile(0.95));
      emit("_p99", h.Percentile(0.99));
    }
  }
  return samples;
}

}  // namespace streamrel::stream
