#include "stream/window_operator.h"

#include <cstring>

namespace streamrel::stream {

WindowOperator::WindowOperator(WindowSpec spec) : spec_(spec) {}

WindowOperator::~WindowOperator() {
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kWindow, bytes_buffered_);
  }
}

void WindowOperator::BindGovernor(MemoryGovernor* governor) {
  if (governor_ == governor) return;
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kWindow, bytes_buffered_);
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_->Add(MemoryGovernor::Account::kWindow, bytes_buffered_);
  }
}

void WindowOperator::PushElement(Element e) {
  int64_t bytes = EstimateRowBytes(e.row) + static_cast<int64_t>(sizeof(int64_t));
  bytes_buffered_ += bytes;
  if (governor_ != nullptr) {
    governor_->Add(MemoryGovernor::Account::kWindow, bytes);
  }
  buffer_.push_back(std::move(e));
}

void WindowOperator::PopFrontElement() {
  int64_t bytes = EstimateRowBytes(buffer_.front().row) +
                  static_cast<int64_t>(sizeof(int64_t));
  bytes_buffered_ -= bytes;
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kWindow, bytes);
  }
  buffer_.pop_front();
}

void WindowOperator::ClearBuffer() {
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kWindow, bytes_buffered_);
  }
  bytes_buffered_ = 0;
  buffer_.clear();
}

Status WindowOperator::AddRow(int64_t ts, Row row,
                              std::vector<WindowBatch>* closed) {
  if (ts < last_ts_) {
    return Status::InvalidArgument(
        "out-of-order stream element: " + std::to_string(ts) + " after " +
        std::to_string(last_ts_) +
        " (streams are ordered on their CQTIME attribute)");
  }
  last_ts_ = ts;
  switch (spec_.kind) {
    case WindowSpec::Kind::kTime: {
      if (next_close_ == INT64_MIN) {
        next_close_ = spec_.FirstCloseAfter(ts);
      }
      // A row at `ts` proves the watermark reached `ts`; every window with
      // close <= ts is complete (the row itself belongs to a later window).
      RETURN_IF_ERROR(CloseDueWindows(ts, closed));
      PushElement(Element{ts, std::move(row)});
      return Status::OK();
    }
    case WindowSpec::Kind::kRows: {
      PushElement(Element{ts, std::move(row)});
      while (static_cast<int64_t>(buffer_.size()) > spec_.visible) {
        PopFrontElement();
      }
      if (++rows_since_advance_ >= spec_.advance) {
        rows_since_advance_ = 0;
        WindowBatch batch;
        batch.close_micros = ts;
        batch.rows.reserve(buffer_.size());
        for (const Element& e : buffer_) batch.rows.push_back(e.row);
        closed->push_back(std::move(batch));
      }
      return Status::OK();
    }
    case WindowSpec::Kind::kSlices:
      return Status::Internal(
          "SLICES windows consume batches, not individual rows");
  }
  return Status::Internal("unreachable window kind");
}

Status WindowOperator::AddBatch(int64_t close, const std::vector<Row>& rows,
                                std::vector<WindowBatch>* closed) {
  if (spec_.kind == WindowSpec::Kind::kSlices) {
    for (const Row& row : rows) PushElement(Element{close, row});
    last_ts_ = close;
    if (++batches_since_emit_ >= spec_.slices_count) {
      batches_since_emit_ = 0;
      WindowBatch batch;
      batch.close_micros = close;
      batch.rows.reserve(buffer_.size());
      for (Element& e : buffer_) batch.rows.push_back(std::move(e.row));
      ClearBuffer();
      closed->push_back(std::move(batch));
    }
    return Status::OK();
  }
  // Time/row windows over a derived stream: each row adopts `close - 1` as
  // its timestamp (the instant just inside the producing window, as in
  // Flink's window-end timestamps) so that a downstream window ending at
  // the same boundary includes it; the close itself advances the watermark.
  for (const Row& row : rows) {
    RETURN_IF_ERROR(AddRow(close - 1, row, closed));
  }
  return AdvanceTime(close, closed);
}

Status WindowOperator::AdvanceTime(int64_t watermark,
                                   std::vector<WindowBatch>* closed) {
  if (watermark < last_ts_) {
    return Status::InvalidArgument("watermark regression");
  }
  last_ts_ = watermark;
  if (spec_.kind != WindowSpec::Kind::kTime || next_close_ == INT64_MIN) {
    return Status::OK();
  }
  return CloseDueWindows(watermark, closed);
}

Status WindowOperator::CloseDueWindows(int64_t watermark,
                                       std::vector<WindowBatch>* closed) {
  while (next_close_ <= watermark) {
    int64_t close = next_close_;
    int64_t open = close - spec_.visible;
    WindowBatch batch;
    batch.close_micros = close;
    for (const Element& e : buffer_) {
      if (e.ts >= open && e.ts < close) batch.rows.push_back(e.row);
    }
    closed->push_back(std::move(batch));
    next_close_ += spec_.advance;
    EvictBefore(next_close_ - spec_.visible);
  }
  return Status::OK();
}

void WindowOperator::EvictBefore(int64_t ts) {
  while (!buffer_.empty() && buffer_.front().ts < ts) PopFrontElement();
}

void WindowOperator::Serialize(std::string* out) const {
  auto put_i64 = [out](int64_t v) {
    out->append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  put_i64(next_close_);
  put_i64(rows_since_advance_);
  put_i64(batches_since_emit_);
  put_i64(last_ts_);
  put_i64(static_cast<int64_t>(buffer_.size()));
  for (const Element& e : buffer_) {
    put_i64(e.ts);
    SerializeRow(e.row, out);
  }
}

Status WindowOperator::Restore(const std::string& data) {
  size_t offset = 0;
  auto get_i64 = [&](int64_t* v) -> Status {
    if (offset + sizeof(*v) > data.size()) {
      return Status::IoError("truncated window checkpoint");
    }
    memcpy(v, data.data() + offset, sizeof(*v));
    offset += sizeof(*v);
    return Status::OK();
  };
  ClearBuffer();
  RETURN_IF_ERROR(get_i64(&next_close_));
  RETURN_IF_ERROR(get_i64(&rows_since_advance_));
  RETURN_IF_ERROR(get_i64(&batches_since_emit_));
  RETURN_IF_ERROR(get_i64(&last_ts_));
  int64_t count = 0;
  RETURN_IF_ERROR(get_i64(&count));
  for (int64_t i = 0; i < count; ++i) {
    Element e;
    RETURN_IF_ERROR(get_i64(&e.ts));
    ASSIGN_OR_RETURN(e.row, DeserializeRow(data, &offset));
    PushElement(std::move(e));
  }
  return Status::OK();
}

void WindowOperator::ResetToWatermark(int64_t watermark) {
  ClearBuffer();
  rows_since_advance_ = 0;
  batches_since_emit_ = 0;
  if (spec_.kind == WindowSpec::Kind::kTime) {
    // Windows closing after `watermark` still need the rows in
    // [watermark - (visible - advance), watermark): recovery re-primes by
    // replaying the source from there (at-least-once from the persisted
    // watermark), so accept timestamps from that bound onward.
    last_ts_ = watermark - (spec_.visible - spec_.advance);
    if (last_ts_ > watermark) last_ts_ = watermark;  // tumbling+
    next_close_ = spec_.FirstCloseAfter(watermark - 1);
    if (next_close_ <= watermark) next_close_ += spec_.advance;
  } else {
    last_ts_ = watermark;
    next_close_ = INT64_MIN;
  }
}

}  // namespace streamrel::stream
