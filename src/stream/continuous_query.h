#ifndef STREAMREL_STREAM_CONTINUOUS_QUERY_H_
#define STREAMREL_STREAM_CONTINUOUS_QUERY_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/schema.h"
#include "common/status.h"
#include "exec/planner.h"
#include "storage/transaction.h"
#include "stream/metrics.h"
#include "stream/shared_aggregation.h"
#include "stream/window.h"
#include "stream/window_operator.h"

namespace streamrel::stream {

/// Delivery of one window's results: (window close time, output relation).
using CqCallback =
    std::function<Status(int64_t close, const std::vector<Row>& rows)>;

/// A registry of shared slice-aggregation pipelines, keyed by
/// (stream, slice width, filter text, group-by text). CQs with matching
/// signatures attach to the same SliceAggregator; a CQ that would need to
/// add aggregates to a pipeline that has already absorbed rows gets a fresh
/// one (no backfill), tracked under a versioned key.
class SliceAggregatorRegistry {
 public:
  struct Registration {
    SliceAggregator* aggregator = nullptr;  // owned by the registry
    std::vector<size_t> slot_mapping;       // CQ call -> union slot
    bool newly_created = false;
  };

  /// Finds or creates the pipeline for `signature`, registering `calls`.
  Result<Registration> Attach(const std::string& stream_name,
                              const std::string& signature,
                              int64_t slice_width,
                              exec::BoundExprPtr filter,
                              std::vector<exec::BoundExprPtr> group_exprs,
                              std::vector<exec::AggregateCall> calls);

  /// All pipelines attached to `stream_name` (ingest fan-out). The
  /// returned vector reference is node-stable across concurrent lookups
  /// (the map entry, once created, never moves) and is only mutated by
  /// Attach, which runs under the exclusive engine lock.
  const std::vector<SliceAggregator*>& ForStream(
      const std::string& stream_name);

  size_t pipeline_count() const { return aggregators_.size(); }

  /// One live pipeline, for observability enumeration.
  struct PipelineRef {
    std::string key;     // versioned signature ("sig#N")
    std::string stream;  // lowercased source stream
    const SliceAggregator* aggregator = nullptr;
  };
  std::vector<PipelineRef> Pipelines() const;

  /// Every live pipeline, mutable (the runtime re-shards them when the
  /// parallelism level changes).
  std::vector<SliceAggregator*> MutablePipelines();

 private:
  struct Entry {
    std::string stream;
    std::unique_ptr<SliceAggregator> aggregator;
  };
  /// Leaf mutex guarding the maps: ForStream lazily inserts an empty
  /// per-stream vector during shared-mode ingest, which can race another
  /// stream's ingest doing the same. Held only for map operations.
  mutable std::mutex mu_;
  std::map<std::string, Entry> aggregators_;  // versioned signature -> entry
  std::map<std::string, int> versions_;
  std::map<std::string, std::vector<SliceAggregator*>> by_stream_;
};

/// One running continuous query (the paper's CQ): a SELECT over a windowed
/// stream (optionally joined with tables) that emits a relation at every
/// window close and runs until dropped.
///
/// Two execution strategies:
///  - *shared*: eligible aggregate CQs (single raw stream, time window,
///    GROUP BY + aggregates) read pre-merged per-slice partial states from
///    a shared SliceAggregator and only run the cheap post-aggregation
///    steps (HAVING/ORDER BY/LIMIT/projection) per window;
///  - *generic*: everything else re-executes its full plan over the
///    window's buffered rows, with stream-table joins reading a
///    window-consistent MVCC snapshot (as of the window close).
class ContinuousQuery {
 public:
  ~ContinuousQuery() = default;

  /// Builds a CQ from an analyzed statement. Attempts the shared strategy
  /// when `allow_shared`; falls back to generic. `registry` may be null
  /// only when `allow_shared` is false.
  static Result<std::unique_ptr<ContinuousQuery>> Build(
      std::string name, const sql::SelectStmt& stmt,
      const catalog::Catalog* catalog,
      const storage::TransactionManager* txns,
      SliceAggregatorRegistry* registry, bool allow_shared);

  const std::string& name() const { return name_; }
  const Schema& output_schema() const { return output_schema_; }
  const std::string& stream_name() const { return stream_name_; }
  const WindowSpec& window() const { return window_; }
  bool is_shared() const { return shared_agg_ != nullptr; }
  /// The shared pipeline this CQ reads (null on the generic path). The
  /// runtime uses it to keep shard counts in step with SET PARALLELISM.
  SliceAggregator* shared_aggregator() const { return shared_agg_; }

  /// Registers a delivery callback; the returned id can later detach it
  /// (network sessions subscribe and unsubscribe while the CQ runs).
  int64_t AddCallback(CqCallback callback) {
    int64_t id = next_callback_id_++;
    callbacks_.push_back({id, std::move(callback)});
    return id;
  }

  /// Detaches a callback registered by AddCallback; unknown ids are a
  /// no-op (the CQ may have been dropped and re-created meanwhile).
  void RemoveCallback(int64_t id) {
    std::erase_if(callbacks_,
                  [id](const CallbackEntry& e) { return e.id == id; });
  }

  size_t callback_count() const { return callbacks_.size(); }

  /// Generic path: evaluates the plan over one closed window's contents.
  /// Shared path: reads the shared aggregator as of the batch close (the
  /// batch rows themselves are ignored — the aggregator already saw them).
  Status OnWindowClose(const WindowBatch& batch);

  /// Windows with close <= `watermark` are evaluated but not delivered
  /// (used after recovery so already-persisted results are not re-emitted).
  void SetEmitWatermark(int64_t watermark) {
    emit_watermark_.store(watermark, std::memory_order_relaxed);
  }
  int64_t emit_watermark() const {
    return emit_watermark_.load(std::memory_order_relaxed);
  }

  /// Total windows evaluated / rows emitted (for tests and benchmarks).
  int64_t windows_evaluated() const {
    return windows_evaluated_.load(std::memory_order_relaxed);
  }

  /// Wall time spent evaluating windows (not counting delivery callbacks).
  int64_t eval_micros_total() const {
    return eval_micros_total_.load(std::memory_order_relaxed);
  }
  int64_t rows_emitted() const {
    return rows_emitted_.load(std::memory_order_relaxed);
  }

  /// Optional observability hookup: mirrors window closes, rows emitted,
  /// and per-close eval latency into registry-owned metrics. Any pointer
  /// may be null.
  void BindMetrics(Counter* windows_closed, Counter* rows_emitted,
                   Histogram* eval_micros) {
    windows_metric_ = windows_closed;
    rows_metric_ = rows_emitted;
    eval_metric_ = eval_micros;
  }

  /// Base tables this CQ's plan references (lowercased; empty for the
  /// shared strategy, whose pipeline reads no tables). The engine refuses
  /// to drop these while the CQ runs.
  std::vector<std::string> referenced_tables() const {
    return plan_ != nullptr ? plan_->referenced_tables
                            : std::vector<std::string>{};
  }

 private:
  ContinuousQuery() = default;

  Status EvaluateGeneric(const WindowBatch& batch, std::vector<Row>* out);
  Status EvaluateShared(int64_t close, std::vector<Row>* out);
  Status Deliver(int64_t close, const std::vector<Row>& rows);

  struct CallbackEntry {
    int64_t id = 0;
    CqCallback callback;
  };

  std::string name_;
  std::string stream_name_;
  WindowSpec window_;
  Schema output_schema_;
  std::vector<CallbackEntry> callbacks_;
  int64_t next_callback_id_ = 1;
  // Atomics: bumped under the owning stream's ingest lock but read by
  // concurrent SHOW STATS / sys_cqs refreshes that hold only the shared
  // engine lock.
  std::atomic<int64_t> emit_watermark_{INT64_MIN};
  std::atomic<int64_t> windows_evaluated_{0};
  std::atomic<int64_t> eval_micros_total_{0};
  std::atomic<int64_t> rows_emitted_{0};
  Counter* windows_metric_ = nullptr;
  Counter* rows_metric_ = nullptr;
  Histogram* eval_metric_ = nullptr;

  // Generic path.
  const storage::TransactionManager* txns_ = nullptr;
  std::unique_ptr<exec::PlannedQuery> plan_;

  // Shared path.
  SliceAggregator* shared_agg_ = nullptr;  // owned by the registry
  std::vector<size_t> slot_mapping_;       // local agg slot -> union slot
  size_t group_count_ = 0;
  std::vector<exec::BoundExprPtr> projections_;  // over [keys, local aggs]
  exec::BoundExprPtr having_;
  struct SharedOrderKey {
    exec::BoundExprPtr expr;  // over the post-aggregation row
    bool ascending = true;
  };
  std::vector<SharedOrderKey> order_keys_;
  int64_t limit_ = -1;
  int64_t offset_ = 0;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_CONTINUOUS_QUERY_H_
