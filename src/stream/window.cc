#include "stream/window.h"

#include "common/time.h"

namespace streamrel::stream {

Result<WindowSpec> WindowSpec::FromAst(const sql::WindowSpecAst& ast) {
  WindowSpec spec;
  if (ast.is_slices) {
    if (ast.slices_count < 1) {
      return Status::InvalidArgument("SLICES count must be at least 1");
    }
    spec.kind = Kind::kSlices;
    spec.slices_count = ast.slices_count;
    return spec;
  }
  spec.kind = ast.unit == sql::WindowUnit::kTime ? Kind::kTime : Kind::kRows;
  spec.visible = ast.visible;
  spec.advance = ast.advance;
  if (spec.visible <= 0 || spec.advance <= 0) {
    return Status::InvalidArgument("window VISIBLE/ADVANCE must be positive");
  }
  if (spec.kind == Kind::kTime && spec.visible % spec.advance != 0 &&
      spec.advance % spec.visible != 0) {
    // Arbitrary ratios still work (gcd slicing); nothing to reject.
  }
  return spec;
}

std::string WindowSpec::ToString() const {
  switch (kind) {
    case Kind::kSlices:
      return "<SLICES " + std::to_string(slices_count) + " WINDOWS>";
    case Kind::kRows:
      return "<VISIBLE " + std::to_string(visible) + " ROWS ADVANCE " +
             std::to_string(advance) + " ROWS>";
    case Kind::kTime:
      return "<VISIBLE '" + FormatIntervalMicros(visible) + "' ADVANCE '" +
             FormatIntervalMicros(advance) + "'>";
  }
  return "?";
}

}  // namespace streamrel::stream
