#ifndef STREAMREL_STREAM_WINDOW_OPERATOR_H_
#define STREAMREL_STREAM_WINDOW_OPERATOR_H_

#include <deque>
#include <vector>

#include "common/memory_governor.h"
#include "common/schema.h"
#include "common/status.h"
#include "stream/window.h"

namespace streamrel::stream {

/// One closed window: the relation of rows visible at `close_micros`
/// (RSTREAM semantics — the full window contents, not a delta).
struct WindowBatch {
  int64_t close_micros = 0;
  std::vector<Row> rows;
};

/// Buffers a stream's rows and materializes the relation sequence defined
/// by a window clause. Supports all three TruSQL window kinds:
///
///  - time windows: rows carry a CQTIME timestamp; windows close at every
///    multiple of ADVANCE once the stream's watermark passes the close.
///    Empty windows between data ARE emitted (a dashboard shows zero rows,
///    not a gap).
///  - row windows: a window closes every ADVANCE rows and contains the last
///    VISIBLE rows; the close timestamp is the newest row's timestamp.
///  - slices windows: operates on upstream *batches* (a derived stream's
///    window closes); every `slices_count` batches form one relation.
///
/// State is exposed for checkpoint-based recovery (Serialize/Restore).
class WindowOperator {
 public:
  explicit WindowOperator(WindowSpec spec);
  ~WindowOperator();

  const WindowSpec& spec() const { return spec_; }

  /// Charges buffered-row bytes to `governor` (kWindow account) from now
  /// on; already-buffered rows are charged immediately. Pass nullptr to
  /// detach (releases any charge).
  void BindGovernor(MemoryGovernor* governor);

  /// Starts the close schedule at the first boundary after `ts` if it has
  /// not started yet (time windows). Used for subscriptions that receive
  /// only watermarks (shared-aggregation CQs do not buffer rows here).
  void StartAt(int64_t ts) {
    if (spec_.kind == WindowSpec::Kind::kTime && next_close_ == INT64_MIN) {
      next_close_ = spec_.FirstCloseAfter(ts);
    }
  }

  /// Feeds one element of a raw stream (time/row windows).
  /// `ts` must be non-decreasing across calls.
  Status AddRow(int64_t ts, Row row, std::vector<WindowBatch>* closed);

  /// Feeds one upstream batch (slices windows, or time windows over a
  /// derived stream — each row adopts the batch close as its timestamp).
  Status AddBatch(int64_t close, const std::vector<Row>& rows,
                  std::vector<WindowBatch>* closed);

  /// Advances the watermark without data, closing any due windows
  /// (time windows only; row/slice windows are data-driven).
  Status AdvanceTime(int64_t watermark, std::vector<WindowBatch>* closed);

  /// Rows currently buffered (for tests and checkpoint sizing).
  size_t buffered_rows() const { return buffer_.size(); }

  /// Serializes the full operator state (buffer + counters) for
  /// checkpoint-based recovery.
  void Serialize(std::string* out) const;
  Status Restore(const std::string& data);

  /// Drops state and resumes as-if-fresh from `watermark` (used by
  /// active-table recovery, which re-primes from archived data instead).
  void ResetToWatermark(int64_t watermark);

 private:
  struct Element {
    int64_t ts;
    Row row;
  };

  Status CloseDueWindows(int64_t watermark, std::vector<WindowBatch>* closed);
  void EvictBefore(int64_t ts);

  // All buffer_ mutations go through these so the governor charge stays
  // exact at every mutation site (push/evict/clear/restore).
  void PushElement(Element e);
  void PopFrontElement();
  void ClearBuffer();

  const WindowSpec spec_;
  MemoryGovernor* governor_ = nullptr;
  int64_t bytes_buffered_ = 0;
  std::deque<Element> buffer_;
  int64_t next_close_ = INT64_MIN;  // time windows: next close boundary
  int64_t rows_since_advance_ = 0;  // row windows
  int64_t batches_since_emit_ = 0;  // slices windows
  int64_t last_ts_ = INT64_MIN;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_WINDOW_OPERATOR_H_
