#ifndef STREAMREL_STREAM_SHARD_POOL_H_
#define STREAMREL_STREAM_SHARD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "stream/shared_aggregation.h"

namespace streamrel::stream {

/// One row routed to a shard: the stamped row plus its CQTIME and global
/// per-stream ingest sequence number (used to reconstruct arrival order at
/// merge time).
struct ShardRow {
  int64_t ts = 0;
  int64_t seq = 0;
  Row row;
};

/// A unit of shard work: a contiguous run of rows for one stream, applied
/// to every shared pipeline attached to that stream. `pipelines` points at
/// the registry's per-stream vector; it is only mutated while all workers
/// are idle (the runtime barriers around control-plane changes).
struct ShardChunk {
  const std::vector<SliceAggregator*>* pipelines = nullptr;
  std::vector<ShardRow> rows;
  /// Governor charge (kShardQueue) taken by the coordinator at enqueue
  /// time; the worker releases it once the chunk is absorbed.
  MemoryGovernor* governor = nullptr;
  int64_t charge_bytes = 0;
};

/// One partition-parallel worker: a thread draining a bounded
/// single-producer/single-consumer chunk queue. The coordinator (the
/// runtime's ingest thread) is the only producer; Push blocks when the
/// queue is full (backpressure), so a slow shard throttles ingest instead
/// of growing unbounded state.
///
/// Memory model: the worker touches shard-replica aggregator state only
/// while processing a chunk. The coordinator reads or mutates that state
/// only after WaitIdle() returns; the queue mutex makes the worker's
/// writes happen-before the coordinator's reads, and the coordinator's
/// control-plane mutations happen-before the next Push's processing.
class ShardWorker {
 public:
  /// `index` selects which replica (`pipeline->shard(index)`) this worker
  /// updates; `queue_capacity` bounds the number of in-flight chunks.
  ShardWorker(size_t index, size_t queue_capacity);
  ~ShardWorker();

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  /// Enqueues a chunk, blocking while the queue is at capacity.
  void Push(ShardChunk chunk);

  /// Blocks until the queue is drained and no chunk is being processed.
  /// After it returns, the coordinator may safely read shard state.
  void WaitIdle();

  /// First error hit while absorbing rows since the last call (cleared on
  /// read). Meaningful only after WaitIdle.
  Status TakeError();

  // Cumulative stats. Atomic so observability (SHOW STATS refreshing shard
  // gauges) can read them while the worker is mid-chunk; values are
  // monotonic, so a slightly stale read is harmless.
  int64_t rows_processed() const {
    return rows_processed_.load(std::memory_order_relaxed);
  }
  int64_t chunks_processed() const {
    return chunks_processed_.load(std::memory_order_relaxed);
  }
  int64_t backpressure_waits() const {
    return backpressure_waits_.load(std::memory_order_relaxed);
  }
  int64_t max_queue_depth() const {
    return max_queue_depth_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();

  const size_t index_;
  const size_t capacity_;

  std::mutex mu_;
  std::condition_variable producer_cv_;  // queue has room / worker idle
  std::condition_variable worker_cv_;    // queue has work / stop
  std::deque<ShardChunk> queue_;         // guarded by mu_
  bool busy_ = false;                    // guarded by mu_
  bool stop_ = false;                    // guarded by mu_
  Status error_;                         // guarded by mu_
  // Stats are written by the worker under mu_ at chunk completion and by
  // the producer under mu_ in Push; atomic so gauge refreshes can sample
  // them without joining the queue lock.
  std::atomic<int64_t> rows_processed_{0};
  std::atomic<int64_t> chunks_processed_{0};
  std::atomic<int64_t> backpressure_waits_{0};
  std::atomic<int64_t> max_queue_depth_{0};

  std::thread thread_;  // last member: starts after state is ready
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_SHARD_POOL_H_
