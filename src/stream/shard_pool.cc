#include "stream/shard_pool.h"

namespace streamrel::stream {

ShardWorker::ShardWorker(size_t index, size_t queue_capacity)
    : index_(index),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      thread_([this] { Loop(); }) {}

ShardWorker::~ShardWorker() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  worker_cv_.notify_one();
  thread_.join();
}

void ShardWorker::Push(ShardChunk chunk) {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.size() >= capacity_) {
    backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
    producer_cv_.wait(lock, [this] { return queue_.size() < capacity_; });
  }
  queue_.push_back(std::move(chunk));
  const int64_t depth = static_cast<int64_t>(queue_.size());
  if (depth > max_queue_depth_.load(std::memory_order_relaxed)) {
    max_queue_depth_.store(depth, std::memory_order_relaxed);
  }
  lock.unlock();
  worker_cv_.notify_one();
}

void ShardWorker::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  producer_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
}

Status ShardWorker::TakeError() {
  std::lock_guard<std::mutex> lock(mu_);
  Status error = error_;
  error_ = Status::OK();
  return error;
}

void ShardWorker::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    worker_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    ShardChunk chunk = std::move(queue_.front());
    queue_.pop_front();
    busy_ = true;
    lock.unlock();
    // Wake a Push blocked on capacity as soon as the slot frees up.
    producer_cv_.notify_one();

    Status status;
    int64_t done = 0;
    for (const ShardRow& sr : chunk.rows) {
      for (SliceAggregator* pipeline : *chunk.pipelines) {
        status = pipeline->shard(index_)->AddRow(sr.ts, sr.row, sr.seq);
        if (!status.ok()) break;
      }
      if (!status.ok()) break;  // first error wins; rest of chunk dropped
      ++done;
    }
    if (chunk.governor != nullptr) {
      chunk.governor->Release(MemoryGovernor::Account::kShardQueue,
                              chunk.charge_bytes);
    }

    lock.lock();
    busy_ = false;
    rows_processed_.fetch_add(done, std::memory_order_relaxed);
    chunks_processed_.fetch_add(1, std::memory_order_relaxed);
    if (!status.ok() && error_.ok()) error_ = status;
    // Wake WaitIdle (and capacity waiters) now that the chunk retired.
    producer_cv_.notify_one();
  }
}

}  // namespace streamrel::stream
