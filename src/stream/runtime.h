#ifndef STREAMREL_STREAM_RUNTIME_H_
#define STREAMREL_STREAM_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/memory_governor.h"
#include "common/rwlock.h"
#include "common/status.h"
#include "storage/transaction.h"
#include "storage/wal.h"
#include "stream/channel.h"
#include "stream/continuous_query.h"
#include "stream/metrics.h"
#include "stream/shard_pool.h"
#include "stream/window_operator.h"

namespace streamrel::stream {

/// What ingest does with a batch that would push buffered state past the
/// memory budget (SET OVERLOAD POLICY <stream> ...).
enum class OverloadPolicy {
  kBlock,       // lossless: bounded wait for headroom, then admit anyway
  kShedNewest,  // keep the batch head that fits, drop the newest rows
  kShedOldest,  // keep the batch tail that fits, drop the oldest rows
};

const char* OverloadPolicyName(OverloadPolicy policy);

/// The continuous-analytics dataflow engine: routes arriving stream rows
/// through shared slice aggregators and per-CQ window operators, fires
/// window closes as the watermark advances, cascades derived-stream
/// batches downstream, and drives channels into active tables.
///
/// With SET PARALLELISM n (n > 1) the expensive per-row work — updating
/// the shared slice-aggregation pipelines — is hash-partitioned across n
/// worker shards, each owning replica pipeline state; the ingest thread
/// remains the coordinator, and at every window close it barriers the
/// workers and merges their partial aggregates, so downstream consumers
/// observe exactly the serial semantics.
///
/// Threading (DESIGN decision 11). Structural mutation (create/drop/
/// subscribe/set-parallelism) happens only under the Database's exclusive
/// engine lock; data-plane entry points run under a shared hold. Within a
/// shared hold:
///   - Ingest/AdvanceTime serialize per stream on that stream's ranked
///     OrderedMutex (rank kStream), so disjoint streams ingest fully
///     concurrently;
///   - when the worker fleet exists (PARALLELISM > 1) ingest first takes
///     the shard-fleet lock (rank kShard), because the workers and their
///     replica pipelines are shared engine-wide;
///   - channel sinks take the DML lock (rank kDml) per delivery attempt,
///     serializing against SQL writes to the same tables;
///   - the stream map itself is guarded by an unranked leaf mutex held
///     only for lookups/inserts.
/// Reads of structure that only exclusive holders mutate (subscription
/// vectors, the CQ/channel maps, policy knobs) are done lock-free from
/// shared holders; the engine rwlock provides the happens-before edge.
class StreamRuntime {
 public:
  StreamRuntime(catalog::Catalog* catalog,
                storage::TransactionManager* txns,
                storage::WriteAheadLog* wal);

  // --- lifecycle of continuous objects ------------------------------------

  /// Registers a raw or derived stream that already exists in the catalog.
  /// Safe to call concurrently (ingest registers streams lazily under a
  /// shared engine hold).
  Status RegisterStream(const std::string& name);

  /// Creates and starts a named CQ over `stmt`. `allow_shared` gates the
  /// shared slice-aggregation strategy (benchmarks flip it off to measure
  /// the sharing win).
  Result<ContinuousQuery*> CreateCq(const std::string& name,
                                    const sql::SelectStmt& stmt,
                                    bool allow_shared = true);

  Status DropCq(const std::string& name);
  ContinuousQuery* GetCq(const std::string& name);

  /// Instantiates the always-on CQ behind a derived stream (the catalog
  /// entry, including the defining query, must already exist). Output
  /// batches are re-published to the derived stream's subscribers.
  Status StartDerivedStream(const std::string& name);

  /// Creates the channel (catalog entry must exist) and subscribes it to
  /// its source stream.
  Status StartChannel(const std::string& name);
  Channel* GetChannel(const std::string& name);

  /// Stops a running channel (detaches it from its source stream).
  Status StopChannel(const std::string& name);

  /// Non-empty if the stream has live consumers (CQs, channels, or client
  /// subscriptions); the returned text names one of them.
  std::string StreamInUseBy(const std::string& stream) const;

  /// Non-empty if a running CQ's plan or a channel targets `table`.
  std::string TableInUseBy(const std::string& table) const;

  /// Drops runtime state for a stream with no consumers.
  Status UnregisterStream(const std::string& name);

  /// Client subscription to a stream's batches (derived streams deliver
  /// their CQ output; raw streams deliver ingested rows). Returns an id
  /// that UnsubscribeStream accepts (network sessions come and go while
  /// the stream lives).
  Result<int64_t> SubscribeStream(const std::string& stream,
                                  CqCallback callback);

  /// Detaches a client subscription by id; unknown ids are a no-op.
  Status UnsubscribeStream(const std::string& stream, int64_t id);

  // --- data ----------------------------------------------------------------

  /// Ingests ordered rows into a raw stream. CQTIME USER streams read each
  /// row's timestamp column; CQTIME SYSTEM streams are stamped with
  /// `system_time` (required > current watermark). Serializes on the
  /// stream's own ingest lock; disjoint streams proceed in parallel.
  Status Ingest(const std::string& stream, const std::vector<Row>& rows,
                int64_t system_time = INT64_MIN);

  /// Heartbeat: advances a raw stream's watermark without data, closing due
  /// windows (and cascading empty results downstream).
  Status AdvanceTime(const std::string& stream, int64_t watermark);

  int64_t watermark(const std::string& stream) const;

  /// The table-write lock (rank kDml): Database DML statements and channel
  /// sink deliveries serialize on it so multi-structure table writes
  /// (heap + indexes + WAL) stay consistent under concurrency.
  OrderedMutex* dml_mutex() { return &dml_mu_; }

  // --- partition-parallel execution ------------------------------------------

  /// Sets the worker-shard count for ingest (SET PARALLELISM n). 1 (the
  /// default) runs fully single-threaded — the serial hot path is
  /// untouched. For n > 1, every shared pipeline is split into n shard
  /// replicas and n workers are started; existing shard state is folded
  /// back first, so the switch is transparent to running CQs. Callers hold
  /// the engine lock exclusive (no ingest is in flight).
  Status SetParallelism(int n);
  int parallelism() const {
    return parallelism_.load(std::memory_order_relaxed);
  }

  /// Upper bound for SET PARALLELISM (sanity cap, not a tuning target).
  static constexpr int kMaxParallelism = 64;

  // --- overload protection ----------------------------------------------------

  /// The engine-wide byte ledger (window buffers, aggregator groups,
  /// shard queues, reorder buffers charge into it).
  MemoryGovernor* governor() { return &governor_; }
  const MemoryGovernor* governor() const { return &governor_; }

  /// SET MEMORY LIMIT <bytes>; 0 = unlimited (the default).
  void SetMemoryBudget(int64_t bytes) { governor_.SetBudget(bytes); }

  /// SET OVERLOAD POLICY <stream> BLOCK|SHED_NEWEST|SHED_OLDEST. The
  /// stream is registered if needed.
  Status SetOverloadPolicy(const std::string& stream, OverloadPolicy policy);
  OverloadPolicy overload_policy(const std::string& stream) const;

  /// SET RETRY LIMIT <n>: total sink attempts per batch, >= 1. The
  /// default 1 means no retries (transient failures surface immediately,
  /// exactly as before this knob existed).
  Status SetRetryLimit(int64_t attempts);
  int64_t retry_limit() const {
    return retry_limit_.load(std::memory_order_relaxed);
  }
  /// SET RETRY BACKOFF <micros>: first retry delay; doubles per attempt
  /// (plus deterministic jitter).
  Status SetRetryBackoff(int64_t micros);
  int64_t retry_backoff_micros() const {
    return retry_backoff_micros_.load(std::memory_order_relaxed);
  }

  /// Bound on how long a BLOCK-policy ingest waits for headroom before
  /// admitting anyway (BLOCK is lossless; it trades latency, not rows).
  void SetBlockTimeoutMicros(int64_t micros) {
    block_timeout_micros_.store(micros < 0 ? 0 : micros,
                                std::memory_order_relaxed);
  }
  int64_t block_timeout_micros() const {
    return block_timeout_micros_.load(std::memory_order_relaxed);
  }

  /// Per-stream admission accounting. Invariant for every batch pushed
  /// through Ingest: pushed == admitted + shed + quarantined (plus any
  /// rows lost to a genuine mid-batch error, which fails the call).
  struct OverloadCounters {
    int64_t rows_admitted = 0;
    int64_t rows_shed = 0;
    int64_t rows_quarantined = 0;
    int64_t blocked_micros = 0;
  };
  OverloadCounters overload_counters(const std::string& stream) const;

  int64_t sink_retries() const {
    return retries_.load(std::memory_order_relaxed);
  }
  int64_t sink_retries_exhausted() const {
    return retries_exhausted_.load(std::memory_order_relaxed);
  }
  /// Quarantine rows dropped because the quarantine stream itself could
  /// not accept them (never fails the source batch).
  int64_t quarantine_dropped() const {
    return quarantine_dropped_.load(std::memory_order_relaxed);
  }

  /// Dead-letter stream name for `stream` (lowercased base +
  /// ".__quarantine").
  static std::string QuarantineName(const std::string& stream);
  /// True if `name` is some stream's dead-letter stream.
  static bool IsQuarantineName(const std::string& name);

  /// Creates (in the catalog, if missing) and registers the dead-letter
  /// stream for `stream`. Schema: (qtime timestamp CQTIME USER,
  /// reason varchar, detail varchar, row_data varchar).
  Status EnsureQuarantineStream(const std::string& stream);

  // --- recovery support ------------------------------------------------------

  /// Serializes a generic CQ's window-operator state (checkpoint strategy).
  /// Shared-strategy CQs return NotImplemented: their data lives in the
  /// slice aggregator, so a window-operator blob would restore empty.
  /// Recovery entry points run under the exclusive engine lock.
  Result<std::string> SerializeCqState(const std::string& name) const;
  Status RestoreCqState(const std::string& name, const std::string& blob);

  /// Resets a CQ to resume cleanly from `watermark` (active-table
  /// strategy): buffered state is dropped and windows closing at or before
  /// the watermark are evaluated but not re-delivered.
  Status ResetCqToWatermark(const std::string& name, int64_t watermark);

  /// Suppresses re-delivery at or before `watermark` WITHOUT touching the
  /// window operator — for CQs whose operator state was just restored from
  /// a checkpoint blob and must keep its buffered rows.
  Status SetCqEmitWatermark(const std::string& name, int64_t watermark);

  std::vector<std::string> CqNames() const;

  /// Rows ingested across all raw streams (benchmark accounting).
  int64_t rows_ingested() const {
    return rows_ingested_.load(std::memory_order_relaxed);
  }

  catalog::Catalog* catalog() { return catalog_; }

  // --- observability ---------------------------------------------------------

  MetricsRegistry* metrics() { return &metrics_; }
  const MetricsRegistry* metrics() const { return &metrics_; }

  /// Pulls structural state (live slices, pipeline membership, subscriber
  /// counts, watermarks, object counts) into registry gauges. Hot-path
  /// counters are pushed inline; call this before taking a Snapshot so the
  /// pull-style gauges are current too. Runs safely under a shared engine
  /// hold concurrent with ingest.
  void RefreshMetricsGauges();

  /// Lock-contention accounting for the internal ranked locks, surfaced
  /// under `engine/lock` in SHOW STATS.
  const OrderedMutex* shard_lock() const { return &shard_mu_; }
  const OrderedMutex* dml_lock() const { return &dml_mu_; }
  /// Sums acquisitions/contended over every per-stream ingest lock.
  void StreamLockStats(int64_t* acquisitions, int64_t* contended) const;

 private:
  struct Subscription {
    ContinuousQuery* cq = nullptr;  // owned by cqs_
    std::unique_ptr<WindowOperator> window_op;
    /// False for shared-strategy CQs: rows flow through the slice
    /// aggregator; the window operator only schedules closes.
    bool feed_rows = true;
  };

  struct PendingQuarantine {
    std::string stream;  // base stream the row was rejected from
    Row row;             // (qtime, reason, detail, row_data)
  };

  /// Per-stream runtime state. Held by pointer in `streams_` so the ingest
  /// lock (non-movable) and pointers handed out under `maps_mu_` stay
  /// stable across concurrent registrations.
  struct StreamState {
    catalog::StreamInfo* info = nullptr;
    /// The stream's ingest lock (rank kStream). Same-rank nesting is
    /// allowed: a derived-stream cascade locks the downstream stream while
    /// holding the upstream one, and cascades form a forest, so cross-chain
    /// deadlock is impossible.
    OrderedMutex mu{LockRank::kStream, /*allow_same_rank=*/true,
                    "stream ingest"};
    /// Watermark is written only by the ingest-lock holder but read by
    /// observability and admission paths that hold no stream lock.
    std::atomic<int64_t> watermark{INT64_MIN};
    /// Global arrival sequence number of the next ingested row; shards use
    /// it to restore exact arrival order when merging partial aggregates.
    /// Guarded by `mu`.
    int64_t ingest_seq = 0;
    std::vector<Subscription> subs;
    std::vector<Channel*> channels;        // owned by channels_
    struct ClientSub {
      int64_t id = 0;
      CqCallback callback;
    };
    std::vector<ClientSub> client_subs;
    // Cached metric cells (owned by metrics_; stable until the stream is
    // unregistered). Bound in RegisterStream.
    Counter* rows_ingested_metric = nullptr;
    Counter* batches_published_metric = nullptr;
    Counter* rows_published_metric = nullptr;
    Gauge* watermark_metric = nullptr;
    /// Overload admission state. The policy is mutated only under the
    /// exclusive engine lock; counters are bumped under the ingest lock
    /// but read by SHOW STATS with no stream lock, hence atomic.
    OverloadPolicy policy = OverloadPolicy::kBlock;
    struct AtomicOverload {
      std::atomic<int64_t> rows_admitted{0};
      std::atomic<int64_t> rows_shed{0};
      std::atomic<int64_t> rows_quarantined{0};
      std::atomic<int64_t> blocked_micros{0};
    };
    AtomicOverload overload;
    /// Dead-letter rows collected while this stream's ingest lock is held;
    /// swapped out and published when the outermost ingest on this stream
    /// unwinds (guarded by `mu`).
    std::vector<PendingQuarantine> pending_quarantine;
    /// Nesting depth of ingest on this stream (delivery callbacks may
    /// re-enter); guarded by `mu`.
    int ingest_depth = 0;
  };

  StreamState* GetState(const std::string& name);
  const StreamState* GetState(const std::string& name) const;

  /// Delivers a produced batch to a (derived) stream's subscribers. Locks
  /// the derived stream's ingest mutex (nested under the source stream's —
  /// legal same-rank nesting along a cascade).
  Status PublishBatch(const std::string& stream, int64_t close,
                      const std::vector<Row>& rows);

  Status ProcessClosed(Subscription* sub, std::vector<WindowBatch>* closed);

  Status AttachCqSubscription(ContinuousQuery* cq);

  /// The locking wrapper around IngestImpl: registers the stream if
  /// needed, takes the shard-fleet lock (when workers exist and the thread
  /// does not already hold it) then the stream's ingest lock, and flushes
  /// the stream's pending dead-letter rows after releasing both.
  /// `quarantine_flush` marks re-entry from FlushQuarantine: admission is
  /// bypassed and rejected rows are dropped (counted) instead of recursing.
  Status IngestEntry(const std::string& stream, const std::vector<Row>& rows,
                     int64_t system_time, bool quarantine_flush);

  Status IngestImpl(StreamState* state, const std::vector<Row>& rows,
                    int64_t system_time, bool quarantine_flush);

  /// Parallel twin of the Ingest row loop: stamps/validates on the
  /// coordinator, hash-partitions rows to the worker shards, and barriers
  /// before evaluating any window close so merges see complete partials.
  /// Runs with the shard-fleet lock held.
  Status IngestParallel(StreamState* state, const std::vector<Row>& rows,
                        int64_t system_time, size_t begin, size_t end,
                        bool quarantine_flush);

  /// Admission pre-pass: decides the contiguous [*begin, *end) slice of
  /// `rows` that gets in under the current policy/headroom and counts the
  /// rest as shed. No-op (full batch) when under budget.
  void AdmitBatch(StreamState* state, const std::vector<Row>& rows,
                  size_t* begin, size_t* end, bool quarantine_flush);

  /// Records one rejected row into the stream's pending dead-letter batch
  /// (flushed when the outermost ingest on the stream returns).
  void QuarantineRow(StreamState* state, const char* reason,
                     std::string detail, const Row& row,
                     bool quarantine_flush);
  /// Publishes a swapped-out dead-letter batch. Called with no ranked
  /// locks held: each row is an ordinary ingest into the dead-letter
  /// stream (marked quarantine_flush so it can never recurse).
  void FlushQuarantine(std::vector<PendingQuarantine> batch);

  /// Runs `op` with bounded retry on transient (kIoError, non-crash)
  /// failures: retry-limit total attempts, exponential backoff with
  /// deterministic jitter between them. Each attempt runs under the DML
  /// lock; backoff sleeps run with it released.
  Status WithSinkRetry(const std::function<Status()>& op);

  /// Folds the workers' cumulative stats into the `shard` scope metrics
  /// (delta counters; serialized internally so concurrent gauge refreshes
  /// and ingest barriers do not double-count).
  void UpdateShardMetrics();

  catalog::Catalog* catalog_;
  storage::TransactionManager* txns_;
  storage::WriteAheadLog* wal_;

  /// Leaf mutex guarding the structure of `streams_` (lookups and lazy
  /// registration insert under a shared engine hold). StreamState objects
  /// are heap-allocated, so pointers survive concurrent inserts; erases
  /// happen only under the exclusive engine lock.
  mutable std::mutex maps_mu_;
  std::map<std::string, std::unique_ptr<StreamState>> streams_;  // lowercase
  std::atomic<int64_t> next_client_sub_id_{1};
  std::map<std::string, std::unique_ptr<ContinuousQuery>> cqs_;
  std::map<std::string, std::unique_ptr<Channel>> channels_;
  SliceAggregatorRegistry registry_;
  std::atomic<int64_t> rows_ingested_{0};
  MetricsRegistry metrics_;
  Counter* engine_rows_metric_ = nullptr;  // engine-wide ingest total

  /// Serializes use of the shared worker fleet (rank kShard): replica
  /// pipeline state is engine-wide, so parallel ingest batches take turns.
  /// Taken before any stream lock; holding it implies the workers are
  /// idle between batches (IngestParallel barriers before returning).
  OrderedMutex shard_mu_{LockRank::kShard, /*allow_same_rank=*/false,
                         "shard fleet"};
  /// Serializes table writes (rank kDml): SQL DML and channel sinks.
  OrderedMutex dml_mu_{LockRank::kDml, /*allow_same_rank=*/false,
                       "table dml"};

  // --- overload protection state ---
  MemoryGovernor governor_;
  std::atomic<int64_t> retry_limit_{1};  // total attempts; 1 = no retries
  std::atomic<int64_t> retry_backoff_micros_{1000};  // first retry delay
  std::atomic<int64_t> block_timeout_micros_{10000};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> retries_exhausted_{0};
  std::atomic<int64_t> quarantine_dropped_{0};

  std::atomic<int> parallelism_{1};
  /// Cached `shard` scope metric cells plus the last folded-in worker
  /// totals (workers expose cumulative stats; the registry gets deltas).
  struct ShardMetricCells {
    Counter* rows = nullptr;
    Counter* chunks = nullptr;
    Counter* backpressure_waits = nullptr;
    Gauge* queue_high_water = nullptr;
    int64_t last_rows = 0;
    int64_t last_chunks = 0;
    int64_t last_backpressure = 0;
  };
  /// Leaf mutex for the delta fold in UpdateShardMetrics (callable from an
  /// ingest barrier and from concurrent SHOW STATS refreshes).
  mutable std::mutex shard_metrics_mu_;
  std::vector<ShardMetricCells> shard_cells_;
  /// Declared after registry_ so workers (which reference pipeline shard
  /// state while draining) are joined before the registry is destroyed.
  std::vector<std::unique_ptr<ShardWorker>> workers_;
};

}  // namespace streamrel::stream

#endif  // STREAMREL_STREAM_RUNTIME_H_
