#include "stream/reorder_buffer.h"

namespace streamrel::stream {

ReorderBuffer::~ReorderBuffer() {
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kReorder, bytes_buffered_);
  }
}

void ReorderBuffer::BindGovernor(MemoryGovernor* governor) {
  if (governor_ == governor) return;
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kReorder, bytes_buffered_);
  }
  governor_ = governor;
  if (governor_ != nullptr) {
    governor_->Add(MemoryGovernor::Account::kReorder, bytes_buffered_);
  }
}

void ReorderBuffer::ChargeRow(const Row& row) {
  int64_t bytes = EstimateRowBytes(row);
  bytes_buffered_ += bytes;
  if (governor_ != nullptr) {
    governor_->Add(MemoryGovernor::Account::kReorder, bytes);
  }
}

void ReorderBuffer::ReleaseCharge(int64_t bytes) {
  bytes_buffered_ -= bytes;
  if (governor_ != nullptr) {
    governor_->Release(MemoryGovernor::Account::kReorder, bytes);
  }
}

Status ReorderBuffer::Push(int64_t ts, Row row) {
  if (watermark_ != INT64_MIN && ts < watermark_ - slack_) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->Add();
    return Status::InvalidArgument(
        "row at " + std::to_string(ts) + " is earlier than the slack bound (" +
        std::to_string(watermark_ - slack_) + ")");
  }
  ChargeRow(row);
  pending_[ts].push_back(std::move(row));
  ++buffered_;
  if (buffered_metric_ != nullptr) {
    buffered_metric_->Set(static_cast<int64_t>(buffered_));
  }
  if (ts > watermark_) watermark_ = ts;
  // Everything at or before watermark - slack can no longer be displaced.
  return ReleaseUpTo(watermark_ - slack_);
}

Status ReorderBuffer::ReleaseUpTo(int64_t bound) {
  std::vector<int64_t> stamps;
  std::vector<Row> batch;
  int64_t batch_bytes = 0;
  while (!pending_.empty() && pending_.begin()->first <= bound) {
    int64_t ts = pending_.begin()->first;
    for (Row& row : pending_.begin()->second) {
      batch_bytes += EstimateRowBytes(row);
      stamps.push_back(ts);
      batch.push_back(std::move(row));
    }
    pending_.erase(pending_.begin());
  }
  if (batch.empty()) return Status::OK();
  Status status = sink_(batch);
  if (!status.ok()) {
    // Re-buffer everything the sink did not accept: the drained buckets
    // were removed whole in ascending-timestamp order, so re-inserting in
    // the same order restores both the map and each bucket's arrival
    // order. The rows stay counted as buffered (and charged to the
    // governor), making a transient sink failure retryable — the next
    // Push past the bound, or Flush, delivers them again.
    for (size_t i = 0; i < batch.size(); ++i) {
      pending_[stamps[i]].push_back(std::move(batch[i]));
    }
    return status;
  }
  buffered_ -= batch.size();
  ReleaseCharge(batch_bytes);
  if (buffered_metric_ != nullptr) {
    buffered_metric_->Set(static_cast<int64_t>(buffered_));
  }
  released_ += static_cast<int64_t>(batch.size());
  if (released_metric_ != nullptr) {
    released_metric_->Add(static_cast<int64_t>(batch.size()));
  }
  return Status::OK();
}

Status ReorderBuffer::Flush() { return ReleaseUpTo(INT64_MAX); }

}  // namespace streamrel::stream
