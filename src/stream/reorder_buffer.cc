#include "stream/reorder_buffer.h"

namespace streamrel::stream {

Status ReorderBuffer::Push(int64_t ts, Row row) {
  if (watermark_ != INT64_MIN && ts < watermark_ - slack_) {
    ++rejected_;
    if (rejected_metric_ != nullptr) rejected_metric_->Add();
    return Status::InvalidArgument(
        "row at " + std::to_string(ts) + " is earlier than the slack bound (" +
        std::to_string(watermark_ - slack_) + ")");
  }
  pending_[ts].push_back(std::move(row));
  ++buffered_;
  if (buffered_metric_ != nullptr) {
    buffered_metric_->Set(static_cast<int64_t>(buffered_));
  }
  if (ts > watermark_) watermark_ = ts;
  // Everything at or before watermark - slack can no longer be displaced.
  return ReleaseUpTo(watermark_ - slack_);
}

Status ReorderBuffer::ReleaseUpTo(int64_t bound) {
  std::vector<Row> batch;
  while (!pending_.empty() && pending_.begin()->first <= bound) {
    for (Row& row : pending_.begin()->second) {
      batch.push_back(std::move(row));
    }
    pending_.erase(pending_.begin());
  }
  if (batch.empty()) return Status::OK();
  // The rows leave the buffer either way, but only count as released once
  // the sink has actually accepted them — a failing sink must not leave
  // counters claiming delivery.
  buffered_ -= batch.size();
  if (buffered_metric_ != nullptr) {
    buffered_metric_->Set(static_cast<int64_t>(buffered_));
  }
  RETURN_IF_ERROR(sink_(batch));
  released_ += static_cast<int64_t>(batch.size());
  if (released_metric_ != nullptr) {
    released_metric_->Add(static_cast<int64_t>(batch.size()));
  }
  return Status::OK();
}

Status ReorderBuffer::Flush() { return ReleaseUpTo(INT64_MAX); }

}  // namespace streamrel::stream
