// Overload-protection torture suite (ctest label: overload).
//
// One seeded workload is replayed under every admission policy (BLOCK,
// SHED_NEWEST, SHED_OLDEST) at parallelism 1, 2, and 4, against a memory
// budget sized from the engine's own byte model so that the shed policies
// must drop well over 30% of the input. Each run is held to:
//   - exact accounting: admitted + shed + quarantined == pushed, per batch
//     and in total — nothing is ever dropped silently;
//   - bounded peak memory: governor peak <= 1.2x budget for shed policies
//     (admission is batch-granular, so the budget can be exceeded by at
//     most one batch's footprint);
//   - output fidelity: CQ deliveries match a budget-unlimited serial
//     oracle fed exactly the rows this run admitted.
// Separate tests cover sink retry against injected channel/WAL faults
// (active-table contents must match a no-fault oracle byte for byte), the
// quarantine dead-letter channel, and the SHOW STATS overload scope.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault_injector.h"
#include "common/memory_governor.h"
#include "common/time.h"
#include "stream/runtime.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;

// The row-buffering CQ that drives memory pressure (raw rows held for the
// whole visible extent) plus a scalar aggregate that exercises the shard
// fan-out under parallelism.
const char kBufferCq[] =
    "SELECT v, ts, pad FROM s <VISIBLE '1 hour'>";
const char kScalarCq[] =
    "SELECT count(*), sum(v) FROM s <VISIBLE '1 hour'>";

void CaptureCq(engine::Database* db, const std::string& name,
               const std::string& sql, std::vector<std::string>* out) {
  auto cq = db->CreateContinuousQuery(name, sql);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  (*cq)->AddCallback(
      [out, name](int64_t close, const std::vector<Row>& rows) {
        for (const Row& row : rows) {
          out->push_back(name + "@" + std::to_string(close) + ": " +
                         RowToString(row));
        }
        return Status::OK();
      });
}

std::vector<std::vector<Row>> MakeBatches(int seed, int n_batches) {
  std::mt19937 rng(static_cast<uint32_t>(seed) * 7919u + 3u);
  std::vector<std::vector<Row>> batches;
  int64_t ts = kSec;
  for (int b = 0; b < n_batches; ++b) {
    const int n = 6 + static_cast<int>(rng() % 11);
    std::vector<Row> rows;
    for (int i = 0; i < n; ++i) {
      ts += 1 + static_cast<int64_t>(rng() % (kSec / 4));
      rows.push_back(Row{
          Value::Int64(static_cast<int64_t>(rng() % 100000)),
          Value::Timestamp(ts),
          Value::String(std::string(8 + rng() % 24, 'x'))});
    }
    batches.push_back(std::move(rows));
  }
  return batches;
}

// Governor-model footprint of one batch once buffered by a window
// operator: row bytes plus the per-element timestamp.
int64_t BatchWindowBytes(const std::vector<Row>& batch) {
  int64_t bytes = 0;
  for (const Row& row : batch) {
    bytes += EstimateRowBytes(row) + static_cast<int64_t>(sizeof(int64_t));
  }
  return bytes;
}

struct PolicyParam {
  stream::OverloadPolicy policy;
  int parallelism;
};

class OverloadPolicyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OverloadPolicyTest, AccountingPeakAndOracle) {
  const stream::OverloadPolicy policy =
      static_cast<stream::OverloadPolicy>(std::get<0>(GetParam()));
  const int parallelism = std::get<1>(GetParam());
  SCOPED_TRACE(std::string("policy ") + stream::OverloadPolicyName(policy) +
               " parallelism " + std::to_string(parallelism));

  auto batches = MakeBatches(/*seed=*/17, /*n_batches=*/80);
  int64_t total_bytes = 0;
  int64_t max_batch_bytes = 0;
  int64_t total_rows = 0;
  for (const auto& batch : batches) {
    int64_t b = BatchWindowBytes(batch);
    total_bytes += b;
    max_batch_bytes = std::max(max_batch_bytes, b);
    total_rows += static_cast<int64_t>(batch.size());
  }
  // The budget admits roughly a third of the workload, i.e. sustained ~3x
  // over-budget pressure, and is big enough that one batch is well under
  // the 20% transient allowance the peak bound permits.
  const int64_t budget = total_bytes / 3;
  ASSERT_GT(budget, 5 * max_batch_bytes);

  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER, "
              "pad varchar)");
  std::vector<std::string> events;
  CaptureCq(&db, "buffer", kBufferCq, &events);
  CaptureCq(&db, "scalar", kScalarCq, &events);
  if (HasFatalFailure()) return;
  MustExecute(&db, "SET PARALLELISM " + std::to_string(parallelism));
  MustExecute(&db, "SET MEMORY LIMIT " + std::to_string(budget));
  MustExecute(&db, std::string("SET OVERLOAD POLICY s ") +
                       stream::OverloadPolicyName(policy));
  // Keep BLOCK runs fast: nothing can free memory mid-run (the window
  // spans the whole workload), so every blocked batch waits the full
  // timeout before being admitted losslessly.
  db.runtime()->SetBlockTimeoutMicros(500);

  auto* rt = db.runtime();
  std::vector<std::vector<Row>> admitted_batches;
  int64_t pushed = 0;
  for (const auto& batch : batches) {
    const auto before = rt->overload_counters("s");
    Status st = db.Ingest("s", batch);
    ASSERT_TRUE(st.ok()) << st.ToString();
    const auto after = rt->overload_counters("s");
    const int64_t admitted = after.rows_admitted - before.rows_admitted;
    const int64_t shed = after.rows_shed - before.rows_shed;
    const int64_t quarantined =
        after.rows_quarantined - before.rows_quarantined;
    pushed += static_cast<int64_t>(batch.size());
    // Exact accounting, batch by batch.
    ASSERT_EQ(admitted + shed + quarantined,
              static_cast<int64_t>(batch.size()));
    EXPECT_EQ(quarantined, 0);
    // Reconstruct the admitted rows: SHED_NEWEST keeps the longest
    // fitting prefix, SHED_OLDEST the longest fitting suffix, BLOCK all.
    std::vector<Row> kept;
    if (policy == stream::OverloadPolicy::kShedOldest) {
      kept.assign(batch.end() - admitted, batch.end());
    } else {
      kept.assign(batch.begin(), batch.begin() + admitted);
    }
    admitted_batches.push_back(std::move(kept));
  }

  const auto total = rt->overload_counters("s");
  EXPECT_EQ(total.rows_admitted + total.rows_shed + total.rows_quarantined,
            pushed);
  EXPECT_EQ(pushed, total_rows);
  if (policy == stream::OverloadPolicy::kBlock) {
    // BLOCK is lossless: it trades latency, never rows.
    EXPECT_EQ(total.rows_shed, 0);
    EXPECT_EQ(total.rows_admitted, pushed);
    EXPECT_GT(total.blocked_micros, 0);
  } else {
    // The budget forces well over 30% shedding...
    EXPECT_GE(total.rows_shed * 10, pushed * 3);
    EXPECT_GT(total.rows_admitted, 0);
    // ...and the peak never strays past the batch-granularity allowance.
    EXPECT_LE(rt->governor()->peak_held(), budget + budget / 5);
  }

  // Far enough to close the 1-hour window regardless of where it started.
  const int64_t end = 2 * 3600 * kSec;
  ASSERT_TRUE(db.AdvanceTime("s", end).ok());

  // Budget-unlimited serial oracle, fed exactly the admitted rows: the
  // overloaded run's CQ output must be indistinguishable from a run where
  // those rows were the whole input.
  engine::Database oracle;
  MustExecute(&oracle,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER, "
              "pad varchar)");
  std::vector<std::string> oracle_events;
  CaptureCq(&oracle, "buffer", kBufferCq, &oracle_events);
  CaptureCq(&oracle, "scalar", kScalarCq, &oracle_events);
  if (HasFatalFailure()) return;
  for (const auto& batch : admitted_batches) {
    if (batch.empty()) continue;
    Status st = oracle.Ingest("s", batch);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(oracle.AdvanceTime("s", end).ok());
  EXPECT_EQ(events, oracle_events);

  // The oracle admitted everything it was fed — the admitted rows really
  // were clean, in-order rows.
  const auto oracle_total = oracle.runtime()->overload_counters("s");
  EXPECT_EQ(oracle_total.rows_admitted, total.rows_admitted);
  EXPECT_EQ(oracle_total.rows_shed, 0);
  EXPECT_EQ(oracle_total.rows_quarantined, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, OverloadPolicyTest,
    ::testing::Combine(
        ::testing::Values(
            static_cast<int>(stream::OverloadPolicy::kBlock),
            static_cast<int>(stream::OverloadPolicy::kShedNewest),
            static_cast<int>(stream::OverloadPolicy::kShedOldest)),
        ::testing::Values(1, 2, 4)));

TEST(OverloadAccountingTest, QuarantinedRowsCountInTheIdentity) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER, "
              "pad varchar)");
  std::vector<std::string> events;
  CaptureCq(&db, "buffer", kBufferCq, &events);
  if (HasFatalFailure()) return;
  MustExecute(&db, "SET MEMORY LIMIT 16384");
  MustExecute(&db, "SET OVERLOAD POLICY s SHED_NEWEST");
  int64_t pushed = 0;
  std::mt19937 rng(99);
  int64_t ts = kSec;
  for (int b = 0; b < 40; ++b) {
    std::vector<Row> batch;
    for (int i = 0; i < 12; ++i) {
      if (rng() % 5 == 0) {
        batch.push_back(Row{Value::Int64(1)});  // bad arity -> quarantine
      } else {
        ts += 1 + static_cast<int64_t>(rng() % kSec);
        batch.push_back(Row{Value::Int64(i), Value::Timestamp(ts),
                            Value::String("payload-payload")});
      }
    }
    pushed += static_cast<int64_t>(batch.size());
    ASSERT_TRUE(db.Ingest("s", batch).ok());
  }
  const auto total = db.runtime()->overload_counters("s");
  EXPECT_EQ(total.rows_admitted + total.rows_shed + total.rows_quarantined,
            pushed);
  EXPECT_GT(total.rows_shed, 0);
  EXPECT_GT(total.rows_quarantined, 0);
  EXPECT_EQ(db.runtime()->quarantine_dropped(), 0);
}

TEST(OverloadRetryTest, ChannelSinkRetryMatchesNoFaultOracle) {
  FaultInjector::Instance().Reset();
  auto setup = [](engine::Database* db) {
    MustExecute(db,
                "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
                "CREATE TABLE archive (v bigint, ts timestamp);"
                "CREATE CHANNEL ch FROM s INTO archive APPEND");
  };
  engine::Database db;
  engine::Database oracle;
  setup(&db);
  setup(&oracle);
  MustExecute(&db, "SET RETRY LIMIT 4");
  MustExecute(&db, "SET RETRY BACKOFF 50");

  const int64_t before_retries = db.runtime()->sink_retries();
  for (int b = 0; b < 20; ++b) {
    std::vector<Row> batch;
    for (int i = 0; i < 5; ++i) {
      batch.push_back(Row{Value::Int64(b * 5 + i),
                          Value::Timestamp((b * 5 + i + 1) * kSec)});
    }
    if (b % 2 == 0) {
      // Transient sink fault on every other batch: the first delivery
      // attempt fails, the retry succeeds.
      FaultInjector::Instance().Arm("channel.sink", FaultPolicy::FailOnce());
    }
    Status st = db.Ingest("s", batch);
    ASSERT_TRUE(st.ok()) << "batch " << b << ": " << st.ToString();
    ASSERT_TRUE(oracle.Ingest("s", batch).ok());
  }
  EXPECT_GE(db.runtime()->sink_retries() - before_retries, 10);
  EXPECT_EQ(db.runtime()->sink_retries_exhausted(), 0);

  const char kQuery[] = "SELECT v, ts FROM archive ORDER BY ts, v";
  EXPECT_EQ(RowStrings(MustExecute(&db, kQuery)),
            RowStrings(MustExecute(&oracle, kQuery)));
  FaultInjector::Instance().Reset();
}

TEST(OverloadRetryTest, WalAppendRetryRecovers) {
  FaultInjector::Instance().Reset();
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE TABLE archive (v bigint, ts timestamp);"
              "CREATE CHANNEL ch FROM s INTO archive APPEND");
  MustExecute(&db, "SET RETRY LIMIT 3");
  MustExecute(&db, "SET RETRY BACKOFF 50");
  FaultInjector::Instance().Arm("wal.append", FaultPolicy::FailOnce());
  Status st = db.Ingest("s", {Row{Value::Int64(1), Value::Timestamp(kSec)}});
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_GE(db.runtime()->sink_retries(), 1);
  auto r = MustExecute(&db, "SELECT count(*) FROM archive");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  FaultInjector::Instance().Reset();
}

TEST(OverloadRetryTest, ExhaustedRetriesSurfaceTheError) {
  FaultInjector::Instance().Reset();
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE TABLE archive (v bigint, ts timestamp);"
              "CREATE CHANNEL ch FROM s INTO archive APPEND");
  MustExecute(&db, "SET RETRY LIMIT 2");
  MustExecute(&db, "SET RETRY BACKOFF 50");
  // Every attempt fails: the bounded attempt budget runs out and the
  // error surfaces to the caller instead of looping forever.
  FaultInjector::Instance().Arm("channel.sink",
                                FaultPolicy::Probability(1.0, 7));
  Status st = db.Ingest("s", {Row{Value::Int64(1), Value::Timestamp(kSec)}});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(db.runtime()->sink_retries_exhausted(), 1);
  FaultInjector::Instance().Disarm("channel.sink");
  // The engine stays usable once the sink recovers.
  EXPECT_TRUE(
      db.Ingest("s", {Row{Value::Int64(2), Value::Timestamp(2 * kSec)}})
          .ok());
  FaultInjector::Instance().Reset();
}

TEST(QuarantineTest, QuarantineStreamIsChannelable) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE TABLE dead_letters (qtime timestamp, reason varchar, "
              "detail varchar, row_data varchar)");
  // The dead-letter stream does not exist yet: CREATE CHANNEL on the
  // dotted name materialises it on demand.
  MustExecute(&db,
              "CREATE CHANNEL qch FROM s.__quarantine INTO dead_letters "
              "APPEND");
  ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(1)}}).ok());  // bad arity
  ASSERT_TRUE(
      db.Ingest("s", {Row{Value::Int64(2), Value::Null()}}).ok());  // null ts
  auto rows = MustExecute(&db,
                          "SELECT reason FROM dead_letters ORDER BY reason");
  ASSERT_EQ(rows.rows.size(), 2u);
  EXPECT_EQ(rows.rows[0][0].AsString(), "arity");
  EXPECT_EQ(rows.rows[1][0].AsString(), "null_cqtime");
}

TEST(QuarantineTest, QuarantineOfQuarantineIsDroppedNotRecursed) {
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(1)}}).ok());
  EXPECT_EQ(db.runtime()->overload_counters("s").rows_quarantined, 1);
  // Direct ingest of a malformed row INTO the quarantine stream must not
  // spawn a quarantine-of-quarantine; it is counted and dropped.
  const std::string qname = stream::StreamRuntime::QuarantineName("s");
  ASSERT_TRUE(db.Ingest(qname, {Row{Value::Int64(9)}}).ok());
  EXPECT_EQ(db.runtime()->quarantine_dropped(), 1);
}

TEST(OverloadStatsTest, ShowStatsExposesTheOverloadScope) {
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "c", "SELECT v, ts FROM s <VISIBLE '1 hour'>");
  ASSERT_TRUE(cq.ok());
  MustExecute(&db, "SET MEMORY LIMIT 4096");
  MustExecute(&db, "SET OVERLOAD POLICY s SHED_NEWEST");
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(i),
                                    Value::Timestamp((i + 1) * kSec)}})
                    .ok());
  }
  auto stats = MustExecute(&db, "SHOW STATS FOR OVERLOAD");
  int64_t budget = -1, admitted = -1, shed = -1, held = -1;
  for (const Row& row : stats.rows) {
    EXPECT_EQ(row[0].AsString(), "overload");
    const std::string& name = row[1].AsString();
    const std::string& metric = row[2].AsString();
    if (name == "governor" && metric == "bytes_budget") {
      budget = row[3].AsInt64();
    }
    if (name == "governor" && metric == "bytes_held") held = row[3].AsInt64();
    if (name == "s" && metric == "rows_admitted") admitted = row[3].AsInt64();
    if (name == "s" && metric == "rows_shed") shed = row[3].AsInt64();
  }
  EXPECT_EQ(budget, 4096);
  EXPECT_GE(held, 0);
  EXPECT_GT(admitted, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(admitted + shed, 200);
}

}  // namespace
}  // namespace streamrel
