// Concurrency stress: multiple producer threads hammer Ingest on separate
// streams while a control thread concurrently runs SHOW STATS, drops and
// re-creates a CQ, and toggles SET PARALLELISM. Under the engine's
// reader-writer lock hierarchy (DESIGN decision 11) the producers run
// concurrently — each under the shared engine lock plus its own stream's
// ingest lock — while DDL/SET statements serialize exclusively. The suite
// must show no data races (run under TSAN via scripts/sanitize.sh thread),
// no crashes, no lost rows, and — in the differential test — results
// byte-identical to a serial oracle. Timestamps are logical, so every test
// is deterministic in outcome even though thread interleaving is not.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/time.h"
#include "net/client.h"
#include "net/server.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;

TEST(ConcurrencyStressTest, IngestVsControlPlane) {
  constexpr int kProducers = 3;
  constexpr int kBatchesPerProducer = 60;
  constexpr int kRowsPerBatch = 8;

  engine::Database db;
  for (int p = 0; p < kProducers; ++p) {
    MustExecute(&db, "CREATE STREAM s" + std::to_string(p) +
                         " (url varchar, ts timestamp CQTIME USER, "
                         "bytes bigint)");
  }
  // One long-lived CQ per stream (stays up for the whole run) plus one
  // churn CQ on s0 that the control thread drops and re-creates.
  for (int p = 0; p < kProducers; ++p) {
    auto cq = db.CreateContinuousQuery(
        "keep" + std::to_string(p),
        "SELECT url, count(*), sum(bytes) FROM s" + std::to_string(p) +
            " <VISIBLE '1 minute'> GROUP BY url");
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  }
  MustExecute(&db, "SET PARALLELISM 2");

  std::atomic<bool> failed{false};
  auto record_failure = [&failed](const Status& st) {
    if (!st.ok() && !failed.exchange(true)) {
      ADD_FAILURE() << st.ToString();
    }
  };

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&db, &record_failure, p]() {
      const std::string stream = "s" + std::to_string(p);
      int64_t ts = 0;
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Row> rows;
        rows.reserve(kRowsPerBatch);
        for (int r = 0; r < kRowsPerBatch; ++r) {
          ts += kSec;
          rows.push_back(Row{Value::String("u" + std::to_string(r % 4)),
                             Value::Timestamp(ts),
                             Value::Int64(b * kRowsPerBatch + r)});
        }
        record_failure(db.Ingest(stream, rows));
      }
    });
  }

  std::thread control([&db, &record_failure]() {
    for (int i = 0; i < 40; ++i) {
      // SHOW STATS walks every metric (and refreshes pull gauges) while
      // producers are mid-flight.
      auto stats = db.Execute("SHOW STATS");
      record_failure(stats.status());

      // Churn a CQ on s0: create, then drop. Either call may interleave
      // anywhere between producer batches.
      auto churn = db.CreateContinuousQuery(
          "churn", "SELECT count(*) FROM s0 <VISIBLE '30 seconds'>");
      if (churn.ok()) {
        record_failure(db.DropContinuousQuery("churn"));
      } else {
        record_failure(churn.status());
      }

      // Toggle the worker fleet: folds shard state back and re-splits it
      // between batches of concurrent ingest.
      record_failure(
          db.Execute("SET PARALLELISM " + std::to_string(1 + i % 4))
              .status());
    }
  });

  for (std::thread& t : producers) t.join();
  control.join();
  ASSERT_FALSE(failed.load());

  // No rows were lost: each stream absorbed every batch.
  auto stats = db.StatsSnapshot();
  const int64_t expected = kBatchesPerProducer * kRowsPerBatch;
  for (int p = 0; p < kProducers; ++p) {
    const std::string name = "s" + std::to_string(p);
    bool found = false;
    for (const stream::MetricSample& sample : stats.metrics) {
      if (sample.scope == "stream" && sample.name == name &&
          sample.metric == "rows_ingested") {
        EXPECT_EQ(sample.value, expected) << name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }
  EXPECT_EQ(db.runtime()->rows_ingested(), expected * kProducers);
}

TEST(ConcurrencyStressTest, OverloadControlPlaneUnderIngest) {
  // Same shape as above, but the control thread also flips the memory
  // budget and per-stream overload policies while producers hammer Ingest.
  // The engine mutex serializes everything; the invariant checked at the
  // end is the admission identity (admitted + shed + quarantined ==
  // pushed) per stream — overload protection must never lose count, no
  // matter how the budget changes interleave.
  constexpr int kProducers = 3;
  constexpr int kBatchesPerProducer = 40;
  constexpr int kRowsPerBatch = 8;

  engine::Database db;
  for (int p = 0; p < kProducers; ++p) {
    MustExecute(&db, "CREATE STREAM s" + std::to_string(p) +
                         " (url varchar, ts timestamp CQTIME USER, "
                         "bytes bigint)");
    auto cq = db.CreateContinuousQuery(
        "hold" + std::to_string(p),
        "SELECT url, ts, bytes FROM s" + std::to_string(p) +
            " <VISIBLE '1 hour'>");
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  }
  MustExecute(&db, "SET PARALLELISM 2");
  db.runtime()->SetBlockTimeoutMicros(200);

  std::atomic<bool> failed{false};
  auto record_failure = [&failed](const Status& st) {
    if (!st.ok() && !failed.exchange(true)) {
      ADD_FAILURE() << st.ToString();
    }
  };

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&db, &record_failure, p]() {
      const std::string stream = "s" + std::to_string(p);
      int64_t ts = 0;
      for (int b = 0; b < kBatchesPerProducer; ++b) {
        std::vector<Row> rows;
        rows.reserve(kRowsPerBatch);
        for (int r = 0; r < kRowsPerBatch; ++r) {
          ts += kSec;
          rows.push_back(Row{Value::String("u" + std::to_string(r % 4)),
                             Value::Timestamp(ts),
                             Value::Int64(b * kRowsPerBatch + r)});
        }
        record_failure(db.Ingest(stream, rows));
      }
    });
  }

  std::thread control([&db, &record_failure]() {
    const char* policies[] = {"BLOCK", "SHED_NEWEST", "SHED_OLDEST"};
    const int64_t budgets[] = {0, 8192, 65536};
    for (int i = 0; i < 40; ++i) {
      record_failure(db.Execute("SET MEMORY LIMIT " +
                                std::to_string(budgets[i % 3]))
                         .status());
      record_failure(db.Execute(std::string("SET OVERLOAD POLICY s") +
                                std::to_string(i % kProducers) + " " +
                                policies[i % 3])
                         .status());
      record_failure(db.Execute("SHOW STATS FOR OVERLOAD").status());
    }
  });

  for (std::thread& t : producers) t.join();
  control.join();
  ASSERT_FALSE(failed.load());

  const int64_t pushed = kBatchesPerProducer * kRowsPerBatch;
  for (int p = 0; p < kProducers; ++p) {
    auto counters =
        db.runtime()->overload_counters("s" + std::to_string(p));
    EXPECT_EQ(counters.rows_admitted + counters.rows_shed +
                  counters.rows_quarantined,
              pushed)
        << "s" << p;
  }
}

// Differential oracle for concurrent ingest: N disjoint stream pipelines
// (stream -> windowed GROUP BY CQ -> subscription) are fed the same
// deterministic batches twice — once from N parallel producer threads,
// once single-threaded in a fresh engine — and every delivered window
// close must be byte-identical between the two runs. Because the streams
// are disjoint, per-stream ingest order is the only order that matters;
// the per-stream ingest locks must therefore make the concurrent run
// indistinguishable from the serial one.
namespace oracle {

constexpr int kStreams = 4;
constexpr int kBatches = 30;
constexpr int kRowsPerBatch = 6;

// Deterministic batch `b` for stream `p`: user timestamps step 7s per row
// so windows of <VISIBLE '1 minute'> close every few batches.
std::vector<Row> MakeBatch(int p, int b) {
  std::vector<Row> rows;
  rows.reserve(kRowsPerBatch);
  for (int r = 0; r < kRowsPerBatch; ++r) {
    const int64_t ts =
        static_cast<int64_t>(b * kRowsPerBatch + r + 1) * 7 * kSec;
    rows.push_back(Row{Value::String("u" + std::to_string((p + b + r) % 5)),
                       Value::Timestamp(ts),
                       Value::Int64(p * 1'000'000 + b * 100 + r)});
  }
  return rows;
}

// Runs the N pipelines over the full batch schedule and returns, per
// stream, the rendered sequence of delivered window closes. `concurrent`
// picks one producer thread per stream vs. a single serial thread.
std::vector<std::vector<std::string>> RunPipelines(bool concurrent) {
  engine::Database db;
  for (int p = 0; p < kStreams; ++p) {
    const std::string n = std::to_string(p);
    MustExecute(&db, "CREATE STREAM d" + n +
                         " (url varchar, ts timestamp CQTIME USER, "
                         "bytes bigint)");
    auto cq = db.CreateContinuousQuery(
        "dagg" + n, "SELECT url, count(*), sum(bytes) FROM d" + n +
                        " <VISIBLE '1 minute'> GROUP BY url");
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
  }
  MustExecute(&db, "SET PARALLELISM 2");

  // One capture per stream. A subscription callback fires on the thread
  // driving that stream's ingest while holding its ingest lock; with one
  // producer per stream each vector has exactly one writer, so the
  // captures need no locking of their own.
  std::vector<std::vector<std::string>> captured(kStreams);
  std::vector<engine::Database::SubscriptionTicket> tickets;
  for (int p = 0; p < kStreams; ++p) {
    auto ticket = db.Subscribe(
        "dagg" + std::to_string(p),
        [&captured, p](int64_t close, const std::vector<Row>& rows) {
          std::string event = "close=" + std::to_string(close) + ":";
          for (const Row& row : rows) event += " " + RowToString(row);
          captured[p].push_back(std::move(event));
          return Status::OK();
        });
    EXPECT_TRUE(ticket.ok()) << ticket.status().ToString();
    if (ticket.ok()) tickets.push_back(*ticket);
  }

  std::atomic<bool> failed{false};
  auto record_failure = [&failed](const Status& st) {
    if (!st.ok() && !failed.exchange(true)) {
      ADD_FAILURE() << st.ToString();
    }
  };
  auto feed = [&db, &record_failure](int p) {
    for (int b = 0; b < kBatches; ++b) {
      record_failure(db.Ingest("d" + std::to_string(p), MakeBatch(p, b)));
    }
  };

  if (concurrent) {
    std::vector<std::thread> producers;
    producers.reserve(kStreams);
    for (int p = 0; p < kStreams; ++p) producers.emplace_back(feed, p);
    for (std::thread& t : producers) t.join();
  } else {
    for (int p = 0; p < kStreams; ++p) feed(p);
  }
  EXPECT_FALSE(failed.load());

  for (const auto& ticket : tickets) {
    EXPECT_TRUE(db.Unsubscribe(ticket).ok());
  }
  return captured;
}

}  // namespace oracle

TEST(ConcurrencyStressTest, ConcurrentIngestMatchesSerialOracle) {
  const auto parallel = oracle::RunPipelines(/*concurrent=*/true);
  const auto serial = oracle::RunPipelines(/*concurrent=*/false);
  ASSERT_EQ(parallel.size(), serial.size());
  for (int p = 0; p < oracle::kStreams; ++p) {
    // Each pipeline saw window closes: the schedule is built to close
    // windows many times per stream.
    EXPECT_GT(serial[p].size(), 3u) << "d" << p;
    // Byte-identical delivery: same closes, same rows, same order.
    EXPECT_EQ(parallel[p], serial[p]) << "d" << p;
  }
}

// The lock-contention gauges from DESIGN decision 11 must be visible in
// the stats snapshot after a concurrent run: the shared tier counts every
// data-plane entry, the exclusive tier counts DDL, and the stream tier
// counts per-stream ingest acquisitions.
TEST(ConcurrencyStressTest, LockGaugesExposed) {
  engine::Database db;
  MustExecute(&db, "CREATE STREAM g (v bigint, ts timestamp CQTIME USER)");
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&db]() {
      for (int b = 0; b < 10; ++b) {
        std::vector<Row> rows;
        for (int r = 0; r < 4; ++r) {
          rows.push_back(Row{Value::Int64(r),
                             Value::Timestamp((b * 4 + r + 1) * kSec)});
        }
        EXPECT_TRUE(db.Ingest("g", rows).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();

  auto stats = db.StatsSnapshot();
  auto gauge = [&stats](const std::string& metric) -> int64_t {
    for (const stream::MetricSample& sample : stats.metrics) {
      if (sample.scope == "engine" && sample.name == "lock" &&
          sample.metric == metric) {
        return sample.value;
      }
    }
    ADD_FAILURE() << "missing engine/lock gauge: " << metric;
    return -1;
  };
  EXPECT_GT(gauge("shared_acquisitions"), 0);
  EXPECT_GT(gauge("exclusive_acquisitions"), 0);  // the CREATE STREAM
  EXPECT_GT(gauge("stream_acquisitions"), 0);
  // Present even when never contended.
  EXPECT_GE(gauge("shared_contended"), 0);
  EXPECT_GE(gauge("exclusive_wait_micros"), 0);
  EXPECT_GE(gauge("sys_acquisitions"), 0);
  EXPECT_GE(gauge("shard_acquisitions"), 0);
  EXPECT_GE(gauge("dml_acquisitions"), 0);
}

// Many concurrent network clients against one server: per-client stream
// pipelines with live subscriptions, binary ingest, and a stats reader,
// all multiplexed over the single event loop while deliveries fan out
// from inside the engine. Run under TSAN via scripts/sanitize.sh thread
// to watch the loop-thread / delivery-thread handoff on the send queues.
// Deterministic in outcome: every subscriber must see every window close
// of its own pipeline, in order, and the push accounting must balance.
TEST(ConcurrencyStressTest, ManyNetworkClients) {
  constexpr int kPipelines = 4;
  constexpr int kBatches = 25;
  constexpr int kRowsPerBatch = 8;
  constexpr int64_t kRpc = 20'000'000;

  engine::Database db;
  net::Server server(&db);
  ASSERT_TRUE(server.Start().ok());

  // Pipelines and subscriptions are set up before any traffic so no
  // window close can be missed.
  {
    net::Client setup;
    ASSERT_TRUE(setup.Connect("127.0.0.1", server.port(), kRpc).ok());
    for (int p = 0; p < kPipelines; ++p) {
      const std::string n = std::to_string(p);
      auto r = setup.Query(
          "CREATE STREAM ns" + n + " (v bigint, ts timestamp "
          "CQTIME SYSTEM);"
          "CREATE STREAM nagg" + n + " AS SELECT count(*) FROM ns" + n +
          " <VISIBLE '1 minute'>");
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  std::vector<net::Client> subscribers(kPipelines);
  for (int p = 0; p < kPipelines; ++p) {
    ASSERT_TRUE(
        subscribers[p].Connect("127.0.0.1", server.port(), kRpc).ok());
    ASSERT_TRUE(
        subscribers[p].Subscribe("nagg" + std::to_string(p), kRpc).ok());
  }

  std::atomic<bool> failed{false};
  auto record_failure = [&failed](const Status& st) {
    if (!st.ok() && !failed.exchange(true)) {
      ADD_FAILURE() << st.ToString();
    }
  };

  std::vector<std::thread> threads;
  // Producers: one connection per pipeline, monotone system time, so
  // every batch after the first closes exactly one window.
  for (int p = 0; p < kPipelines; ++p) {
    threads.emplace_back([&, p]() {
      net::Client producer;
      record_failure(producer.Connect("127.0.0.1", server.port(), kRpc));
      for (int b = 0; b < kBatches && !failed.load(); ++b) {
        std::vector<Row> rows;
        for (int i = 0; i < kRowsPerBatch; ++i) {
          rows.push_back({Value::Int64(b * 100 + i), Value::Null()});
        }
        record_failure(producer.IngestBatch(
            "ns" + std::to_string(p), rows,
            /*system_time=*/(b * 60 + 10) * kSec, kRpc));
      }
    });
  }
  // Subscribers: drain pushes as they arrive; closes must be in order
  // and carry the per-window row count.
  for (int p = 0; p < kPipelines; ++p) {
    threads.emplace_back([&, p]() {
      int64_t last_close = 0;
      for (int w = 1; w < kBatches && !failed.load(); ++w) {
        auto push = subscribers[p].NextPush(kRpc);
        if (!push.ok()) {
          record_failure(push.status());
          return;
        }
        EXPECT_GT(push->close, last_close) << "out-of-order window close";
        last_close = push->close;
        ASSERT_EQ(push->rows.size(), 1u);
        EXPECT_EQ(push->rows[0][0].AsInt64(), kRowsPerBatch);
      }
    });
  }
  // Control plane: SHOW STATS FOR NET and pings while traffic flows.
  threads.emplace_back([&]() {
    net::Client control;
    record_failure(control.Connect("127.0.0.1", server.port(), kRpc));
    for (int i = 0; i < 30 && !failed.load(); ++i) {
      record_failure(control.Query("SHOW STATS FOR NET", kRpc).status());
      record_failure(control.Ping(kRpc));
    }
  });

  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  const net::NetStats stats = server.stats();
  EXPECT_EQ(stats.pushes_total, stats.pushes_admitted + stats.pushes_shed +
                                    stats.pushes_disconnected);
  // Default policy queues are ample for these tiny frames: everything the
  // subscribers were owed was admitted and delivered.
  EXPECT_EQ(stats.pushes_admitted,
            static_cast<int64_t>(kPipelines) * (kBatches - 1));
  EXPECT_EQ(stats.slow_disconnects, 0);
  server.Drain();
}

}  // namespace
}  // namespace streamrel
