// The SQL surface of the engine: DDL, INSERT, snapshot SELECT semantics.

#include "engine/database.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamrel::engine {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(DatabaseTest, CreateInsertSelect) {
  MustExecute(&db_, "CREATE TABLE t (a bigint, b varchar)");
  MustExecute(&db_, "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  auto r = MustExecute(&db_, "SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(RowToString(r.rows[0]), "(1, x)");
}

TEST_F(DatabaseTest, InsertColumnListAndNullDefaults) {
  MustExecute(&db_, "CREATE TABLE t (a bigint, b varchar, c double)");
  MustExecute(&db_, "INSERT INTO t (b, a) VALUES ('x', 7)");
  auto r = MustExecute(&db_, "SELECT a, b, c FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 7);
  EXPECT_EQ(r.rows[0][1].AsString(), "x");
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(DatabaseTest, InsertExpressionValues) {
  MustExecute(&db_, "CREATE TABLE t (a bigint, ts timestamp)");
  MustExecute(&db_,
              "INSERT INTO t VALUES (2 + 3, timestamp '2009-01-05 09:00:00')");
  auto r = MustExecute(&db_, "SELECT a FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 5);
}

TEST_F(DatabaseTest, InsertArityMismatch) {
  MustExecute(&db_, "CREATE TABLE t (a bigint, b bigint)");
  EXPECT_FALSE(db_.Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST_F(DatabaseTest, IfNotExists) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a bigint)").ok());
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS t (a bigint)").ok());
}

TEST_F(DatabaseTest, DuplicateColumnRejected) {
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a bigint, A varchar)").ok());
}

TEST_F(DatabaseTest, StreamRequiresCqtime) {
  // No timestamp column at all: rejected.
  EXPECT_FALSE(db_.Execute("CREATE STREAM s (v bigint)").ok());
  // Exactly one timestamp column: inferred as CQTIME.
  EXPECT_TRUE(db_.Execute("CREATE STREAM s (v bigint, ts timestamp)").ok());
  // Two timestamp columns, none marked: ambiguous.
  EXPECT_FALSE(
      db_.Execute("CREATE STREAM s2 (t1 timestamp, t2 timestamp)").ok());
  // Two, one marked: fine.
  EXPECT_TRUE(db_.Execute("CREATE STREAM s3 (t1 timestamp CQTIME USER, "
                          "t2 timestamp)")
                  .ok());
  // CQTIME on a non-timestamp column: rejected.
  EXPECT_FALSE(db_.Execute("CREATE STREAM s4 (v bigint CQTIME USER, "
                           "ts timestamp)")
                   .ok());
}

TEST_F(DatabaseTest, InsertIntoStreamIngests) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db_.CreateContinuousQuery(
      "c", "SELECT sum(v) FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  MustExecute(&db_,
              "INSERT INTO s VALUES (5, timestamp '1970-01-01 00:00:10'), "
              "(7, timestamp '1970-01-01 00:00:20')");
  ASSERT_TRUE(db_.AdvanceTime("s", 60'000'000).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][0].AsInt64(), 12);
}

TEST_F(DatabaseTest, SelectOverStreamRejectedInExecute) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto r = db_.Execute("SELECT v FROM s <VISIBLE '1 minute'>");
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("CreateContinuousQuery"),
            std::string::npos);
}

TEST_F(DatabaseTest, ViewsExpandInQueries) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  MustExecute(&db_, "INSERT INTO t VALUES (1), (5), (9)");
  MustExecute(&db_, "CREATE VIEW big AS SELECT a FROM t WHERE a > 3");
  auto r = MustExecute(&db_, "SELECT count(*) FROM big");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseTest, StreamingViewInstantiatedOnUse) {
  MustExecute(&db_, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  MustExecute(&db_,
              "CREATE VIEW windowed AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>");
  // Using the view in a CQ works (Section 3.2: views instantiate on use).
  auto cq = db_.CreateContinuousQuery("via_view", "SELECT c FROM windowed");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  MustExecute(&db_, "INSERT INTO s VALUES (1, timestamp '1970-01-01 00:00:10')");
  ASSERT_TRUE(db_.AdvanceTime("s", 60'000'000).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][0].AsInt64(), 1);
}

TEST_F(DatabaseTest, DropStatements) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  MustExecute(&db_, "DROP TABLE t");
  EXPECT_FALSE(db_.Execute("SELECT a FROM t").ok());
  EXPECT_FALSE(db_.Execute("DROP TABLE t").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS t").ok());
}

TEST_F(DatabaseTest, DropGuardsProtectRunningPipelines) {
  MustExecute(&db_,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>;"
              "CREATE TABLE sink (c bigint);"
              "CREATE CHANNEL ch FROM agg INTO sink APPEND");
  // The channel writes into sink: cannot drop it.
  auto drop_table = db_.Execute("DROP TABLE sink");
  ASSERT_FALSE(drop_table.ok());
  EXPECT_NE(drop_table.status().message().find("channel 'ch'"),
            std::string::npos);
  // The derived stream feeds the channel: cannot drop it either.
  EXPECT_FALSE(db_.Execute("DROP STREAM agg").ok());
  // The raw stream feeds the derived stream's CQ.
  EXPECT_FALSE(db_.Execute("DROP STREAM s").ok());
  // Tear down in dependency order: channel, derived stream, raw, table.
  MustExecute(&db_, "DROP CHANNEL ch");
  MustExecute(&db_, "DROP STREAM agg");
  MustExecute(&db_, "DROP STREAM s");
  MustExecute(&db_, "DROP TABLE sink");
}

TEST_F(DatabaseTest, DropGuardsProtectCqJoinTables) {
  MustExecute(&db_,
              "CREATE STREAM s (k bigint, ts timestamp CQTIME USER);"
              "CREATE TABLE dim (k bigint, label varchar)");
  ASSERT_TRUE(db_.CreateContinuousQuery(
                    "enrich",
                    "SELECT s.k, dim.label FROM s <VISIBLE '1 minute'>, dim "
                    "WHERE s.k = dim.k")
                  .ok());
  auto drop = db_.Execute("DROP TABLE dim");
  ASSERT_FALSE(drop.ok());
  EXPECT_NE(drop.status().message().find("continuous query 'enrich'"),
            std::string::npos);
  ASSERT_TRUE(db_.DropContinuousQuery("enrich").ok());
  MustExecute(&db_, "DROP TABLE dim");
}

TEST_F(DatabaseTest, DroppedDerivedStreamStopsProducing) {
  MustExecute(&db_,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>");
  MustExecute(&db_, "DROP STREAM agg");
  // The defining CQ is gone; ingest proceeds without it.
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1),
                                   Value::Timestamp(1'000'000)}})
                  .ok());
  ASSERT_TRUE(db_.AdvanceTime("s", 120'000'000).ok());
  EXPECT_TRUE(db_.runtime()->CqNames().empty());
}

TEST_F(DatabaseTest, MultiStatementExecuteReturnsLast) {
  auto r = MustExecute(&db_,
                       "CREATE TABLE t (a bigint); "
                       "INSERT INTO t VALUES (1); "
                       "SELECT a FROM t");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(DatabaseTest, JoinsThroughSql) {
  MustExecute(&db_, "CREATE TABLE u (id bigint, name varchar)");
  MustExecute(&db_, "CREATE TABLE o (uid bigint, total double)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 'ann'), (2, 'bob')");
  MustExecute(&db_, "INSERT INTO o VALUES (1, 10.5), (1, 2.5), (2, 1.0)");
  auto r = MustExecute(&db_,
                       "SELECT name, sum(total) FROM u, o WHERE id = uid "
                       "GROUP BY name ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "ann");
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 13.0);
}

TEST_F(DatabaseTest, LeftJoinThroughSql) {
  MustExecute(&db_, "CREATE TABLE u (id bigint, name varchar)");
  MustExecute(&db_, "CREATE TABLE o (uid bigint, total double)");
  MustExecute(&db_, "INSERT INTO u VALUES (1, 'ann'), (2, 'bob')");
  MustExecute(&db_, "INSERT INTO o VALUES (1, 10.0)");
  auto r = MustExecute(&db_,
                       "SELECT name, total FROM u LEFT JOIN o ON id = uid "
                       "ORDER BY name");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_TRUE(r.rows[1][1].is_null());
}

TEST_F(DatabaseTest, DistinctAndUnionAll) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  MustExecute(&db_, "INSERT INTO t VALUES (1), (1), (2)");
  EXPECT_EQ(MustExecute(&db_, "SELECT DISTINCT a FROM t").rows.size(), 2u);
  EXPECT_EQ(
      MustExecute(&db_, "SELECT a FROM t UNION ALL SELECT a FROM t")
          .rows.size(),
      6u);
}

TEST_F(DatabaseTest, OrderByAndLimitApplyToWholeUnion) {
  MustExecute(&db_, "CREATE TABLE lo (a bigint)");
  MustExecute(&db_, "CREATE TABLE hi (a bigint)");
  MustExecute(&db_, "INSERT INTO lo VALUES (1), (3), (5)");
  MustExecute(&db_, "INSERT INTO hi VALUES (2), (4), (6)");
  auto r = MustExecute(&db_,
                       "SELECT a FROM lo UNION ALL SELECT a FROM hi "
                       "ORDER BY a DESC LIMIT 4");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 6);  // from hi: the sort is global
  EXPECT_EQ(r.rows[1][0].AsInt64(), 5);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 4);
  EXPECT_EQ(r.rows[3][0].AsInt64(), 3);
  // Ordinal form works too.
  auto ordinal = MustExecute(
      &db_, "SELECT a FROM lo UNION ALL SELECT a FROM hi ORDER BY 1 LIMIT 2");
  EXPECT_EQ(ordinal.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(ordinal.rows[1][0].AsInt64(), 2);
  // Arbitrary expressions over a union are rejected with a clear error.
  auto bad = db_.Execute(
      "SELECT a FROM lo UNION ALL SELECT a FROM hi ORDER BY a + 1");
  EXPECT_FALSE(bad.ok());
}

TEST_F(DatabaseTest, UnionInsideSubqueryAndView) {
  MustExecute(&db_, "CREATE TABLE lo (a bigint)");
  MustExecute(&db_, "CREATE TABLE hi (a bigint)");
  MustExecute(&db_, "INSERT INTO lo VALUES (1), (2)");
  MustExecute(&db_, "INSERT INTO hi VALUES (10)");
  auto sub = MustExecute(
      &db_,
      "SELECT count(*) FROM "
      "(SELECT a FROM lo UNION ALL SELECT a FROM hi) u");
  EXPECT_EQ(sub.rows[0][0].AsInt64(), 3);
  MustExecute(&db_,
              "CREATE VIEW both AS SELECT a FROM lo UNION ALL "
              "SELECT a FROM hi");
  auto through_view = MustExecute(&db_, "SELECT sum(a) FROM both");
  EXPECT_EQ(through_view.rows[0][0].AsInt64(), 13);
}

TEST_F(DatabaseTest, SubqueryInFrom) {
  MustExecute(&db_, "CREATE TABLE t (a bigint)");
  MustExecute(&db_, "INSERT INTO t VALUES (1), (2), (3), (4)");
  auto r = MustExecute(&db_,
                       "SELECT count(*) FROM (SELECT a FROM t WHERE a > 1) q "
                       "WHERE q.a < 4");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 2);
}

TEST_F(DatabaseTest, IndexSpeedsUpAndStaysCorrect) {
  MustExecute(&db_, "CREATE TABLE t (k bigint, v varchar)");
  std::string insert = "INSERT INTO t VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(i % 100) + ", 'v" + std::to_string(i) +
              "')";
  }
  MustExecute(&db_, insert);
  auto before = MustExecute(&db_, "SELECT count(*) FROM t WHERE k = 42");
  MustExecute(&db_, "CREATE INDEX t_k ON t (k)");
  auto after = MustExecute(&db_, "SELECT count(*) FROM t WHERE k = 42");
  EXPECT_EQ(before.rows[0][0].AsInt64(), after.rows[0][0].AsInt64());
  EXPECT_EQ(after.rows[0][0].AsInt64(), 5);
}

TEST_F(DatabaseTest, IndexBackfillCoversExistingRows) {
  MustExecute(&db_, "CREATE TABLE t (k bigint)");
  MustExecute(&db_, "INSERT INTO t VALUES (1), (2)");
  MustExecute(&db_, "CREATE INDEX t_k ON t (k)");
  MustExecute(&db_, "INSERT INTO t VALUES (3)");
  auto r = MustExecute(&db_, "SELECT count(*) FROM t WHERE k >= 1");
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
}

TEST_F(DatabaseTest, ErrorsCarryUsefulMessages) {
  auto missing = db_.Execute("SELECT x FROM nope");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto parse = db_.Execute("SELEKT 1");
  EXPECT_EQ(parse.status().code(), StatusCode::kParseError);
  auto empty = db_.Execute("   ");
  EXPECT_FALSE(empty.ok());
}

TEST_F(DatabaseTest, QueryResultMessages) {
  EXPECT_EQ(MustExecute(&db_, "CREATE TABLE t (a bigint)").message,
            "CREATE TABLE");
  EXPECT_EQ(MustExecute(&db_, "INSERT INTO t VALUES (1), (2)").message,
            "INSERT 2");
  EXPECT_EQ(MustExecute(&db_, "SELECT a FROM t").message, "SELECT 2");
}

TEST_F(DatabaseTest, Example1DdlFromPaperWorksVerbatim) {
  MustExecute(&db_,
              "CREATE STREAM url_stream ("
              "  url varchar(1024),"
              "  atime timestamp CQTIME USER,"
              "  client_ip varchar(50)"
              ")");
  auto* info = db_.catalog()->GetStream("url_stream");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->cqtime_column, 1u);
}

}  // namespace
}  // namespace streamrel::engine
