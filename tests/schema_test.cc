#include "common/schema.h"

#include <gtest/gtest.h>

namespace streamrel {
namespace {

Schema MakeSchema() {
  return Schema({Column("id", DataType::kInt64, "t"),
                 Column("name", DataType::kString, "t"),
                 Column("ts", DataType::kTimestamp, "t")});
}

TEST(SchemaTest, IndexOfByName) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.IndexOf("name").value(), 1u);
  EXPECT_EQ(s.IndexOf("NAME").value(), 1u);  // case-insensitive
  EXPECT_FALSE(s.IndexOf("missing").has_value());
}

TEST(SchemaTest, IndexOfWithQualifier) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.IndexOf("id", "t").value(), 0u);
  EXPECT_FALSE(s.IndexOf("id", "u").has_value());
}

TEST(SchemaTest, FindColumnAmbiguity) {
  Schema s = Schema({Column("x", DataType::kInt64, "a"),
                     Column("x", DataType::kInt64, "b")});
  auto r = s.FindColumn("x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
  auto qualified = s.FindColumn("x", "b");
  ASSERT_TRUE(qualified.ok());
  EXPECT_EQ(*qualified, 1u);
}

TEST(SchemaTest, FindColumnNotFound) {
  auto r = MakeSchema().FindColumn("zzz");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST(SchemaTest, Concat) {
  Schema a({Column("x", DataType::kInt64, "a")});
  Schema b({Column("y", DataType::kString, "b")});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.num_columns(), 2u);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(1).name, "y");
  EXPECT_EQ(c.column(1).qualifier, "b");
}

TEST(SchemaTest, WithQualifier) {
  Schema q = MakeSchema().WithQualifier("alias");
  for (const Column& col : q.columns()) {
    EXPECT_EQ(col.qualifier, "alias");
  }
}

TEST(SchemaTest, Equals) {
  EXPECT_TRUE(MakeSchema().Equals(MakeSchema().WithQualifier("other")));
  Schema different({Column("id", DataType::kString, "t")});
  EXPECT_FALSE(MakeSchema().Equals(different));
}

TEST(RowTest, SerializeRoundTrip) {
  Row row = {Value::Int64(1), Value::String("a"), Value::Null()};
  std::string buf;
  SerializeRow(row, &buf);
  size_t offset = 0;
  auto r = DeserializeRow(buf, &offset);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0].AsInt64(), 1);
  EXPECT_EQ((*r)[1].AsString(), "a");
  EXPECT_TRUE((*r)[2].is_null());
  EXPECT_EQ(offset, buf.size());
}

TEST(RowTest, SerializeManyRowsSequentially) {
  std::string buf;
  for (int i = 0; i < 10; ++i) {
    SerializeRow({Value::Int64(i)}, &buf);
  }
  size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = DeserializeRow(buf, &offset);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)[0].AsInt64(), i);
  }
}

TEST(RowTest, RowToString) {
  EXPECT_EQ(RowToString({Value::Int64(1), Value::String("x")}), "(1, x)");
  EXPECT_EQ(RowToString({}), "()");
}

}  // namespace
}  // namespace streamrel
