// Crash/restart recovery: WAL replay rebuilds tables; the paper's
// rebuild-from-active-tables strategy resumes CQs from channel watermarks
// with no re-emission and no loss; checkpoint recovery restores window
// operator state directly.

#include "stream/recovery.h"

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

const char* kDdl =
    "CREATE STREAM s (url varchar, ts timestamp CQTIME USER);"
    "CREATE STREAM per_min AS SELECT url, count(*) AS c, cq_close(*) AS w "
    "FROM s <VISIBLE '1 minute'> GROUP BY url;"
    "CREATE TABLE archive (url varchar, c bigint, w timestamp);"
    "CREATE CHANNEL ch FROM per_min INTO archive APPEND";

Row Click(const std::string& url, int64_t ts) {
  return Row{Value::String(url), Value::Timestamp(ts)};
}

/// "Restarts" the database: a fresh engine over the same disk + WAL, with
/// the application re-running its DDL (our catalog is not self-persisting;
/// DDL re-execution is the documented bootstrap).
std::unique_ptr<engine::Database> Restart(engine::Database* old) {
  auto fresh = std::make_unique<engine::Database>(old->disk(), old->wal());
  MustExecute(fresh.get(), kDdl);
  return fresh;
}

TEST(RecoveryTest, WalReplayRebuildsTables) {
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint, b varchar)");
  MustExecute(&db, "INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  MustExecute(&db, "INSERT INTO t VALUES (3, 'z')");

  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, "CREATE TABLE t (a bigint, b varchar)");
  auto replay = fresh.RecoverFromWal();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->rows_inserted, 3);

  auto rows = MustExecute(&fresh, "SELECT a, b FROM t ORDER BY a");
  ASSERT_EQ(rows.rows.size(), 3u);
  EXPECT_EQ(rows.rows[2][1].AsString(), "z");
}

TEST(RecoveryTest, UncommittedTransactionsRolledBack) {
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "INSERT INTO t VALUES (1)");
  // Simulate a crash mid-transaction: write Begin+Insert but no Commit.
  storage::WalRecord begin;
  begin.type = storage::WalRecordType::kBegin;
  begin.txn_id = 9999;
  ASSERT_TRUE(db.wal()->Append(begin).ok());
  storage::WalRecord insert;
  insert.type = storage::WalRecordType::kInsert;
  insert.txn_id = 9999;
  insert.object_name = "t";
  insert.row = {Value::Int64(666)};
  ASSERT_TRUE(db.wal()->Append(insert).ok());

  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, "CREATE TABLE t (a bigint)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto rows = MustExecute(&fresh, "SELECT a FROM t");
  ASSERT_EQ(rows.rows.size(), 1u);
  EXPECT_EQ(rows.rows[0][0].AsInt64(), 1);
}

TEST(RecoveryTest, DeletesReplayed) {
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
                   "CREATE STREAM latest AS SELECT count(*) AS c FROM s "
                   "<VISIBLE '1 minute'>;"
                   "CREATE TABLE cur (c bigint);"
                   "CREATE CHANNEL ch FROM latest INTO cur REPLACE");
  ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(1),
                                  Value::Timestamp(10 * kSec)}})
                  .ok());
  ASSERT_TRUE(db.AdvanceTime("s", 3 * kMin).ok());
  // REPLACE mode: only the last (empty) window's single count row remains.
  auto before = MustExecute(&db, "SELECT c FROM cur");
  ASSERT_EQ(before.rows.size(), 1u);
  EXPECT_EQ(before.rows[0][0].AsInt64(), 0);

  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
                      "CREATE STREAM latest AS SELECT count(*) AS c FROM s "
                      "<VISIBLE '1 minute'>;"
                      "CREATE TABLE cur (c bigint);"
                      "CREATE CHANNEL ch FROM latest INTO cur REPLACE");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto after = MustExecute(&fresh, "SELECT c FROM cur");
  ASSERT_EQ(after.rows.size(), 1u);
  EXPECT_EQ(after.rows[0][0].AsInt64(), 0);
}

TEST(RecoveryTest, ChannelWatermarkRecovered) {
  engine::Database db;
  MustExecute(&db, kDdl);
  ASSERT_TRUE(db.Ingest("s", {Click("/a", 10 * kSec)}).ok());
  ASSERT_TRUE(db.AdvanceTime("s", 2 * kMin).ok());
  EXPECT_EQ(db.runtime()->GetChannel("ch")->watermark(), 2 * kMin);

  auto fresh = Restart(&db);
  auto replay = fresh->RecoverFromWal();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->channel_watermarks.count("ch"), 1u);
  EXPECT_EQ(replay->channel_watermarks.at("ch"), 2 * kMin);
}

TEST(RecoveryTest, ActiveTableResumeNoDuplicatesNoLoss) {
  // Run to minute 2, "crash", restart, continue to minute 4: the archive
  // must contain each per-minute window exactly once.
  engine::Database db;
  MustExecute(&db, kDdl);
  ASSERT_TRUE(db.Ingest("s", {Click("/a", 10 * kSec),
                              Click("/a", 70 * kSec)})
                  .ok());
  ASSERT_TRUE(db.AdvanceTime("s", 2 * kMin).ok());

  auto fresh = Restart(&db);
  auto replay = fresh->RecoverFromWal();
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(ResumeFromActiveTables(fresh->runtime(), *replay).ok());

  // Continue the stream: data for minutes 3 and 4.
  ASSERT_TRUE(fresh->Ingest("s", {Click("/a", 130 * kSec),
                                  Click("/a", 190 * kSec)})
                  .ok());
  ASSERT_TRUE(fresh->AdvanceTime("s", 4 * kMin).ok());

  auto rows = MustExecute(fresh.get(), "SELECT w, c FROM archive ORDER BY w");
  ASSERT_EQ(rows.rows.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rows.rows[i][0].AsTimestampMicros(),
              static_cast<int64_t>(i + 1) * kMin)
        << "window " << i;
    EXPECT_EQ(rows.rows[i][1].AsInt64(), 1);
  }
}

TEST(RecoveryTest, RecoveredArchiveMatchesUninterruptedRun) {
  // Golden run without a crash.
  engine::Database golden;
  MustExecute(&golden, kDdl);
  for (int m = 0; m < 4; ++m) {
    ASSERT_TRUE(
        golden.Ingest("s", {Click("/a", m * kMin + 10 * kSec)}).ok());
  }
  ASSERT_TRUE(golden.AdvanceTime("s", 4 * kMin).ok());
  auto expected =
      RowStrings(MustExecute(&golden, "SELECT url, c, w FROM archive "
                                      "ORDER BY w"));

  // Crashing run: restart after minute 2.
  engine::Database crashy;
  MustExecute(&crashy, kDdl);
  for (int m = 0; m < 2; ++m) {
    ASSERT_TRUE(
        crashy.Ingest("s", {Click("/a", m * kMin + 10 * kSec)}).ok());
  }
  ASSERT_TRUE(crashy.AdvanceTime("s", 2 * kMin).ok());
  auto fresh = Restart(&crashy);
  auto replay = fresh->RecoverFromWal();
  ASSERT_TRUE(replay.ok());
  ASSERT_TRUE(ResumeFromActiveTables(fresh->runtime(), *replay).ok());
  for (int m = 2; m < 4; ++m) {
    ASSERT_TRUE(
        fresh->Ingest("s", {Click("/a", m * kMin + 10 * kSec)}).ok());
  }
  ASSERT_TRUE(fresh->AdvanceTime("s", 4 * kMin).ok());
  auto actual = RowStrings(
      MustExecute(fresh.get(), "SELECT url, c, w FROM archive ORDER BY w"));
  EXPECT_EQ(actual, expected);
}

TEST(RecoveryTest, CheckpointRoundTrip) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "win", "SELECT v FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'>",
      /*allow_shared=*/false);
  ASSERT_TRUE(cq.ok());
  ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(7),
                                  Value::Timestamp(30 * kSec)}})
                  .ok());

  CheckpointManager ckpt(db.runtime(), db.wal().get());
  ASSERT_TRUE(ckpt.WriteCheckpoint().ok());
  EXPECT_EQ(ckpt.checkpoints_written(), 1);
  EXPECT_GT(ckpt.bytes_written(), 0);

  // Restart, recreate the CQ, restore its buffered window state.
  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq2 = fresh.CreateContinuousQuery(
      "win", "SELECT v FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'>",
      /*allow_shared=*/false);
  ASSERT_TRUE(cq2.ok());
  CqCapture cap;
  (*cq2)->AddCallback(cap.Callback());
  auto replay = fresh.RecoverFromWal();
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->latest_checkpoints.size(), 1u);
  CheckpointManager restore(fresh.runtime(), fresh.wal().get());
  ASSERT_TRUE(restore.RestoreFromCheckpoints(*replay).ok());

  // The pre-crash row at 30s is still visible in the windows that cover it.
  ASSERT_TRUE(fresh.AdvanceTime("s", 2 * kMin).ok());
  ASSERT_EQ(cap.batches.size(), 2u);
  EXPECT_EQ(cap.batches[0].rows.size(), 1u);  // window [-1min, 1min)
  EXPECT_EQ(cap.batches[1].rows.size(), 1u);  // window [0, 2min)
}

TEST(RecoveryTest, VacuumedReplaceChannelRecoversExactly) {
  // REPLACE churn + mid-flight VACUUM + more churn, then crash: replay must
  // reproduce the exact table contents (the kVacuum barrier keeps RowIds
  // aligned between the live run and the replayed run).
  const char* ddl =
      "CREATE STREAM s (k bigint, ts timestamp CQTIME USER);"
      "CREATE STREAM agg AS SELECT k, count(*) AS c FROM s "
      "<VISIBLE '1 minute'> GROUP BY k;"
      "CREATE TABLE board (k bigint, c bigint);"
      "CREATE CHANNEL ch FROM agg INTO board REPLACE";
  engine::Database db;
  MustExecute(&db, ddl);
  for (int m = 0; m < 9; ++m) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(m % 2),
                                    Value::Timestamp(m * kMin + kSec)}})
                    .ok());
    ASSERT_TRUE(db.AdvanceTime("s", (m + 1) * kMin).ok());
    if (m == 4) MustExecute(&db, "VACUUM board");
  }
  auto expected = RowStrings(MustExecute(&db, "SELECT k, c FROM board"));

  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, ddl);
  auto replay = fresh.RecoverFromWal();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(ResumeFromActiveTables(fresh.runtime(), *replay).ok());
  auto actual = RowStrings(MustExecute(&fresh, "SELECT k, c FROM board"));
  EXPECT_EQ(actual, expected);
}

TEST(RecoveryTest, ReplayIntoMissingTableFails) {
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint)");
  MustExecute(&db, "INSERT INTO t VALUES (1)");
  engine::Database fresh(db.disk(), db.wal());
  // Table not recreated: replay reports the problem.
  auto replay = fresh.RecoverFromWal();
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace streamrel::stream
