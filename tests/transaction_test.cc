#include "storage/transaction.h"

#include <gtest/gtest.h>

namespace streamrel::storage {
namespace {

TEST(TransactionTest, BeginCommitLifecycle) {
  TransactionManager txns;
  TxnId t = txns.Begin();
  EXPECT_NE(t, kInvalidTxn);
  EXPECT_FALSE(txns.IsCommitted(t));
  auto seq = txns.Commit(t, 100);
  ASSERT_TRUE(seq.ok());
  EXPECT_TRUE(txns.IsCommitted(t));
}

TEST(TransactionTest, CommitSequenceMonotonic) {
  TransactionManager txns;
  TxnId a = txns.Begin(), b = txns.Begin();
  auto sb = txns.Commit(b, 10);
  auto sa = txns.Commit(a, 20);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_LT(*sb, *sa);  // commit order, not begin order
}

TEST(TransactionTest, DoubleCommitRejected) {
  TransactionManager txns;
  TxnId t = txns.Begin();
  ASSERT_TRUE(txns.Commit(t, 1).ok());
  EXPECT_FALSE(txns.Commit(t, 2).ok());
}

TEST(TransactionTest, AbortLifecycle) {
  TransactionManager txns;
  TxnId t = txns.Begin();
  ASSERT_TRUE(txns.Abort(t).ok());
  EXPECT_TRUE(txns.IsAborted(t));
  EXPECT_FALSE(txns.Commit(t, 1).ok());
}

TEST(TransactionTest, UnknownTxnErrors) {
  TransactionManager txns;
  EXPECT_FALSE(txns.Commit(999, 1).ok());
  EXPECT_FALSE(txns.Abort(999).ok());
}

TEST(TransactionTest, VisibilityBasic) {
  TransactionManager txns;
  TxnId writer = txns.Begin();
  Snapshot before = txns.CurrentSnapshot();
  EXPECT_FALSE(txns.IsVisible(writer, kInvalidTxn, before));
  ASSERT_TRUE(txns.Commit(writer, 10).ok());
  EXPECT_FALSE(txns.IsVisible(writer, kInvalidTxn, before));  // old snapshot
  Snapshot after = txns.CurrentSnapshot();
  EXPECT_TRUE(txns.IsVisible(writer, kInvalidTxn, after));
}

TEST(TransactionTest, OwnWritesVisible) {
  TransactionManager txns;
  TxnId me = txns.Begin();
  Snapshot snap = txns.CurrentSnapshot();
  EXPECT_TRUE(txns.IsVisible(me, kInvalidTxn, snap, me));
  // My own delete hides the row from me.
  EXPECT_FALSE(txns.IsVisible(me, me, snap, me));
}

TEST(TransactionTest, DeletedRowVisibilityByEra) {
  TransactionManager txns;
  TxnId creator = txns.Begin();
  ASSERT_TRUE(txns.Commit(creator, 1).ok());
  Snapshot alive = txns.CurrentSnapshot();
  TxnId deleter = txns.Begin();
  ASSERT_TRUE(txns.Commit(deleter, 2).ok());
  Snapshot dead = txns.CurrentSnapshot();
  EXPECT_TRUE(txns.IsVisible(creator, deleter, alive));
  EXPECT_FALSE(txns.IsVisible(creator, deleter, dead));
}

TEST(TransactionTest, SnapshotAsOfTime) {
  TransactionManager txns;
  TxnId t1 = txns.Begin();
  ASSERT_TRUE(txns.Commit(t1, 1000).ok());
  TxnId t2 = txns.Begin();
  ASSERT_TRUE(txns.Commit(t2, 2000).ok());
  TxnId t3 = txns.Begin();
  ASSERT_TRUE(txns.Commit(t3, 3000).ok());

  Snapshot at0 = txns.SnapshotAsOf(999);
  Snapshot at1 = txns.SnapshotAsOf(1000);
  Snapshot at2 = txns.SnapshotAsOf(2500);
  Snapshot at3 = txns.SnapshotAsOf(99999);

  EXPECT_FALSE(txns.IsVisible(t1, kInvalidTxn, at0));
  EXPECT_TRUE(txns.IsVisible(t1, kInvalidTxn, at1));
  EXPECT_FALSE(txns.IsVisible(t2, kInvalidTxn, at1));
  EXPECT_TRUE(txns.IsVisible(t2, kInvalidTxn, at2));
  EXPECT_FALSE(txns.IsVisible(t3, kInvalidTxn, at2));
  EXPECT_TRUE(txns.IsVisible(t3, kInvalidTxn, at3));
}

TEST(TransactionTest, SnapshotAsOfSameTimeTakesAll) {
  TransactionManager txns;
  TxnId a = txns.Begin(), b = txns.Begin();
  ASSERT_TRUE(txns.Commit(a, 500).ok());
  ASSERT_TRUE(txns.Commit(b, 500).ok());
  Snapshot snap = txns.SnapshotAsOf(500);
  EXPECT_TRUE(txns.IsVisible(a, kInvalidTxn, snap));
  EXPECT_TRUE(txns.IsVisible(b, kInvalidTxn, snap));
}

TEST(TransactionTest, InvalidXminNeverVisible) {
  TransactionManager txns;
  EXPECT_FALSE(
      txns.IsVisible(kInvalidTxn, kInvalidTxn, txns.CurrentSnapshot()));
}

}  // namespace
}  // namespace streamrel::storage
