#include "storage/btree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

namespace streamrel::storage {
namespace {

std::vector<RowId> Lookup(const BTreeIndex& index, const Value& key) {
  std::vector<RowId> out;
  index.ScanEqual(key, [&](RowId id) {
    out.push_back(id);
    return true;
  });
  return out;
}

TEST(BTreeIndexTest, InsertAndPointLookup) {
  BTreeIndex index("c");
  index.Insert(Value::Int64(10), 1);
  index.Insert(Value::Int64(20), 2);
  EXPECT_EQ(Lookup(index, Value::Int64(10)), std::vector<RowId>{1});
  EXPECT_EQ(Lookup(index, Value::Int64(20)), std::vector<RowId>{2});
  EXPECT_TRUE(Lookup(index, Value::Int64(30)).empty());
}

TEST(BTreeIndexTest, DuplicateKeys) {
  BTreeIndex index("c");
  index.Insert(Value::String("k"), 5);
  index.Insert(Value::String("k"), 3);
  index.Insert(Value::String("k"), 9);
  auto ids = Lookup(index, Value::String("k"));
  EXPECT_EQ(ids, (std::vector<RowId>{3, 5, 9}));  // rowid order
}

TEST(BTreeIndexTest, SplitsAtScale) {
  BTreeIndex index("c", /*fanout=*/8);
  for (int i = 0; i < 1000; ++i) {
    index.Insert(Value::Int64(i), static_cast<RowId>(i));
  }
  EXPECT_EQ(index.size(), 1000u);
  EXPECT_GT(index.height(), 2);
  for (int i = 0; i < 1000; i += 97) {
    EXPECT_EQ(Lookup(index, Value::Int64(i)),
              std::vector<RowId>{static_cast<RowId>(i)});
  }
}

TEST(BTreeIndexTest, ReverseInsertionOrder) {
  BTreeIndex index("c", 8);
  for (int i = 999; i >= 0; --i) {
    index.Insert(Value::Int64(i), static_cast<RowId>(i));
  }
  std::vector<int64_t> keys;
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](const Value& k, RowId) {
                    keys.push_back(k.AsInt64());
                    return true;
                  });
  ASSERT_EQ(keys.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
}

TEST(BTreeIndexTest, RandomInsertionSortedScan) {
  BTreeIndex index("c", 16);
  std::mt19937 rng(42);
  std::vector<int64_t> inserted;
  for (int i = 0; i < 2000; ++i) {
    int64_t k = static_cast<int64_t>(rng() % 10000);
    inserted.push_back(k);
    index.Insert(Value::Int64(k), static_cast<RowId>(i));
  }
  std::sort(inserted.begin(), inserted.end());
  std::vector<int64_t> scanned;
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](const Value& k, RowId) {
                    scanned.push_back(k.AsInt64());
                    return true;
                  });
  EXPECT_EQ(scanned, inserted);
}

TEST(BTreeIndexTest, RangeScanBounds) {
  BTreeIndex index("c", 8);
  for (int i = 0; i < 100; ++i) {
    index.Insert(Value::Int64(i), static_cast<RowId>(i));
  }
  std::vector<int64_t> keys;
  auto collect = [&](const Value& k, RowId) {
    keys.push_back(k.AsInt64());
    return true;
  };
  index.ScanRange(Value::Int64(10), true, Value::Int64(13), true, collect);
  EXPECT_EQ(keys, (std::vector<int64_t>{10, 11, 12, 13}));

  keys.clear();
  index.ScanRange(Value::Int64(10), false, Value::Int64(13), false, collect);
  EXPECT_EQ(keys, (std::vector<int64_t>{11, 12}));

  keys.clear();
  index.ScanRange(std::nullopt, true, Value::Int64(2), true, collect);
  EXPECT_EQ(keys, (std::vector<int64_t>{0, 1, 2}));

  keys.clear();
  index.ScanRange(Value::Int64(97), true, std::nullopt, true, collect);
  EXPECT_EQ(keys, (std::vector<int64_t>{97, 98, 99}));
}

TEST(BTreeIndexTest, RangeScanEarlyStop) {
  BTreeIndex index("c", 8);
  for (int i = 0; i < 100; ++i) {
    index.Insert(Value::Int64(i), static_cast<RowId>(i));
  }
  int count = 0;
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](const Value&, RowId) { return ++count < 5; });
  EXPECT_EQ(count, 5);
}

TEST(BTreeIndexTest, RemoveSpecificEntry) {
  BTreeIndex index("c");
  index.Insert(Value::Int64(1), 10);
  index.Insert(Value::Int64(1), 11);
  ASSERT_TRUE(index.Remove(Value::Int64(1), 10).ok());
  EXPECT_EQ(Lookup(index, Value::Int64(1)), std::vector<RowId>{11});
  EXPECT_EQ(index.size(), 1u);
}

TEST(BTreeIndexTest, RemoveMissingErrors) {
  BTreeIndex index("c");
  index.Insert(Value::Int64(1), 10);
  EXPECT_FALSE(index.Remove(Value::Int64(1), 99).ok());
  EXPECT_FALSE(index.Remove(Value::Int64(2), 10).ok());
}

TEST(BTreeIndexTest, InsertRemoveChurn) {
  BTreeIndex index("c", 8);
  for (int i = 0; i < 500; ++i) {
    index.Insert(Value::Int64(i % 50), static_cast<RowId>(i));
  }
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(index.Remove(Value::Int64(i % 50), static_cast<RowId>(i)).ok());
  }
  EXPECT_EQ(index.size(), 250u);
  // Every remaining entry has an odd RowId.
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](const Value&, RowId id) {
                    EXPECT_EQ(id % 2, 1u);
                    return true;
                  });
}

TEST(BTreeIndexTest, StringKeys) {
  BTreeIndex index("c", 8);
  const char* words[] = {"pear", "apple", "fig", "banana", "cherry"};
  for (RowId i = 0; i < 5; ++i) {
    index.Insert(Value::String(words[i]), i);
  }
  std::vector<std::string> keys;
  index.ScanRange(std::nullopt, true, std::nullopt, true,
                  [&](const Value& k, RowId) {
                    keys.push_back(k.AsString());
                    return true;
                  });
  EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry",
                                            "fig", "pear"}));
}

TEST(BTreeIndexTest, TimestampRange) {
  BTreeIndex index("ts", 8);
  for (int i = 0; i < 60; ++i) {
    index.Insert(Value::Timestamp(i * 1000000), static_cast<RowId>(i));
  }
  std::vector<RowId> ids;
  index.ScanRange(Value::Timestamp(10000000), true,
                  Value::Timestamp(12000000), false,
                  [&](const Value&, RowId id) {
                    ids.push_back(id);
                    return true;
                  });
  EXPECT_EQ(ids, (std::vector<RowId>{10, 11}));
}

}  // namespace
}  // namespace streamrel::storage
