#include "stream/runtime.h"

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel::stream {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    MustExecute(&db_,
                "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  }

  Row R(int64_t v, int64_t ts) {
    return Row{Value::Int64(v), Value::Timestamp(ts)};
  }

  engine::Database db_;
};

// Bad rows no longer fail the whole batch: they are diverted to the
// stream's dead-letter quarantine and the rest of the batch proceeds.
TEST_F(RuntimeTest, IngestQuarantinesArityMismatch) {
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1)}}).ok());
  auto counters = db_.runtime()->overload_counters("s");
  EXPECT_EQ(counters.rows_quarantined, 1);
  EXPECT_EQ(counters.rows_admitted, 0);
  // The dead-letter stream now exists; a subscriber sees the next capture.
  CqCapture cap;
  ASSERT_TRUE(db_.runtime()
                  ->SubscribeStream(StreamRuntime::QuarantineName("s"),
                                    cap.Callback())
                  .ok());
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(2)}}).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  ASSERT_EQ(cap.batches[0].rows.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][1].AsString(), "arity");
}

TEST_F(RuntimeTest, IngestQuarantinesOutOfOrderRows) {
  ASSERT_TRUE(db_.Ingest("s", {R(1, 100)}).ok());
  // A row behind the watermark is quarantined as "late", not an error, and
  // does not disturb the watermark.
  ASSERT_TRUE(db_.Ingest("s", {R(2, 50)}).ok());
  EXPECT_EQ(db_.runtime()->overload_counters("s").rows_quarantined, 1);
  EXPECT_EQ(db_.runtime()->watermark("s"), 100);
  // Equal timestamps are accepted.
  EXPECT_TRUE(db_.Ingest("s", {R(3, 100)}).ok());
  EXPECT_EQ(db_.runtime()->overload_counters("s").rows_admitted, 2);
}

TEST_F(RuntimeTest, IngestQuarantinesNullCqtime) {
  ASSERT_TRUE(db_.Ingest("s", {Row{Value::Int64(1), Value::Null()}}).ok());
  auto counters = db_.runtime()->overload_counters("s");
  EXPECT_EQ(counters.rows_quarantined, 1);
  EXPECT_EQ(counters.rows_admitted, 0);
}

TEST_F(RuntimeTest, QuarantineMixedBatchKeepsGoodRows) {
  CqCapture cap;
  ASSERT_TRUE(db_.runtime()->SubscribeStream("s", cap.Callback()).ok());
  ASSERT_TRUE(db_.Ingest("s", {R(1, 100), Row{Value::Int64(9)},
                               R(2, 200)})
                  .ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  ASSERT_EQ(cap.batches[0].rows.size(), 2u);
  auto counters = db_.runtime()->overload_counters("s");
  EXPECT_EQ(counters.rows_admitted, 2);
  EXPECT_EQ(counters.rows_quarantined, 1);
}

TEST_F(RuntimeTest, IngestIntoDerivedStreamRejected) {
  MustExecute(&db_, "CREATE STREAM d AS SELECT count(*) FROM s "
                    "<VISIBLE '1 minute'>");
  Status s = db_.Ingest("d", {Row{Value::Int64(1)}});
  EXPECT_FALSE(s.ok());
}

TEST_F(RuntimeTest, UnknownStreamRejected) {
  EXPECT_FALSE(db_.Ingest("ghost", {R(1, 1)}).ok());
}

TEST_F(RuntimeTest, SystemCqtimeStamping) {
  MustExecute(&db_,
              "CREATE STREAM sys (ts timestamp CQTIME SYSTEM, v bigint)");
  // Without an ingest time: error.
  EXPECT_FALSE(
      db_.Ingest("sys", {Row{Value::Null(), Value::Int64(1)}}).ok());
  // With one: the engine stamps the CQTIME column.
  CqCapture cap;
  ASSERT_TRUE(db_.runtime()->SubscribeStream("sys", cap.Callback()).ok());
  ASSERT_TRUE(db_.Ingest("sys", {Row{Value::Null(), Value::Int64(1)}},
                         /*system_time=*/123 * kSec)
                  .ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][0].AsTimestampMicros(), 123 * kSec);
}

TEST_F(RuntimeTest, WatermarkTracksIngest) {
  EXPECT_EQ(db_.runtime()->watermark("s"), INT64_MIN);
  ASSERT_TRUE(db_.Ingest("s", {R(1, 42 * kSec)}).ok());
  EXPECT_EQ(db_.runtime()->watermark("s"), 42 * kSec);
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  EXPECT_EQ(db_.runtime()->watermark("s"), kMin);
}

TEST_F(RuntimeTest, HeartbeatClosesWindowsWithoutData) {
  auto cq = db_.CreateContinuousQuery(
      "c", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  ASSERT_TRUE(db_.Ingest("s", {R(1, kSec)}).ok());
  ASSERT_TRUE(db_.AdvanceTime("s", 3 * kMin).ok());
  ASSERT_EQ(cap.batches.size(), 3u);
  EXPECT_EQ(cap.batches[0].rows[0][0].AsInt64(), 1);
  EXPECT_EQ(cap.batches[1].rows[0][0].AsInt64(), 0);
}

TEST_F(RuntimeTest, DropCqStopsDelivery) {
  auto cq = db_.CreateContinuousQuery(
      "c", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  ASSERT_TRUE(db_.Ingest("s", {R(1, kSec)}).ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  ASSERT_TRUE(db_.DropContinuousQuery("c").ok());
  ASSERT_TRUE(db_.AdvanceTime("s", 2 * kMin).ok());
  EXPECT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(db_.runtime()->GetCq("c"), nullptr);
}

TEST_F(RuntimeTest, DuplicateCqNameRejected) {
  ASSERT_TRUE(db_.CreateContinuousQuery(
                    "c", "SELECT count(*) FROM s <VISIBLE '1 minute'>")
                  .ok());
  auto dup = db_.CreateContinuousQuery(
      "C", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(RuntimeTest, DerivedStreamCascade) {
  // s -> per-minute counts -> per-2-minute sums over the derived stream.
  MustExecute(&db_,
              "CREATE STREAM per_min AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>");
  auto cq = db_.CreateContinuousQuery(
      "rollup",
      "SELECT sum(c) FROM per_min <VISIBLE '2 minutes'>");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(db_.Ingest("s", {R(i, i * kMin + kSec)}).ok());
  }
  ASSERT_TRUE(db_.AdvanceTime("s", 4 * kMin).ok());
  ASSERT_GE(cap.batches.size(), 1u);
  // Each 2-minute window over the derived stream sums two 1-minute counts.
  EXPECT_EQ(cap.batches[0].rows[0][0].AsInt64(), 2);
}

TEST_F(RuntimeTest, SlicesWindowOverDerivedStream) {
  MustExecute(&db_,
              "CREATE STREAM per_min AS SELECT count(*) AS c, cq_close(*) "
              "AS w FROM s <VISIBLE '1 minute'>");
  auto cq = db_.CreateContinuousQuery(
      "pass", "SELECT c, w FROM per_min <SLICES 1 WINDOWS>");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  ASSERT_TRUE(db_.Ingest("s", {R(1, kSec), R(2, 2 * kSec)}).ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  ASSERT_EQ(cap.batches[0].rows.size(), 1u);
  EXPECT_EQ(cap.batches[0].rows[0][0].AsInt64(), 2);
}

TEST_F(RuntimeTest, ClientSubscriptionOnDerivedStream) {
  MustExecute(&db_,
              "CREATE STREAM per_min AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>");
  CqCapture cap;
  ASSERT_TRUE(db_.runtime()->SubscribeStream("per_min", cap.Callback()).ok());
  ASSERT_TRUE(db_.Ingest("s", {R(1, kSec)}).ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  ASSERT_EQ(cap.batches.size(), 1u);
  EXPECT_EQ(cap.batches[0].close, kMin);
}

TEST_F(RuntimeTest, MultipleIndependentStreams) {
  MustExecute(&db_,
              "CREATE STREAM s2 (v bigint, ts timestamp CQTIME USER)");
  auto c1 = db_.CreateContinuousQuery(
      "c1", "SELECT count(*) FROM s <VISIBLE '1 minute'>");
  auto c2 = db_.CreateContinuousQuery(
      "c2", "SELECT count(*) FROM s2 <VISIBLE '1 minute'>");
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  CqCapture cap1, cap2;
  (*c1)->AddCallback(cap1.Callback());
  (*c2)->AddCallback(cap2.Callback());
  ASSERT_TRUE(db_.Ingest("s", {R(1, kSec)}).ok());
  ASSERT_TRUE(db_.AdvanceTime("s", kMin).ok());
  EXPECT_EQ(cap1.batches.size(), 1u);
  EXPECT_TRUE(cap2.batches.empty());  // s2 untouched
}

TEST_F(RuntimeTest, CqNamesListing) {
  ASSERT_TRUE(db_.CreateContinuousQuery(
                    "alpha", "SELECT count(*) FROM s <VISIBLE '1 minute'>")
                  .ok());
  auto names = db_.runtime()->CqNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "alpha");
}

TEST_F(RuntimeTest, RowsIngestedCounter) {
  ASSERT_TRUE(db_.Ingest("s", {R(1, 1), R(2, 2), R(3, 3)}).ok());
  EXPECT_EQ(db_.runtime()->rows_ingested(), 3);
}

}  // namespace
}  // namespace streamrel::stream
