#include "storage/disk.h"

#include <gtest/gtest.h>

namespace streamrel::storage {
namespace {

TEST(SimulatedDiskTest, WriteReadRoundTrip) {
  SimulatedDisk disk;
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, "hello").ok());
  auto r = disk.ReadPage(p);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "hello");
}

TEST(SimulatedDiskTest, UnallocatedPageErrors) {
  SimulatedDisk disk;
  EXPECT_FALSE(disk.ReadPage(999).ok());
  EXPECT_FALSE(disk.WritePage(999, "x").ok());
  EXPECT_FALSE(disk.FreePage(999).ok());
}

TEST(SimulatedDiskTest, WriteChargesCost) {
  DiskModel model;
  model.seek_micros = 1000;
  model.write_mb_per_sec = 100;
  SimulatedDisk disk(model);
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, std::string(100 * 100, 'x')).ok());
  DiskStats stats = disk.stats();
  EXPECT_EQ(stats.page_writes, 1);
  EXPECT_EQ(stats.bytes_written, 10000);
  // seek (1000us) + 10000 bytes / 100 MBps (=100us).
  EXPECT_EQ(stats.simulated_io_micros, 1100);
}

TEST(SimulatedDiskTest, CacheHitIsFree) {
  SimulatedDisk disk;
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, "data").ok());
  int64_t after_write = disk.stats().simulated_io_micros;
  ASSERT_TRUE(disk.ReadPage(p).ok());  // in cache from the write
  EXPECT_EQ(disk.stats().simulated_io_micros, after_write);
  EXPECT_EQ(disk.stats().cache_hits, 1);
  EXPECT_EQ(disk.stats().page_reads, 0);
}

TEST(SimulatedDiskTest, ColdReadAfterDropCacheIsCharged) {
  SimulatedDisk disk;
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, "data").ok());
  disk.DropCache();
  int64_t before = disk.stats().simulated_io_micros;
  ASSERT_TRUE(disk.ReadPage(p).ok());
  EXPECT_GT(disk.stats().simulated_io_micros, before);
  EXPECT_EQ(disk.stats().page_reads, 1);
}

TEST(SimulatedDiskTest, LruEviction) {
  DiskModel model;
  model.cache_pages = 2;
  SimulatedDisk disk(model);
  PageId a = disk.AllocatePage(), b = disk.AllocatePage(),
         c = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(a, "a").ok());
  ASSERT_TRUE(disk.WritePage(b, "b").ok());
  ASSERT_TRUE(disk.WritePage(c, "c").ok());  // evicts a
  ASSERT_TRUE(disk.ReadPage(a).ok());        // miss
  EXPECT_EQ(disk.stats().page_reads, 1);
  ASSERT_TRUE(disk.ReadPage(c).ok());        // hit (still resident)
  EXPECT_EQ(disk.stats().cache_hits, 1);
}

TEST(SimulatedDiskTest, LruTouchKeepsHotPage) {
  DiskModel model;
  model.cache_pages = 2;
  SimulatedDisk disk(model);
  PageId a = disk.AllocatePage(), b = disk.AllocatePage(),
         c = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(a, "a").ok());
  ASSERT_TRUE(disk.WritePage(b, "b").ok());
  ASSERT_TRUE(disk.ReadPage(a).ok());        // a is now most recent
  ASSERT_TRUE(disk.WritePage(c, "c").ok());  // evicts b, not a
  disk.ResetStats();
  ASSERT_TRUE(disk.ReadPage(a).ok());
  EXPECT_EQ(disk.stats().cache_hits, 1);
  EXPECT_EQ(disk.stats().page_reads, 0);
}

TEST(SimulatedDiskTest, SequentialChargesSkipSeek) {
  DiskModel model;
  model.seek_micros = 5000;
  model.write_mb_per_sec = 100;
  SimulatedDisk disk(model);
  disk.ChargeSequentialWrite(10000);
  EXPECT_EQ(disk.stats().simulated_io_micros, 100);  // bandwidth only
  EXPECT_EQ(disk.stats().bytes_written, 10000);
}

TEST(SimulatedDiskTest, FreePageRemovesData) {
  SimulatedDisk disk;
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, "x").ok());
  ASSERT_TRUE(disk.FreePage(p).ok());
  EXPECT_FALSE(disk.ReadPage(p).ok());
}

TEST(SimulatedDiskTest, ResetStats) {
  SimulatedDisk disk;
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(p, "x").ok());
  disk.ResetStats();
  DiskStats stats = disk.stats();
  EXPECT_EQ(stats.page_writes, 0);
  EXPECT_EQ(stats.simulated_io_micros, 0);
}

}  // namespace
}  // namespace streamrel::storage
