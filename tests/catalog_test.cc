#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "storage/disk.h"

namespace streamrel::catalog {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : disk_(std::make_shared<storage::SimulatedDisk>()) {}

  TableInfo MakeTable(const std::string& name) {
    TableInfo info;
    info.name = name;
    info.schema = Schema({Column("a", DataType::kInt64)});
    info.heap = std::make_shared<storage::HeapTable>(info.schema, disk_);
    return info;
  }

  StreamInfo MakeStream(const std::string& name) {
    StreamInfo info;
    info.name = name;
    info.schema = Schema({Column("ts", DataType::kTimestamp)});
    info.cqtime_column = 0;
    return info;
  }

  std::shared_ptr<storage::SimulatedDisk> disk_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGetTable) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  EXPECT_NE(catalog_.GetTable("t"), nullptr);
  EXPECT_NE(catalog_.GetTable("T"), nullptr);  // case-insensitive
  EXPECT_EQ(catalog_.GetTable("u"), nullptr);
}

TEST_F(CatalogTest, SharedNamespaceAcrossKinds) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("x")).ok());
  EXPECT_FALSE(catalog_.CreateStream(MakeStream("x")).ok());
  ViewInfo view;
  view.name = "X";
  EXPECT_FALSE(catalog_.CreateView(std::move(view)).ok());
}

TEST_F(CatalogTest, DuplicateTableRejected) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  Status s = catalog_.CreateTable(MakeTable("T"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, StreamLifecycle) {
  ASSERT_TRUE(catalog_.CreateStream(MakeStream("s")).ok());
  ASSERT_NE(catalog_.GetStream("s"), nullptr);
  EXPECT_FALSE(catalog_.GetStream("s")->is_derived);
  ASSERT_TRUE(catalog_.DropStream("s").ok());
  EXPECT_EQ(catalog_.GetStream("s"), nullptr);
  EXPECT_EQ(catalog_.DropStream("s").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, ChannelsHaveOwnNamespace) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  ChannelInfo ch;
  ch.name = "t";  // same name as the table: allowed
  ch.from_stream = "s";
  ch.into_table = "t";
  EXPECT_TRUE(catalog_.CreateChannel(std::move(ch)).ok());
  EXPECT_NE(catalog_.GetChannel("t"), nullptr);
}

TEST_F(CatalogTest, IndexAttachAndFind) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  auto index = std::make_shared<storage::BTreeIndex>("a");
  ASSERT_TRUE(catalog_.CreateIndex("idx_a", "t", index).ok());
  TableInfo* t = catalog_.GetTable("t");
  EXPECT_EQ(t->FindIndexOn("a"), index.get());
  EXPECT_EQ(t->FindIndexOn("A"), index.get());
  EXPECT_EQ(t->FindIndexOn("b"), nullptr);
}

TEST_F(CatalogTest, IndexOnMissingTableFails) {
  auto index = std::make_shared<storage::BTreeIndex>("a");
  EXPECT_EQ(catalog_.CreateIndex("idx", "none", index).code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, DuplicateIndexNameFails) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  ASSERT_TRUE(catalog_
                  .CreateIndex("idx", "t",
                               std::make_shared<storage::BTreeIndex>("a"))
                  .ok());
  EXPECT_EQ(catalog_
                .CreateIndex("idx", "t",
                             std::make_shared<storage::BTreeIndex>("a"))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, DropIndexDetaches) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  ASSERT_TRUE(catalog_
                  .CreateIndex("idx", "t",
                               std::make_shared<storage::BTreeIndex>("a"))
                  .ok());
  ASSERT_TRUE(catalog_.DropIndex("idx").ok());
  EXPECT_EQ(catalog_.GetTable("t")->FindIndexOn("a"), nullptr);
}

TEST_F(CatalogTest, DropTableDropsItsIndexRegistrations) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  ASSERT_TRUE(catalog_
                  .CreateIndex("idx", "t",
                               std::make_shared<storage::BTreeIndex>("a"))
                  .ok());
  ASSERT_TRUE(catalog_.DropTable("t").ok());
  // The index name is free again.
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t")).ok());
  EXPECT_TRUE(catalog_
                  .CreateIndex("idx", "t",
                               std::make_shared<storage::BTreeIndex>("a"))
                  .ok());
}

TEST_F(CatalogTest, NameListings) {
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t1")).ok());
  ASSERT_TRUE(catalog_.CreateTable(MakeTable("t2")).ok());
  ASSERT_TRUE(catalog_.CreateStream(MakeStream("s1")).ok());
  EXPECT_EQ(catalog_.TableNames().size(), 2u);
  EXPECT_EQ(catalog_.StreamNames().size(), 1u);
}

}  // namespace
}  // namespace streamrel::catalog
