#!/usr/bin/env bash
# Smoke test for the interactive SQL shell: drives a full stream-relational
# session through stdin and greps the expected outputs.
set -u
SHELL_BIN="$1"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

cat > "$TMP_DIR/clicks.csv" <<'EOF'
url,atime
/a,2009-01-05 09:00:10
/b,2009-01-05 09:00:20
/a,2009-01-05 09:00:40
EOF

OUT="$TMP_DIR/out.txt"
# Run the shell and keep its exit status: a crash (segfault, abort) must
# fail the smoke test even if the output produced so far happens to match.
SHELL_STATUS=0
"$SHELL_BIN" > "$OUT" 2>&1 <<EOF || SHELL_STATUS=$?
CREATE STREAM s (url varchar, atime timestamp CQTIME USER);
SELECT url, count(*) AS hits FROM s <VISIBLE '1 minute'> GROUP BY url ORDER BY hits DESC;
\\copy s $TMP_DIR/clicks.csv
\\advance s 2009-01-05 09:01:00
CREATE TABLE t (a bigint);
INSERT INTO t VALUES (1), (2), (3);
SELECT sum(a) AS total FROM t;
\\export $TMP_DIR/export.csv SELECT a FROM t ORDER BY a;
EXPLAIN SELECT a FROM t WHERE a = 1;
\\cqs
\\q
EOF

fail() {
  echo "SMOKE FAILURE: $1"
  echo "--- shell output ---"
  cat "$OUT"
  exit 1
}

[ "$SHELL_STATUS" -eq 0 ] || fail "shell exited with status $SHELL_STATUS"
grep -q "started continuous query cq_1" "$OUT" || fail "CQ not registered"
grep -q "loaded 3 rows into s" "$OUT" || fail "\\copy failed"
grep -q "(/a, 2)" "$OUT" || fail "window results missing"
grep -q "| 6" "$OUT" || fail "snapshot aggregate missing"
grep -q "wrote 3 rows" "$OUT" || fail "\\export failed"
grep -q "SeqScan(t, filtered)" "$OUT" || fail "EXPLAIN missing"
grep -q "cq_1" "$OUT" || fail "\\cqs missing"
head -1 "$TMP_DIR/export.csv" | grep -q "^a$" || fail "export header wrong"
grep -q "^2$" "$TMP_DIR/export.csv" || fail "export rows wrong"
echo "shell smoke test passed"
