#include "stream/window.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace streamrel::stream {
namespace {

sql::WindowSpecAst TimeAst(int64_t visible, int64_t advance) {
  sql::WindowSpecAst ast;
  ast.unit = sql::WindowUnit::kTime;
  ast.visible = visible;
  ast.advance = advance;
  return ast;
}

TEST(WindowSpecTest, FromTimeAst) {
  auto spec = WindowSpec::FromAst(TimeAst(5 * kMicrosPerMinute,
                                          kMicrosPerMinute));
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, WindowSpec::Kind::kTime);
  EXPECT_TRUE(spec->is_sliding());
  EXPECT_EQ(spec->SliceWidthMicros(), kMicrosPerMinute);
}

TEST(WindowSpecTest, TumblingIsNotSliding) {
  auto spec = WindowSpec::FromAst(TimeAst(kMicrosPerMinute,
                                          kMicrosPerMinute));
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->is_sliding());
  EXPECT_EQ(spec->SliceWidthMicros(), kMicrosPerMinute);
}

TEST(WindowSpecTest, GcdSlicing) {
  // VISIBLE 90s ADVANCE 60s -> slices of 30s.
  auto spec = WindowSpec::FromAst(TimeAst(90 * kMicrosPerSecond,
                                          60 * kMicrosPerSecond));
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->SliceWidthMicros(), 30 * kMicrosPerSecond);
}

TEST(WindowSpecTest, RowsAst) {
  sql::WindowSpecAst ast;
  ast.unit = sql::WindowUnit::kRows;
  ast.visible = 100;
  ast.advance = 10;
  auto spec = WindowSpec::FromAst(ast);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, WindowSpec::Kind::kRows);
}

TEST(WindowSpecTest, SlicesAst) {
  sql::WindowSpecAst ast;
  ast.is_slices = true;
  ast.slices_count = 3;
  auto spec = WindowSpec::FromAst(ast);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->kind, WindowSpec::Kind::kSlices);
  EXPECT_EQ(spec->slices_count, 3);
}

TEST(WindowSpecTest, InvalidInputs) {
  EXPECT_FALSE(WindowSpec::FromAst(TimeAst(0, 1)).ok());
  EXPECT_FALSE(WindowSpec::FromAst(TimeAst(1, 0)).ok());
  sql::WindowSpecAst bad_slices;
  bad_slices.is_slices = true;
  bad_slices.slices_count = 0;
  EXPECT_FALSE(WindowSpec::FromAst(bad_slices).ok());
}

TEST(WindowSpecTest, FirstCloseAfter) {
  auto spec = WindowSpec::FromAst(TimeAst(5 * kMicrosPerMinute,
                                          kMicrosPerMinute));
  ASSERT_TRUE(spec.ok());
  // At exactly a boundary, the next close is the following boundary.
  EXPECT_EQ(spec->FirstCloseAfter(0), kMicrosPerMinute);
  EXPECT_EQ(spec->FirstCloseAfter(kMicrosPerMinute), 2 * kMicrosPerMinute);
  EXPECT_EQ(spec->FirstCloseAfter(kMicrosPerMinute + 1),
            2 * kMicrosPerMinute);
  EXPECT_EQ(spec->FirstCloseAfter(kMicrosPerMinute - 1), kMicrosPerMinute);
}

TEST(WindowSpecTest, ToStringRendersAll) {
  EXPECT_EQ(WindowSpec::FromAst(TimeAst(5 * kMicrosPerMinute,
                                        kMicrosPerMinute))
                ->ToString(),
            "<VISIBLE '5 minutes' ADVANCE '1 minute'>");
  sql::WindowSpecAst slices;
  slices.is_slices = true;
  slices.slices_count = 2;
  EXPECT_EQ(WindowSpec::FromAst(slices)->ToString(), "<SLICES 2 WINDOWS>");
}

}  // namespace
}  // namespace streamrel::stream
