// Property-based suites: randomized workloads checked against independent
// reference implementations, swept over parameter grids with
// INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "common/time.h"
#include "storage/btree_index.h"
#include "stream/window_operator.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

// ---------------------------------------------------------------------------
// Property: every emitted time window contains exactly the rows whose
// timestamp falls in [close - visible, close), for random row arrivals and
// a grid of (visible, advance) shapes.
// ---------------------------------------------------------------------------

struct WindowShape {
  int64_t visible_sec;
  int64_t advance_sec;
};

class WindowContentsProperty : public ::testing::TestWithParam<WindowShape> {
};

TEST_P(WindowContentsProperty, WindowsContainExactlyTheirRows) {
  const WindowShape shape = GetParam();
  stream::WindowSpec spec;
  spec.kind = stream::WindowSpec::Kind::kTime;
  spec.visible = shape.visible_sec * kSec;
  spec.advance = shape.advance_sec * kSec;
  stream::WindowOperator op(spec);

  std::mt19937 rng(shape.visible_sec * 131 + shape.advance_sec);
  std::vector<int64_t> arrivals;
  int64_t ts = 0;
  for (int i = 0; i < 400; ++i) {
    ts += static_cast<int64_t>(rng() % (3 * kSec));
    arrivals.push_back(ts);
  }

  std::vector<stream::WindowBatch> closed;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ASSERT_TRUE(
        op.AddRow(arrivals[i], Row{Value::Int64(static_cast<int64_t>(i))},
                  &closed)
            .ok());
  }
  ASSERT_TRUE(op.AdvanceTime(ts + spec.visible + spec.advance, &closed).ok());

  ASSERT_FALSE(closed.empty());
  for (const auto& batch : closed) {
    int64_t open = batch.close_micros - spec.visible;
    // Reference: count arrivals in [open, close).
    size_t expected = 0;
    for (int64_t a : arrivals) {
      if (a >= open && a < batch.close_micros) ++expected;
    }
    EXPECT_EQ(batch.rows.size(), expected)
        << "window closing at " << batch.close_micros;
  }
  // Closes are consecutive multiples of advance.
  for (size_t i = 1; i < closed.size(); ++i) {
    EXPECT_EQ(closed[i].close_micros - closed[i - 1].close_micros,
              spec.advance);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowContentsProperty,
    ::testing::Values(WindowShape{60, 60}, WindowShape{300, 60},
                      WindowShape{90, 60}, WindowShape{60, 17},
                      WindowShape{120, 40}, WindowShape{45, 45},
                      WindowShape{600, 120}),
    [](const ::testing::TestParamInfo<WindowShape>& info) {
      return "v" + std::to_string(info.param.visible_sec) + "_a" +
             std::to_string(info.param.advance_sec);
    });

// ---------------------------------------------------------------------------
// Property: the shared slice-aggregation path and the generic
// re-execution path produce byte-identical results for random workloads
// across window shapes and group cardinalities.
// ---------------------------------------------------------------------------

struct SharedVsGenericCase {
  int64_t visible_sec;
  int64_t advance_sec;
  int cardinality;
  const char* aggregates;
};

class SharedVsGenericProperty
    : public ::testing::TestWithParam<SharedVsGenericCase> {};

TEST_P(SharedVsGenericProperty, IdenticalOutput) {
  const auto& c = GetParam();
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (k varchar, v bigint, ts timestamp CQTIME "
              "USER)");
  std::string window = "<VISIBLE '" + std::to_string(c.visible_sec) +
                       " seconds' ADVANCE '" +
                       std::to_string(c.advance_sec) + " seconds'>";
  std::string sql = std::string("SELECT k, ") + c.aggregates + " FROM s " +
                    window + " WHERE v >= 0 GROUP BY k ORDER BY k";
  auto shared = db.CreateContinuousQuery("shared", sql, true);
  auto generic = db.CreateContinuousQuery("generic", sql, false);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  ASSERT_TRUE(generic.ok()) << generic.status().ToString();
  ASSERT_TRUE((*shared)->is_shared());
  ASSERT_FALSE((*generic)->is_shared());

  CqCapture cap_s, cap_g;
  (*shared)->AddCallback(cap_s.Callback());
  (*generic)->AddCallback(cap_g.Callback());

  std::mt19937 rng(c.cardinality * 977 + c.visible_sec);
  int64_t ts = 0;
  for (int i = 0; i < 500; ++i) {
    ts += static_cast<int64_t>(rng() % (2 * kSec));
    Row row{Value::String("k" + std::to_string(rng() % c.cardinality)),
            Value::Int64(static_cast<int64_t>(rng() % 1000)),
            Value::Timestamp(ts)};
    ASSERT_TRUE(db.Ingest("s", {row}).ok());
  }
  ASSERT_TRUE(db.AdvanceTime("s", ts + c.visible_sec * kSec).ok());

  ASSERT_EQ(cap_s.batches.size(), cap_g.batches.size());
  ASSERT_GT(cap_s.batches.size(), 0u);
  for (size_t i = 0; i < cap_s.batches.size(); ++i) {
    ASSERT_EQ(cap_s.batches[i].close, cap_g.batches[i].close);
    ASSERT_EQ(cap_s.batches[i].rows.size(), cap_g.batches[i].rows.size())
        << "window " << i;
    for (size_t j = 0; j < cap_s.batches[i].rows.size(); ++j) {
      EXPECT_EQ(RowToString(cap_s.batches[i].rows[j]),
                RowToString(cap_g.batches[i].rows[j]))
          << "window " << i << " row " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, SharedVsGenericProperty,
    ::testing::Values(
        SharedVsGenericCase{60, 60, 3, "count(*)"},
        SharedVsGenericCase{120, 60, 10, "count(*), sum(v)"},
        SharedVsGenericCase{90, 30, 5, "min(v), max(v)"},
        SharedVsGenericCase{60, 20, 2, "avg(v)"},
        SharedVsGenericCase{300, 60, 20, "count(*), sum(v), avg(v)"},
        SharedVsGenericCase{60, 60, 1, "count(distinct v)"}),
    [](const ::testing::TestParamInfo<SharedVsGenericCase>& info) {
      return "v" + std::to_string(info.param.visible_sec) + "_a" +
             std::to_string(info.param.advance_sec) + "_c" +
             std::to_string(info.param.cardinality) + "_" +
             std::to_string(info.index);
    });

// ---------------------------------------------------------------------------
// Property: SQL grouped aggregation matches a reference computed directly,
// for random tables.
// ---------------------------------------------------------------------------

class SqlAggregateProperty : public ::testing::TestWithParam<int> {};

TEST_P(SqlAggregateProperty, MatchesReference) {
  const int seed = GetParam();
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (k bigint, v bigint)");
  std::mt19937 rng(seed);
  std::map<int64_t, std::pair<int64_t, int64_t>> reference;  // k -> (n, sum)
  std::string insert = "INSERT INTO t VALUES ";
  int n = 100 + static_cast<int>(rng() % 200);
  for (int i = 0; i < n; ++i) {
    int64_t k = static_cast<int64_t>(rng() % 10);
    int64_t v = static_cast<int64_t>(rng() % 1000) - 500;
    auto& slot = reference[k];
    slot.first += 1;
    slot.second += v;
    if (i > 0) insert += ", ";
    insert += "(" + std::to_string(k) + ", " + std::to_string(v) + ")";
  }
  MustExecute(&db, insert);
  auto result = MustExecute(
      &db, "SELECT k, count(*), sum(v) FROM t GROUP BY k ORDER BY k");
  ASSERT_EQ(result.rows.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, agg] : reference) {
    EXPECT_EQ(result.rows[i][0].AsInt64(), k);
    EXPECT_EQ(result.rows[i][1].AsInt64(), agg.first);
    EXPECT_EQ(result.rows[i][2].AsInt64(), agg.second);
    ++i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlAggregateProperty,
                         ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Property: the B+Tree agrees with std::multimap under random
// insert/remove/range workloads.
// ---------------------------------------------------------------------------

class BTreeOracleProperty : public ::testing::TestWithParam<int> {};

TEST_P(BTreeOracleProperty, MatchesMultimap) {
  const int seed = GetParam();
  std::mt19937 rng(seed);
  storage::BTreeIndex index("k", /*fanout=*/8);
  std::multimap<int64_t, storage::RowId> oracle;

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng() % 10);
    int64_t key = static_cast<int64_t>(rng() % 200);
    if (op < 6) {
      storage::RowId rid = static_cast<storage::RowId>(step);
      index.Insert(Value::Int64(key), rid);
      oracle.emplace(key, rid);
    } else if (op < 8) {
      // Remove one entry with this key, if any.
      auto it = oracle.find(key);
      if (it != oracle.end()) {
        ASSERT_TRUE(index.Remove(Value::Int64(key), it->second).ok());
        oracle.erase(it);
      } else {
        EXPECT_FALSE(index.Remove(Value::Int64(key), 0).ok());
      }
    } else {
      // Range check [key, key+17].
      std::vector<storage::RowId> got;
      index.ScanRange(Value::Int64(key), true, Value::Int64(key + 17), true,
                      [&](const Value&, storage::RowId id) {
                        got.push_back(id);
                        return true;
                      });
      std::vector<storage::RowId> want;
      for (auto it = oracle.lower_bound(key);
           it != oracle.end() && it->first <= key + 17; ++it) {
        want.push_back(it->second);
      }
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "at step " << step;
    }
  }
  EXPECT_EQ(index.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeOracleProperty, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Property: an APPEND active table equals the concatenation of the batches
// its CQ emitted, for random traffic.
// ---------------------------------------------------------------------------

class ActiveTableProperty : public ::testing::TestWithParam<int> {};

TEST_P(ActiveTableProperty, TableEqualsEmittedBatches) {
  const int seed = GetParam();
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (k varchar, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT k, count(*) AS c, cq_close(*) AS "
              "w FROM s <VISIBLE '1 minute'> GROUP BY k;"
              "CREATE TABLE archive (k varchar, c bigint, w timestamp);"
              "CREATE CHANNEL ch FROM agg INTO archive");
  CqCapture cap;
  ASSERT_TRUE(db.runtime()->SubscribeStream("agg", cap.Callback()).ok());

  std::mt19937 rng(seed);
  int64_t ts = 0;
  for (int i = 0; i < 300; ++i) {
    ts += static_cast<int64_t>(rng() % (5 * kSec));
    ASSERT_TRUE(
        db.Ingest("s", {Row{Value::String("k" + std::to_string(rng() % 4)),
                            Value::Timestamp(ts)}})
            .ok());
  }
  ASSERT_TRUE(db.AdvanceTime("s", ts + kMin).ok());

  std::vector<std::string> emitted;
  for (const auto& batch : cap.batches) {
    for (const Row& row : batch.rows) emitted.push_back(RowToString(row));
  }
  std::sort(emitted.begin(), emitted.end());
  auto table = RowStrings(MustExecute(&db, "SELECT k, c, w FROM archive"));
  std::sort(table.begin(), table.end());
  EXPECT_EQ(table, emitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActiveTableProperty, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Property: WAL-recovered tables are byte-identical to the originals.
// ---------------------------------------------------------------------------

class WalRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(WalRecoveryProperty, RecoveredTableIdentical) {
  const int seed = GetParam();
  std::mt19937 rng(seed);
  engine::Database db;
  MustExecute(&db, "CREATE TABLE t (a bigint, b varchar, c double)");
  for (int batch = 0; batch < 10; ++batch) {
    std::string insert = "INSERT INTO t VALUES ";
    for (int i = 0; i < 20; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(rng() % 1000) + ", 'row" +
                std::to_string(rng() % 100) + "', " +
                std::to_string(static_cast<double>(rng() % 997) / 7.0) + ")";
    }
    MustExecute(&db, insert);
  }
  auto expected =
      RowStrings(MustExecute(&db, "SELECT a, b, c FROM t ORDER BY a, b, c"));

  engine::Database fresh(db.disk(), db.wal());
  MustExecute(&fresh, "CREATE TABLE t (a bigint, b varchar, c double)");
  ASSERT_TRUE(fresh.RecoverFromWal().ok());
  auto actual = RowStrings(
      MustExecute(&fresh, "SELECT a, b, c FROM t ORDER BY a, b, c"));
  EXPECT_EQ(actual, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalRecoveryProperty, ::testing::Range(1, 5));

// ---------------------------------------------------------------------------
// Property: crash-and-resume at ANY minute boundary yields an archive
// byte-identical to the uninterrupted run (active-table recovery strategy).
// ---------------------------------------------------------------------------

class CrashPointProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrashPointProperty, ResumeMatchesGoldenRun) {
  const int crash_minute = GetParam();
  const int total_minutes = 8;
  const char* ddl =
      "CREATE STREAM s (url varchar, ts timestamp CQTIME USER);"
      "CREATE STREAM per_min AS SELECT url, count(*) AS c, cq_close(*) AS w "
      "FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'> GROUP BY url;"
      "CREATE TABLE archive (url varchar, c bigint, w timestamp);"
      "CREATE CHANNEL ch FROM per_min INTO archive APPEND";
  auto minute_rows = [](int m) {
    std::vector<Row> rows;
    for (int i = 0; i <= m % 3; ++i) {
      rows.push_back(Row{Value::String(i % 2 == 0 ? "/a" : "/b"),
                         Value::Timestamp(m * kMin + (i + 1) * 10 * kSec)});
    }
    return rows;
  };

  // Golden, uninterrupted run.
  engine::Database golden;
  MustExecute(&golden, ddl);
  for (int m = 0; m < total_minutes; ++m) {
    ASSERT_TRUE(golden.Ingest("s", minute_rows(m)).ok());
    ASSERT_TRUE(golden.AdvanceTime("s", (m + 1) * kMin).ok());
  }
  auto expected = RowStrings(
      MustExecute(&golden, "SELECT url, c, w FROM archive ORDER BY w, url"));

  // Crash after `crash_minute` minutes, restart, resume the remainder.
  engine::Database crashy;
  MustExecute(&crashy, ddl);
  for (int m = 0; m < crash_minute; ++m) {
    ASSERT_TRUE(crashy.Ingest("s", minute_rows(m)).ok());
    ASSERT_TRUE(crashy.AdvanceTime("s", (m + 1) * kMin).ok());
  }
  engine::Database fresh(crashy.disk(), crashy.wal());
  MustExecute(&fresh, ddl);
  auto replay = fresh.RecoverFromWal();
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(stream::ResumeFromActiveTables(fresh.runtime(), *replay).ok());
  // The source replays from the persisted watermark: sliding windows need
  // the rows of the still-open window region too, which the source must
  // re-send (at-least-once delivery from the watermark); window evaluation
  // dedups via the emit watermark and channel idempotence.
  int resume_minute = std::max(0, crash_minute - 1);
  for (int m = resume_minute; m < total_minutes; ++m) {
    ASSERT_TRUE(fresh.Ingest("s", minute_rows(m)).ok());
    ASSERT_TRUE(fresh.AdvanceTime("s", (m + 1) * kMin).ok());
  }
  auto actual = RowStrings(
      MustExecute(&fresh, "SELECT url, c, w FROM archive ORDER BY w, url"));
  EXPECT_EQ(actual, expected) << "crash at minute " << crash_minute;
}

INSTANTIATE_TEST_SUITE_P(Minutes, CrashPointProperty,
                         ::testing::Range(1, 8));

}  // namespace
}  // namespace streamrel
