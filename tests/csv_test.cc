#include "common/csv.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace streamrel::csv {
namespace {

Schema TestSchema() {
  return Schema({Column("name", DataType::kString),
                 Column("n", DataType::kInt64),
                 Column("x", DataType::kDouble)});
}

TEST(CsvSplitTest, BasicRecords) {
  auto r = SplitRecords("a,b,c\nd,e,f\n", ',');
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*r)[1], (std::vector<std::string>{"d", "e", "f"}));
}

TEST(CsvSplitTest, QuotedFields) {
  auto r = SplitRecords("\"a,b\",\"say \"\"hi\"\"\",plain\n", ',');
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0][0], "a,b");
  EXPECT_EQ((*r)[0][1], "say \"hi\"");
  EXPECT_EQ((*r)[0][2], "plain");
}

TEST(CsvSplitTest, EmbeddedNewlineInQuotes) {
  auto r = SplitRecords("\"line1\nline2\",x\n", ',');
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0][0], "line1\nline2");
}

TEST(CsvSplitTest, CrLfAndNoTrailingNewline) {
  auto r = SplitRecords("a,b\r\nc,d", ',');
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ((*r)[1][1], "d");
}

TEST(CsvSplitTest, EmptyFields) {
  auto r = SplitRecords(",,\n", ',');
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)[0].size(), 3u);
  EXPECT_EQ((*r)[0][0], "");
}

TEST(CsvSplitTest, UnterminatedQuoteErrors) {
  EXPECT_FALSE(SplitRecords("\"oops", ',').ok());
}

TEST(CsvParseTest, TypedParsing) {
  auto rows = ParseText("ann,42,2.5\nbob,-1,0.0\n", TestSchema());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].AsString(), "ann");
  EXPECT_EQ((*rows)[0][1].AsInt64(), 42);
  EXPECT_DOUBLE_EQ((*rows)[0][2].AsDouble(), 2.5);
}

TEST(CsvParseTest, HeaderSkipping) {
  Options options;
  options.has_header = true;
  auto rows = ParseText("name,n,x\nann,1,1.0\n", TestSchema(), options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(CsvParseTest, NullToken) {
  Options options;
  options.null_token = "NULL";
  auto rows = ParseText("ann,NULL,1.0\n", TestSchema(), options);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE((*rows)[0][1].is_null());
}

TEST(CsvParseTest, TimestampColumns) {
  Schema schema({Column("ts", DataType::kTimestamp)});
  auto rows = ParseText("2009-01-05 09:00:00\n", schema);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].type(), DataType::kTimestamp);
}

TEST(CsvParseTest, BadFieldReportsRecordAndColumn) {
  auto rows = ParseText("ann,not_a_number,1.0\n", TestSchema());
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("record 1"), std::string::npos);
  EXPECT_NE(rows.status().message().find("column 2"), std::string::npos);
}

TEST(CsvParseTest, ArityMismatchErrors) {
  EXPECT_FALSE(ParseText("just_one_field\n", TestSchema()).ok());
}

TEST(CsvParseTest, CustomDelimiter) {
  Options options;
  options.delimiter = '\t';
  auto rows = ParseText("ann\t1\t1.5\n", TestSchema(), options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][1].AsInt64(), 1);
}

TEST(CsvWriteTest, RoundTrip) {
  std::vector<Row> rows = {
      {Value::String("has,comma"), Value::Int64(1), Value::Double(0.5)},
      {Value::String("has \"quote\""), Value::Null(), Value::Double(-1)},
  };
  Options options;
  options.null_token = "\\N";
  std::string text = WriteText(TestSchema(), rows, options);
  auto parsed = ParseText(text, TestSchema(), [&] {
    Options o = options;
    o.has_header = true;
    return o;
  }());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0][0].AsString(), "has,comma");
  EXPECT_EQ((*parsed)[1][0].AsString(), "has \"quote\"");
  EXPECT_TRUE((*parsed)[1][1].is_null());
}

TEST(CsvFileTest, ReadFileAndIngest) {
  // Write a CSV, load it into a stream via the engine.
  std::string path = ::testing::TempDir() + "/clicks.csv";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("url,atime\n/a,1970-01-01 00:00:10\n/b,1970-01-01 00:00:20\n", f);
  fclose(f);

  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (url varchar, atime timestamp CQTIME "
                   "USER)");
  Options options;
  options.has_header = true;
  auto rows = ReadFile(path, db.catalog()->GetStream("s")->schema, options);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_TRUE(db.Ingest("s", *rows).ok());
  EXPECT_EQ(db.runtime()->rows_ingested(), 2);
}

TEST(CsvFileTest, MissingFileErrors) {
  auto rows = ReadFile("/no/such/file.csv", TestSchema());
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace streamrel::csv
