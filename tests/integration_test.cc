// End-to-end scenarios reproducing the paper's narrative: the Section 4
// network-security reporting story, a multi-metric dashboard sharing one
// pass over the data, and the full Examples 1-5 pipeline.

#include <gtest/gtest.h>

#include "common/time.h"
#include "test_util.h"

namespace streamrel {
namespace {

constexpr int64_t kSec = kMicrosPerSecond;
constexpr int64_t kMin = kMicrosPerMinute;

TEST(IntegrationTest, NetworkSecurityReportingScenario) {
  // Section 4: a periodic batch report replaced by a CQ + active table.
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM conns (src_ip varchar, dst_port bigint, "
              "bytes bigint, ts timestamp CQTIME USER)");
  MustExecute(&db,
              "CREATE STREAM port_traffic AS "
              "SELECT dst_port, count(*) AS conns, sum(bytes) AS total, "
              "cq_close(*) AS w "
              "FROM conns <VISIBLE '1 minute'> GROUP BY dst_port");
  MustExecute(&db,
              "CREATE TABLE port_report (dst_port bigint, conns bigint, "
              "total bigint, w timestamp)");
  MustExecute(&db,
              "CREATE CHANNEL report_ch FROM port_traffic INTO port_report");

  // Two minutes of connections: port 22 probed heavily in minute 2.
  std::vector<Row> batch;
  for (int i = 0; i < 30; ++i) {
    batch.push_back(Row{Value::String("10.0.0." + std::to_string(i % 5)),
                        Value::Int64(i % 2 == 0 ? 80 : 443),
                        Value::Int64(1000 + i),
                        Value::Timestamp(i * kSec)});
  }
  for (int i = 0; i < 40; ++i) {
    batch.push_back(Row{Value::String("66.66.0.1"), Value::Int64(22),
                        Value::Int64(64),
                        Value::Timestamp(kMin + i * kSec)});
  }
  ASSERT_TRUE(db.Ingest("conns", batch).ok());
  ASSERT_TRUE(db.AdvanceTime("conns", 2 * kMin).ok());

  // The "report" is a plain SQL query over the active table.
  auto report = MustExecute(
      &db,
      "SELECT dst_port, conns FROM port_report "
      "WHERE w = timestamp '1970-01-01 00:02:00' ORDER BY conns DESC");
  ASSERT_FALSE(report.rows.empty());
  EXPECT_EQ(report.rows[0][0].AsInt64(), 22);
  EXPECT_EQ(report.rows[0][1].AsInt64(), 40);
}

TEST(IntegrationTest, JellybeanDashboardManyMetricsOnePass) {
  // Section 2.2: many metrics computed simultaneously as data arrives.
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM hits (url varchar, status bigint, latency_ms "
              "bigint, ts timestamp CQTIME USER)");

  CqCapture volume, errors, latency, per_url;
  auto mk = [&](const char* name, const std::string& sql, CqCapture* cap) {
    auto cq = db.CreateContinuousQuery(name, sql);
    ASSERT_TRUE(cq.ok()) << cq.status().ToString();
    (*cq)->AddCallback(cap->Callback());
  };
  mk("volume", "SELECT count(*) FROM hits <VISIBLE '1 minute'>", &volume);
  mk("errors",
     "SELECT count(*) FROM hits <VISIBLE '1 minute'> WHERE status >= 500",
     &errors);
  mk("latency",
     "SELECT avg(latency_ms), max(latency_ms) FROM hits "
     "<VISIBLE '1 minute'>",
     &latency);
  mk("per_url",
     "SELECT url, count(*) FROM hits <VISIBLE '1 minute'> GROUP BY url",
     &per_url);

  std::vector<Row> batch;
  for (int i = 0; i < 120; ++i) {
    batch.push_back(Row{Value::String(i % 3 == 0 ? "/a" : "/b"),
                        Value::Int64(i % 10 == 0 ? 500 : 200),
                        Value::Int64(10 + i % 50),
                        Value::Timestamp(i * 500 * kMicrosPerMilli)});
  }
  ASSERT_TRUE(db.Ingest("hits", batch).ok());
  ASSERT_TRUE(db.AdvanceTime("hits", kMin).ok());

  ASSERT_EQ(volume.batches.size(), 1u);
  EXPECT_EQ(volume.batches[0].rows[0][0].AsInt64(), 120);
  EXPECT_EQ(errors.batches[0].rows[0][0].AsInt64(), 12);
  EXPECT_EQ(latency.batches[0].rows[0][1].AsInt64(), 59);
  EXPECT_EQ(per_url.batches[0].rows.size(), 2u);
}

TEST(IntegrationTest, PaperExamples1Through5) {
  engine::Database db;
  // Example 1.
  MustExecute(&db,
              "CREATE STREAM url_stream (url varchar(1024), "
              "atime timestamp CQTIME USER, client_ip varchar(50))");
  // Example 2 (as a registered CQ).
  auto top10 = db.CreateContinuousQuery(
      "top10",
      "SELECT url, count(*) url_count "
      "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
      "GROUP by url ORDER by url_count desc LIMIT 10");
  ASSERT_TRUE(top10.ok()) << top10.status().ToString();
  // Example 3.
  MustExecute(&db,
              "CREATE STREAM urls_now as "
              "SELECT url, count(*) as scnt, cq_close(*) "
              "FROM url_stream <VISIBLE '5 minutes' ADVANCE '1 minute'> "
              "GROUP by url");
  // Example 4.
  MustExecute(&db,
              "CREATE TABLE urls_archive (url varchar(1024), scnt integer, "
              "stime timestamp);"
              "CREATE CHANNEL urls_channel FROM urls_now INTO urls_archive "
              "APPEND");
  // Example 5 (historical comparison; 1 minute back instead of 1 week to
  // keep the test small — same shape).
  auto compare = db.CreateContinuousQuery(
      "compare",
      "select c.scnt, h.scnt, c.stime from "
      "(select sum(scnt) as scnt, cq_close(*) as stime "
      " from urls_now <slices 1 windows>) c, urls_archive h "
      "where c.stime - interval '1 minute' = h.stime and h.url = '/x'");
  ASSERT_TRUE(compare.ok()) << compare.status().ToString();
  CqCapture cap;
  (*compare)->AddCallback(cap.Callback());

  for (int m = 0; m < 3; ++m) {
    std::vector<Row> batch;
    for (int i = 0; i <= m; ++i) {
      batch.push_back(Row{Value::String("/x"),
                          Value::Timestamp(m * kMin + i * kSec + kSec),
                          Value::String("1.2.3.4")});
    }
    ASSERT_TRUE(db.Ingest("url_stream", batch).ok());
  }
  ASSERT_TRUE(db.AdvanceTime("url_stream", 3 * kMin).ok());

  // The archive accumulated per-window counts; the comparison CQ produced
  // current-vs-previous rows from minute 2 on.
  auto archived = MustExecute(&db, "SELECT count(*) FROM urls_archive");
  EXPECT_GE(archived.rows[0][0].AsInt64(), 3);
  ASSERT_GE(cap.batches.size(), 3u);
  bool found_comparison = false;
  for (const auto& batch : cap.batches) {
    if (!batch.rows.empty()) found_comparison = true;
  }
  EXPECT_TRUE(found_comparison);
}

TEST(IntegrationTest, ReplaceChannelServesLatestDashboard) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM latest AS SELECT count(*) AS c, sum(v) AS sv "
              "FROM s <VISIBLE '1 minute'>;"
              "CREATE TABLE dashboard (c bigint, sv bigint);"
              "CREATE CHANNEL dash_ch FROM latest INTO dashboard REPLACE");
  for (int m = 0; m < 3; ++m) {
    std::vector<Row> batch;
    for (int i = 0; i <= m; ++i) {
      batch.push_back(
          Row{Value::Int64(10), Value::Timestamp(m * kMin + i * kSec + 1)});
    }
    ASSERT_TRUE(db.Ingest("s", batch).ok());
    ASSERT_TRUE(db.AdvanceTime("s", (m + 1) * kMin).ok());
    auto now = MustExecute(&db, "SELECT c, sv FROM dashboard");
    ASSERT_EQ(now.rows.size(), 1u);
    EXPECT_EQ(now.rows[0][0].AsInt64(), m + 1);
    EXPECT_EQ(now.rows[0][1].AsInt64(), 10 * (m + 1));
  }
}

TEST(IntegrationTest, AdHocQueryOverComputedMetricsNotRawData) {
  // Section 1.4: ad hoc analysis runs on previously computed metrics.
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (url varchar, ts timestamp CQTIME USER);"
              "CREATE STREAM per_min AS SELECT url, count(*) AS c, "
              "cq_close(*) AS w FROM s <VISIBLE '1 minute'> GROUP BY url;"
              "CREATE TABLE metrics (url varchar, c bigint, w timestamp);"
              "CREATE CHANNEL ch FROM per_min INTO metrics");
  for (int m = 0; m < 5; ++m) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::String(m % 2 == 0 ? "/a" : "/b"),
                                    Value::Timestamp(m * kMin + kSec)}})
                    .ok());
  }
  ASSERT_TRUE(db.AdvanceTime("s", 5 * kMin).ok());

  // Ad hoc: which minutes had /a traffic above its average?
  auto adhoc = MustExecute(
      &db,
      "SELECT m.w FROM metrics m, "
      "(SELECT avg(c) AS mean FROM metrics WHERE url = '/a') stats "
      "WHERE m.url = '/a' AND m.c > stats.mean - 1 ORDER BY m.w");
  EXPECT_EQ(adhoc.rows.size(), 3u);
}

TEST(IntegrationTest, ThreeLevelDerivedStreamCascade) {
  // raw events -> per-minute counts -> per-5-minute rollups -> hourly-ish
  // (per-10-minute) trend, each level an always-on derived stream.
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM events (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM per_min AS SELECT count(*) AS c FROM events "
              "<VISIBLE '1 minute'>;"
              "CREATE STREAM per_5min AS SELECT sum(c) AS c FROM per_min "
              "<VISIBLE '5 minutes'>;"
              "CREATE STREAM per_10min AS SELECT sum(c) AS c FROM per_5min "
              "<VISIBLE '10 minutes'>");
  CqCapture top;
  ASSERT_TRUE(db.runtime()->SubscribeStream("per_10min", top.Callback()).ok());

  // 2 rows per minute for 20 minutes.
  for (int m = 0; m < 20; ++m) {
    ASSERT_TRUE(db.Ingest("events",
                          {Row{Value::Int64(m),
                               Value::Timestamp(m * kMin + 10 * kSec)},
                           Row{Value::Int64(m),
                               Value::Timestamp(m * kMin + 40 * kSec)}})
                    .ok());
  }
  ASSERT_TRUE(db.AdvanceTime("events", 20 * kMin).ok());

  ASSERT_EQ(top.batches.size(), 2u);
  EXPECT_EQ(top.batches[0].rows[0][0].AsInt64(), 20);  // minutes 0-9
  EXPECT_EQ(top.batches[1].rows[0][0].AsInt64(), 20);  // minutes 10-19
}

TEST(IntegrationTest, SystemTablesTrackThePipeline) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (v bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT count(*) AS c FROM s "
              "<VISIBLE '1 minute'>;"
              "CREATE TABLE sink (c bigint);"
              "CREATE CHANNEL ch FROM agg INTO sink");
  for (int m = 0; m < 3; ++m) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(m),
                                    Value::Timestamp(m * kMin + kSec)}})
                    .ok());
  }
  ASSERT_TRUE(db.AdvanceTime("s", 3 * kMin).ok());

  // Introspect the whole pipeline through SQL.
  auto cq_stats = MustExecute(
      &db, "SELECT windows_evaluated, rows_emitted FROM sys_cqs");
  ASSERT_EQ(cq_stats.rows.size(), 1u);  // the derived stream's CQ
  EXPECT_EQ(cq_stats.rows[0][0].AsInt64(), 3);
  auto channel_stats = MustExecute(
      &db, "SELECT rows_persisted FROM sys_channels WHERE name = 'ch'");
  EXPECT_EQ(channel_stats.rows[0][0].AsInt64(), 3);
  auto stream_kinds = MustExecute(
      &db, "SELECT count(*) FROM sys_streams WHERE kind = 'derived'");
  EXPECT_EQ(stream_kinds.rows[0][0].AsInt64(), 1);
}

TEST(IntegrationTest, ReplaceDashboardWithVacuumMaintenance) {
  engine::Database db;
  MustExecute(&db,
              "CREATE STREAM s (k bigint, ts timestamp CQTIME USER);"
              "CREATE STREAM agg AS SELECT k, count(*) AS c FROM s "
              "<VISIBLE '1 minute'> GROUP BY k;"
              "CREATE TABLE board (k bigint, c bigint);"
              "CREATE CHANNEL ch FROM agg INTO board REPLACE");
  for (int m = 0; m < 20; ++m) {
    ASSERT_TRUE(db.Ingest("s", {Row{Value::Int64(m % 3),
                                    Value::Timestamp(m * kMin + kSec)}})
                    .ok());
    ASSERT_TRUE(db.AdvanceTime("s", (m + 1) * kMin).ok());
    if (m % 7 == 6) {
      MustExecute(&db, "VACUUM board");  // periodic maintenance mid-flight
    }
  }
  // The dashboard still shows exactly the last window.
  auto board = MustExecute(&db, "SELECT k, c FROM board");
  ASSERT_EQ(board.rows.size(), 1u);
  EXPECT_EQ(board.rows[0][0].AsInt64(), 19 % 3);
  EXPECT_EQ(board.rows[0][1].AsInt64(), 1);
}

TEST(IntegrationTest, LongRunStaysBounded) {
  // An hour of data at 1 row/sec through a sliding window: the engine's
  // buffered state must stay bounded by eviction (not grow with history).
  engine::Database db;
  MustExecute(&db, "CREATE STREAM s (v bigint, ts timestamp CQTIME USER)");
  auto cq = db.CreateContinuousQuery(
      "c",
      "SELECT count(*) FROM s <VISIBLE '2 minutes' ADVANCE '1 minute'>");
  ASSERT_TRUE(cq.ok());
  CqCapture cap;
  (*cq)->AddCallback(cap.Callback());
  for (int i = 0; i < 3600; ++i) {
    ASSERT_TRUE(
        db.Ingest("s", {Row{Value::Int64(i), Value::Timestamp(i * kSec)}})
            .ok());
  }
  ASSERT_TRUE(db.AdvanceTime("s", 3600 * kSec).ok());
  ASSERT_EQ(cap.batches.size(), 60u);
  // Every full 2-minute window holds 120 rows.
  EXPECT_EQ(cap.batches[30].rows[0][0].AsInt64(), 120);
}

}  // namespace
}  // namespace streamrel
