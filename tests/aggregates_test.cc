#include "exec/aggregates.h"

#include <gtest/gtest.h>

#include <cmath>

namespace streamrel::exec {
namespace {

AggStatePtr Make(const std::string& name, bool star = false,
                 bool distinct = false) {
  auto r = MakeAggState(name, star, distinct);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.TakeValue();
}

TEST(AggregatesTest, CountStar) {
  auto s = Make("count", /*star=*/true);
  s->Update(Value::Null());  // star counts nulls too
  s->Update(Value::Int64(1));
  EXPECT_EQ(s->Final().AsInt64(), 2);
}

TEST(AggregatesTest, CountSkipsNulls) {
  auto s = Make("count");
  s->Update(Value::Null());
  s->Update(Value::Int64(1));
  s->Update(Value::Int64(2));
  EXPECT_EQ(s->Final().AsInt64(), 2);
}

TEST(AggregatesTest, CountDistinct) {
  auto s = Make("count", false, /*distinct=*/true);
  s->Update(Value::String("a"));
  s->Update(Value::String("b"));
  s->Update(Value::String("a"));
  s->Update(Value::Null());
  EXPECT_EQ(s->Final().AsInt64(), 2);
}

TEST(AggregatesTest, DistinctOnlyForCount) {
  EXPECT_FALSE(MakeAggState("sum", false, true).ok());
}

TEST(AggregatesTest, SumIntAndDouble) {
  auto s = Make("sum");
  s->Update(Value::Int64(2));
  s->Update(Value::Int64(3));
  EXPECT_EQ(s->Final().AsInt64(), 5);
  EXPECT_EQ(s->Final().type(), DataType::kInt64);

  auto d = Make("sum");
  d->Update(Value::Double(1.5));
  d->Update(Value::Int64(2));
  EXPECT_DOUBLE_EQ(d->Final().AsDouble(), 3.5);
}

TEST(AggregatesTest, SumOfNothingIsNull) {
  auto s = Make("sum");
  EXPECT_TRUE(s->Final().is_null());
  s->Update(Value::Null());
  EXPECT_TRUE(s->Final().is_null());
}

TEST(AggregatesTest, Avg) {
  auto s = Make("avg");
  s->Update(Value::Int64(1));
  s->Update(Value::Int64(2));
  s->Update(Value::Null());
  EXPECT_DOUBLE_EQ(s->Final().AsDouble(), 1.5);
}

TEST(AggregatesTest, MinMax) {
  auto lo = Make("min");
  auto hi = Make("max");
  for (int v : {5, 2, 9, 2}) {
    lo->Update(Value::Int64(v));
    hi->Update(Value::Int64(v));
  }
  EXPECT_EQ(lo->Final().AsInt64(), 2);
  EXPECT_EQ(hi->Final().AsInt64(), 9);
}

TEST(AggregatesTest, MinMaxStrings) {
  auto lo = Make("min");
  lo->Update(Value::String("pear"));
  lo->Update(Value::String("apple"));
  EXPECT_EQ(lo->Final().AsString(), "apple");
}

TEST(AggregatesTest, Stddev) {
  auto s = Make("stddev");
  for (int v : {2, 4, 4, 4, 5, 5, 7, 9}) s->Update(Value::Int64(v));
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(s->Final().AsDouble(), 2.138, 0.001);
}

TEST(AggregatesTest, StddevNeedsTwo) {
  auto s = Make("stddev");
  EXPECT_TRUE(s->Final().is_null());
  s->Update(Value::Int64(1));
  EXPECT_TRUE(s->Final().is_null());
  s->Update(Value::Int64(3));
  EXPECT_FALSE(s->Final().is_null());
}

// --- Merge: the property shared slices rely on. ----------------------------

struct MergeCase {
  const char* name;
  bool star;
  bool distinct;
};

class MergeEqualsSequentialTest : public ::testing::TestWithParam<MergeCase> {
};

TEST_P(MergeEqualsSequentialTest, SplitMergeMatchesSequential) {
  const MergeCase& c = GetParam();
  std::vector<Value> data;
  for (int i = 0; i < 100; ++i) {
    if (i % 11 == 0) {
      data.push_back(Value::Null());
    } else {
      data.push_back(Value::Int64((i * 37) % 13));
    }
  }
  // Sequential reference.
  auto all = Make(c.name, c.star, c.distinct);
  for (const Value& v : data) all->Update(v);

  // Split into 7 partials, then merge.
  std::vector<AggStatePtr> parts;
  for (int p = 0; p < 7; ++p) parts.push_back(Make(c.name, c.star, c.distinct));
  for (size_t i = 0; i < data.size(); ++i) {
    parts[i % 7]->Update(data[i]);
  }
  auto merged = Make(c.name, c.star, c.distinct);
  for (const auto& part : parts) {
    ASSERT_TRUE(merged->Merge(*part).ok());
  }

  Value expected = all->Final();
  Value actual = merged->Final();
  if (expected.is_null()) {
    EXPECT_TRUE(actual.is_null());
  } else if (expected.type() == DataType::kDouble) {
    EXPECT_NEAR(actual.AsDouble(), expected.AsDouble(), 1e-9);
  } else {
    EXPECT_EQ(actual.Compare(expected), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAggregates, MergeEqualsSequentialTest,
    ::testing::Values(MergeCase{"count", true, false},
                      MergeCase{"count", false, false},
                      MergeCase{"count", false, true},
                      MergeCase{"sum", false, false},
                      MergeCase{"avg", false, false},
                      MergeCase{"min", false, false},
                      MergeCase{"max", false, false},
                      MergeCase{"stddev", false, false}),
    [](const ::testing::TestParamInfo<MergeCase>& info) {
      std::string n = info.param.name;
      if (info.param.star) n += "_star";
      if (info.param.distinct) n += "_distinct";
      return n;
    });

TEST(AggregatesTest, CloneIsIndependent) {
  auto s = Make("sum");
  s->Update(Value::Int64(5));
  auto c = s->Clone();
  c->Update(Value::Int64(10));
  EXPECT_EQ(s->Final().AsInt64(), 5);
  EXPECT_EQ(c->Final().AsInt64(), 15);
}

TEST(AggregatesTest, TypeInference) {
  EXPECT_EQ(*InferAggregateType("count", true, DataType::kNull),
            DataType::kInt64);
  EXPECT_EQ(*InferAggregateType("avg", false, DataType::kInt64),
            DataType::kDouble);
  EXPECT_EQ(*InferAggregateType("sum", false, DataType::kDouble),
            DataType::kDouble);
  EXPECT_EQ(*InferAggregateType("min", false, DataType::kString),
            DataType::kString);
  EXPECT_FALSE(InferAggregateType("sum", true, DataType::kNull).ok());
}

TEST(AggregatesTest, IsAggregateFunction) {
  EXPECT_TRUE(IsAggregateFunction("count"));
  EXPECT_TRUE(IsAggregateFunction("stddev"));
  EXPECT_FALSE(IsAggregateFunction("lower"));
  EXPECT_FALSE(IsAggregateFunction("cq_close"));
}

}  // namespace
}  // namespace streamrel::exec
