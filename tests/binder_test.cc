#include "exec/binder.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace streamrel::exec {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  BinderTest()
      : schema_({Column("url", DataType::kString, "s"),
                 Column("atime", DataType::kTimestamp, "s"),
                 Column("bytes", DataType::kInt64, "s")}) {}

  sql::ExprPtr Parse(const std::string& text) {
    auto r = sql::ParseExpression(text);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? std::move(*r) : nullptr;
  }

  Schema schema_;
};

TEST_F(BinderTest, ColumnResolutionAndTypes) {
  ExprBinder binder(schema_);
  auto bound = binder.BindScalar(*Parse("bytes + 1"));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->type, DataType::kInt64);
}

TEST_F(BinderTest, QualifiedColumn) {
  ExprBinder binder(schema_);
  EXPECT_TRUE(binder.BindScalar(*Parse("s.url")).ok());
  auto wrong = binder.BindScalar(*Parse("t.url"));
  EXPECT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, ConstantFolding) {
  ExprBinder binder(schema_);
  auto bound = binder.BindScalar(*Parse("1 + 2 * 3"));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->kind, BoundExprKind::kLiteral);
  EXPECT_EQ((*bound)->literal.AsInt64(), 7);
}

TEST_F(BinderTest, FoldingSkipsRuntimeErrors) {
  ExprBinder binder(schema_);
  // 1/0 must not fold into an error at bind time; it stays a runtime expr.
  auto bound = binder.BindScalar(*Parse("1 / 0"));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->kind, BoundExprKind::kBinary);
}

TEST_F(BinderTest, FoldingStopsAtColumns) {
  ExprBinder binder(schema_);
  auto bound = binder.BindScalar(*Parse("bytes + (1 + 2)"));
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ((*bound)->kind, BoundExprKind::kBinary);
  EXPECT_EQ((*bound)->children[1]->kind, BoundExprKind::kLiteral);
}

TEST_F(BinderTest, ScalarRejectsAggregates) {
  ExprBinder binder(schema_);
  auto r = binder.BindScalar(*Parse("count(*) + 1"));
  EXPECT_FALSE(r.ok());
}

TEST_F(BinderTest, TypeMismatchIsBindError) {
  ExprBinder binder(schema_);
  auto r = binder.BindScalar(*Parse("url + bytes"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, AggregateModeSlots) {
  ExprBinder binder(schema_);
  auto group = Parse("url");
  ASSERT_TRUE(binder.EnterAggregateMode({group.get()}).ok());

  // `url` maps to key slot 0.
  auto key_ref = binder.BindProjection(*Parse("url"));
  ASSERT_TRUE(key_ref.ok());
  EXPECT_EQ((*key_ref)->kind, BoundExprKind::kColumn);
  EXPECT_EQ((*key_ref)->column_index, 0u);

  // count(*) maps to the first aggregate slot (index 1).
  auto agg_ref = binder.BindProjection(*Parse("count(*)"));
  ASSERT_TRUE(agg_ref.ok());
  EXPECT_EQ((*agg_ref)->column_index, 1u);
  EXPECT_EQ(binder.agg_calls().size(), 1u);

  // A second identical count(*) reuses the slot.
  auto again = binder.BindProjection(*Parse("count(*)"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->column_index, 1u);
  EXPECT_EQ(binder.agg_calls().size(), 1u);

  // A different aggregate appends.
  auto sum_ref = binder.BindProjection(*Parse("sum(bytes)"));
  ASSERT_TRUE(sum_ref.ok());
  EXPECT_EQ((*sum_ref)->column_index, 2u);
  EXPECT_EQ(binder.agg_calls().size(), 2u);
}

TEST_F(BinderTest, NonGroupedColumnRejected) {
  ExprBinder binder(schema_);
  auto group = Parse("url");
  ASSERT_TRUE(binder.EnterAggregateMode({group.get()}).ok());
  auto r = binder.BindProjection(*Parse("atime"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("GROUP BY"), std::string::npos);
}

TEST_F(BinderTest, ExpressionOverAggregates) {
  ExprBinder binder(schema_);
  ASSERT_TRUE(binder.EnterAggregateMode({}).ok());
  auto r = binder.BindProjection(*Parse("sum(bytes) / count(*)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(binder.agg_calls().size(), 2u);
  EXPECT_EQ((*r)->kind, BoundExprKind::kBinary);
}

TEST_F(BinderTest, GroupExprSubtreeMatching) {
  ExprBinder binder(schema_);
  auto group = Parse("bytes % 10");
  ASSERT_TRUE(binder.EnterAggregateMode({group.get()}).ok());
  // The identical expression text maps to the key slot...
  auto r = binder.BindProjection(*Parse("bytes % 10"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->column_index, 0u);
  // ...and it can be nested inside a bigger expression.
  auto nested = binder.BindProjection(*Parse("(bytes % 10) * 2"));
  ASSERT_TRUE(nested.ok());
}

TEST_F(BinderTest, AggregateInGroupByRejected) {
  ExprBinder binder(schema_);
  auto group = Parse("count(*)");
  EXPECT_FALSE(binder.EnterAggregateMode({group.get()}).ok());
}

TEST_F(BinderTest, PostAggregateSchema) {
  ExprBinder binder(schema_);
  auto group = Parse("url");
  ASSERT_TRUE(binder.EnterAggregateMode({group.get()}).ok());
  ASSERT_TRUE(binder.BindProjection(*Parse("count(*)")).ok());
  Schema post = binder.PostAggregateSchema();
  ASSERT_EQ(post.num_columns(), 2u);
  EXPECT_EQ(post.column(0).name, "url");
  EXPECT_EQ(post.column(0).type, DataType::kString);
  EXPECT_EQ(post.column(1).name, "count(*)");
  EXPECT_EQ(post.column(1).type, DataType::kInt64);
}

TEST_F(BinderTest, ContainsAggregate) {
  EXPECT_TRUE(ExprBinder::ContainsAggregate(*Parse("count(*)")));
  EXPECT_TRUE(ExprBinder::ContainsAggregate(*Parse("1 + sum(x)")));
  EXPECT_FALSE(ExprBinder::ContainsAggregate(*Parse("lower(url)")));
}

TEST_F(BinderTest, CqCloseBindsAsTimestamp) {
  ExprBinder binder(schema_);
  auto r = binder.BindScalar(*Parse("cq_close(*)"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, BoundExprKind::kCqClose);
  EXPECT_EQ((*r)->type, DataType::kTimestamp);
  // Arithmetic over it types correctly (Example 5's c.stime - interval).
  auto arith = binder.BindScalar(*Parse("cq_close(*) - '1 week'::interval"));
  ASSERT_TRUE(arith.ok());
  EXPECT_EQ((*arith)->type, DataType::kTimestamp);
}

TEST_F(BinderTest, AggregateArityChecked) {
  ExprBinder binder(schema_);
  ASSERT_TRUE(binder.EnterAggregateMode({}).ok());
  EXPECT_FALSE(binder.BindProjection(*Parse("sum(bytes, atime)")).ok());
  EXPECT_FALSE(binder.BindProjection(*Parse("sum(*)")).ok());
}

}  // namespace
}  // namespace streamrel::exec
