#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace streamrel::sql {
namespace {

std::vector<Token> Lex(const std::string& text) {
  auto r = Tokenize(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : std::vector<Token>{};
}

TEST(LexerTest, EmptyInput) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = Lex("select URL_stream _x1");
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].text, "URL_stream");
  EXPECT_EQ(tokens[2].text, "_x1");
  EXPECT_TRUE(tokens[0].IsKeyword("SELECT"));  // case-insensitive
}

TEST(LexerTest, QuotedIdentifier) {
  auto tokens = Lex("\"My Table\"");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "My Table");
}

TEST(LexerTest, StringLiteral) {
  auto tokens = Lex("'5 minutes'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "5 minutes");
}

TEST(LexerTest, EscapedQuoteInString) {
  auto tokens = Lex("'it''s'");
  EXPECT_EQ(tokens[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, IntegerAndFloat) {
  auto tokens = Lex("42 4.25 1e3 7.5e-2");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 4.25);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 0.075);
}

TEST(LexerTest, MultiCharOperators) {
  auto tokens = Lex("<= >= <> != :: ||");
  EXPECT_TRUE(tokens[0].IsOperator("<="));
  EXPECT_TRUE(tokens[1].IsOperator(">="));
  EXPECT_TRUE(tokens[2].IsOperator("<>"));
  EXPECT_TRUE(tokens[3].IsOperator("!="));
  EXPECT_TRUE(tokens[4].IsOperator("::"));
  EXPECT_TRUE(tokens[5].IsOperator("||"));
}

TEST(LexerTest, SingleCharOperators) {
  auto tokens = Lex("( ) , . ; + - * / % = < >");
  const char* expected[] = {"(", ")", ",", ".", ";", "+", "-",
                            "*", "/", "%", "=", "<", ">"};
  for (size_t i = 0; i < 13; ++i) {
    EXPECT_TRUE(tokens[i].IsOperator(expected[i])) << i;
  }
}

TEST(LexerTest, LineComment) {
  auto tokens = Lex("select -- a comment\n1");
  EXPECT_EQ(tokens[0].text, "select");
  EXPECT_EQ(tokens[1].int_value, 1);
  EXPECT_EQ(tokens[2].type, TokenType::kEnd);
}

TEST(LexerTest, BlockComment) {
  auto tokens = Lex("a /* stuff\nmore */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, UnterminatedBlockComment) {
  EXPECT_FALSE(Tokenize("a /* oops").ok());
}

TEST(LexerTest, WindowClauseTokens) {
  auto tokens = Lex("<VISIBLE '5 minutes' ADVANCE '1 minute'>");
  EXPECT_TRUE(tokens[0].IsOperator("<"));
  EXPECT_TRUE(tokens[1].IsKeyword("visible"));
  EXPECT_EQ(tokens[2].type, TokenType::kString);
  EXPECT_TRUE(tokens[3].IsKeyword("advance"));
  EXPECT_TRUE(tokens[5].IsOperator(">"));
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = Lex("ab cd");
  EXPECT_EQ(tokens[0].position, 0u);
  EXPECT_EQ(tokens[1].position, 3u);
}

TEST(LexerTest, UnexpectedCharacter) {
  auto r = Tokenize("select @");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace streamrel::sql
